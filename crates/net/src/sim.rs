//! The simulator core: node table, event loop, and failure injection.

use crate::context::{Action, Context, MsgToken};
use crate::event::{Event, EventHandle, EventKind, EventQueue, Transport};
use crate::id::{GroupId, NodeId};
use crate::latency::LatencyModel;
use crate::stats::Stats;
use crate::storage::{SimStore, StableStore, StoreFault};
use crate::time::{Duration, Time};
use crate::topology::Topology;
use crate::trace::{DropReason, Trace, TraceEvent};
use mykil_crypto::drbg::Drbg;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A simulated process. Implementors are area controllers, registration
/// servers, group members, or baseline-protocol nodes.
///
/// All callbacks receive a [`Context`] through which every effect (send,
/// multicast, timer, group membership) is expressed.
pub trait Node: Any {
    /// Called once when the node is added to the simulation.
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// Called after the node recovers from a crash (see
    /// [`Simulator::restart`]). A crash cancels every timer the node had
    /// pending and wipes volatile state (see
    /// [`Node::on_crashed_volatile_reset`]), so implementors must re-arm
    /// their periodic timers here and reconstruct state from stable
    /// storage ([`Context::storage`]) and/or resynchronize with peers.
    fn on_restarted(&mut self, _ctx: &mut Context<'_>) {}

    /// Called by [`Simulator::crash`] at the moment of the crash: the
    /// node must discard every field that a real process would lose with
    /// its address space, keeping only what models durable local
    /// configuration (keypair, deployment config, device identity).
    /// No [`Context`] is provided — a crashing process performs no
    /// effects; reconstruction happens in [`Node::on_restarted`].
    fn on_crashed_volatile_reset(&mut self) {}

    /// Called when a message addressed to this node arrives.
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _tag: u64) {}

    /// Called when a [`Context::send_reliable`] message is acknowledged
    /// by `peer`'s network layer (the peer received it; its `on_message`
    /// ran unless the frame was a duplicate).
    fn on_reliable_acked(&mut self, _ctx: &mut Context<'_>, _peer: NodeId, _msg: MsgToken) {}

    /// Called when a [`Context::send_reliable`] message exhausts its
    /// retry budget without an acknowledgement; the peer is presumed
    /// unreachable. `kind` is the accounting kind the send was tagged
    /// with.
    fn on_reliable_expired(
        &mut self,
        _ctx: &mut Context<'_>,
        _to: NodeId,
        _kind: &'static str,
        _msg: MsgToken,
    ) {
    }
}

/// Messages a receiver remembers per sender for duplicate suppression.
const DEDUP_WINDOW: usize = 128;

/// Default idle horizon after which a per-pair dedup window is evicted.
/// Far longer than any retransmission schedule (6 attempts of the
/// default policy span ~3.2 s), so eviction never unmasks a duplicate
/// that the reliable layer could still produce.
const DEDUP_IDLE_HORIZON_MICROS: u64 = 30_000_000;

/// Nominal wire size of a reliable-layer ack (tag byte + u64 id).
const ACK_WIRE_BYTES: usize = 9;

/// A reliable send awaiting acknowledgement.
#[derive(Debug)]
struct PendingReliable {
    src: NodeId,
    to: NodeId,
    kind: &'static str,
    bytes: Vec<u8>,
    /// Transmissions made so far (the initial send counts as 1).
    attempts: u32,
}

/// Recently seen reliable msg ids from one peer (insertion-ordered so
/// the oldest is evicted when the window is full). `last_seen` lets the
/// simulator evict whole windows for pairs that stopped talking —
/// without it the map grows one window per communicating pair forever,
/// which is unbounded memory at million-member scale.
#[derive(Debug, Default)]
struct DedupWindow {
    seen: BTreeSet<u64>,
    order: VecDeque<u64>,
    last_seen: Time,
}

impl DedupWindow {
    /// Records `msg_id` at `now`; returns `false` when it was already
    /// present.
    fn fresh(&mut self, msg_id: u64, now: Time) -> bool {
        self.last_seen = now;
        if !self.seen.insert(msg_id) {
            return false;
        }
        self.order.push_back(msg_id);
        if self.order.len() > DEDUP_WINDOW {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        true
    }
}

/// Builds a node's stable-storage backend (see
/// [`Simulator::set_storage_factory`]).
pub type StorageFactory = Box<dyn FnMut(NodeId) -> Box<dyn StableStore> + Send>;

/// Deterministic discrete-event simulator.
///
/// See the [crate docs](crate) for an overview and example.
pub struct Simulator {
    nodes: Vec<Option<Box<dyn Node>>>,
    /// Per-node stable storage, parallel to `nodes`. Survives crashes
    /// (modulo injected storage faults) while volatile state does not.
    storage: Vec<Box<dyn StableStore>>,
    /// Builds the storage backend for each node added from here on;
    /// `None` means the default in-memory [`SimStore`].
    storage_factory: Option<StorageFactory>,
    queue: EventQueue,
    topo: Topology,
    groups: Vec<BTreeSet<NodeId>>,
    stats: Stats,
    rng: Drbg,
    now: Time,
    latency: LatencyModel,
    next_token: u64,
    next_msg_id: u64,
    pending_reliable: BTreeMap<u64, PendingReliable>,
    dedup: BTreeMap<(NodeId, NodeId), DedupWindow>,
    /// Windows idle past this horizon are evicted by a periodic sweep.
    dedup_idle_horizon: Duration,
    /// When the last eviction sweep ran (sweeps are time-driven and
    /// deterministic: no RNG, ordered map iteration).
    last_dedup_sweep: Time,
    reliable_base: Duration,
    reliable_max_attempts: u32,
    events_processed: u64,
    trace: Option<Trace>,
    dup_per_mille: u32,
    reorder_per_mille: u32,
    reorder_window: Duration,
    /// Per-node timer scale in permille (1000 = nominal); nodes absent
    /// from the map run their timers at nominal speed.
    timer_skew: BTreeMap<NodeId, u32>,
    /// Pending timers per node, keyed by token and holding the wheel
    /// handle: cancellation (explicit or by crash) removes the event
    /// from the queue in O(1) — there is no tombstone set to leak.
    armed_timers: BTreeMap<NodeId, BTreeMap<u64, EventHandle>>,
    /// Completed crash/restart cycles per node. Recovery is allowed to
    /// roll volatile counters backwards (a corrupt checkpoint falls
    /// back to an older slot), so monotonicity checkers use this to
    /// scope their baselines to one process incarnation.
    restart_counts: BTreeMap<NodeId, u64>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Creates a simulator with LAN latency and the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self::with_latency(seed, LatencyModel::lan())
    }

    /// Creates a simulator with an explicit latency model.
    pub fn with_latency(seed: u64, latency: LatencyModel) -> Self {
        Simulator {
            nodes: Vec::new(),
            storage: Vec::new(),
            storage_factory: None,
            queue: EventQueue::new(),
            topo: Topology::new(),
            groups: Vec::new(),
            stats: Stats::new(),
            rng: Drbg::from_seed(seed),
            now: Time::ZERO,
            latency,
            next_token: 0,
            next_msg_id: 0,
            pending_reliable: BTreeMap::new(),
            dedup: BTreeMap::new(),
            dedup_idle_horizon: Duration::from_micros(DEDUP_IDLE_HORIZON_MICROS),
            last_dedup_sweep: Time::ZERO,
            reliable_base: Duration::from_millis(50),
            reliable_max_attempts: 6,
            events_processed: 0,
            trace: None,
            dup_per_mille: 0,
            reorder_per_mille: 0,
            reorder_window: Duration::ZERO,
            timer_skew: BTreeMap::new(),
            armed_timers: BTreeMap::new(),
            restart_counts: BTreeMap::new(),
        }
    }

    /// Configures the reliable-delivery layer: first retransmission
    /// after `base` (doubling each attempt), giving up after
    /// `max_attempts` total transmissions. Defaults: 50 ms, 6 attempts.
    /// Overrides the idle horizon after which per-pair dedup windows
    /// are evicted (zero disables eviction entirely).
    pub fn set_dedup_idle_horizon(&mut self, horizon: Duration) {
        self.dedup_idle_horizon = horizon;
    }

    /// Number of live per-pair dedup windows (also exported as the
    /// `dedup-windows` stat whenever an eviction sweep runs).
    pub fn dedup_windows(&self) -> usize {
        self.dedup.len()
    }

    /// Timer bookkeeping consistency: every armed `(node, token)` pair
    /// holds a handle to exactly one pending timer event in the wheel,
    /// and the wheel holds no timer event outside the armed map. The
    /// pre-wheel scheduler kept a `cancelled` tombstone set that leaked
    /// entries for timers dropped by a crash; chaos soaks assert this
    /// to pin the fix.
    pub fn timer_accounting_consistent(&self) -> bool {
        let armed: usize = self.armed_timers.values().map(|m| m.len()).sum();
        armed == self.queue.pending_timers()
    }

    pub fn set_reliable_policy(&mut self, base: Duration, max_attempts: u32) {
        self.reliable_base = base;
        self.reliable_max_attempts = max_attempts.max(1);
    }

    /// Adds a node; its [`Node::on_start`] runs at the current time.
    pub fn add_node<N: Node>(&mut self, node: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(Box::new(node)));
        self.storage.push(match &mut self.storage_factory {
            Some(make) => make(id),
            None => Box::new(SimStore::new()),
        });
        self.queue.push(self.now, id, EventKind::Start);
        id
    }

    /// Creates an empty multicast group.
    pub fn create_group(&mut self) -> GroupId {
        let id = GroupId(self.groups.len() as u32);
        self.groups.push(BTreeSet::new());
        id
    }

    /// Current members of a multicast group.
    ///
    /// # Panics
    ///
    /// Panics for a `GroupId` not created by this simulator.
    pub fn group_members(&self, group: GroupId) -> &BTreeSet<NodeId> {
        &self.groups[group.index()]
    }

    /// Adds a member to a group directly (harness convenience; nodes use
    /// [`Context::join_group`]).
    pub fn add_group_member(&mut self, group: GroupId, node: NodeId) {
        self.groups[group.index()].insert(node);
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable access to statistics (e.g. to [`Stats::reset`] between
    /// measurement phases).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Number of events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Starts recording an event trace, keeping the most recent
    /// `capacity` events (see [`TraceEvent`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The recorded trace events, oldest first (empty when tracing is
    /// off).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace
            .as_ref()
            .map(|t| t.events().cloned().collect())
            .unwrap_or_default()
    }

    /// Total events recorded since tracing was enabled (including ones
    /// evicted from the bounded buffer).
    pub fn trace_recorded(&self) -> u64 {
        self.trace.as_ref().map(|t| t.recorded()).unwrap_or(0)
    }

    fn record(&mut self, event: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(event);
        }
    }

    /// Records a fault-injection note into the trace (used by the chaos
    /// harness so replayed traces show what was done to the network).
    pub(crate) fn record_fault(&mut self, desc: String) {
        let at = self.now;
        self.record(TraceEvent::FaultInjected { at, desc });
    }

    // ---- failure injection (Section IV fault model) ----

    /// Moves `node` into partition `label`; nodes communicate only
    /// within the same label (0 = default partition).
    pub fn partition(&mut self, node: NodeId, label: u32) {
        self.topo.set_partition(node, label);
    }

    /// Heals all partitions.
    pub fn heal_partitions(&mut self) {
        self.topo.heal_partitions();
    }

    /// Crashes a node: it stops sending and receiving, every timer it
    /// had pending is cancelled, and its pending reliable sends are
    /// cancelled (a crashed sender's transport state dies with it;
    /// each cancellation bumps the `reliable-cancelled` stat).
    ///
    /// The node's *volatile* state dies with the process: any armed
    /// storage fault is applied to its [`NodeStorage`] (unsynced tail
    /// lost, possibly a torn final record) and then
    /// [`Node::on_crashed_volatile_reset`] wipes the in-memory struct
    /// down to durable local configuration. [`Node::on_restarted`] must
    /// reconstruct from [`Context::storage`] and/or peers.
    pub fn crash(&mut self, node: NodeId) {
        let was_crashed = self.topo.is_crashed(node);
        self.topo.crash(node);
        if let Some(timers) = self.armed_timers.remove(&node) {
            // O(1) removal straight from the wheel: nothing is left
            // behind to fire, and no tombstone set can leak.
            for handle in timers.into_values() {
                self.queue.cancel(handle);
            }
        }
        let dead: Vec<u64> = self
            .pending_reliable
            .iter()
            .filter(|(_, p)| p.src == node)
            .map(|(id, _)| *id)
            .collect();
        for id in dead {
            self.pending_reliable.remove(&id);
            self.stats.bump("reliable-cancelled", 1);
        }
        if was_crashed {
            return; // already down: storage faults and the wipe already ran
        }
        if let Some(stat) = self.storage[node.index()].on_crash() {
            self.stats.bump(stat, 1);
            self.record_fault(format!("{stat} node {}", node.index()));
        }
        if let Some(boxed) = self.nodes[node.index()].as_deref_mut() {
            boxed.on_crashed_volatile_reset();
        }
    }

    /// Restarts a crashed node and returns `true` when the node was
    /// actually down (`recovered`); in that case [`Node::on_restarted`]
    /// is scheduled so the node can re-arm timers and resynchronize.
    /// Restarting a live node is a no-op returning `false`.
    pub fn restart(&mut self, node: NodeId) -> bool {
        let recovered = self.topo.is_crashed(node);
        self.topo.restart(node);
        if recovered {
            *self.restart_counts.entry(node).or_insert(0) += 1;
            self.queue.push(self.now, node, EventKind::Restarted);
        }
        recovered
    }

    /// Completed crash/restart cycles for `node` (0 when it has never
    /// been restarted).
    pub fn restart_count(&self, node: NodeId) -> u64 {
        self.restart_counts.get(&node).copied().unwrap_or(0)
    }

    /// Whether the node is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.topo.is_crashed(node)
    }

    /// Cuts the directed link `from -> to`.
    pub fn cut_link(&mut self, from: NodeId, to: NodeId) {
        self.topo.cut_link(from, to);
    }

    /// Restores the directed link `from -> to`.
    pub fn restore_link(&mut self, from: NodeId, to: NodeId) {
        self.topo.restore_link(from, to);
    }

    /// Sets uniform message loss in permille (0–1000).
    pub fn set_loss_per_mille(&mut self, per_mille: u32) {
        self.topo.set_loss_per_mille(per_mille);
    }

    /// Sets the probability (permille, 0–1000) that a delivered message
    /// is duplicated: a second copy arrives with independently sampled
    /// latency. Reliable frames are shielded by the dedup window; plain
    /// sends see the duplicate.
    pub fn set_duplication_per_mille(&mut self, per_mille: u32) {
        self.dup_per_mille = per_mille.min(1000);
    }

    /// Sets the probability (permille, 0–1000) that a delivered message
    /// is delayed by a uniform extra amount up to `window`, which
    /// reorders it against later traffic.
    pub fn set_reorder(&mut self, per_mille: u32, window: Duration) {
        self.reorder_per_mille = per_mille.min(1000);
        self.reorder_window = window;
    }

    /// Scales all future timers set by `node` to `per_mille`/1000 of
    /// their nominal delay (1000 = nominal, 1500 = clock running 50%
    /// slow). Models alive-timer skew between protocol participants.
    pub fn set_timer_skew_per_mille(&mut self, node: NodeId, per_mille: u32) {
        if per_mille == 1000 {
            self.timer_skew.remove(&node);
        } else {
            self.timer_skew.insert(node, per_mille.max(1));
        }
    }

    /// Read access to a node's stable storage (e.g. for invariant
    /// checkers replaying a durable log).
    pub fn storage(&self, node: NodeId) -> &dyn StableStore {
        &*self.storage[node.index()]
    }

    /// Mutable access to a node's stable storage (fault injection:
    /// arming lying syncs, corrupting checkpoints, healing).
    pub fn storage_mut(&mut self, node: NodeId) -> &mut dyn StableStore {
        &mut *self.storage[node.index()]
    }

    /// Installs a factory that builds the stable-storage backend for
    /// every node added *from here on* (already-added nodes keep their
    /// stores). Without a factory every node gets an in-memory
    /// [`SimStore`]; deployments that want real files install one
    /// returning [`FileStore`](crate::FileStore)s (usually wrapped in
    /// [`FaultyStore`](crate::FaultyStore) so the chaos fault verbs
    /// keep working).
    pub fn set_storage_factory(
        &mut self,
        make: impl FnMut(NodeId) -> Box<dyn StableStore> + Send + 'static,
    ) {
        self.storage_factory = Some(Box::new(make));
    }

    /// Injects a storage fault into `node`'s backend. When the backend
    /// does not support the fault kind, nothing changes and the
    /// `storage-fault-unsupported` stat is bumped so chaos runs can
    /// tell a skipped verb from a survived one.
    pub fn inject_storage_fault(&mut self, node: NodeId, fault: StoreFault) {
        if !self.storage[node.index()].inject(fault) {
            self.stats.bump("storage-fault-unsupported", 1);
        }
    }

    // ---- node access ----

    /// Immutable access to a node downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics when the id is stale or the type does not match.
    pub fn node<N: Node>(&self, id: NodeId) -> &N {
        let any: &dyn Any = self.nodes[id.index()]
            .as_deref()
            // mykil-lint: allow(L001) -- documented panic: harness accessor, not a protocol path
            .expect("node is mid-callback");
        // mykil-lint: allow(L001) -- documented panic: harness accessor, not a protocol path
        any.downcast_ref::<N>().expect("node type mismatch")
    }

    /// Mutable access to a node downcast to its concrete type.
    ///
    /// Prefer [`Self::invoke`] when the mutation needs to send messages
    /// or set timers.
    ///
    /// # Panics
    ///
    /// Panics when the id is stale or the type does not match.
    pub fn node_mut<N: Node>(&mut self, id: NodeId) -> &mut N {
        let any: &mut dyn Any = self.nodes[id.index()]
            .as_deref_mut()
            // mykil-lint: allow(L001) -- documented panic: harness accessor, not a protocol path
            .expect("node is mid-callback");
        // mykil-lint: allow(L001) -- documented panic: harness accessor, not a protocol path
        any.downcast_mut::<N>().expect("node type mismatch")
    }

    /// Runs a closure against a node with a full [`Context`], applying
    /// any effects it produces. This is how test harnesses trigger
    /// protocol actions ("member 7: start a rejoin now").
    ///
    /// # Panics
    ///
    /// Panics when the id is stale or the type does not match.
    pub fn invoke<N: Node, T>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut N, &mut Context<'_>) -> T,
    ) -> T {
        let mut boxed = self.nodes[id.index()]
            .take()
            // mykil-lint: allow(L001) -- documented panic: harness accessor, not a protocol path
            .expect("node is mid-callback");
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            rng: &mut self.rng,
            stats: &mut self.stats,
            actions: Vec::new(),
            compute: Duration::ZERO,
            next_token: &mut self.next_token,
            next_msg_id: &mut self.next_msg_id,
            storage: &mut *self.storage[id.index()],
        };
        let any: &mut dyn Any = boxed.as_mut();
        // mykil-lint: allow(L001) -- documented panic: harness accessor, not a protocol path
        let node = any.downcast_mut::<N>().expect("node type mismatch");
        let out = f(node, &mut ctx);
        let actions = std::mem::take(&mut ctx.actions);
        self.nodes[id.index()] = Some(boxed);
        self.apply_actions(id, actions);
        out
    }

    // ---- event loop ----

    /// Processes events until the queue is empty or `deadline` passes;
    /// time ends at `deadline`.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Processes events until the queue drains (the network goes quiet),
    /// up to a safety cap of `max` events.
    ///
    /// Returns `true` when the queue drained, `false` when the cap hit
    /// (e.g. periodic timers keep the queue non-empty forever).
    pub fn run_until_quiet(&mut self, max: u64) -> bool {
        for _ in 0..max {
            if self.queue.is_empty() {
                return true;
            }
            self.step();
        }
        self.queue.is_empty()
    }

    /// Processes a single event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.at >= self.now, "event queue went backwards");
        self.now = event.at;
        self.events_processed += 1;
        self.dispatch(event);
        true
    }

    fn dispatch(&mut self, event: Event) {
        let Event { dst, kind, .. } = event;
        // Drop deliveries/timers for crashed nodes (messages in flight
        // to a node that crashed are lost, like a closed TCP socket).
        match &kind {
            EventKind::Deliver {
                from, kind: mkind, ..
            } if self.topo.is_crashed(dst) => {
                let (from, mkind) = (*from, *mkind);
                self.record(TraceEvent::Dropped {
                    at: self.now,
                    from,
                    to: dst,
                    kind: mkind,
                    reason: DropReason::Crashed,
                });
                return;
            }
            EventKind::Timer { token, .. } => {
                // A firing timer is by definition still armed: cancels
                // (explicit or via crash) removed the event from the
                // wheel, so no tombstone check is needed here.
                if let Some(set) = self.armed_timers.get_mut(&dst) {
                    set.remove(token);
                }
                if self.topo.is_crashed(dst) {
                    return;
                }
            }
            EventKind::Restarted if self.topo.is_crashed(dst) => {
                return; // crashed again before the notification fired
            }
            EventKind::Retransmit { msg_id } => {
                let msg_id = *msg_id;
                self.handle_retransmit(msg_id);
                return;
            }
            _ => {}
        }
        // Reliable-layer frames are handled by the destination's
        // "network layer" before (or instead of) the node callback.
        match &kind {
            EventKind::Deliver {
                from,
                transport: Transport::Ack { msg_id },
                ..
            } => {
                let (from, msg_id) = (*from, *msg_id);
                if self.pending_reliable.remove(&msg_id).is_some() {
                    self.stats.bump("reliable-acked", 1);
                    self.with_node_ctx(dst, |node, ctx| {
                        node.on_reliable_acked(ctx, from, MsgToken(msg_id));
                    });
                }
                return;
            }
            EventKind::Deliver {
                from,
                kind: mkind,
                transport: Transport::Reliable { msg_id },
                ..
            } => {
                let (from, msg_id, mkind) = (*from, *msg_id, *mkind);
                // Always ack — a duplicate usually means our previous
                // ack was lost, so the sender needs another one.
                self.send_ack(dst, from, msg_id);
                self.maybe_sweep_dedup();
                let now = self.now;
                if !self.dedup.entry((dst, from)).or_default().fresh(msg_id, now) {
                    self.stats.bump("reliable-dup-dropped", 1);
                    self.record(TraceEvent::Dropped {
                        at: self.now,
                        from,
                        to: dst,
                        kind: mkind,
                        reason: DropReason::Duplicate,
                    });
                    return;
                }
                // Fresh: fall through to normal delivery below.
            }
            _ => {}
        }
        let Some(mut boxed) = self.nodes[dst.index()].take() else {
            return;
        };
        let mut ctx = Context {
            now: self.now,
            self_id: dst,
            rng: &mut self.rng,
            stats: &mut self.stats,
            actions: Vec::new(),
            compute: Duration::ZERO,
            next_token: &mut self.next_token,
            next_msg_id: &mut self.next_msg_id,
            storage: &mut *self.storage[dst.index()],
        };
        let trace_note = match &kind {
            EventKind::Deliver {
                from,
                bytes,
                kind: mkind,
                ..
            } => Some(TraceEvent::Delivered {
                at: self.now,
                from: *from,
                to: dst,
                kind: mkind,
                len: bytes.len(),
            }),
            EventKind::Timer { tag, .. } => Some(TraceEvent::TimerFired {
                at: self.now,
                node: dst,
                tag: *tag,
            }),
            EventKind::Start | EventKind::Restarted | EventKind::Retransmit { .. } => None,
        };
        match kind {
            EventKind::Deliver { from, bytes, .. } => boxed.on_message(&mut ctx, from, &bytes),
            EventKind::Timer { tag, .. } => boxed.on_timer(&mut ctx, tag),
            EventKind::Start => boxed.on_start(&mut ctx),
            EventKind::Restarted => boxed.on_restarted(&mut ctx),
            EventKind::Retransmit { .. } => {} // handled above
        }
        let actions = std::mem::take(&mut ctx.actions);
        self.nodes[dst.index()] = Some(boxed);
        if let Some(note) = trace_note {
            self.record(note);
        }
        self.apply_actions(dst, actions);
    }

    /// Runs a node callback with a fresh [`Context`] and applies its
    /// effects (internal cousin of [`Self::invoke`] for trait-object
    /// callbacks like ack/expiry notifications).
    fn with_node_ctx(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut Context<'_>)) {
        let Some(mut boxed) = self.nodes[id.index()].take() else {
            return;
        };
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            rng: &mut self.rng,
            stats: &mut self.stats,
            actions: Vec::new(),
            compute: Duration::ZERO,
            next_token: &mut self.next_token,
            next_msg_id: &mut self.next_msg_id,
            storage: &mut *self.storage[id.index()],
        };
        f(boxed.as_mut(), &mut ctx);
        let actions = std::mem::take(&mut ctx.actions);
        self.nodes[id.index()] = Some(boxed);
        self.apply_actions(id, actions);
    }

    /// Attempts one wire transmission, honouring the failure model.
    fn transmit(
        &mut self,
        src: NodeId,
        to: NodeId,
        kind: &'static str,
        bytes: Vec<u8>,
        after: Duration,
        transport: Transport,
    ) {
        match self.topo.delivery_verdict(src, to, &mut self.rng) {
            Ok(()) => {
                let mut delay = self.latency.sample(bytes.len(), &mut self.rng);
                // Chaos knobs consume randomness only when configured,
                // so runs without them stay byte-identical.
                if self.reorder_per_mille > 0
                    && self.rng.gen_range(1000) < self.reorder_per_mille as u64
                    && self.reorder_window > Duration::ZERO
                {
                    let extra = self.rng.gen_range(self.reorder_window.as_micros());
                    delay += Duration::from_micros(extra);
                }
                if self.dup_per_mille > 0 && self.rng.gen_range(1000) < self.dup_per_mille as u64 {
                    let dup_delay = self.latency.sample(bytes.len(), &mut self.rng);
                    self.queue.push(
                        self.now + after + dup_delay,
                        to,
                        EventKind::Deliver {
                            from: src,
                            bytes: bytes.clone(),
                            kind,
                            transport,
                        },
                    );
                }
                self.queue.push(
                    self.now + after + delay,
                    to,
                    EventKind::Deliver {
                        from: src,
                        bytes,
                        kind,
                        transport,
                    },
                );
            }
            Err(reason) => self.record(TraceEvent::Dropped {
                at: self.now,
                from: src,
                to,
                kind,
                reason,
            }),
        }
    }

    /// Emits the network-layer ack for a received reliable frame. Acks
    /// travel the same lossy network as everything else.
    /// Evicts dedup windows idle past the configured horizon. Runs at
    /// most once per horizon, from the reliable receive path, so the
    /// sweep schedule is a pure function of the event timeline
    /// (deterministic across replays; no RNG, ordered iteration).
    fn maybe_sweep_dedup(&mut self) {
        let horizon = self.dedup_idle_horizon.as_micros();
        if horizon == 0
            || self.now.as_micros() - self.last_dedup_sweep.as_micros() < horizon
        {
            return;
        }
        self.last_dedup_sweep = self.now;
        let cutoff = self.now.as_micros().saturating_sub(horizon);
        let before = self.dedup.len();
        self.dedup.retain(|_, w| w.last_seen.as_micros() >= cutoff);
        let evicted = before - self.dedup.len();
        if evicted > 0 {
            self.stats.bump("dedup-evicted", evicted as u64);
        }
        self.stats.set("dedup-windows", self.dedup.len() as u64);
    }

    fn send_ack(&mut self, acker: NodeId, to: NodeId, msg_id: u64) {
        self.stats.record_send("reliable-ack", ACK_WIRE_BYTES, 1);
        self.transmit(
            acker,
            to,
            "reliable-ack",
            Vec::new(),
            Duration::ZERO,
            Transport::Ack { msg_id },
        );
    }

    /// Backoff before the next retransmission after `attempts`
    /// transmissions: `base << (attempts - 1)`, saturating.
    fn backoff_after(&self, attempts: u32) -> Duration {
        let factor = 1u64 << (attempts - 1).min(16);
        Duration::from_micros(self.reliable_base.as_micros().saturating_mul(factor))
    }

    /// A retransmission timer fired: resend, or give up and notify.
    fn handle_retransmit(&mut self, msg_id: u64) {
        let Some(pending) = self.pending_reliable.get(&msg_id) else {
            return; // acknowledged or cancelled in the meantime
        };
        if pending.attempts >= self.reliable_max_attempts {
            // mykil-lint: allow(L001) -- presence checked by the guard above
            let pending = self.pending_reliable.remove(&msg_id).expect("checked above");
            self.stats.bump("reliable-expired", 1);
            if self.topo.is_crashed(pending.src) {
                return; // crashed senders learn nothing (like timers)
            }
            let (to, kind) = (pending.to, pending.kind);
            self.with_node_ctx(pending.src, |node, ctx| {
                node.on_reliable_expired(ctx, to, kind, MsgToken(msg_id));
            });
            return;
        }
        let pending = self
            .pending_reliable
            .get_mut(&msg_id)
            // mykil-lint: allow(L001) -- presence checked by the guard above
            .expect("checked above");
        pending.attempts += 1;
        let (src, to, kind, bytes, attempts) = (
            pending.src,
            pending.to,
            pending.kind,
            pending.bytes.clone(),
            pending.attempts,
        );
        self.stats.bump("reliable-retransmits", 1);
        self.stats.record_send(kind, bytes.len(), 1);
        self.record(TraceEvent::Retransmitted {
            at: self.now,
            from: src,
            to,
            kind,
            attempt: attempts,
        });
        self.transmit(
            src,
            to,
            kind,
            bytes,
            Duration::ZERO,
            Transport::Reliable { msg_id },
        );
        let next = self.backoff_after(attempts);
        self.queue
            .push(self.now + next, src, EventKind::Retransmit { msg_id });
    }

    fn apply_actions(&mut self, src: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send {
                    to,
                    kind,
                    bytes,
                    after,
                } => {
                    self.stats.record_send(kind, bytes.len(), 1);
                    self.transmit(src, to, kind, bytes, after, Transport::Plain);
                }
                Action::SendReliable {
                    to,
                    kind,
                    bytes,
                    msg_id,
                    after,
                } => {
                    self.stats.record_send(kind, bytes.len(), 1);
                    self.pending_reliable.insert(
                        msg_id,
                        PendingReliable {
                            src,
                            to,
                            kind,
                            bytes: bytes.clone(),
                            attempts: 1,
                        },
                    );
                    self.transmit(src, to, kind, bytes, after, Transport::Reliable { msg_id });
                    let next = self.backoff_after(1);
                    self.queue.push(
                        self.now + after + next,
                        src,
                        EventKind::Retransmit { msg_id },
                    );
                }
                Action::CancelReliable { msg_id } => {
                    self.pending_reliable.remove(&msg_id);
                }
                Action::CancelReliableTo { peer } => {
                    let dead: Vec<u64> = self
                        .pending_reliable
                        .iter()
                        .filter(|(_, p)| p.src == src && p.to == peer)
                        .map(|(id, _)| *id)
                        .collect();
                    for id in dead {
                        self.pending_reliable.remove(&id);
                        self.stats.bump("reliable-cancelled", 1);
                    }
                }
                Action::Multicast {
                    group,
                    kind,
                    bytes,
                    after,
                } => {
                    // BTreeSet iteration is already ordered, so the
                    // delivery schedule is deterministic by construction.
                    let members: Vec<NodeId> = self.groups[group.index()]
                        .iter()
                        .copied()
                        .filter(|&n| n != src)
                        .collect();
                    self.stats.record_send(kind, bytes.len(), members.len());
                    for to in members {
                        self.transmit(src, to, kind, bytes.clone(), after, Transport::Plain);
                    }
                }
                Action::SetTimer {
                    delay,
                    tag,
                    token,
                    after,
                } => {
                    let delay = match self.timer_skew.get(&src) {
                        Some(&per_mille) => Duration::from_micros(
                            delay.as_micros().saturating_mul(per_mille as u64) / 1000,
                        ),
                        None => delay,
                    };
                    let handle = self.queue.push(
                        self.now + after + delay,
                        src,
                        EventKind::Timer { tag, token },
                    );
                    self.armed_timers.entry(src).or_default().insert(token, handle);
                }
                Action::CancelTimer { token } => {
                    // Tokens are node-scoped in practice but globally
                    // unique, so removing from the caller's map is
                    // exact; the wheel drops the event immediately.
                    if let Some(handle) = self
                        .armed_timers
                        .get_mut(&src)
                        .and_then(|timers| timers.remove(&token))
                    {
                        self.queue.cancel(handle);
                    }
                }
                Action::JoinGroup { group } => {
                    self.groups[group.index()].insert(src);
                }
                Action::LeaveGroup { group } => {
                    self.groups[group.index()].remove(&src);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts messages and echoes pings.
    struct Echo {
        received: u32,
    }

    impl Node for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
            self.received += 1;
            if bytes == b"ping" {
                ctx.send(from, "pong", b"pong".to_vec());
            }
        }
    }

    struct Pinger {
        target: NodeId,
        pongs: u32,
        pong_time: Option<Time>,
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send(self.target, "ping", b"ping".to_vec());
        }
        fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, bytes: &[u8]) {
            if bytes == b"pong" {
                self.pongs += 1;
                self.pong_time = Some(ctx.now());
            }
        }
    }

    fn ping_pong_sim(seed: u64) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(seed);
        let echo = sim.add_node(Echo { received: 0 });
        let pinger = sim.add_node(Pinger {
            target: echo,
            pongs: 0,
            pong_time: None,
        });
        (sim, echo, pinger)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (mut sim, echo, pinger) = ping_pong_sim(1);
        sim.run_until(Time::from_millis(100));
        assert_eq!(sim.node::<Echo>(echo).received, 1);
        assert_eq!(sim.node::<Pinger>(pinger).pongs, 1);
        // Two LAN hops: at least 2 * 200us.
        let t = sim.node::<Pinger>(pinger).pong_time.unwrap();
        assert!(t >= Time::from_micros(400));
        assert!(t <= Time::from_millis(2));
    }

    #[test]
    fn deterministic_across_runs() {
        let (mut s1, _, p1) = ping_pong_sim(7);
        let (mut s2, _, p2) = ping_pong_sim(7);
        s1.run_until(Time::from_millis(10));
        s2.run_until(Time::from_millis(10));
        assert_eq!(
            s1.node::<Pinger>(p1).pong_time,
            s2.node::<Pinger>(p2).pong_time
        );
        assert_eq!(s1.events_processed(), s2.events_processed());
    }

    #[test]
    fn stats_account_sends() {
        let (mut sim, _, _) = ping_pong_sim(2);
        sim.run_until(Time::from_millis(10));
        assert_eq!(sim.stats().kind("ping").messages_sent, 1);
        assert_eq!(sim.stats().kind("ping").bytes_sent, 4);
        assert_eq!(sim.stats().kind("pong").messages_sent, 1);
    }

    #[test]
    fn crash_blocks_delivery() {
        let (mut sim, echo, pinger) = ping_pong_sim(3);
        sim.crash(echo);
        sim.run_until(Time::from_millis(10));
        assert_eq!(sim.node::<Echo>(echo).received, 0);
        assert_eq!(sim.node::<Pinger>(pinger).pongs, 0);
        // Bytes are still counted as sent (transmission attempted).
        assert_eq!(sim.stats().kind("ping").messages_sent, 1);
    }

    #[test]
    fn partition_blocks_then_heals() {
        let (mut sim, echo, pinger) = ping_pong_sim(4);
        sim.partition(echo, 1);
        sim.run_until(Time::from_millis(10));
        assert_eq!(sim.node::<Pinger>(pinger).pongs, 0);
        sim.heal_partitions();
        // Re-trigger a ping via invoke.
        let target = echo;
        sim.invoke(pinger, |p: &mut Pinger, ctx| {
            ctx.send(target, "ping", b"ping".to_vec());
            p.pongs = 0;
        });
        sim.run_until(Time::from_millis(20));
        assert_eq!(sim.node::<Pinger>(pinger).pongs, 1);
    }

    struct Ticker {
        fired: Vec<u64>,
        cancel_me: Option<crate::context::TimerToken>,
    }

    impl Node for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(Duration::from_millis(5), 1);
            let tok = ctx.set_timer(Duration::from_millis(10), 2);
            ctx.set_timer(Duration::from_millis(15), 3);
            self.cancel_me = Some(tok);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
            self.fired.push(tag);
            if tag == 1 {
                if let Some(tok) = self.cancel_me.take() {
                    ctx.cancel_timer(tok);
                }
            }
        }
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let mut sim = Simulator::new(5);
        let t = sim.add_node(Ticker {
            fired: Vec::new(),
            cancel_me: None,
        });
        sim.run_until(Time::from_millis(100));
        assert_eq!(sim.node::<Ticker>(t).fired, vec![1, 3]);
    }

    struct Caster {
        group: GroupId,
    }

    impl Node for Caster {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.join_group(self.group);
            ctx.set_timer(Duration::from_millis(1), 0);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
            ctx.multicast(self.group, "mc", vec![0xaa; 16]);
        }
    }

    struct Listener {
        group: GroupId,
        got: u32,
    }

    impl Node for Listener {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.join_group(self.group);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {
            self.got += 1;
        }
    }

    #[test]
    fn multicast_reaches_members_not_sender() {
        let mut sim = Simulator::new(6);
        let g = sim.create_group();
        let caster = sim.add_node(Caster { group: g });
        let l1 = sim.add_node(Listener { group: g, got: 0 });
        let l2 = sim.add_node(Listener { group: g, got: 0 });
        let other_group = sim.create_group();
        let outsider = sim.add_node(Listener {
            group: other_group,
            got: 0,
        });
        sim.run_until(Time::from_millis(50));
        assert_eq!(sim.node::<Listener>(l1).got, 1);
        assert_eq!(sim.node::<Listener>(l2).got, 1);
        assert_eq!(sim.node::<Listener>(outsider).got, 0);
        // Multicast accounted once as sent, twice as delivered... plus
        // the sender itself is excluded.
        let mc = sim.stats().kind("mc");
        assert_eq!(mc.messages_sent, 1);
        assert_eq!(mc.bytes_sent, 16);
        assert_eq!(mc.messages_delivered, 2);
        assert_eq!(mc.bytes_delivered, 32);
        assert!(sim.group_members(g).contains(&caster));
    }

    #[test]
    fn run_until_quiet_drains() {
        let (mut sim, _, _) = ping_pong_sim(8);
        assert!(sim.run_until_quiet(1000));
        assert_eq!(sim.events_processed(), 4); // 2 starts + 2 deliveries
    }

    #[test]
    fn cut_link_is_one_way() {
        let (mut sim, echo, pinger) = ping_pong_sim(9);
        sim.cut_link(NodeId::from_index(pinger.index()), echo);
        sim.run_until(Time::from_millis(10));
        assert_eq!(sim.node::<Echo>(echo).received, 0);
        sim.restore_link(NodeId::from_index(pinger.index()), echo);
        sim.invoke(pinger, |p: &mut Pinger, ctx| {
            let t = p.target;
            ctx.send(t, "ping", b"ping".to_vec());
        });
        sim.run_until(Time::from_millis(20));
        assert_eq!(sim.node::<Echo>(echo).received, 1);
    }

    #[test]
    fn compute_charge_delays_sends() {
        struct Slow {
            target: NodeId,
        }
        impl Node for Slow {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.charge_compute(Duration::from_millis(100));
                ctx.send(self.target, "x", vec![1]);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
        }
        struct Sink {
            arrival: Option<Time>,
        }
        impl Node for Sink {
            fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {
                self.arrival = Some(ctx.now());
            }
        }
        let mut sim = Simulator::new(10);
        let sink = sim.add_node(Sink { arrival: None });
        sim.add_node(Slow { target: sink });
        sim.run_until(Time::from_secs(1));
        let arrival = sim.node::<Sink>(sink).arrival.unwrap();
        assert!(arrival >= Time::from_millis(100), "{arrival}");
    }

    /// Counts messages in RAM, committing each to the WAL; a crash
    /// wipes the RAM counter and recovery must rebuild it from storage.
    struct DurableCounter {
        count: u32,
    }

    impl Node for DurableCounter {
        fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, bytes: &[u8]) {
            self.count += 1;
            ctx.storage().wal_commit(bytes.to_vec());
        }
        fn on_crashed_volatile_reset(&mut self) {
            self.count = 0;
        }
        fn on_restarted(&mut self, ctx: &mut Context<'_>) {
            self.count = ctx.storage().load().wal.len() as u32;
        }
    }

    #[test]
    fn crash_wipes_volatile_state_and_recovery_replays_storage() {
        let mut sim = Simulator::new(12);
        let n = sim.add_node(DurableCounter { count: 0 });
        let driver = sim.add_node(Silent2);
        for _ in 0..3 {
            sim.invoke(driver, |_: &mut Silent2, ctx| {
                ctx.send(n, "x", vec![1]);
            });
        }
        sim.run_for(Duration::from_millis(10));
        assert_eq!(sim.node::<DurableCounter>(n).count, 3);

        sim.crash(n);
        // The wipe happened at crash time, not restart time.
        assert_eq!(sim.node::<DurableCounter>(n).count, 0);
        assert!(sim.restart(n));
        sim.run_for(Duration::from_millis(10));
        assert_eq!(sim.node::<DurableCounter>(n).count, 3, "recovery lost the log");

        // An armed lost-tail fault makes the next commits vanish.
        sim.storage_mut(n).arm_lying_sync(false);
        sim.invoke(driver, |_: &mut Silent2, ctx| {
            ctx.send(n, "x", vec![2]);
        });
        sim.run_for(Duration::from_millis(10));
        assert_eq!(sim.node::<DurableCounter>(n).count, 4);
        sim.crash(n);
        assert_eq!(sim.stats().counter("storage-lost-tail"), 1);
        assert!(sim.restart(n));
        sim.run_for(Duration::from_millis(10));
        assert_eq!(sim.node::<DurableCounter>(n).count, 3, "lost tail came back");
    }

    struct Silent2;
    impl Node for Silent2 {
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
    }

    #[test]
    fn lossy_network_drops_some() {
        let mut sim = Simulator::new(11);
        let g = sim.create_group();
        struct Blaster {
            group: GroupId,
        }
        impl Node for Blaster {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.join_group(self.group);
                for _ in 0..100 {
                    ctx.multicast(self.group, "blast", vec![0; 8]);
                }
            }
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
        }
        let listener = sim.add_node(Listener { group: g, got: 0 });
        sim.add_node(Blaster { group: g });
        sim.set_loss_per_mille(500);
        sim.run_until(Time::from_secs(1));
        let got = sim.node::<Listener>(listener).got;
        assert!(got > 10 && got < 90, "got={got}");
    }
}

#[cfg(test)]
mod reliable_tests {
    use super::*;

    /// Sends one reliable message on start and records the outcome.
    struct RelSender {
        target: NodeId,
        token: Option<MsgToken>,
        acked: Vec<(NodeId, MsgToken)>,
        expired: Vec<(NodeId, &'static str, MsgToken)>,
    }

    impl RelSender {
        fn new(target: NodeId) -> Self {
            RelSender {
                target,
                token: None,
                acked: Vec::new(),
                expired: Vec::new(),
            }
        }
    }

    impl Node for RelSender {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.token = Some(ctx.send_reliable(self.target, "rel", b"payload".to_vec()));
        }
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
        fn on_reliable_acked(&mut self, _ctx: &mut Context<'_>, peer: NodeId, msg: MsgToken) {
            self.acked.push((peer, msg));
        }
        fn on_reliable_expired(
            &mut self,
            _ctx: &mut Context<'_>,
            to: NodeId,
            kind: &'static str,
            msg: MsgToken,
        ) {
            self.expired.push((to, kind, msg));
        }
    }

    struct Counter {
        got: u32,
    }

    impl Node for Counter {
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {
            self.got += 1;
        }
    }

    #[test]
    fn reliable_delivers_and_acks_on_clean_network() {
        let mut sim = Simulator::new(1);
        let sink = sim.add_node(Counter { got: 0 });
        let sender = sim.add_node(RelSender::new(sink));
        assert!(sim.run_until_quiet(10_000));
        assert_eq!(sim.node::<Counter>(sink).got, 1);
        let s = sim.node::<RelSender>(sender);
        assert_eq!(s.acked, vec![(sink, s.token.unwrap())]);
        assert!(s.expired.is_empty());
        assert_eq!(sim.stats().counter("reliable-acked"), 1);
        assert_eq!(sim.stats().counter("reliable-retransmits"), 0);
        assert_eq!(sim.stats().kind("rel").messages_sent, 1);
        assert_eq!(sim.stats().kind("reliable-ack").messages_sent, 1);
    }

    #[test]
    fn reliable_retransmits_through_loss_exactly_once_delivery() {
        // 60% loss: a plain send would stall often; the reliable layer
        // keeps retrying and the dedup window shields the receiver.
        let mut sim = Simulator::new(7);
        sim.set_reliable_policy(Duration::from_millis(10), 20);
        sim.enable_trace(10_000);
        let sink = sim.add_node(Counter { got: 0 });
        let sender = sim.add_node(RelSender::new(sink));
        sim.set_loss_per_mille(600);
        assert!(sim.run_until_quiet(100_000));
        assert_eq!(sim.node::<Counter>(sink).got, 1, "delivered exactly once");
        let s = sim.node::<RelSender>(sender);
        assert_eq!(s.acked.len(), 1);
        assert!(s.expired.is_empty());
        let retx = sim.stats().counter("reliable-retransmits");
        assert!(retx > 0, "loss should force at least one retransmission");
        // Every frame that reached the receiver beyond the first was
        // suppressed by the dedup window: exactly one node delivery.
        let node_deliveries = sim
            .trace_events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Delivered { kind: "rel", .. }))
            .count();
        assert_eq!(node_deliveries, 1);
    }

    #[test]
    fn reliable_expires_against_dead_peer() {
        let mut sim = Simulator::new(3);
        sim.set_reliable_policy(Duration::from_millis(10), 4);
        let sink = sim.add_node(Counter { got: 0 });
        let sender = sim.add_node(RelSender::new(sink));
        sim.crash(sink);
        assert!(sim.run_until_quiet(10_000));
        let s = sim.node::<RelSender>(sender);
        assert!(s.acked.is_empty());
        assert_eq!(s.expired, vec![(sink, "rel", s.token.unwrap())]);
        assert_eq!(sim.stats().counter("reliable-expired"), 1);
        // 4 attempts total: 1 initial + 3 retransmissions.
        assert_eq!(sim.stats().counter("reliable-retransmits"), 3);
        assert_eq!(sim.stats().kind("rel").messages_sent, 4);
    }

    #[test]
    fn cancel_reliable_stops_retries_and_callbacks() {
        struct Canceller {
            target: NodeId,
            outcomes: u32,
        }
        impl Node for Canceller {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let tok = ctx.send_reliable(self.target, "rel", vec![1]);
                ctx.cancel_reliable(tok);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
            fn on_reliable_acked(&mut self, _c: &mut Context<'_>, _p: NodeId, _m: MsgToken) {
                self.outcomes += 1;
            }
            fn on_reliable_expired(
                &mut self,
                _c: &mut Context<'_>,
                _t: NodeId,
                _k: &'static str,
                _m: MsgToken,
            ) {
                self.outcomes += 1;
            }
        }
        let mut sim = Simulator::new(4);
        let sink = sim.add_node(Counter { got: 0 });
        // Crash the sink so the (single, pre-cancel) transmission is
        // dropped and any surviving retry logic would be visible.
        sim.crash(sink);
        let sender = sim.add_node(Canceller {
            target: sink,
            outcomes: 0,
        });
        assert!(sim.run_until_quiet(10_000));
        assert_eq!(sim.node::<Canceller>(sender).outcomes, 0);
        assert_eq!(sim.stats().counter("reliable-retransmits"), 0);
        assert_eq!(sim.stats().counter("reliable-expired"), 0);
    }

    #[test]
    fn backoff_doubles_between_attempts() {
        let mut sim = Simulator::new(5);
        sim.set_reliable_policy(Duration::from_millis(10), 4);
        sim.enable_trace(100);
        let sink = sim.add_node(Counter { got: 0 });
        sim.add_node(RelSender::new(sink));
        sim.crash(sink);
        assert!(sim.run_until_quiet(10_000));
        let times: Vec<u64> = sim
            .trace_events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Retransmitted { at, attempt, .. } => {
                    Some((*attempt, at.as_micros()))
                }
                _ => None,
            })
            .map(|(_, t)| t)
            .collect();
        // Retransmissions at base, base+2*base, base+2*base+4*base.
        assert_eq!(times, vec![10_000, 30_000, 70_000]);
    }

    #[test]
    fn duplicate_is_reacked_but_not_redelivered() {
        // Cut the ack path (sink -> sender) for a while: the sender
        // keeps retransmitting, the sink sees duplicates, processes the
        // payload once, and acks every copy.
        let mut sim = Simulator::new(6);
        sim.set_reliable_policy(Duration::from_millis(10), 10);
        let sink = sim.add_node(Counter { got: 0 });
        let sender = sim.add_node(RelSender::new(sink));
        sim.cut_link(sink, sender);
        sim.run_for(Duration::from_millis(35)); // initial + 2 retransmits arrive
        sim.restore_link(sink, sender);
        assert!(sim.run_until_quiet(100_000));
        assert_eq!(sim.node::<Counter>(sink).got, 1);
        assert_eq!(sim.node::<RelSender>(sender).acked.len(), 1);
        assert!(sim.stats().counter("reliable-dup-dropped") >= 1);
        // Acks were attempted for the original and each duplicate.
        assert!(sim.stats().kind("reliable-ack").messages_sent >= 2);
    }

    #[test]
    fn dedup_window_is_bounded() {
        struct Flood {
            target: NodeId,
        }
        impl Node for Flood {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for i in 0..(DEDUP_WINDOW + 40) {
                    ctx.send_reliable(self.target, "flood", vec![i as u8]);
                }
            }
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
        }
        let mut sim = Simulator::new(8);
        let sink = sim.add_node(Counter { got: 0 });
        sim.add_node(Flood { target: sink });
        assert!(sim.run_until_quiet(100_000));
        assert_eq!(sim.node::<Counter>(sink).got, (DEDUP_WINDOW + 40) as u32);
        let windows: usize = sim.dedup.values().map(|w| w.order.len()).sum();
        assert!(windows <= DEDUP_WINDOW);
    }

    #[test]
    fn crash_cancels_the_crashed_senders_pending_reliables() {
        // A dead sink keeps the send pending; crashing the *sender*
        // must then drop it outright — no retransmits keep burning
        // bandwidth for a ghost, and no expiry callback fires into the
        // crashed (or later restarted) node.
        let mut sim = Simulator::new(31);
        sim.set_reliable_policy(Duration::from_millis(10), 50);
        let sink = sim.add_node(Counter { got: 0 });
        sim.crash(sink);
        let sender = sim.add_node(RelSender::new(sink));
        sim.run_for(Duration::from_millis(25));
        let retx_at_crash = sim.stats().counter("reliable-retransmits");
        assert!(retx_at_crash >= 1, "send was not pending yet");

        sim.crash(sender);
        assert_eq!(sim.stats().counter("reliable-cancelled"), 1);
        sim.run_for(Duration::from_secs(2));
        assert_eq!(sim.stats().counter("reliable-retransmits"), retx_at_crash);
        assert_eq!(sim.stats().counter("reliable-expired"), 0);
        let s = sim.node::<RelSender>(sender);
        assert!(s.acked.is_empty());
        assert!(s.expired.is_empty(), "expiry fired on a crashed sender");
    }

    #[test]
    fn cancel_reliable_to_cancels_only_that_peers_sends() {
        /// Sends one reliable to each of two dead peers, then drops the
        /// first peer (as an evicting controller would) at t=5ms.
        struct TwoPeers {
            first: NodeId,
            second: NodeId,
            expired: Vec<NodeId>,
        }
        impl Node for TwoPeers {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send_reliable(self.first, "rel-a", vec![1]);
                ctx.send_reliable(self.first, "rel-b", vec![2]);
                ctx.send_reliable(self.second, "rel-c", vec![3]);
                ctx.set_timer(Duration::from_millis(5), 0);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
            fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
                ctx.cancel_reliable_to(self.first);
            }
            fn on_reliable_expired(
                &mut self,
                _ctx: &mut Context<'_>,
                to: NodeId,
                _kind: &'static str,
                _msg: MsgToken,
            ) {
                self.expired.push(to);
            }
        }
        let mut sim = Simulator::new(32);
        sim.set_reliable_policy(Duration::from_millis(10), 3);
        let first = sim.add_node(Counter { got: 0 });
        let second = sim.add_node(Counter { got: 0 });
        sim.crash(first);
        sim.crash(second);
        let sender = sim.add_node(TwoPeers {
            first,
            second,
            expired: Vec::new(),
        });
        assert!(sim.run_until_quiet(1_000_000));
        // Both sends to `first` were cancelled silently; the one to
        // `second` ran its course and expired.
        assert_eq!(sim.stats().counter("reliable-cancelled"), 2);
        assert_eq!(sim.stats().counter("reliable-expired"), 1);
        assert_eq!(sim.node::<TwoPeers>(sender).expired, vec![second]);
    }

    #[test]
    fn crash_cancels_armed_timers_across_restart() {
        /// Arms one long timer on first start; deliberately does *not*
        /// re-arm in `on_restarted`, so any fire after the
        /// crash/restart cycle is a leak of the pre-crash timer.
        struct OneShot {
            fires: u32,
            restarts: u32,
        }
        impl Node for OneShot {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Duration::from_millis(50), 7);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_>, _tag: u64) {
                self.fires += 1;
            }
            fn on_restarted(&mut self, _ctx: &mut Context<'_>) {
                self.restarts += 1;
            }
        }
        let mut sim = Simulator::new(33);
        let node = sim.add_node(OneShot { fires: 0, restarts: 0 });
        sim.run_for(Duration::from_millis(10));
        sim.crash(node);
        sim.run_for(Duration::from_millis(10));
        assert!(sim.restart(node));
        sim.run_for(Duration::from_millis(200));
        let n = sim.node::<OneShot>(node);
        assert_eq!(n.restarts, 1);
        assert_eq!(n.fires, 0, "a timer armed before the crash leaked through restart");
    }

    /// Satellite fix (ISSUE 7): the pre-wheel scheduler tracked cancels
    /// in a `cancelled` tombstone set that only shrank when the doomed
    /// event *fired* — timers dropped by a crash leaked their tokens
    /// forever. The wheel cancels in place; after any mix of explicit
    /// cancels, crashes, and fires the armed-timer bookkeeping must
    /// exactly mirror the queue with no residue.
    #[test]
    fn cancelled_and_crashed_timers_leave_no_residue() {
        struct Armer {
            tokens: Vec<crate::context::TimerToken>,
        }
        impl Node for Armer {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                // Eight long-lived timers; two cancelled immediately.
                self.tokens = (0..8)
                    .map(|tag| {
                        // Tag 0 slightly earlier so it fires first and
                        // can cancel a sibling from inside a handler.
                        let delay = Duration::from_secs(if tag == 0 { 59 } else { 60 });
                        ctx.set_timer(delay, tag)
                    })
                    .collect();
                ctx.cancel_timer(self.tokens[1]);
                ctx.cancel_timer(self.tokens[2]);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
            fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
                if tag == 0 {
                    ctx.cancel_timer(self.tokens[3]);
                }
            }
        }
        let mut sim = Simulator::new(34);
        let a = sim.add_node(Armer { tokens: Vec::new() });
        let b = sim.add_node(Armer { tokens: Vec::new() });
        sim.run_for(Duration::from_millis(1));
        assert!(sim.timer_accounting_consistent());
        // Crash one armer with all eight timers pending.
        sim.crash(a);
        assert!(sim.timer_accounting_consistent());
        assert!(
            !sim.armed_timers.contains_key(&a),
            "crashed node left armed-timer entries behind"
        );
        // Let the surviving armer's timers fire (tag 0 cancels tag 3).
        sim.run_for(Duration::from_secs(120));
        assert!(sim.timer_accounting_consistent());
        assert!(
            sim.armed_timers.get(&b).is_none_or(|m| m.is_empty()),
            "fired timers left armed-timer entries behind"
        );
        assert_eq!(sim.queue.pending_timers(), 0, "timer events leaked in the queue");
    }

    /// Satellite fix (ISSUE 7): dedup windows for pairs that stopped
    /// talking are evicted after the idle horizon, and the stats
    /// surface both the eviction count and the live-window gauge.
    #[test]
    fn idle_dedup_windows_are_evicted() {
        struct Pinger {
            target: NodeId,
            rounds: u32,
        }
        impl Node for Pinger {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send_reliable(self.target, "ping", vec![0]);
                ctx.set_timer(Duration::from_secs(1), 0);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
            fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
                if self.rounds > 0 {
                    self.rounds -= 1;
                    ctx.send_reliable(self.target, "ping", vec![0]);
                    ctx.set_timer(Duration::from_secs(1), 0);
                }
            }
        }
        let mut sim = Simulator::new(35);
        sim.set_dedup_idle_horizon(Duration::from_secs(5));
        let sink_a = sim.add_node(Counter { got: 0 });
        let sink_b = sim.add_node(Counter { got: 0 });
        // One burst to sink_a, then silence towards it; steady pings to
        // sink_b keep the simulation (and the sweep) running.
        sim.add_node(Pinger { target: sink_a, rounds: 0 });
        sim.add_node(Pinger { target: sink_b, rounds: 30 });
        assert!(sim.run_until_quiet(1_000_000));
        // The (sink_a, pinger) window went idle > 5s before the last
        // sweep and must be gone; the (sink_b, pinger) window survives.
        assert_eq!(sim.dedup_windows(), 1);
        assert!(sim.stats().counter("dedup-evicted") >= 1);
        assert_eq!(sim.stats().counter("dedup-windows"), 1);
        // Both sinks still saw every payload exactly once.
        assert_eq!(sim.node::<Counter>(sink_a).got, 1);
        assert_eq!(sim.node::<Counter>(sink_b).got, 31);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::trace::DropReason;

    struct Silent;
    impl Node for Silent {
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
    }

    struct Chirper {
        target: NodeId,
    }
    impl Node for Chirper {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send(self.target, "chirp", vec![1, 2, 3]);
            ctx.set_timer(Duration::from_millis(1), 42);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
        fn on_timer(&mut self, _ctx: &mut Context<'_>, _tag: u64) {}
    }

    #[test]
    fn trace_records_delivery_and_timer() {
        let mut sim = Simulator::new(1);
        sim.enable_trace(100);
        let sink = sim.add_node(Silent);
        sim.add_node(Chirper { target: sink });
        sim.run_until(Time::from_millis(10));
        let events = sim.trace_events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Delivered { kind: "chirp", len: 3, .. }
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::TimerFired { tag: 42, .. })));
        assert!(sim.trace_recorded() >= 2);
    }

    #[test]
    fn trace_records_drop_reasons() {
        let mut sim = Simulator::new(2);
        sim.enable_trace(100);
        let sink = sim.add_node(Silent);
        let chirper = sim.add_node(Chirper { target: sink });
        sim.partition(sink, 7);
        sim.run_until(Time::from_millis(10));
        assert!(sim.trace_events().iter().any(|e| matches!(
            e,
            TraceEvent::Dropped { reason: DropReason::Partitioned, .. }
        )));
        // A crashed receiver at delivery time is recorded too.
        sim.heal_partitions();
        sim.invoke(chirper, |c: &mut Chirper, ctx| {
            let t = c.target;
            ctx.send(t, "chirp", vec![9]);
        });
        sim.crash(sink);
        sim.run_until(Time::from_millis(20));
        assert!(sim.trace_events().iter().any(|e| matches!(
            e,
            TraceEvent::Dropped { reason: DropReason::Crashed, .. }
        )));
    }

    #[test]
    fn tracing_off_costs_nothing_visible() {
        let mut sim = Simulator::new(3);
        let sink = sim.add_node(Silent);
        sim.add_node(Chirper { target: sink });
        sim.run_until(Time::from_millis(10));
        assert!(sim.trace_events().is_empty());
        assert_eq!(sim.trace_recorded(), 0);
    }
}
