//! The event queue: a hierarchical timer wheel with a FIFO tiebreaker
//! so simultaneous events preserve insertion order (this is what makes
//! runs deterministic).
//!
//! The previous implementation was a global `BinaryHeap`, which is
//! fine for tens of nodes but is `O(log n)` per operation with no
//! cancellation support (cancelled timers stayed in the heap as
//! tombstones that the simulator filtered at dispatch). At
//! million-member scale the heap and the tombstone set both became
//! hot. This wheel gives:
//!
//! - **O(1) schedule**: an event lands in one of 11 levels × 64
//!   buckets chosen from the highest bit where its deadline differs
//!   from the wheel's current time (`64^11 = 2^66` covers every `u64`
//!   microsecond timestamp, so there is no overflow list).
//! - **O(1) cancel**: [`EventQueue::push`] returns an [`EventHandle`]
//!   naming the arena slot; cancelling unlinks the slot from its
//!   bucket's doubly-linked list. No tombstone set.
//! - **Arena slots with a free list**: event storage is reused, so a
//!   steady-state simulation stops allocating.
//!
//! Ordering contract (identical to the old heap, property-tested
//! below): events pop in ascending `(at, seq)` order, where `seq` is
//! the global insertion counter. Buckets are *not* kept sorted;
//! instead, when the wheel commits to a pop time it drains the whole
//! level-0 bucket for that exact timestamp into a ready list and sorts
//! it by `seq` once — cheaper than sorted insertion under flash-crowd
//! loads where thousands of events share a timestamp.

use crate::id::NodeId;
use crate::time::Time;
use std::collections::VecDeque;

/// How a delivery travels: plain fire-and-forget, a reliable frame that
/// must be acknowledged and deduplicated, or the acknowledgement itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Transport {
    Plain,
    Reliable { msg_id: u64 },
    Ack { msg_id: u64 },
}

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// Deliver message bytes from `from` to the destination node.
    Deliver {
        from: NodeId,
        bytes: Vec<u8>,
        kind: &'static str,
        transport: Transport,
    },
    /// Fire a timer with the given tag.
    Timer { tag: u64, token: u64 },
    /// Retry a reliable send (`dst` is the original sender); a no-op if
    /// the message was acknowledged or cancelled in the meantime.
    Retransmit { msg_id: u64 },
    /// Invoke `on_start` for a node added while the simulation runs.
    Start,
    /// Invoke `on_restarted` for a node that recovered from a crash
    /// (skipped if the node crashed again before the event fires).
    Restarted,
}

#[derive(Debug)]
pub(crate) struct Event {
    pub at: Time,
    /// Global FIFO tiebreak; the pop order it induces is asserted by
    /// the heap-equivalence tests but not consumed by the dispatcher.
    #[cfg_attr(not(test), allow(dead_code))]
    pub seq: u64,
    pub dst: NodeId,
    pub kind: EventKind,
}

/// Names a scheduled event for O(1) cancellation. The generation
/// counter guards against stale handles: cancelling after the slot was
/// freed and reused is a detected no-op, not a corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EventHandle {
    index: u32,
    gen: u32,
}

const LEVELS: usize = 11;
const SLOT_BITS: u32 = 6;
const SLOTS_PER_LEVEL: u64 = 64;
const NIL: u32 = u32::MAX;

/// `Slot::bucket` codes: `level * 64 + index` for linked slots, or one
/// of these sentinels.
const BUCKET_FREE: u16 = u16::MAX;
const BUCKET_READY: u16 = u16::MAX - 1;
/// Cancelled while on the ready list; reclaimed when the ready cursor
/// passes it (the ready list stores raw indices, so the slot cannot be
/// reused until then).
const BUCKET_TOMB: u16 = u16::MAX - 2;

#[derive(Debug)]
struct Slot {
    at: u64,
    seq: u64,
    dst: NodeId,
    kind: Option<EventKind>,
    prev: u32,
    next: u32,
    bucket: u16,
    gen: u32,
}

/// Deterministic priority queue of simulation events (see module docs).
#[derive(Debug)]
pub(crate) struct EventQueue {
    slots: Vec<Slot>,
    free_head: u32,
    heads: [[u32; 64]; LEVELS],
    tails: [[u32; 64]; LEVELS],
    /// Per-level bucket-occupancy bitmap (bit b = bucket b non-empty).
    occ: [u64; LEVELS],
    /// Cached earliest deadline per bucket (valid unless the matching
    /// `stale` bit is set; rescanned lazily on demand).
    bucket_min: [[u64; 64]; LEVELS],
    stale: [u64; LEVELS],
    /// Slots for the single timestamp the wheel has committed to pop,
    /// already sorted by `seq`.
    ready: VecDeque<u32>,
    /// The wheel's committed time: the last popped timestamp. All live
    /// events satisfy `at >= now`; buckets are keyed relative to it.
    now: u64,
    len: usize,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free_head: NIL,
            heads: [[NIL; 64]; LEVELS],
            tails: [[NIL; 64]; LEVELS],
            occ: [0; LEVELS],
            bucket_min: [[0; 64]; LEVELS],
            stale: [0; LEVELS],
            ready: VecDeque::new(),
            now: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedules an event; the returned handle cancels it in O(1).
    pub fn push(&mut self, at: Time, dst: NodeId, kind: EventKind) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        // The simulator never schedules into the past (its clock equals
        // the last popped timestamp); clamping keeps the wheel's bucket
        // invariants intact even if a harness misbehaves in release.
        debug_assert!(at.as_micros() >= self.now, "scheduled into the past");
        let at = at.as_micros().max(self.now);
        let index = self.alloc(at, seq, dst, kind);
        self.len += 1;
        let gen = self.slots[index as usize].gen;
        self.link(index);
        EventHandle { index, gen }
    }

    /// Cancels a scheduled event. Returns `false` when the handle is
    /// stale (already fired, freed, or cancelled).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let Some(slot) = self.slots.get_mut(handle.index as usize) else {
            return false;
        };
        if slot.gen != handle.gen {
            return false;
        }
        match slot.bucket {
            BUCKET_FREE | BUCKET_TOMB => false,
            BUCKET_READY => {
                // On the ready list: the index is queued, so keep the
                // slot allocated but mark it dead; the pop path frees
                // it when the cursor reaches it.
                slot.kind = None;
                slot.bucket = BUCKET_TOMB;
                self.len -= 1;
                true
            }
            _ => {
                self.unlink(handle.index);
                self.free(handle.index);
                self.len -= 1;
                true
            }
        }
    }

    /// Removes and returns the earliest event (ties broken by `seq`).
    pub fn pop(&mut self) -> Option<Event> {
        let t = self.earliest_micros()?;
        if self.ready.is_empty() {
            self.advance_to(t);
            self.drain_level0_bucket(t);
        }
        let index = self.ready.pop_front()?;
        let slot = &mut self.slots[index as usize];
        debug_assert_eq!(slot.bucket, BUCKET_READY);
        let at = Time::from_micros(slot.at);
        let seq = slot.seq;
        let dst = slot.dst;
        let kind = slot.kind.take();
        self.free(index);
        self.len -= 1;
        kind.map(|kind| Event { at, seq, dst, kind })
    }

    /// Earliest pending deadline without removing the event.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.earliest_micros().map(Time::from_micros)
    }

    /// Live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pending timer events still in the queue (scheduled or drained to
    /// the ready list but not yet popped). Cancelled and fired slots
    /// have their kind taken, so a live kind is exactly "will fire".
    /// O(arena) — used by the simulator's accounting consistency check,
    /// not by the hot path.
    pub fn pending_timers(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.kind, Some(EventKind::Timer { .. })))
            .count()
    }

    // ---- arena ----

    fn alloc(&mut self, at: u64, seq: u64, dst: NodeId, kind: EventKind) -> u32 {
        if self.free_head != NIL {
            let index = self.free_head;
            let slot = &mut self.slots[index as usize];
            self.free_head = slot.next;
            slot.at = at;
            slot.seq = seq;
            slot.dst = dst;
            slot.kind = Some(kind);
            slot.prev = NIL;
            slot.next = NIL;
            index
        } else {
            let index = self.slots.len() as u32;
            assert!(index != NIL, "event arena exhausted");
            self.slots.push(Slot {
                at,
                seq,
                dst,
                kind: Some(kind),
                prev: NIL,
                next: NIL,
                bucket: BUCKET_FREE,
                gen: 0,
            });
            index
        }
    }

    fn free(&mut self, index: u32) {
        let slot = &mut self.slots[index as usize];
        slot.kind = None;
        slot.bucket = BUCKET_FREE;
        slot.gen = slot.gen.wrapping_add(1);
        slot.prev = NIL;
        slot.next = self.free_head;
        self.free_head = index;
    }

    // ---- bucket selection ----

    /// Chooses `(level, bucket)` for a deadline relative to `self.now`.
    /// The level is the highest 6-bit digit where `at` and `now`
    /// differ: this guarantees the bucket is strictly ahead of the
    /// cursor at its level, and the mapping stays valid as `now`
    /// advances (the shared high digits cannot change before the
    /// bucket's window is reached).
    fn place(&self, at: u64) -> (usize, usize) {
        let x = at ^ self.now;
        if x < SLOTS_PER_LEVEL {
            (0, (at & 63) as usize)
        } else {
            let level = ((63 - x.leading_zeros()) / SLOT_BITS) as usize;
            let bucket = ((at >> (SLOT_BITS as usize * level)) & 63) as usize;
            (level, bucket)
        }
    }

    fn link(&mut self, index: u32) {
        let at = self.slots[index as usize].at;
        let (level, b) = self.place(at);
        let tail = self.tails[level][b];
        {
            let slot = &mut self.slots[index as usize];
            slot.bucket = (level * 64 + b) as u16;
            slot.prev = tail;
            slot.next = NIL;
        }
        if tail == NIL {
            self.heads[level][b] = index;
            self.occ[level] |= 1 << b;
            self.bucket_min[level][b] = at;
            self.stale[level] &= !(1 << b);
        } else {
            self.slots[tail as usize].next = index;
            if at < self.bucket_min[level][b] {
                self.bucket_min[level][b] = at;
            }
        }
        self.tails[level][b] = index;
    }

    fn unlink(&mut self, index: u32) {
        let (at, prev, next, bucket) = {
            let slot = &self.slots[index as usize];
            (slot.at, slot.prev, slot.next, slot.bucket as usize)
        };
        let (level, b) = (bucket / 64, bucket % 64);
        if prev == NIL {
            self.heads[level][b] = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tails[level][b] = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        if self.heads[level][b] == NIL {
            self.occ[level] &= !(1 << b);
            self.stale[level] &= !(1 << b);
        } else if at == self.bucket_min[level][b] {
            // The cached minimum may have left; rescan lazily.
            self.stale[level] |= 1 << b;
        }
    }

    /// The earliest deadline in `bucket`, rescanned if the cache is
    /// stale.
    fn bucket_earliest(&mut self, level: usize, b: usize) -> u64 {
        if self.stale[level] & (1 << b) != 0 {
            let mut min = u64::MAX;
            let mut cur = self.heads[level][b];
            while cur != NIL {
                let slot = &self.slots[cur as usize];
                min = min.min(slot.at);
                cur = slot.next;
            }
            self.bucket_min[level][b] = min;
            self.stale[level] &= !(1 << b);
        }
        self.bucket_min[level][b]
    }

    /// Exact earliest pending deadline in microseconds. Mutates only
    /// lazily-maintained caches (and reclaims cancelled ready slots),
    /// never the wheel cursor — so it is safe to call without popping.
    fn earliest_micros(&mut self) -> Option<u64> {
        while let Some(&index) = self.ready.front() {
            if self.slots[index as usize].bucket == BUCKET_TOMB {
                self.ready.pop_front();
                self.free(index);
            } else {
                return Some(self.slots[index as usize].at);
            }
        }
        if self.len == 0 {
            return None;
        }
        // `u64::MAX` is a legal deadline (saturating arithmetic in
        // callers produces it), so "no candidate yet" must be Option,
        // not a sentinel value.
        let mut best: Option<u64> = None;
        // Level 0 buckets hold exactly one timestamp of the current
        // 64-microsecond block, so the first occupied bucket at or
        // after the cursor *is* a candidate time.
        let c0 = (self.now & 63) as u32;
        let rem0 = self.occ[0] >> c0;
        if rem0 != 0 {
            best = Some(self.now + u64::from(rem0.trailing_zeros()));
        }
        // Higher levels: the earliest occupied bucket bounds the level
        // (later buckets cover strictly later windows); ask it for its
        // exact minimum.
        for level in 1..LEVELS {
            if self.occ[level] == 0 {
                continue;
            }
            let ck = ((self.now >> (SLOT_BITS as usize * level)) & 63) as u32;
            let rem = self.occ[level] >> ck;
            // The cursor's own bucket is always cascaded before the
            // cursor enters its window, and events never land behind
            // the cursor, so the low bits must be clear.
            debug_assert!(rem != 0 && rem & 1 == 0, "occupied bucket behind the cursor");
            if rem == 0 {
                continue;
            }
            let b = (ck + rem.trailing_zeros()) as usize;
            let candidate = self.bucket_earliest(level, b);
            best = Some(best.map_or(candidate, |x| x.min(candidate)));
        }
        debug_assert!(best.is_some(), "pending events but no occupied bucket");
        best
    }

    /// Commits the wheel cursor to `t` (the exact global minimum) and
    /// cascades every bucket whose window now contains the cursor:
    /// their events re-place at strictly lower levels.
    fn advance_to(&mut self, t: u64) {
        if t == self.now {
            return;
        }
        self.now = t;
        let mut drain: Vec<u32> = Vec::new();
        for level in (1..LEVELS).rev() {
            let ck = ((t >> (SLOT_BITS as usize * level)) & 63) as usize;
            if self.occ[level] & (1 << ck) == 0 {
                continue;
            }
            let mut cur = self.heads[level][ck];
            while cur != NIL {
                drain.push(cur);
                cur = self.slots[cur as usize].next;
            }
            self.heads[level][ck] = NIL;
            self.tails[level][ck] = NIL;
            self.occ[level] &= !(1 << ck);
            self.stale[level] &= !(1 << ck);
            for index in drain.drain(..) {
                self.link(index);
            }
        }
    }

    /// Drains the level-0 bucket for timestamp `t` (== `self.now`) into
    /// the ready list, sorted by insertion order.
    fn drain_level0_bucket(&mut self, t: u64) {
        debug_assert_eq!(t, self.now);
        let b = (t & 63) as usize;
        let mut batch: Vec<(u64, u32)> = Vec::new();
        let mut cur = self.heads[0][b];
        while cur != NIL {
            let slot = &self.slots[cur as usize];
            debug_assert_eq!(slot.at, t, "level-0 bucket mixed timestamps");
            batch.push((slot.seq, cur));
            cur = slot.next;
        }
        self.heads[0][b] = NIL;
        self.tails[0][b] = NIL;
        self.occ[0] &= !(1 << b);
        self.stale[0] &= !(1 << b);
        // Cascades append in bucket order, not arrival order; one sort
        // per drained timestamp restores global FIFO.
        batch.sort_unstable_by_key(|&(seq, _)| seq);
        for (_, index) in batch {
            self.slots[index as usize].bucket = BUCKET_READY;
            self.ready.push_back(index);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(q: &mut EventQueue, at_us: u64, tag: u64) -> EventHandle {
        q.push(
            Time::from_micros(at_us),
            NodeId::from_index(0),
            EventKind::Timer { tag, token: 0 },
        )
    }

    fn pop_tag(q: &mut EventQueue) -> u64 {
        match q.pop().unwrap().kind {
            EventKind::Timer { tag, .. } => tag,
            _ => panic!("expected timer"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        ev(&mut q, 30, 3);
        ev(&mut q, 10, 1);
        ev(&mut q, 20, 2);
        assert_eq!(pop_tag(&mut q), 1);
        assert_eq!(pop_tag(&mut q), 2);
        assert_eq!(pop_tag(&mut q), 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for tag in 0..50 {
            ev(&mut q, 100, tag);
        }
        for tag in 0..50 {
            assert_eq!(pop_tag(&mut q), tag);
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        ev(&mut q, 42, 0);
        ev(&mut q, 7, 1);
        assert_eq!(q.peek_time(), Some(Time::from_micros(7)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn spans_every_wheel_level() {
        // Deadlines from microseconds to beyond 2^60 µs exercise every
        // level, including the partial top level.
        let mut q = EventQueue::new();
        let times = [
            1u64,
            63,
            64,
            4_095,
            4_096,
            262_143,
            262_144,
            1 << 30,
            (1 << 36) + 17,
            (1 << 48) + 5,
            (1 << 60) + 1,
            u64::MAX - 1,
        ];
        for (tag, &t) in times.iter().enumerate() {
            ev(&mut q, t, tag as u64);
        }
        let mut last = 0;
        for _ in 0..times.len() {
            let e = q.pop().unwrap();
            assert!(e.at.as_micros() >= last);
            last = e.at.as_micros();
        }
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = ev(&mut q, 10, 1);
        ev(&mut q, 20, 2);
        let h3 = ev(&mut q, 30, 3);
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel must be a no-op");
        assert!(q.cancel(h3));
        assert_eq!(q.len(), 1);
        assert_eq!(pop_tag(&mut q), 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn stale_handle_after_fire_is_rejected() {
        let mut q = EventQueue::new();
        let h = ev(&mut q, 10, 1);
        assert_eq!(pop_tag(&mut q), 1);
        assert!(!q.cancel(h), "handle outlived its event");
        // Slot reuse bumps the generation, so the old handle still
        // cannot cancel the new occupant.
        let h2 = ev(&mut q, 20, 2);
        assert!(!q.cancel(h));
        assert!(q.cancel(h2));
    }

    #[test]
    fn cancel_while_on_ready_list() {
        let mut q = EventQueue::new();
        let ha = ev(&mut q, 10, 1);
        let hb = ev(&mut q, 10, 2);
        let hc = ev(&mut q, 10, 3);
        // Committing to t=10 drains the bucket into the ready list.
        assert_eq!(q.peek_time(), Some(Time::from_micros(10)));
        assert_eq!(pop_tag(&mut q), 1);
        assert!(!q.cancel(ha), "already popped");
        assert!(q.cancel(hb), "cancellable while ready");
        assert_eq!(pop_tag(&mut q), 3);
        assert!(!q.cancel(hc));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_push_at_current_time_pops_after_ready() {
        let mut q = EventQueue::new();
        ev(&mut q, 100, 0);
        ev(&mut q, 100, 1);
        assert_eq!(pop_tag(&mut q), 0);
        // A push at the in-flight timestamp has a higher seq than
        // everything on the ready list, so FIFO holds.
        ev(&mut q, 100, 2);
        assert_eq!(pop_tag(&mut q), 1);
        assert_eq!(pop_tag(&mut q), 2);
    }

    #[test]
    fn arena_reuses_freed_slots() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..32 {
                ev(&mut q, round * 1000 + i, i);
            }
            for _ in 0..32 {
                q.pop().unwrap();
            }
        }
        // 32 live slots at a time: the arena must not have grown past
        // one generation of slots (plus ready-list slack).
        assert!(q.slots.len() <= 64, "arena grew to {}", q.slots.len());
    }

    /// Reference model: the old binary-heap ordering, exactly.
    #[derive(Default)]
    struct RefQueue {
        events: Vec<(u64, u64, u64)>, // (at, seq, tag)
        next_seq: u64,
    }

    impl RefQueue {
        fn push(&mut self, at: u64, tag: u64) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.events.push((at, seq, tag));
            seq
        }
        fn cancel(&mut self, seq: u64) -> bool {
            let before = self.events.len();
            self.events.retain(|&(_, s, _)| s != seq);
            self.events.len() != before
        }
        fn pop(&mut self) -> Option<(u64, u64, u64)> {
            let best = self
                .events
                .iter()
                .enumerate()
                .min_by_key(|(_, &(at, seq, _))| (at, seq))?
                .0;
            Some(self.events.swap_remove(best))
        }
    }

    /// Drives the wheel and the reference model through an identical
    /// schedule/cancel/pop workload and asserts identical pop order.
    pub(crate) fn check_equivalence(ops: &[(u8, u64, u64)]) {
        let mut wheel = EventQueue::new();
        let mut reference = RefQueue::default();
        let mut handles: Vec<(u64, EventHandle)> = Vec::new();
        let mut now = 0u64;
        let mut tag = 0u64;
        for &(op, a, b) in ops {
            match op {
                // Push at now + delay.
                0 => {
                    let at = now.saturating_add(a);
                    let h = wheel.push(
                        Time::from_micros(at),
                        NodeId::from_index(0),
                        EventKind::Timer { tag, token: 0 },
                    );
                    let seq = reference.push(at, tag);
                    handles.push((seq, h));
                    tag += 1;
                }
                // Cancel the b-th outstanding handle (if any).
                1 => {
                    if !handles.is_empty() {
                        let i = (b as usize) % handles.len();
                        let (seq, h) = handles.swap_remove(i);
                        assert_eq!(wheel.cancel(h), reference.cancel(seq));
                    }
                }
                // Pop once and compare.
                _ => {
                    let got = wheel.pop();
                    let want = reference.pop();
                    match (got, want) {
                        (None, None) => {}
                        (Some(e), Some((at, seq, wtag))) => {
                            assert_eq!(e.at.as_micros(), at);
                            assert_eq!(e.seq, seq);
                            match e.kind {
                                EventKind::Timer { tag: t, .. } => assert_eq!(t, wtag),
                                _ => panic!("expected timer"),
                            }
                            handles.retain(|&(s, _)| s != seq);
                            now = at;
                        }
                        (g, w) => panic!("wheel {g:?} vs reference {w:?}"),
                    }
                    assert_eq!(wheel.len(), reference.events.len());
                }
            }
        }
        // Drain both completely.
        while let Some((at, seq, _)) = reference.pop() {
            let e = wheel.pop().expect("wheel drained early");
            assert_eq!((e.at.as_micros(), e.seq), (at, seq));
        }
        assert!(wheel.pop().is_none());
    }

    /// Regression: `u64::MAX` is a legal deadline (callers use
    /// saturating arithmetic), so the earliest-scan must not treat it
    /// as a "nothing found" sentinel.
    #[test]
    fn saturated_deadline_is_schedulable() {
        check_equivalence(&[
            (0, 8_889_169_010_698_090_458, 0),
            (2, 0, 0),
            (0, 4_101_513_096_249_721_465, 0),
            (2, 0, 0),
            (0, u64::MAX, 0),
            (2, 0, 0),
        ]);
    }

    #[test]
    fn equivalence_same_time_burst() {
        let mut ops = Vec::new();
        for _ in 0..500 {
            ops.push((0u8, 5u64, 0u64));
        }
        for _ in 0..500 {
            ops.push((2, 0, 0));
        }
        check_equivalence(&ops);
    }

    #[test]
    fn equivalence_mixed_horizon_with_cancels() {
        // Deterministic pseudo-random workload across all levels.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ops = Vec::new();
        for _ in 0..4000 {
            let r = next();
            let op = (r % 10) as u8;
            match op {
                0..=4 => {
                    // Delay spread over many magnitudes.
                    let delay = next() >> (next() % 48);
                    ops.push((0u8, delay, 0));
                }
                5 | 6 => ops.push((1, 0, next())),
                _ => ops.push((2, 0, 0)),
            }
        }
        check_equivalence(&ops);
    }
}

#[cfg(test)]
mod wheel_proptests {
    use super::tests::check_equivalence;
    use proptest::prelude::*;

    proptest! {
        /// Satellite 4 (ISSUE 7): the wheel must pop the exact same
        /// (time, seq, dst, kind) order as the old `BinaryHeap` queue
        /// on randomized schedule/cancel workloads.
        #[test]
        fn wheel_matches_heap_order(
            ops in proptest::collection::vec(
                (0u8..3, 0u64..u64::MAX, any::<u64>()), 1..400),
            shift in 0u32..60,
        ) {
            let shifted: Vec<(u8, u64, u64)> = ops
                .iter()
                .map(|&(op, a, b)| (op, a >> shift, b))
                .collect();
            check_equivalence(&shifted);
        }
    }
}

#[cfg(test)]
impl EventQueue {
    /// Test-only: number of arena slots ever allocated.
    #[allow(dead_code)]
    pub(crate) fn arena_size(&self) -> usize {
        self.slots.len()
    }
}
