//! Random [`BigUint`] generation from any [`rand::RngCore`].

use super::BigUint;
use rand::RngCore;

impl BigUint {
    /// Uniform random value with exactly `bits` significant bits
    /// (the top bit is always set, so the result has bit length `bits`).
    ///
    /// Returns zero when `bits == 0`.
    pub fn random_bits<R: RngCore + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
        if bits == 0 {
            return BigUint::zero();
        }
        let limbs = bits.div_ceil(32);
        let mut v = vec![0u32; limbs];
        for limb in v.iter_mut() {
            *limb = rng.next_u32();
        }
        // Mask off excess bits, then force the top bit.
        let top_bits = bits - (limbs - 1) * 32;
        if top_bits < 32 {
            v[limbs - 1] &= (1u32 << top_bits) - 1;
        }
        v[limbs - 1] |= 1 << (top_bits - 1);
        BigUint::from_limbs(v)
    }

    /// Uniform random value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn random_below<R: RngCore + ?Sized>(bound: &BigUint, rng: &mut R) -> BigUint {
        assert!(!bound.is_zero(), "random_below requires a nonzero bound");
        let bits = bound.bit_len();
        let limbs = bits.div_ceil(32);
        let top_bits = bits - (limbs - 1) * 32;
        let mask = if top_bits < 32 {
            (1u32 << top_bits) - 1
        } else {
            u32::MAX
        };
        loop {
            let mut v = vec![0u32; limbs];
            for limb in v.iter_mut() {
                *limb = rng.next_u32();
            }
            v[limbs - 1] &= mask;
            let candidate = BigUint::from_limbs(v);
            if candidate < *bound {
                return candidate;
            }
        }
    }

    /// Uniform random value in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics when `low >= high`.
    pub fn random_range<R: RngCore + ?Sized>(
        low: &BigUint,
        high: &BigUint,
        rng: &mut R,
    ) -> BigUint {
        assert!(low < high, "random_range requires low < high");
        let span = high - low;
        low + &BigUint::random_below(&span, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::Drbg;

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = Drbg::from_seed(1);
        for bits in [1usize, 2, 31, 32, 33, 64, 127, 512] {
            let n = BigUint::random_bits(bits, &mut rng);
            assert_eq!(n.bit_len(), bits, "bits={bits}");
        }
        assert!(BigUint::random_bits(0, &mut rng).is_zero());
    }

    #[test]
    fn random_below_stays_in_range() {
        let mut rng = Drbg::from_seed(2);
        let bound = BigUint::from(1_000_u64);
        for _ in 0..200 {
            let v = BigUint::random_below(&bound, &mut rng);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_below_covers_small_domain() {
        let mut rng = Drbg::from_seed(3);
        let bound = BigUint::from(4_u64);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = BigUint::random_below(&bound, &mut rng).to_u64().unwrap();
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn random_range_bounds() {
        let mut rng = Drbg::from_seed(4);
        let low = BigUint::from(10_u64);
        let high = BigUint::from(20_u64);
        for _ in 0..100 {
            let v = BigUint::random_range(&low, &high, &mut rng);
            assert!(v >= low && v < high);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero bound")]
    fn random_below_zero_bound_panics() {
        let mut rng = Drbg::from_seed(5);
        let _ = BigUint::random_below(&BigUint::zero(), &mut rng);
    }
}
