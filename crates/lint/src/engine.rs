//! The rule engine: runs every rule over a scanned file, honoring
//! `#[cfg(test)]` / `#[test]` regions and suppression directives.
//!
//! Suppression syntax:
//!
//! ```text
//! risky_call(); // mykil-lint: allow(L001) -- proven unreachable: …
//!
//! // mykil-lint: allow(L003)
//! if mac_a != mac_b { … }      // directive on its own line covers the
//!                              // next code line
//! ```
//!
//! Several rules may be listed: `allow(L001, L005)`.

use crate::diagnostics::{display_path, Diagnostic};
use crate::rules::{FileContext, RULES};
use crate::tokenizer::{scan, Comment, ScannedFile, Token};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Lints one file's source text. `rel_path` must be workspace-relative
/// with forward slashes — rule scoping keys off it.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let scanned = scan(source);
    let test_mask = compute_test_mask(&scanned.tokens);
    let suppressed = suppression_map(&scanned);
    let ctx = FileContext {
        path: rel_path,
        tokens: &scanned.tokens,
        test_mask: &test_mask,
    };
    let mut out = Vec::new();
    for rule in RULES {
        for d in (rule.check)(&ctx) {
            let allowed = suppressed
                .get(&d.line)
                .is_some_and(|rules| rules.iter().any(|r| r == d.rule));
            if !allowed {
                out.push(d);
            }
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Marks every token that lives inside `#[cfg(test)]` or `#[test]`
/// code, so rules about production hygiene stay quiet in tests.
pub fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let Some(attr_end) = test_attribute_end(tokens, i) else {
            i += 1;
            continue;
        };
        // The attribute governs the next item. Only mark if a block
        // opens before any top-level `;` (so `#[cfg(test)] mod t;`
        // does not swallow unrelated code).
        let mut j = attr_end;
        let mut pdepth = 0i32;
        let block_start = loop {
            let Some(tok) = tokens.get(j) else { break None };
            if tok.is_punct('(') || tok.is_punct('[') {
                pdepth += 1;
            } else if tok.is_punct(')') || tok.is_punct(']') {
                pdepth -= 1;
            } else if tok.is_punct('{') && pdepth == 0 {
                break Some(j);
            } else if tok.is_punct(';') && pdepth == 0 {
                break None;
            }
            j += 1;
        };
        if let Some(start) = block_start {
            let mut depth = 1i32;
            let mut k = start + 1;
            while k < tokens.len() && depth > 0 {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                }
                k += 1;
            }
            for flag in &mut mask[i..k] {
                *flag = true;
            }
        }
        i = attr_end;
    }
    mask
}

/// If a `#[test]`-like attribute starts at `i`, returns the index just
/// past its closing `]`. Recognizes `#[test]`, `#[cfg(test)]`, and any
/// `#[cfg(…test…)]` combination such as `#[cfg(all(test, unix))]`.
fn test_attribute_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !(tokens.get(i)?.is_punct('#') && tokens.get(i + 1)?.is_punct('[')) {
        return None;
    }
    let head = tokens.get(i + 2)?;
    let mut is_test_attr = head.is_ident("test");
    let mut j = i + 2;
    let mut depth = 1i32; // the `[`
    while j < tokens.len() && depth > 0 {
        let tok = &tokens[j];
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
        } else if head.is_ident("cfg") && tok.is_ident("test") {
            is_test_attr = true;
        }
        j += 1;
    }
    is_test_attr.then_some(j)
}

/// Builds `line -> allowed rule ids` from suppression comments. A
/// trailing comment covers its own line; a comment on its own line
/// covers the next line that has code.
fn suppression_map(scanned: &ScannedFile) -> HashMap<u32, Vec<String>> {
    let mut map: HashMap<u32, Vec<String>> = HashMap::new();
    for comment in &scanned.comments {
        let Some(rules) = parse_directive(comment) else {
            continue;
        };
        let target = if comment.has_code_before {
            comment.line
        } else {
            scanned
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|l| *l > comment.line)
                .unwrap_or(comment.line)
        };
        map.entry(target).or_default().extend(rules);
    }
    map
}

/// Parses `mykil-lint: allow(L001, L003) [-- reason]` from a comment.
fn parse_directive(comment: &Comment) -> Option<Vec<String>> {
    let text = comment.text.trim();
    let rest = text.strip_prefix("mykil-lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let (list, _) = rest.split_once(')')?;
    let rules: Vec<String> = list
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    (!rules.is_empty()).then_some(rules)
}

/// Recursively collects the `.rs` files the workspace linter covers:
/// everything under `crates/` except `target/` and the linter's own
/// fixture directories.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    collect_rs_files(&crates_dir, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every workspace file under `root`, returning diagnostics with
/// workspace-relative paths.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for path in workspace_files(root)? {
        let source = std::fs::read_to_string(&path)?;
        let rel = display_path(&path, root);
        out.extend(lint_source(&rel, &source));
    }
    out.sort_by(|a, b| (a.file.clone(), a.line, a.rule).cmp(&(b.file.clone(), b.line, b.rule)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        let scanned = scan(src);
        let mask = compute_test_mask(&scanned.tokens);
        let unwrap_idx = scanned
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        let prod_idx = scanned
            .tokens
            .iter()
            .position(|t| t.is_ident("prod"))
            .unwrap();
        assert!(mask[unwrap_idx]);
        assert!(!mask[prod_idx]);
    }

    #[test]
    fn cfg_test_path_declaration_marks_nothing_else() {
        let src = "#[cfg(test)]\nmod tests;\nfn prod() { x.unwrap(); }\n";
        let scanned = scan(src);
        let mask = compute_test_mask(&scanned.tokens);
        let unwrap_idx = scanned
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(!mask[unwrap_idx]);
    }

    #[test]
    fn test_fn_attribute_masks_its_body() {
        let src = "#[test]\nfn check() { y.expect(\"ok\"); }\nfn prod() {}\n";
        let scanned = scan(src);
        let mask = compute_test_mask(&scanned.tokens);
        let expect_idx = scanned
            .tokens
            .iter()
            .position(|t| t.is_ident("expect"))
            .unwrap();
        let prod_idx = scanned
            .tokens
            .iter()
            .position(|t| t.is_ident("prod"))
            .unwrap();
        assert!(mask[expect_idx]);
        assert!(!mask[prod_idx]);
    }

    #[test]
    fn same_line_suppression() {
        let src = "fn f() { x.unwrap(); // mykil-lint: allow(L001) -- startup only\n}";
        assert!(lint_source("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn standalone_suppression_covers_next_line() {
        let src = "fn f() {\n // mykil-lint: allow(L001)\n x.unwrap();\n}";
        assert!(lint_source("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn suppression_for_other_rule_does_not_apply() {
        let src = "fn f() { x.unwrap(); // mykil-lint: allow(L003)\n}";
        let diags = lint_source("crates/core/src/a.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "L001");
    }

    #[test]
    fn multi_rule_directive() {
        let src = "fn f() { x.unwrap(); // mykil-lint: allow(L003, L001)\n}";
        assert!(lint_source("crates/core/src/a.rs", src).is_empty());
    }
}
