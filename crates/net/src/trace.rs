//! Event tracing: a bounded in-memory log of what the network did.
//!
//! Disabled by default (zero cost); enable with
//! [`Simulator::enable_trace`](crate::Simulator::enable_trace) to record
//! deliveries, drops, and timer firings — the first tool to reach for
//! when a protocol test fails ("did the rekey multicast ever arrive?").

use crate::id::NodeId;
use crate::time::Time;
use std::collections::VecDeque;

/// Why a message did not reach its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Source or destination was crashed.
    Crashed,
    /// Endpoints were in different partitions.
    Partitioned,
    /// The directed link was cut.
    LinkCut,
    /// Random loss (lossy-network knob).
    RandomLoss,
    /// A retransmitted reliable frame was already processed (per-peer
    /// dedup window); the duplicate was acknowledged but not delivered
    /// to the node.
    Duplicate,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was handed to the destination node.
    Delivered {
        /// Virtual time of delivery.
        at: Time,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Accounting kind of the message.
        kind: &'static str,
        /// Payload length in bytes.
        len: usize,
    },
    /// A send was suppressed by the failure model.
    Dropped {
        /// Virtual time of the (attempted) send.
        at: Time,
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Accounting kind of the message.
        kind: &'static str,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A timer fired at a node.
    TimerFired {
        /// Virtual time.
        at: Time,
        /// The node whose timer fired.
        node: NodeId,
        /// The timer's tag.
        tag: u64,
    },
    /// A reliable send was retransmitted (no ack within the backoff).
    Retransmitted {
        /// Virtual time of the retransmission.
        at: Time,
        /// Original sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Accounting kind of the message.
        kind: &'static str,
        /// Transmission attempt number (the initial send is attempt 1).
        attempt: u32,
    },
    /// A fault was injected by the chaos harness (see
    /// [`FaultPlan`](crate::FaultPlan)); `desc` uses the fault-schedule
    /// line syntax so a trace excerpt can be pasted back into a plan.
    FaultInjected {
        /// Virtual time of the injection.
        at: Time,
        /// Fault description in fault-schedule syntax.
        desc: String,
    },
}

impl TraceEvent {
    /// The virtual time of the event.
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::Delivered { at, .. }
            | TraceEvent::Dropped { at, .. }
            | TraceEvent::TimerFired { at, .. }
            | TraceEvent::Retransmitted { at, .. }
            | TraceEvent::FaultInjected { at, .. } => *at,
        }
    }
}

/// Bounded event log (oldest events evicted first).
#[derive(Debug)]
pub(crate) struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    recorded: u64,
}

impl Trace {
    pub fn new(capacity: usize) -> Trace {
        Trace {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            recorded: 0,
        }
    }

    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.recorded += 1;
    }

    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    pub fn recorded(&self) -> u64 {
        self.recorded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivered(at_us: u64) -> TraceEvent {
        TraceEvent::Delivered {
            at: Time::from_micros(at_us),
            from: NodeId::from_index(0),
            to: NodeId::from_index(1),
            kind: "test",
            len: 10,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.push(delivered(i));
        }
        let times: Vec<u64> = t.events().map(|e| e.at().as_micros()).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(t.recorded(), 5);
    }

    #[test]
    fn event_time_accessor() {
        let e = TraceEvent::TimerFired {
            at: Time::from_millis(7),
            node: NodeId::from_index(2),
            tag: 9,
        };
        assert_eq!(e.at(), Time::from_millis(7));
        let d = TraceEvent::Dropped {
            at: Time::from_millis(8),
            from: NodeId::from_index(0),
            to: NodeId::from_index(1),
            kind: "x",
            reason: DropReason::Partitioned,
        };
        assert_eq!(d.at(), Time::from_millis(8));
    }
}
