//! Tree snapshots for area-controller replication.
//!
//! Section IV-C of the paper: a Mykil area controller is replicated with
//! a primary-backup scheme, and the replicated state includes "the
//! complete auxiliary tree". [`KeyTree::snapshot`] serializes exactly
//! that state; [`KeyTree::restore`] rebuilds a tree a backup can take
//! over with.

use crate::tree::{KeyTree, TreeConfig};
use crate::MemberId;
use std::fmt;

/// Error returned by [`KeyTree::restore`] on corrupt input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(&'static str);

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt tree snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

const MAGIC: &[u8; 4] = b"MKT1";

struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        let (&b, rest) = self.0.split_first().ok_or(SnapshotError("truncated"))?;
        self.0 = rest;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        if self.0.len() < 8 {
            return Err(SnapshotError("truncated"));
        }
        let (head, rest) = self.0.split_at(8);
        self.0 = rest;
        let arr: [u8; 8] = head.try_into().map_err(|_| SnapshotError("truncated"))?;
        Ok(u64::from_be_bytes(arr))
    }

    fn bytes16(&mut self) -> Result<[u8; 16], SnapshotError> {
        if self.0.len() < 16 {
            return Err(SnapshotError("truncated"));
        }
        let (head, rest) = self.0.split_at(16);
        self.0 = rest;
        head.try_into().map_err(|_| SnapshotError("truncated"))
    }
}

impl KeyTree {
    /// Serializes the complete tree (structure, keys, versions,
    /// occupancy) for transfer to a backup controller.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.node_count() * 40 + 16);
        out.extend_from_slice(MAGIC);
        out.push(self.config().arity() as u8);
        out.extend_from_slice(&(self.node_count() as u64).to_be_bytes());
        for i in 0..self.node_count() {
            let node = crate::tree::NodeIdx::from_raw(i);
            let parent = self.parent_of(node);
            out.extend_from_slice(
                &(parent.map(|p| p.raw() as u64 + 1).unwrap_or(0)).to_be_bytes(),
            );
            out.extend_from_slice(self.key_of(node).as_bytes());
            out.extend_from_slice(&self.version_of(node).to_be_bytes());
            match self.occupant_of(node) {
                Some(m) => {
                    out.push(1);
                    out.extend_from_slice(&m.0.to_be_bytes());
                }
                None => out.push(0),
            }
        }
        out
    }

    /// Rebuilds a tree from [`Self::snapshot`] output.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on truncated or malformed input.
    pub fn restore(bytes: &[u8]) -> Result<KeyTree, SnapshotError> {
        if bytes.len() < 4 || &bytes[..4] != MAGIC {
            return Err(SnapshotError("bad magic"));
        }
        let mut r = Reader(&bytes[4..]);
        let arity = r.u8()? as usize;
        if !(2..=16).contains(&arity) {
            return Err(SnapshotError("bad arity"));
        }
        let count = r.u64()? as usize;
        if count == 0 {
            return Err(SnapshotError("no root"));
        }
        let mut tree = KeyTree::restore_shell(TreeConfig::with_arity(arity), count);
        for i in 0..count {
            let parent_raw = r.u64()?;
            let parent = if parent_raw == 0 {
                None
            } else {
                let p = parent_raw as usize - 1;
                if p >= i {
                    return Err(SnapshotError("parent after child"));
                }
                Some(crate::tree::NodeIdx::from_raw(p))
            };
            if (parent.is_none()) != (i == 0) {
                return Err(SnapshotError("root/parent mismatch"));
            }
            let key = r.bytes16()?;
            let version = r.u64()?;
            let occupant = match r.u8()? {
                0 => None,
                1 => Some(MemberId(r.u64()?)),
                _ => return Err(SnapshotError("bad occupancy tag")),
            };
            tree.restore_node(i, parent, key, version, occupant)
                .map_err(|_| SnapshotError("inconsistent node"))?;
        }
        if !r.0.is_empty() {
            return Err(SnapshotError("trailing bytes"));
        }
        tree.rebuild_indices();
        Ok(tree)
    }
}

/// Internal restore plumbing lives on `KeyTree` in `tree.rs`; this
/// module only owns the byte format.
#[allow(unused)]
fn _doc_anchor() {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;
    use mykil_crypto::drbg::Drbg;

    fn sample_tree(n: u64) -> KeyTree {
        let mut rng = Drbg::from_seed(9);
        let mut t = KeyTree::new(TreeConfig::quad(), &mut rng);
        for m in 0..n {
            t.join(MemberId(m), &mut rng).unwrap();
        }
        for m in [1u64, 4, 9] {
            if m < n {
                t.leave(MemberId(m), &mut rng).unwrap();
            }
        }
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let tree = sample_tree(30);
        let restored = KeyTree::restore(&tree.snapshot()).unwrap();
        restored.check_invariants();
        assert_eq!(restored.node_count(), tree.node_count());
        assert_eq!(restored.member_count(), tree.member_count());
        assert_eq!(restored.area_key(), tree.area_key());
        for m in tree.members() {
            assert!(restored.contains(m));
            assert_eq!(
                tree.path_keys(m).unwrap(),
                restored.path_keys(m).unwrap(),
                "{m} path differs"
            );
        }
    }

    #[test]
    fn restored_tree_is_operable() {
        let tree = sample_tree(20);
        let mut rng = Drbg::from_seed(10);
        let mut restored = KeyTree::restore(&tree.snapshot()).unwrap();
        // The backup can continue where the primary stopped.
        restored.join(MemberId(1000), &mut rng).unwrap();
        restored.leave(MemberId(0), &mut rng).unwrap();
        restored.check_invariants();
        assert_eq!(restored.member_count(), tree.member_count());
    }

    #[test]
    fn empty_tree_round_trips() {
        let mut rng = Drbg::from_seed(11);
        let tree = KeyTree::new(TreeConfig::binary(), &mut rng);
        let restored = KeyTree::restore(&tree.snapshot()).unwrap();
        restored.check_invariants();
        assert_eq!(restored.node_count(), 1);
        assert_eq!(restored.area_key(), tree.area_key());
    }

    #[test]
    fn corrupt_snapshots_rejected() {
        let tree = sample_tree(10);
        let snap = tree.snapshot();
        assert!(KeyTree::restore(&[]).is_err());
        assert!(KeyTree::restore(b"XXXX").is_err());
        assert!(KeyTree::restore(&snap[..snap.len() - 1]).is_err());
        let mut extra = snap.clone();
        extra.push(0);
        assert!(KeyTree::restore(&extra).is_err());
        let mut bad_magic = snap.clone();
        bad_magic[0] = b'Z';
        assert!(KeyTree::restore(&bad_magic).is_err());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let tree = sample_tree(15);
        assert_eq!(tree.snapshot(), tree.snapshot());
        let restored = KeyTree::restore(&tree.snapshot()).unwrap();
        assert_eq!(restored.snapshot(), tree.snapshot());
    }
}
