//! Deployment harness: builds a complete Mykil group in the simulator.
//!
//! [`GroupBuilder`] wires a registration server, one area controller per
//! area (plus optional backups), the area multicast groups, and the
//! inter-area tree, then hands back a [`GroupHandle`] with convenience
//! operations — register members, multicast data, move members, crash
//! controllers — used by the examples, integration tests and benches.

use crate::area::{AcDeployment, AreaController, ParentLink, Role};
use crate::auth::{AuthDb, InMemoryAuthDb};
use crate::config::{BatchPolicy, MykilConfig, RejoinPolicy};
use crate::crypto_cost::CryptoCost;
use crate::directory::{AcDirectory, AcInfo};
use crate::identity::{AreaId, DeviceId};
use crate::member::{Member, MemberPhase};
use crate::registration::RegistrationServer;
use mykil_crypto::drbg::Drbg;
use mykil_crypto::keys::SymmetricKey;
use mykil_crypto::rsa::RsaKeyPair;
use mykil_net::{
    Duration, LatencyModel, NodeId, Simulator, StableStore, Stats, StorageFactory, Time,
};

/// Configures and constructs a simulated Mykil deployment.
pub struct GroupBuilder {
    seed: u64,
    cfg: MykilConfig,
    cost: CryptoCost,
    latency: LatencyModel,
    areas: usize,
    key_bits: usize,
    replicated: bool,
    auth: Option<Box<dyn AuthDb>>,
    storage: Option<StorageFactory>,
}

impl std::fmt::Debug for GroupBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupBuilder")
            .field("seed", &self.seed)
            .field("areas", &self.areas)
            .field("key_bits", &self.key_bits)
            .field("replicated", &self.replicated)
            .finish_non_exhaustive()
    }
}

impl GroupBuilder {
    /// Starts a builder with test-sized defaults (768-bit keys, short
    /// timers, LAN latency, no replication).
    pub fn new(seed: u64) -> GroupBuilder {
        GroupBuilder {
            seed,
            cfg: MykilConfig::test(),
            cost: CryptoCost::pentium3(),
            latency: LatencyModel::lan(),
            areas: 1,
            key_bits: 768,
            replicated: false,
            auth: None,
            storage: None,
        }
    }

    /// Replaces the authorization backend (default: admit everyone for
    /// the configured ticket validity).
    pub fn auth(mut self, auth: Box<dyn AuthDb>) -> Self {
        self.auth = Some(auth);
        self
    }

    /// Sets the RSA modulus size. Values below 768 bits are used for
    /// the virtual cost model only; actual keys are generated at 768
    /// bits minimum (the smallest size whose OAEP block fits a wrapped
    /// symmetric key).
    pub fn rsa_bits(mut self, bits: usize) -> Self {
        self.cfg.rsa_bits = bits;
        self.key_bits = bits.max(768);
        self
    }

    /// Number of areas (one controller each).
    pub fn areas(mut self, areas: usize) -> Self {
        self.areas = areas.max(1);
        self
    }

    /// Replaces the whole protocol configuration.
    pub fn config(mut self, cfg: MykilConfig) -> Self {
        self.cfg = cfg;
        self.key_bits = self.cfg.rsa_bits.max(768);
        self
    }

    /// Sets only the *virtual* RSA cost model (actual keys keep their
    /// configured size) — used to model the paper's 2048-bit timings
    /// without paying 2048-bit keygen at build time.
    pub fn virtual_rsa_bits(mut self, bits: usize) -> Self {
        self.cfg.rsa_bits = bits;
        self
    }

    /// Disables rejoin steps 4-5 (departure verification), reproducing
    /// the paper's fast-rejoin variant.
    pub fn skip_departure_check(mut self) -> Self {
        self.cfg.verify_departure_on_rejoin = false;
        self
    }

    /// Sets the rejoin partition policy.
    pub fn rejoin_policy(mut self, policy: RejoinPolicy) -> Self {
        self.cfg.rejoin_policy = policy;
        self
    }

    /// Sets the rekey batching policy.
    pub fn batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.cfg.batch_policy = policy;
        self
    }

    /// Selects the auxiliary-tree key backend for every area controller
    /// (default: [`mykil_tree::TreeBackend::Explicit`]).
    pub fn tree_backend(mut self, backend: mykil_tree::TreeBackend) -> Self {
        self.cfg.tree = self.cfg.tree.with_backend(backend);
        self
    }

    /// Sets the virtual crypto cost model.
    pub fn cost(mut self, cost: CryptoCost) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the network latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Adds a backup controller per area (Section IV-C replication).
    pub fn replicated(mut self, on: bool) -> Self {
        self.replicated = on;
        self
    }

    /// Replaces the stable-storage backend for every node (default:
    /// the in-memory [`mykil_net::SimStore`]). The factory runs once
    /// per node as the deployment is laid out; file-backed deployments
    /// typically return a
    /// [`FaultyStore`](mykil_net::FaultyStore)-wrapped
    /// [`FileStore`](mykil_net::FileStore) so the chaos storage verbs
    /// still apply.
    pub fn storage_factory(
        mut self,
        make: impl FnMut(NodeId) -> Box<dyn StableStore> + Send + 'static,
    ) -> Self {
        self.storage = Some(Box::new(make));
        self
    }

    /// Builds the deployment.
    pub fn build(self) -> GroupHandle {
        let mut keyrng = Drbg::from_seed(self.seed ^ 0x6b65_7967_656e);
        let mut sim = Simulator::with_latency(self.seed, self.latency.clone());
        if let Some(make) = self.storage {
            sim.set_storage_factory(make);
        }

        // mykil-lint: allow(L001) -- deployment harness, not peer input
        let rs_pair = RsaKeyPair::generate(self.key_bits, &mut keyrng).expect("rs keygen");
        let ac_pairs: Vec<RsaKeyPair> = (0..self.areas)
            // mykil-lint: allow(L001) -- deployment harness, not peer input
            .map(|_| RsaKeyPair::generate(self.key_bits, &mut keyrng).expect("ac keygen"))
            .collect();
        let backup_pairs: Vec<RsaKeyPair> = if self.replicated {
            (0..self.areas)
                // mykil-lint: allow(L001) -- deployment harness, not peer input
                .map(|_| RsaKeyPair::generate(self.key_bits, &mut keyrng).expect("backup keygen"))
                .collect()
        } else {
            Vec::new()
        };
        let k_shared = SymmetricKey::random(&mut keyrng);

        // Node ids are assigned sequentially by the simulator; lay them
        // out so the directory can be built before the nodes exist:
        // 0 = RS, 1..=areas = primaries, then backups.
        let rs_node = NodeId::from_index(0);
        let ac_node = |i: usize| NodeId::from_index(1 + i);
        let backup_node = |i: usize| NodeId::from_index(1 + self.areas + i);

        let groups: Vec<_> = (0..self.areas).map(|_| sim.create_group()).collect();

        let directory = AcDirectory {
            entries: (0..self.areas)
                .map(|i| AcInfo {
                    area: AreaId(i as u32),
                    node: ac_node(i).index() as u32,
                    pubkey: ac_pairs[i].public().to_bytes(),
                })
                .collect(),
        };
        let backups_dir = AcDirectory {
            entries: backup_pairs
                .iter()
                .enumerate()
                .map(|(i, pair)| AcInfo {
                    area: AreaId(i as u32),
                    node: backup_node(i).index() as u32,
                    pubkey: pair.public().to_bytes(),
                })
                .collect(),
        };

        let parent_link = |area: usize| -> ParentLink {
            ParentLink {
                node: ac_node(area),
                area: AreaId(area as u32),
                group: groups[area],
            }
        };

        // Area 0 is the root; area i hangs under (i-1)/2 (a binary tree
        // of areas, mapping naturally to network topology — Section II).
        let mut acs: Vec<AreaController> = (0..self.areas)
            .map(|i| {
                let parent = (i > 0).then(|| parent_link((i - 1) / 2));
                // Failover candidates are strictly root-ward (lower area
                // ids): re-parenting can then never form a cycle among
                // surviving controllers.
                let preferred: Vec<ParentLink> = (0..i)
                    .filter(|&p| Some(p) != parent.as_ref().map(|l| l.area.0 as usize))
                    .map(parent_link)
                    .collect();
                let deploy = AcDeployment {
                    area: AreaId(i as u32),
                    group: groups[i],
                    parent,
                    backup: self.replicated.then(|| backup_node(i)),
                    backup_pubkey: if self.replicated {
                        backup_pairs[i].public().to_bytes()
                    } else {
                        Vec::new()
                    },
                    role: Role::Primary,
                    rs_node,
                    directory: directory.clone(),
                    backups: backups_dir.clone(),
                    preferred_parents: preferred,
                };
                AreaController::new(
                    self.cfg,
                    self.cost,
                    ac_pairs[i].clone(),
                    rs_pair.public().clone(),
                    k_shared.clone(),
                    deploy,
                    self.seed ^ (0xA5A5 + i as u64),
                )
            })
            .collect();

        // Deployment-time child enrollment (runtime re-parenting uses
        // the signed area-join exchange instead).
        for i in 1..self.areas {
            let p = (i - 1) / 2;
            let (low, high) = acs.split_at_mut(i.max(p));
            let (parent, child) = if p < i {
                (&mut low[p], &mut high[0])
            } else {
                unreachable!("parent index precedes child")
            };
            parent.enroll_child_static(child, ac_node(i), &mut keyrng);
        }
        // Each enrollment rotates the parent's path keys, so seed every
        // child's parent-area view with the final deployment-time paths.
        for i in 1..self.areas {
            let p = (i - 1) / 2;
            let member = mykil_tree::MemberId(crate::area::AC_MEMBER_BASE + i as u64);
            let mut path = Vec::new();
            acs[p]
                .tree()
                .path_keys_into(member, &mut path)
                // mykil-lint: allow(L001) -- deployment harness: children enrolled in the loop above
                .expect("child enrolled above");
            acs[i].seed_parent_tree_keys(&path);
        }

        let backups: Vec<AreaController> = (0..if self.replicated { self.areas } else { 0 })
            .map(|i| {
                let parent = (i > 0).then(|| parent_link((i - 1) / 2));
                let deploy = AcDeployment {
                    area: AreaId(i as u32),
                    group: groups[i],
                    parent,
                    backup: None,
                    backup_pubkey: Vec::new(),
                    role: Role::Backup { primary: ac_node(i) },
                    rs_node,
                    directory: directory.clone(),
                    backups: backups_dir.clone(),
                    preferred_parents: (0..i).map(parent_link).collect(),
                };
                AreaController::new(
                    self.cfg,
                    self.cost,
                    backup_pairs[i].clone(),
                    rs_pair.public().clone(),
                    k_shared.clone(),
                    deploy,
                    self.seed ^ (0xB5B5 + i as u64),
                )
            })
            .collect();

        let auth = self
            .auth
            .unwrap_or_else(|| Box::new(InMemoryAuthDb::allow_all(self.cfg.ticket_validity)));
        let mut rs = RegistrationServer::new(
            self.cfg,
            self.cost,
            rs_pair.clone(),
            auth,
            directory.clone(),
        );
        for (i, pair) in backup_pairs.iter().enumerate() {
            rs.register_backup(AreaId(i as u32), pair.public().clone());
        }

        let rs_id = sim.add_node(rs);
        assert_eq!(rs_id, rs_node, "node layout drifted");
        let mut primary_ids = Vec::new();
        for (i, ac) in acs.drain(..).enumerate() {
            let id = sim.add_node(ac);
            assert_eq!(id, ac_node(i), "node layout drifted");
            primary_ids.push(id);
        }
        let mut backup_ids = Vec::new();
        for (i, b) in backups.into_iter().enumerate() {
            let id = sim.add_node(b);
            assert_eq!(id, backup_node(i), "node layout drifted");
            backup_ids.push(id);
        }

        GroupHandle {
            sim,
            cfg: self.cfg,
            cost: self.cost,
            key_bits: self.key_bits,
            rs_node,
            rs_pub: rs_pair,
            primaries: primary_ids,
            backups: backup_ids,
            keyrng,
            next_device: 0,
            members: Vec::new(),
        }
    }
}

/// A running Mykil deployment.
pub struct GroupHandle {
    /// The underlying simulator (full access for advanced scenarios).
    pub sim: Simulator,
    cfg: MykilConfig,
    cost: CryptoCost,
    key_bits: usize,
    rs_node: NodeId,
    rs_pub: RsaKeyPair,
    /// Primary controller node per area.
    pub primaries: Vec<NodeId>,
    /// Backup controller node per area (empty when unreplicated).
    pub backups: Vec<NodeId>,
    keyrng: Drbg,
    next_device: u64,
    /// All member nodes registered through this handle.
    pub members: Vec<NodeId>,
}

impl std::fmt::Debug for GroupHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupHandle")
            .field("areas", &self.primaries.len())
            .field("members", &self.members.len())
            .field("now", &self.sim.now())
            .finish_non_exhaustive()
    }
}

impl GroupHandle {
    /// Registers a new member (auto-joining); returns its node id.
    pub fn register_member(&mut self, device_seed: u64) -> NodeId {
        self.add_member(device_seed, true)
    }

    /// Registers a member that only acts when driven via
    /// [`Simulator::invoke`] (no auto join/rejoin).
    pub fn register_member_manual(&mut self, device_seed: u64) -> NodeId {
        self.add_member(device_seed, false)
    }

    fn add_member(&mut self, device_seed: u64, auto: bool) -> NodeId {
        // mykil-lint: allow(L001) -- deployment harness, not peer input
        let pair = RsaKeyPair::generate(self.key_bits, &mut self.keyrng).expect("member keygen");
        let device = DeviceId::from_seed(device_seed.wrapping_add(self.next_device));
        self.next_device += 1;
        let member = Member::new(
            self.cfg,
            self.cost,
            pair,
            self.rs_pub.public().clone(),
            self.rs_node,
            device,
            format!("subscriber-{device_seed}").into_bytes(),
            auto,
        );
        let id = self.sim.add_node(member);
        self.members.push(id);
        id
    }

    /// Runs the simulation for five virtual seconds — enough for joins,
    /// rekeys and data to settle under test timers.
    pub fn settle(&mut self) {
        self.run_for(Duration::from_secs(5));
    }

    /// Runs the simulation for a span of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        self.sim.run_for(d);
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// Whether the member at `node` is an active group member.
    pub fn is_member(&self, node: NodeId) -> bool {
        self.sim.node::<Member>(node).is_active()
    }

    /// Read access to a member.
    pub fn member(&self, node: NodeId) -> &Member {
        self.sim.node::<Member>(node)
    }

    /// Read access to an area's primary controller.
    pub fn ac(&self, area: usize) -> &AreaController {
        self.sim.node::<AreaController>(self.primaries[area])
    }

    /// Read access to an area's backup controller.
    pub fn backup(&self, area: usize) -> &AreaController {
        self.sim.node::<AreaController>(self.backups[area])
    }

    /// Has `node` multicast `payload` to the group.
    pub fn send_data(&mut self, node: NodeId, payload: &[u8]) -> bool {
        self.sim
            .invoke(node, |m: &mut Member, ctx| m.send_data(ctx, payload))
    }

    /// Payloads successfully received and decrypted by a member.
    pub fn received_data(&self, node: NodeId) -> Vec<Vec<u8>> {
        self.sim.node::<Member>(node).received.clone()
    }

    /// Triggers a rejoin of `member` toward the controller of `area`.
    pub fn move_member(&mut self, member: NodeId, area: usize) -> bool {
        let target = self.primaries[area];
        self.sim
            .invoke(member, |m: &mut Member, ctx| m.start_rejoin(ctx, target))
    }

    /// Crashes the primary controller of an area.
    pub fn crash_ac(&mut self, area: usize) {
        self.sim.crash(self.primaries[area]);
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &Stats {
        self.sim.stats()
    }

    /// The member's current phase (diagnostics).
    pub fn member_phase(&self, node: NodeId) -> MemberPhase {
        self.sim.node::<Member>(node).phase().clone()
    }

    /// The registration server's node id (e.g. to crash or restart it).
    pub fn rs(&self) -> NodeId {
        self.rs_node
    }

    /// Read access to the registration server.
    pub fn registration_server(&self) -> &crate::registration::RegistrationServer {
        self.sim
            .node::<crate::registration::RegistrationServer>(self.rs_node)
    }

    /// Registers a member presenting specific authorization bytes
    /// (default members present `subscriber-<seed>`).
    pub fn register_member_with_auth(&mut self, device_seed: u64, auth_info: &[u8]) -> NodeId {
        // mykil-lint: allow(L001) -- deployment harness, not peer input
        let pair = RsaKeyPair::generate(self.key_bits, &mut self.keyrng).expect("member keygen");
        let device = DeviceId::from_seed(device_seed.wrapping_add(self.next_device));
        self.next_device += 1;
        let member = Member::new(
            self.cfg,
            self.cost,
            pair,
            self.rs_pub.public().clone(),
            self.rs_node,
            device,
            auth_info.to_vec(),
            true,
        );
        let id = self.sim.add_node(member);
        self.members.push(id);
        id
    }
}
