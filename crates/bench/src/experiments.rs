//! The paper's evaluation, re-runnable.
//!
//! Figures 8–10 are *measured* from live data structures (real trees,
//! real rekey plans) and cross-checked against the closed-form models
//! in `mykil-analysis`; Section V-D latencies come from the full
//! protocol running in the deterministic simulator with the calibrated
//! Pentium-III crypto cost model.

use mykil::config::BatchPolicy;
use mykil::group::GroupBuilder;
use mykil::member::Member;
use mykil_analysis::Params;
use mykil_baselines::{FlatLkh, IolusGroup, KeyManager, MykilModel};
use mykil_crypto::drbg::Drbg;
use mykil_crypto::rc4::Rc4;
use mykil_net::Duration;
use mykil_tree::{KeyTree, MemberId, TreeConfig};

/// The paper's group size.
pub const PAPER_GROUP: u64 = 100_000;

/// The x-axis of Figures 8–10.
pub const AREA_COUNTS: [u64; 9] = mykil_analysis::bandwidth::FIGURE_AREA_COUNTS;

/// One row of Figure 8/9: measured key bytes for a single leave event.
#[derive(Debug, Clone, Copy)]
pub struct LeaveBandwidthRow {
    /// Number of areas (Iolus subgroups).
    pub areas: u64,
    /// Iolus leave cost in key bytes.
    pub iolus: u64,
    /// LKH leave cost (independent of the area count).
    pub lkh: u64,
    /// Mykil leave cost.
    pub mykil: u64,
}

/// Figure 8/9, measured: build each protocol at `n` members and make
/// one member leave.
pub fn fig8_measured(n: u64, arity: usize) -> Vec<LeaveBandwidthRow> {
    let cfg = TreeConfig::with_arity(arity);
    let mut rng = Drbg::from_seed(0xF1688);

    // LKH does not depend on the area count: measure once.
    let mut lkh = FlatLkh::new(cfg, &mut rng);
    mykil_baselines::populate(&mut lkh, n, &mut rng);
    let lkh_bytes = lkh.leave(MemberId(n / 2), &mut rng).total_key_bytes();

    AREA_COUNTS
        .iter()
        .map(|&areas| {
            // Iolus: the affected subgroup has n/areas members.
            let mut iolus = IolusGroup::new(16);
            mykil_baselines::populate(&mut iolus, n.div_ceil(areas), &mut rng);
            let iolus_bytes = iolus.leave(MemberId(0), &mut rng).total_key_bytes();

            // Mykil: an area tree of n/areas members.
            let mut mykil = MykilModel::new(areas as usize, cfg, &mut rng);
            mykil_baselines::populate(&mut mykil, n, &mut rng);
            let mykil_bytes = mykil.leave(MemberId(n / 2), &mut rng).total_key_bytes();

            LeaveBandwidthRow {
                areas,
                iolus: iolus_bytes,
                lkh: lkh_bytes,
                mykil: mykil_bytes,
            }
        })
        .collect()
}

/// Figure 8/9, analytic (the paper's own arithmetic).
pub fn fig8_analytic(n: u64) -> Vec<LeaveBandwidthRow> {
    let p = Params {
        members: n,
        ..Params::paper()
    };
    AREA_COUNTS
        .iter()
        .map(|&areas| {
            let (areas, iolus, lkh, mykil) =
                mykil_analysis::bandwidth::leave_bandwidth_row(&p, areas);
            LeaveBandwidthRow {
                areas,
                iolus,
                lkh,
                mykil,
            }
        })
        .collect()
}

/// Group sizes for the million-member sweep (ISSUE 7): the paper's
/// figures stop at 100,000; the scale harness extends them to 1M.
pub const SWEEP_GROUP_SIZES: [u64; 6] =
    [10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000];

/// One row of the Figure 8 group-size extension: leave-rekey key bytes
/// as the *group* grows (areas scale with it), per protocol.
#[derive(Debug, Clone, Copy)]
pub struct GroupSizeRow {
    /// Total group size.
    pub members: u64,
    /// Areas at this size (~1,000 members per area, the scale
    /// harness's shape; never below the paper's 20).
    pub areas: u64,
    /// Iolus leave cost in key bytes.
    pub iolus: u64,
    /// LKH leave cost (one global tree over all members).
    pub lkh: u64,
    /// Mykil leave cost (one area tree).
    pub mykil: u64,
}

/// Figure 8 extended along the group-size axis to 1,000,000 members,
/// analytic: real trees at 1M are pointless here because the figures
/// measure key bytes, which the closed forms reproduce exactly (the
/// measured/analytic agreement is pinned at small scale by
/// `fig8_measured_tracks_analytic`). Uses ~1,000-member areas, the
/// same shape `ScaleConfig::paper_million` simulates.
pub fn fig8_group_size_sweep() -> Vec<GroupSizeRow> {
    SWEEP_GROUP_SIZES
        .iter()
        .map(|&members| {
            let p = Params {
                members,
                ..Params::paper()
            };
            let areas = (members / 1_000).max(20);
            let (areas, iolus, lkh, mykil) =
                mykil_analysis::bandwidth::leave_bandwidth_row(&p, areas);
            GroupSizeRow {
                members,
                areas,
                iolus,
                lkh,
                mykil,
            }
        })
        .collect()
}

/// One row of Figure 10: aggregated leave of `k` members.
#[derive(Debug, Clone, Copy)]
pub struct AggregationRow {
    /// Number of areas.
    pub areas: u64,
    /// `k` sequential LKH leaves (the paper's flat reference line).
    pub lkh_sequential: u64,
    /// Mykil aggregated leave, best-case placement (clustered leaves).
    pub mykil_best: u64,
    /// Mykil aggregated leave, worst-case placement (spread leaves).
    pub mykil_worst: u64,
}

/// Members at the tree's most common leaf depth, ordered by leaf
/// position. Sequential joins make the tree ragged; comparing placements
/// at equal depth isolates the clustering effect Figure 10 plots.
fn same_depth_members(tree: &KeyTree) -> Vec<MemberId> {
    let mut by_depth: std::collections::BTreeMap<usize, Vec<(usize, MemberId)>> =
        std::collections::BTreeMap::new();
    for m in tree.members() {
        let leaf = tree.leaf_of(m).unwrap();
        let depth = tree.path_to_root(leaf).len();
        by_depth.entry(depth).or_default().push((leaf.raw(), m));
    }
    let mut best = by_depth
        .into_values()
        .max_by_key(|v| v.len())
        .unwrap_or_default();
    best.sort_unstable();
    best.into_iter().map(|(_, m)| m).collect()
}

/// Picks `k` member ids clustered at adjacent leaves (best case).
fn clustered_members(tree: &KeyTree, k: usize) -> Vec<MemberId> {
    same_depth_members(tree).into_iter().take(k).collect()
}

/// Picks `k` member ids spread across the tree (worst case).
fn spread_members(tree: &KeyTree, k: usize) -> Vec<MemberId> {
    let all = same_depth_members(tree);
    let stride = (all.len() / k).max(1);
    all.iter().step_by(stride).take(k).copied().collect()
}

/// Figure 10, measured: `k` consecutive leaves with and without
/// aggregation across the area-count sweep.
pub fn fig10_measured(n: u64, k: usize, arity: usize) -> Vec<AggregationRow> {
    let cfg = TreeConfig::with_arity(arity);
    let mut rng = Drbg::from_seed(0xF1610);

    let mut lkh = FlatLkh::new(cfg, &mut rng);
    mykil_baselines::populate(&mut lkh, n, &mut rng);
    let victims = spread_members(lkh.tree(), k);
    let mut lkh_seq = 0u64;
    {
        let mut scratch = lkh.clone();
        for &v in &victims {
            lkh_seq += scratch.leave(v, &mut rng).total_key_bytes();
        }
    }

    AREA_COUNTS
        .iter()
        .map(|&areas| {
            // One area's tree with n/areas members.
            let area_size = n.div_ceil(areas);
            let mut tree = KeyTree::new(cfg, &mut rng);
            for m in 0..area_size {
                tree.join(MemberId(m), &mut rng).unwrap();
            }
            let k = k.min(area_size as usize);

            let best_victims = clustered_members(&tree, k);
            let mut best_tree = tree.clone();
            let best = best_tree
                .batch_leave(&best_victims, &mut rng)
                .unwrap()
                .plan
                .multicast_bytes() as u64;

            let worst_victims = spread_members(&tree, k);
            let mut worst_tree = tree.clone();
            let worst = worst_tree
                .batch_leave(&worst_victims, &mut rng)
                .unwrap()
                .plan
                .multicast_bytes() as u64;

            AggregationRow {
                areas,
                lkh_sequential: lkh_seq,
                mykil_best: best,
                mykil_worst: worst,
            }
        })
        .collect()
}

/// One row of the Section V-A storage table.
#[derive(Debug, Clone, Copy)]
pub struct StorageRow {
    /// Protocol name.
    pub protocol: &'static str,
    /// Bytes of symmetric keys per member.
    pub member_bytes: u64,
    /// Bytes of symmetric keys at the (busiest) controller.
    pub controller_bytes: u64,
}

/// Section V-A, measured from live structures.
pub fn storage_measured(n: u64, areas: usize, arity: usize) -> Vec<StorageRow> {
    let cfg = TreeConfig::with_arity(arity);
    let mut rng = Drbg::from_seed(0xF15A);
    let mut iolus = IolusGroup::new(16);
    mykil_baselines::populate(&mut iolus, n.div_ceil(areas as u64), &mut rng);
    let mut lkh = FlatLkh::new(cfg, &mut rng);
    mykil_baselines::populate(&mut lkh, n, &mut rng);
    let mut mykil = MykilModel::new(areas, cfg, &mut rng);
    mykil_baselines::populate(&mut mykil, n, &mut rng);

    vec![
        StorageRow {
            protocol: "iolus",
            member_bytes: iolus.member_storage_bytes(),
            controller_bytes: iolus.controller_storage_bytes(),
        },
        StorageRow {
            protocol: "lkh",
            member_bytes: lkh.member_storage_bytes(),
            controller_bytes: lkh.controller_storage_bytes(),
        },
        StorageRow {
            protocol: "mykil",
            member_bytes: mykil.member_storage_bytes(),
            controller_bytes: mykil.controller_storage_bytes(),
        },
    ]
}

/// Section V-B: the key-update distribution across members on a leave.
pub fn cpu_table(n: u64, areas: u64) -> Vec<(&'static str, Vec<mykil_analysis::cpu::UpdateBucket>)> {
    let p = Params {
        members: n,
        areas,
        ..Params::paper()
    };
    vec![
        ("iolus", mykil_analysis::cpu::iolus_leave_distribution(&p)),
        ("lkh", mykil_analysis::cpu::lkh_leave_distribution(&p)),
        ("mykil", mykil_analysis::cpu::mykil_leave_distribution(&p)),
    ]
}

/// Section V-D: protocol latencies from the full simulator.
#[derive(Debug, Clone, Copy)]
pub struct LatencyReport {
    /// Join protocol latency (virtual seconds).
    pub join_s: f64,
    /// Join with the RSA-blinding cost model.
    pub join_blinding_s: f64,
    /// Rejoin with departure verification (steps 4–5).
    pub rejoin_s: f64,
    /// Rejoin without steps 4–5 (the paper's 0.28 s variant).
    pub rejoin_fast_s: f64,
}

fn measure_join(seed: u64, cost: mykil::crypto_cost::CryptoCost) -> f64 {
    let mut g = GroupBuilder::new(seed)
        .areas(2)
        .virtual_rsa_bits(2048)
        .cost(cost)
        .build();
    let m = g.register_member_manual(1);
    g.sim.invoke(m, |mm: &mut Member, ctx| mm.start_join(ctx));
    g.run_for(Duration::from_secs(20));
    let t = g.member(m).timings;
    (t.join_completed.expect("join finished") - t.join_started.unwrap()).as_secs_f64()
}

fn measure_rejoin(seed: u64, fast: bool) -> f64 {
    let mut b = GroupBuilder::new(seed)
        .areas(2)
        .virtual_rsa_bits(2048)
        .cost(mykil::crypto_cost::CryptoCost::pentium3());
    if fast {
        b = b.skip_departure_check();
    }
    let mut g = b.build();
    let m = g.register_member_manual(1);
    g.sim.invoke(m, |mm: &mut Member, ctx| mm.start_join(ctx));
    g.run_for(Duration::from_secs(20));
    let home = g.member(m).area().expect("joined").0 as usize;
    // Roam away from the home AC, wait out the silence threshold.
    let home_ac = g.primaries[home];
    g.sim.cut_link(m, home_ac);
    g.sim.cut_link(home_ac, m);
    g.run_for(Duration::from_secs(2));
    g.move_member(m, 1 - home);
    g.run_for(Duration::from_secs(20));
    let t = g.member(m).timings;
    (t.rejoin_completed.expect("rejoin finished") - t.rejoin_started.unwrap()).as_secs_f64()
}

/// Runs the Section V-D experiment (deterministic; no sampling needed).
pub fn vd_latency() -> LatencyReport {
    let p3 = mykil::crypto_cost::CryptoCost::pentium3();
    // RSA blinding adds roughly one public-op-sized pass per private op.
    let blinded = mykil::crypto_cost::CryptoCost {
        rsa_private_2048: p3.rsa_private_2048 + p3.blinding_overhead(2048),
        ..p3
    };
    LatencyReport {
        join_s: measure_join(0xD1, p3),
        join_blinding_s: measure_join(0xD1, blinded),
        rejoin_s: measure_rejoin(0xD2, false),
        rejoin_fast_s: measure_rejoin(0xD3, true),
    }
}

/// Section V-E: RC4 throughput in MB/s over a `megabytes`-sized buffer
/// (wall-clock measurement).
pub fn ve_rc4_throughput_mb_s(megabytes: usize) -> f64 {
    let mut buf = vec![0x5au8; megabytes << 20];
    let start = std::time::Instant::now();
    Rc4::new(b"handheld-data-key").apply_keystream(&mut buf);
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(&buf);
    megabytes as f64 / elapsed
}

/// One arm of the keep-vacant-vs-prune ablation (Section III-D).
#[derive(Debug, Clone, Copy)]
pub struct VacantLeafArm {
    /// Total join unicast bytes over the churn cycles.
    pub join_unicast_bytes: u64,
    /// Total leave multicast bytes over the churn cycles.
    pub leave_multicast_bytes: u64,
    /// Tree nodes allocated at the end (controller storage).
    pub final_nodes: u64,
}

/// Ablation (Section III-D): Mykil keeps vacated leaves so later joins
/// reuse them; classic LKH prunes. Measures both the rekey bytes and
/// the controller's storage growth over `cycles` leave+join cycles.
pub fn vacant_leaf_ablation(n: u64, cycles: u64) -> (VacantLeafArm, VacantLeafArm) {
    let run = |prune: bool| -> VacantLeafArm {
        let mut rng = Drbg::from_seed(0xAB1A);
        let cfg = TreeConfig::quad().prune_on_leave(prune);
        let mut tree = KeyTree::new(cfg, &mut rng);
        for m in 0..n {
            tree.join(MemberId(m), &mut rng).unwrap();
        }
        let mut arm = VacantLeafArm {
            join_unicast_bytes: 0,
            leave_multicast_bytes: 0,
            final_nodes: 0,
        };
        for i in 0..cycles {
            arm.leave_multicast_bytes +=
                tree.leave(MemberId(i), &mut rng).unwrap().multicast_bytes() as u64;
            arm.join_unicast_bytes += tree
                .join(MemberId(n + i), &mut rng)
                .unwrap()
                .unicast_bytes() as u64;
        }
        arm.final_nodes = tree.node_count() as u64;
        arm
    };
    (run(false), run(true))
}

/// Section III-E batching savings, measured end-to-end: key-update
/// bytes with aggregation vs without, for the same churn schedule.
pub fn batching_savings(seed: u64, joins: usize) -> (u64, u64) {
    let run = |policy: BatchPolicy| -> u64 {
        let mut g = GroupBuilder::new(seed)
            .areas(1)
            .batch_policy(policy)
            .build();
        for i in 0..joins {
            g.register_member(i as u64);
        }
        g.run_for(Duration::from_secs(8));
        g.stats().kind("key-update").bytes_sent
    };
    (run(BatchPolicy::OnDataOrTimer), run(BatchPolicy::Immediate))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shrunk versions of every experiment, guarding that the report
    /// pipeline works and shapes match the paper.
    #[test]
    fn fig8_shape_small() {
        let rows = fig8_measured(4000, 2);
        // Iolus decreasing and huge at 1 area; LKH constant; Mykil <= LKH.
        assert!(rows[0].iolus > 50_000);
        assert!(rows.windows(2).all(|w| w[1].iolus <= w[0].iolus));
        assert!(rows.iter().all(|r| r.lkh == rows[0].lkh));
        assert!(rows.iter().all(|r| r.mykil <= r.lkh + 32));
        let last = rows.last().unwrap();
        assert!(last.iolus > 10 * last.mykil);
    }

    #[test]
    fn fig8_measured_tracks_analytic() {
        let measured = fig8_measured(4000, 2);
        let analytic = fig8_analytic(4000);
        for (m, a) in measured.iter().zip(&analytic) {
            assert_eq!(m.areas, a.areas);
            // Iolus is exact.
            assert!(
                (m.iolus as f64 - a.iolus as f64).abs() / a.iolus as f64 <= 0.01,
                "iolus {m:?} vs {a:?}"
            );
            // Tree-based costs agree within 2x (the model is the paper's
            // rounded arithmetic; the measurement is exact).
            let ratio = m.mykil as f64 / a.mykil as f64;
            assert!((0.3..3.0).contains(&ratio), "mykil {m:?} vs {a:?}");
        }
    }

    /// The 1M extension keeps the paper's ordering at every size:
    /// Iolus pays per area member, LKH and Mykil logarithmically, and
    /// the gap widens with the group.
    #[test]
    fn group_size_sweep_reaches_a_million() {
        let rows = fig8_group_size_sweep();
        let last = rows.last().unwrap();
        assert_eq!(last.members, 1_000_000);
        assert_eq!(last.areas, 1_000);
        for r in &rows {
            assert!(r.mykil <= r.lkh, "{r:?}");
            assert!(r.iolus > 10 * r.lkh, "{r:?}");
        }
        // LKH grows with log(n): the 1M tree costs more than the 10k
        // one, but by far less than the 100x member ratio.
        let first = rows.first().unwrap();
        assert!(last.lkh > first.lkh);
        assert!(last.lkh < 3 * first.lkh, "{last:?} vs {first:?}");
        // Mykil's cost depends only on the ~1,000-member area, so it
        // stays flat from 100k to 1M while Iolus keeps paying per
        // member of a (constant-size) subgroup.
        let at_100k = rows.iter().find(|r| r.members == 100_000).unwrap();
        assert_eq!(last.mykil, at_100k.mykil, "area size fixed => cost fixed");
    }

    #[test]
    fn fig10_aggregation_saves() {
        let rows = fig10_measured(4000, 10, 2);
        for r in &rows {
            assert!(r.mykil_best <= r.mykil_worst, "{r:?}");
            assert!(
                r.mykil_worst < r.lkh_sequential,
                "aggregation must beat sequential: {r:?}"
            );
        }
        // Best-case savings at 20 areas are the paper's 40-60%+ claim.
        let last = rows.last().unwrap();
        assert!(
            (last.mykil_best as f64) < 0.6 * last.lkh_sequential as f64,
            "{last:?}"
        );
    }

    #[test]
    fn storage_ordering() {
        let rows = storage_measured(4000, 8, 2);
        let by_name = |n: &str| rows.iter().find(|r| r.protocol == n).copied().unwrap();
        let (i, l, m) = (by_name("iolus"), by_name("lkh"), by_name("mykil"));
        assert!(i.member_bytes < m.member_bytes);
        assert!(m.member_bytes <= l.member_bytes);
        assert!(i.controller_bytes < l.controller_bytes);
        assert!(m.controller_bytes < l.controller_bytes);
    }

    #[test]
    fn cpu_distributions_cover_members() {
        for (name, dist) in cpu_table(10_000, 10) {
            let affected = mykil_analysis::cpu::members_affected(&dist);
            assert!(affected > 0, "{name}");
        }
    }

    #[test]
    fn batching_saves_bytes() {
        let (batched, immediate) = batching_savings(77, 4);
        assert!(batched < immediate, "batched={batched} immediate={immediate}");
    }

    #[test]
    fn rc4_throughput_positive() {
        let mbps = ve_rc4_throughput_mb_s(1);
        assert!(mbps > 1.0, "{mbps}");
    }
}
