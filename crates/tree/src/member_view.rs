//! A member's view of the key tree: exactly the keys it can decrypt.
//!
//! [`MemberView`] models what one group member *knows*. It starts from a
//! unicast key path (join protocol step 7) and updates itself from
//! [`RekeyPlan`]s by the same rule a real client uses: a new key is
//! learned if and only if one of its encrypted copies is protected by a
//! key the member already holds.
//!
//! This makes the paper's security properties *executable*: forward
//! secrecy is "a departed member's view never learns the new area key",
//! backward secrecy is "a new member's view holds no pre-join key" —
//! both are asserted in this crate's tests and in the workspace
//! integration suite.

use crate::plan::{RekeyPlan, UnicastKeys};
use crate::tree::NodeIdx;
use crate::MemberId;
use mykil_crypto::keys::SymmetricKey;
use std::collections::{BTreeMap, BTreeSet};

/// The set of tree keys one member currently holds.
#[derive(Debug, Clone)]
pub struct MemberView {
    member: MemberId,
    keys: BTreeMap<NodeIdx, SymmetricKey>,
}

impl MemberView {
    /// Creates an empty view for `member`.
    pub fn new(member: MemberId) -> Self {
        MemberView {
            member,
            keys: BTreeMap::new(),
        }
    }

    /// Builds a view from a unicast key delivery (join step 7 / rejoin
    /// step 6 of the paper).
    pub fn from_unicast(unicast: &UnicastKeys) -> Self {
        let mut v = MemberView::new(unicast.member);
        v.apply_unicast(unicast);
        v
    }

    /// The member this view belongs to.
    pub fn member(&self) -> MemberId {
        self.member
    }

    /// Installs unicast keys (they arrive authenticated and encrypted to
    /// this member, so they are learned unconditionally).
    pub fn apply_unicast(&mut self, unicast: &UnicastKeys) {
        debug_assert_eq!(unicast.member, self.member, "unicast for someone else");
        for (node, key) in &unicast.keys {
            self.keys.insert(*node, key.clone());
        }
    }

    /// Processes a multicast rekey message: learns each changed key for
    /// which the member holds a protecting key. Returns how many keys
    /// were learned.
    ///
    /// Changes are processed deepest-first (the order plans are built
    /// in), so a parent protected by a child's *new* key is learnable in
    /// one pass, exactly like the real wire message.
    pub fn apply_plan(&mut self, plan: &RekeyPlan) -> usize {
        let mut known: BTreeSet<[u8; 16]> = self.keys.values().map(|k| *k.as_bytes()).collect();
        let mut learned = 0;
        for change in &plan.changes {
            let decryptable = change
                .encryptions
                .iter()
                .any(|(_, under)| known.contains(under.as_bytes()));
            if decryptable {
                self.keys.insert(change.node, change.new_key.clone());
                known.insert(*change.new_key.as_bytes());
                learned += 1;
            }
        }
        learned
    }

    /// The key this member holds for `node`, if any.
    pub fn key(&self, node: NodeIdx) -> Option<SymmetricKey> {
        self.keys.get(&node).cloned()
    }

    /// Whether the member holds `key` for any node.
    pub fn holds(&self, key: &SymmetricKey) -> bool {
        self.keys.values().any(|k| k == key)
    }

    /// Number of keys stored (the member-storage metric of Section V-A).
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Storage in bytes for symmetric key material.
    pub fn storage_bytes(&self) -> usize {
        self.keys.len() * crate::KEY_LEN
    }

    /// Drops all keys (member left or was evicted).
    pub fn clear(&mut self) {
        self.keys.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{KeyTree, TreeConfig};
    use mykil_crypto::drbg::Drbg;

    /// Builds a tree and a live view per member, mirroring the real
    /// distribution flow: each join's plan is applied to every existing
    /// view, and the newcomer's view is built from its unicast.
    fn build(n: u64, cfg: TreeConfig, r: &mut Drbg) -> (KeyTree, BTreeMap<MemberId, MemberView>) {
        let mut tree = KeyTree::new(cfg, r);
        let mut views: BTreeMap<MemberId, MemberView> = BTreeMap::new();
        for m in 0..n {
            let plan = tree.join(MemberId(m), r).unwrap();
            for v in views.values_mut() {
                v.apply_plan(&plan);
            }
            for u in &plan.unicasts {
                views
                    .entry(u.member)
                    .or_insert_with(|| MemberView::new(u.member))
                    .apply_unicast(u);
            }
        }
        (tree, views)
    }

    #[test]
    fn all_members_track_area_key_through_joins() {
        let mut r = Drbg::from_seed(1);
        let (tree, views) = build(25, TreeConfig::quad(), &mut r);
        for (m, v) in &views {
            assert_eq!(
                v.key(tree.root()),
                Some(tree.area_key().clone()),
                "{m} lost the area key"
            );
        }
    }

    #[test]
    fn views_match_tree_paths() {
        let mut r = Drbg::from_seed(2);
        let (tree, views) = build(25, TreeConfig::quad(), &mut r);
        let mut path = Vec::new();
        for (m, v) in &views {
            tree.path_keys_into(*m, &mut path).unwrap();
            for (node, key) in path.drain(..) {
                assert_eq!(v.key(node), Some(key), "{m} stale at {node}");
            }
        }
    }

    #[test]
    fn forward_secrecy_on_leave() {
        let mut r = Drbg::from_seed(3);
        let (mut tree, mut views) = build(16, TreeConfig::binary(), &mut r);
        let departed = MemberId(5);
        let plan = tree.leave(departed, &mut r).unwrap();
        let departed_view = views.remove(&departed).unwrap();

        // The departed member learns nothing from the rekey multicast.
        let mut dv = departed_view.clone();
        assert_eq!(dv.apply_plan(&plan), 0, "forward secrecy violated");
        assert_ne!(dv.key(tree.root()), Some(tree.area_key().clone()));

        // Every remaining member learns the new area key.
        for (m, v) in views.iter_mut() {
            v.apply_plan(&plan);
            assert_eq!(
                v.key(tree.root()),
                Some(tree.area_key().clone()),
                "{m} missed the rekey"
            );
        }
    }

    #[test]
    fn backward_secrecy_on_join() {
        let mut r = Drbg::from_seed(4);
        let (mut tree, _views) = build(16, TreeConfig::binary(), &mut r);
        let old_area_key = tree.area_key().clone();
        let plan = tree.join(MemberId(99), &mut r).unwrap();
        let newcomer = plan
            .unicasts
            .iter()
            .find(|u| u.member == MemberId(99))
            .unwrap();
        let nv = MemberView::from_unicast(newcomer);
        assert!(
            !nv.holds(&old_area_key),
            "backward secrecy violated: newcomer holds old area key"
        );
        assert_eq!(nv.key(tree.root()), Some(tree.area_key().clone()));
    }

    #[test]
    fn batch_leave_preserves_both_secrecy_directions() {
        let mut r = Drbg::from_seed(5);
        let (mut tree, mut views) = build(32, TreeConfig::quad(), &mut r);
        let leavers = [MemberId(2), MemberId(3), MemberId(17)];
        let out = tree.batch_leave(&leavers, &mut r).unwrap();
        for m in leavers {
            let mut v = views.remove(&m).unwrap();
            assert_eq!(v.apply_plan(&out.plan), 0, "{m} learned from batch rekey");
        }
        for (m, v) in views.iter_mut() {
            v.apply_plan(&out.plan);
            assert_eq!(
                v.key(tree.root()),
                Some(tree.area_key().clone()),
                "{m} missed batch rekey"
            );
        }
    }

    #[test]
    fn displaced_member_stays_current_through_split() {
        let mut r = Drbg::from_seed(6);
        // Fill one quad level exactly, then force a split.
        let (mut tree, mut views) = build(4, TreeConfig::quad(), &mut r);
        let plan = tree.join(MemberId(100), &mut r).unwrap();
        for v in views.values_mut() {
            v.apply_plan(&plan);
        }
        for u in &plan.unicasts {
            views
                .entry(u.member)
                .or_insert_with(|| MemberView::new(u.member))
                .apply_unicast(u);
        }
        let mut path = Vec::new();
        for (m, v) in &views {
            tree.path_keys_into(*m, &mut path).unwrap();
            for (node, key) in path.drain(..) {
                assert_eq!(v.key(node), Some(key), "{m} stale at {node} after split");
            }
        }
    }

    #[test]
    fn storage_accounting() {
        let mut r = Drbg::from_seed(7);
        let (tree, views) = build(64, TreeConfig::quad(), &mut r);
        let v = &views[&MemberId(0)];
        assert_eq!(v.storage_bytes(), v.key_count() * 16);
        // Path length = keys stored (leaf..root).
        let mut path = Vec::new();
        tree.path_keys_into(MemberId(0), &mut path).unwrap();
        assert!(v.key_count() >= path.len());
    }

    #[test]
    fn clear_empties_view() {
        let mut v = MemberView::new(MemberId(1));
        v.apply_unicast(&UnicastKeys {
            member: MemberId(1),
            keys: vec![(NodeIdx::from_raw(0), SymmetricKey::from_label("x"))],
        });
        assert_eq!(v.key_count(), 1);
        v.clear();
        assert_eq!(v.key_count(), 0);
        assert_eq!(v.member(), MemberId(1));
    }
}
