//! Property tests for the [`mykil::wire`] codec.
//!
//! Two invariants back every hand-serialized message in the protocol:
//!
//! 1. whatever field sequence a [`Writer`] emits, a [`Reader`] walking
//!    the same schema recovers it exactly and consumes every byte;
//! 2. truncating the frame at *any* byte boundary makes the decode
//!    fail with [`ProtocolError::Malformed`] — it never panics and
//!    never returns bogus data for a field the bytes cannot cover.

use mykil::error::ProtocolError;
use mykil::wire::{Reader, Writer};
use proptest::prelude::*;

/// One wire field, carrying its value so decode can be checked exactly.
/// `Raw` models fixed-size fields whose length the schema dictates.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Field {
    U8(u8),
    U32(u32),
    U64(u64),
    Bytes(Vec<u8>),
    Raw(Vec<u8>),
}

fn field() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<u8>().prop_map(Field::U8),
        any::<u32>().prop_map(Field::U32),
        any::<u64>().prop_map(Field::U64),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(Field::Bytes),
        proptest::collection::vec(any::<u8>(), 1..24).prop_map(Field::Raw),
    ]
}

fn encode(fields: &[Field]) -> Vec<u8> {
    let mut w = Writer::new();
    for f in fields {
        match f {
            Field::U8(v) => w.u8(*v),
            Field::U32(v) => w.u32(*v),
            Field::U64(v) => w.u64(*v),
            Field::Bytes(b) => w.bytes(b),
            Field::Raw(b) => w.raw(b),
        };
    }
    w.into_bytes()
}

/// Decodes `buf` against the schema implied by `fields`, requiring full
/// consumption. Field values in `fields` are only used for the `Raw`
/// lengths; everything else is re-read from the bytes.
fn decode(fields: &[Field], buf: &[u8]) -> Result<Vec<Field>, ProtocolError> {
    let mut r = Reader::new(buf);
    let mut out = Vec::with_capacity(fields.len());
    for f in fields {
        out.push(match f {
            Field::U8(_) => Field::U8(r.u8()?),
            Field::U32(_) => Field::U32(r.u32()?),
            Field::U64(_) => Field::U64(r.u64()?),
            Field::Bytes(_) => Field::Bytes(r.bytes()?.to_vec()),
            Field::Raw(b) => Field::Raw(r.raw(b.len())?.to_vec()),
        });
    }
    r.finish()?;
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 128,
        .. ProptestConfig::default()
    })]

    #[test]
    fn round_trip_arbitrary_field_sequences(
        fields in proptest::collection::vec(field(), 1..12),
    ) {
        let buf = encode(&fields);
        let decoded = decode(&fields, &buf);
        prop_assert_eq!(decoded.as_ref(), Ok(&fields));
    }

    #[test]
    fn truncation_at_every_boundary_is_malformed_never_panic(
        fields in proptest::collection::vec(field(), 1..8),
    ) {
        let buf = encode(&fields);
        for cut in 0..buf.len() {
            match decode(&fields, &buf[..cut]) {
                Err(ProtocolError::Malformed(_)) => {}
                other => prop_assert!(
                    false,
                    "cut at {cut}/{} must be Malformed, got {other:?}",
                    buf.len(),
                ),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_malformed(
        fields in proptest::collection::vec(field(), 1..8),
        extra in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut buf = encode(&fields);
        buf.extend_from_slice(&extra);
        prop_assert_eq!(
            decode(&fields, &buf),
            Err(ProtocolError::Malformed("trailing bytes")),
        );
    }

    #[test]
    fn reader_clone_forks_cursor_without_aliasing(
        fields in proptest::collection::vec(field(), 1..8),
    ) {
        // Regression for the `Copy` removal: the only way to fork a
        // cursor is an explicit clone, and the fork re-reads the same
        // bytes while the original's position is unaffected.
        let buf = encode(&fields);
        let r = Reader::new(&buf);
        let fork = r.clone();
        let a = decode_with(r, &fields);
        let b = decode_with(fork, &fields);
        prop_assert_eq!(a, b);
    }
}

fn decode_with(mut r: Reader<'_>, fields: &[Field]) -> Result<Vec<Field>, ProtocolError> {
    let mut out = Vec::with_capacity(fields.len());
    for f in fields {
        out.push(match f {
            Field::U8(_) => Field::U8(r.u8()?),
            Field::U32(_) => Field::U32(r.u32()?),
            Field::U64(_) => Field::U64(r.u64()?),
            Field::Bytes(_) => Field::Bytes(r.bytes()?.to_vec()),
            Field::Raw(b) => Field::Raw(r.raw(b.len())?.to_vec()),
        });
    }
    r.finish()?;
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 128,
        .. ProptestConfig::default()
    })]

    #[test]
    fn u32_from_round_trips_in_range_lengths(n in any::<u32>()) {
        // The checked length-prefix helper (lint L009 migration): any
        // usize that fits u32 round-trips exactly.
        let mut w = Writer::new();
        w.u32_from(n as usize);
        prop_assert!(!w.is_poisoned());
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.u32(), Ok(n));
        prop_assert!(r.finish().is_ok());
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn u32_from_oversized_poisons_instead_of_truncating(
        over in any::<u64>().prop_map(|v| v | (1u64 << 32)),
        tail in any::<u32>(),
    ) {
        // An out-of-range length must not silently truncate to a bogus
        // prefix: the writer poisons and refuses to finish, even if
        // valid fields are appended afterwards.
        let mut w = Writer::new();
        w.u32_from(over as usize).u32(tail);
        prop_assert!(w.is_poisoned());
        prop_assert!(matches!(
            w.try_into_bytes(),
            Err(ProtocolError::Malformed(_))
        ));
    }
}
