//! mykil-lint: workspace-aware static analysis for Mykil's key-secrecy
//! and protocol-hygiene invariants.
//!
//! The linter is dependency-free: a hand-rolled token scanner
//! ([`tokenizer`]) feeds a small rule engine ([`engine`]) running five
//! rules ([`rules`]) tuned to this codebase:
//!
//! - **L001** — no `unwrap()`/`expect()` in non-test code of the
//!   protocol crates (`core`, `net`, `tree`). A Mykil node processing a
//!   malformed or Byzantine message must degrade to a `ProtocolError`,
//!   never panic.
//! - **L002** — secret-bearing types (`SymmetricKey`, `Rc4`,
//!   `ChaCha20`, `RsaKeyPair`) must not derive `Debug`, `PartialEq`, or
//!   `Hash`, and must implement `Drop` (zeroization).
//! - **L003** — MAC/digest/secret byte comparisons must go through
//!   `mykil_crypto::ct_eq`, never `==`/`!=`.
//! - **L004** — no `std::time::{SystemTime, Instant}` in the
//!   sim-deterministic crates (`net`, `core`).
//! - **L005** — protocol `Msg` dispatch must list variants explicitly;
//!   no `_ =>` catch-all.
//!
//! Findings are suppressed per line with
//! `// mykil-lint: allow(L00x) -- reason`.

pub mod diagnostics;
pub mod engine;
pub mod rules;
pub mod tokenizer;

pub use diagnostics::Diagnostic;
pub use engine::{lint_source, lint_workspace};
pub use rules::RULES;
