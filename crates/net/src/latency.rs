//! Link latency model.
//!
//! The paper's testbed was a LAN of Pentium-III workstations; we model a
//! link as `base + per_byte·len + jitter`, with jitter drawn uniformly
//! from `[0, jitter]` using the simulator's deterministic RNG.

use crate::time::Duration;
use mykil_crypto::drbg::Drbg;

/// Deterministic latency model applied to every delivery.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Fixed propagation + protocol-stack delay per message.
    pub base: Duration,
    /// Transmission delay per payload byte (models link bandwidth).
    pub per_byte_ns: u64,
    /// Maximum uniform jitter added on top.
    pub jitter: Duration,
}

impl LatencyModel {
    /// A LAN-like model: 200 µs base, ~100 Mbit/s (80 ns/byte), 50 µs
    /// jitter. Approximates the paper's testbed.
    pub fn lan() -> Self {
        LatencyModel {
            base: Duration::from_micros(200),
            per_byte_ns: 80,
            jitter: Duration::from_micros(50),
        }
    }

    /// A WAN-like model: 20 ms base, ~10 Mbit/s, 2 ms jitter. Used for
    /// the mobility experiments where members roam across sites.
    pub fn wan() -> Self {
        LatencyModel {
            base: Duration::from_millis(20),
            per_byte_ns: 800,
            jitter: Duration::from_millis(2),
        }
    }

    /// Zero-latency instant delivery (pure algorithm benchmarks).
    pub fn instant() -> Self {
        LatencyModel {
            base: Duration::ZERO,
            per_byte_ns: 0,
            jitter: Duration::ZERO,
        }
    }

    /// Samples the delivery delay for a message of `len` bytes.
    pub fn sample(&self, len: usize, rng: &mut Drbg) -> Duration {
        let tx = Duration::from_micros(self.per_byte_ns.saturating_mul(len as u64) / 1000);
        let jitter_us = self.jitter.as_micros();
        let jitter = if jitter_us == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(rng.gen_range(jitter_us + 1))
        };
        self.base + tx + jitter
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_is_zero() {
        let mut rng = Drbg::from_seed(1);
        let m = LatencyModel::instant();
        assert_eq!(m.sample(10_000, &mut rng), Duration::ZERO);
    }

    #[test]
    fn lan_within_bounds() {
        let mut rng = Drbg::from_seed(2);
        let m = LatencyModel::lan();
        for _ in 0..100 {
            let d = m.sample(1000, &mut rng);
            // base 200us + tx 80us <= d <= + jitter 50us
            assert!(d >= Duration::from_micros(280), "{d:?}");
            assert!(d <= Duration::from_micros(330), "{d:?}");
        }
    }

    #[test]
    fn bigger_messages_take_longer() {
        let mut rng = Drbg::from_seed(3);
        let m = LatencyModel {
            base: Duration::from_micros(100),
            per_byte_ns: 1000,
            jitter: Duration::ZERO,
        };
        let small = m.sample(100, &mut rng);
        let large = m.sample(10_000, &mut rng);
        assert!(large > small);
        assert_eq!(large.as_micros() - small.as_micros(), 9_900);
    }

    #[test]
    fn deterministic_given_same_rng_state() {
        let m = LatencyModel::wan();
        let mut r1 = Drbg::from_seed(4);
        let mut r2 = Drbg::from_seed(4);
        for len in [0usize, 1, 500, 65_536] {
            assert_eq!(m.sample(len, &mut r1), m.sample(len, &mut r2));
        }
    }
}
