//! Closed-form join/rejoin latency (Section V-D of the paper).
//!
//! The handshake latencies are dominated by RSA private operations on
//! the *critical path* — the chain of compute that cannot overlap with
//! network transfer. This model counts those operations per protocol
//! and predicts the latency for a given hardware cost; the simulator
//! (see `mykil-bench`'s `vd_latency`) measures the same quantity with
//! full overlap modeling, and the two agree to within the overlap slack.

/// Operation counts on a protocol's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolOps {
    /// RSA private operations (decrypt/sign) that serialize the path.
    pub private_ops: u32,
    /// RSA public operations (encrypt/verify) on the path.
    pub public_ops: u32,
    /// One-way network hops.
    pub hops: u32,
}

/// The 7-step join protocol (Figure 3).
///
/// Path: C·enc1 → RS(dec1,enc2) → C(dec2,enc3) → RS(dec3, enc4+sign4,
/// enc5+sign5) → C(verify5,dec5,enc6) → AC(dec6,enc7) → C(dec7); the
/// AC's step-4 processing overlaps the step-5 leg and is off-path.
pub const JOIN_OPS: ProtocolOps = ProtocolOps {
    private_ops: 8,
    public_ops: 9,
    hops: 7,
};

/// The 6-step rejoin with departure verification (Figure 7).
///
/// Steps 4–5 add a full AC↔AC round trip with two sign+decrypt pairs on
/// the path.
pub const REJOIN_OPS: ProtocolOps = ProtocolOps {
    private_ops: 9,
    public_ops: 9,
    hops: 6,
};

/// Rejoin without steps 4–5 (the paper's 0.28 s variant).
pub const REJOIN_FAST_OPS: ProtocolOps = ProtocolOps {
    private_ops: 5,
    public_ops: 6,
    hops: 4,
};

impl ProtocolOps {
    /// Predicted latency in seconds for the given per-operation costs.
    ///
    /// `rsa_private_s`/`rsa_public_s` are seconds per RSA operation at
    /// the deployed key size; `hop_s` is the one-way network latency.
    pub fn predict_seconds(&self, rsa_private_s: f64, rsa_public_s: f64, hop_s: f64) -> f64 {
        self.private_ops as f64 * rsa_private_s
            + self.public_ops as f64 * rsa_public_s
            + self.hops as f64 * hop_s
    }
}

/// The paper's testbed constants: RSA-2048 on a Pentium III 1 GHz.
pub mod pentium3 {
    /// Seconds per RSA-2048 private operation.
    pub const RSA_PRIVATE_S: f64 = 0.050;
    /// Seconds per RSA-2048 public operation (e = 65537).
    pub const RSA_PUBLIC_S: f64 = 0.0015;
    /// One-way LAN hop.
    pub const HOP_S: f64 = 0.0005;
}

/// Predicted Section V-D table at the paper's constants.
pub fn paper_predictions() -> [(&'static str, f64); 3] {
    use pentium3::*;
    [
        ("join", JOIN_OPS.predict_seconds(RSA_PRIVATE_S, RSA_PUBLIC_S, HOP_S)),
        ("rejoin", REJOIN_OPS.predict_seconds(RSA_PRIVATE_S, RSA_PUBLIC_S, HOP_S)),
        (
            "rejoin_fast",
            REJOIN_FAST_OPS.predict_seconds(RSA_PRIVATE_S, RSA_PUBLIC_S, HOP_S),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_land_near_the_paper() {
        let p = paper_predictions();
        let join = p[0].1;
        let rejoin = p[1].1;
        let fast = p[2].1;
        // Paper: 0.45 / 0.40 / 0.28 s. The model counts serialized RSA
        // ops only, so demand agreement within ±35%.
        assert!((0.29..0.59).contains(&join), "join={join}");
        assert!((0.26..0.54).contains(&rejoin), "rejoin={rejoin}");
        assert!((0.18..0.38).contains(&fast), "fast={fast}");
    }

    #[test]
    fn removing_steps_4_5_halves_ish_the_rejoin() {
        let p = paper_predictions();
        let ratio = p[2].1 / p[1].1;
        assert!((0.4..0.75).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn faster_hardware_scales_linearly() {
        // A CPU 10x faster than the P-III takes ~1/10 the RSA time.
        let slow = JOIN_OPS.predict_seconds(0.050, 0.0015, 0.0);
        let fast = JOIN_OPS.predict_seconds(0.005, 0.00015, 0.0);
        assert!((slow / fast - 10.0).abs() < 1e-9);
    }

    #[test]
    fn network_dominates_when_crypto_is_free() {
        let t = REJOIN_OPS.predict_seconds(0.0, 0.0, 0.020); // WAN hops
        assert!((t - 6.0 * 0.020).abs() < 1e-12);
    }
}
