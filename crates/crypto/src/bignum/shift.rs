//! Bit-shift operations for [`BigUint`].

use super::BigUint;
use std::ops::{Shl, Shr};

impl BigUint {
    /// Logical left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Logical right shift by `bits` (shifting everything out yields zero).
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return BigUint::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let lo = src[i] >> bit_shift;
            let hi = if i + 1 < src.len() {
                src[i + 1] << (32 - bit_shift)
            } else {
                0
            };
            out.push(lo | hi);
        }
        BigUint::from_limbs(out)
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;

    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;

    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shl_small() {
        let one = BigUint::one();
        assert_eq!(one.shl_bits(4).to_u64(), Some(16));
        assert_eq!(one.shl_bits(32).to_u64(), Some(1 << 32));
        assert_eq!(one.shl_bits(0), one);
    }

    #[test]
    fn shl_crosses_limbs() {
        // (2^31 + 1) << 33 = 2^64 + 2^33
        let n = BigUint::from(0x8000_0001_u64);
        let s = n.shl_bits(33);
        assert_eq!(s.to_string(), "10000000200000000");
        assert_eq!(s.shr_bits(33), n);
    }

    #[test]
    fn shr_to_zero() {
        let n = BigUint::from(0xffff_u64);
        assert!(n.shr_bits(16).is_zero());
        assert!(n.shr_bits(200).is_zero());
        assert!(BigUint::zero().shr_bits(1).is_zero());
    }

    #[test]
    fn shift_round_trip() {
        let n = BigUint::from_bytes_be(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x23, 0x45]);
        for bits in [1, 7, 31, 32, 33, 64, 95] {
            assert_eq!(n.shl_bits(bits).shr_bits(bits), n, "bits={bits}");
        }
    }

    #[test]
    fn operator_sugar() {
        let n = BigUint::from(6_u64);
        assert_eq!((&n << 1).to_u64(), Some(12));
        assert_eq!((&n >> 1).to_u64(), Some(3));
    }

    #[test]
    fn shl_equals_mul_by_power_of_two() {
        let n = BigUint::from_bytes_be(&[9, 8, 7, 6, 5, 4, 3, 2, 1]);
        let p = BigUint::one().shl_bits(67);
        assert_eq!(n.shl_bits(67), &n * &p);
    }
}
