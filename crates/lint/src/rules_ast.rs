//! The syntax-aware dataflow rules L006–L010.
//!
//! These rules run over the [`crate::ast`] layer — per-function event
//! streams plus crate-wide declaration tables — so they can reason
//! about *call order* and *cross-file pairing*, which the token rules
//! L001–L005 cannot:
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | L006 | no iteration over `HashMap`/`HashSet` in deterministic crates |
//! | L007 | WAL commit precedes every ack/reply send in the same handler |
//! | L008 | every armed timer kind is matched or cancelled in its crate |
//! | L009 | no bare narrowing `as` casts in wire/codec files |
//! | L010 | no panicking slice indexing in wire/codec files |
//!
//! Rules receive a [`CrateContext`] — every analyzed file of one
//! workspace crate — and report diagnostics across any of them.

use crate::ast::{last_name_in, split_args, Event, EventKind};
use crate::diagnostics::Diagnostic;
use crate::engine::{AnalyzedFile, CrateContext};
use crate::rules::HARNESS_PATHS;
use crate::tokenizer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Crates whose iteration order is protocol- or replay-visible (L006):
/// the sim-deterministic crates plus the tree crate, whose plans feed
/// byte-exact wire encoding.
pub const DETERMINISTIC_ITER_CRATES: &[&str] = &["core", "net", "tree"];

/// Files that parse or build wire bytes (L009/L010): hostile input
/// flows through these, so casts must be checked and indexing
/// non-panicking. The stable-storage files qualify because recovery
/// parses whatever a crashed (or lying) disk left behind, and the fuzz
/// crate qualifies because it frames arbitrary mutated bytes before
/// handing them to the decoders under test.
pub const WIRE_SENSITIVE_PATHS: &[&str] = &[
    "crates/core/src/wire.rs",
    "crates/core/src/msg.rs",
    "crates/core/src/rekey.rs",
    "crates/core/src/durable.rs",
    "crates/core/src/welcome.rs",
    "crates/core/src/ticket.rs",
    "crates/crypto/src/envelope.rs",
    "crates/net/src/chaos.rs",
    "crates/net/src/storage.rs",
    "crates/net/src/file_store.rs",
    "crates/fuzz/src/engine.rs",
    "crates/fuzz/src/targets.rs",
];

/// Iteration methods whose order is the hash map's bucket order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Idents that mark a flagged iteration as explicitly ordered: a
/// collect into an ordered map/set, or a sort of the collected items,
/// in the same statement.
const SORTED_MARKERS: &[&str] = &[
    "BTreeMap",
    "BTreeSet",
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Durable-commit calls (L007): PR 4's WAL-before-ack contract counts
/// any of these as the commit point.
const WAL_FNS: &[&str] = &["wal_commit", "wal_commit_record"];

/// Protocol-visible emission calls (L007).
const SEND_FNS: &[&str] = &["send", "send_reliable", "multicast"];

/// `Msg` variant-name fragments that mark a send as an ack/reply — the
/// messages a peer takes as confirmation that state changed on this
/// node.
const ACK_MARKERS: &[&str] = &["Ack", "Denied", "Welcome", "Grant", "Reply"];

/// Integer types a bare `as` cast can silently truncate into (L009).
/// `usize`/`u64`/`u128` widen on every supported target and stay legal.
const NARROWING_INT_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Slice calls that panic on length mismatch (L010).
const PANICKING_SLICE_FNS: &[&str] = &[
    "split_at",
    "split_at_mut",
    "copy_from_slice",
    "clone_from_slice",
];

fn diag(rule: &'static str, file: &str, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        file: file.to_string(),
        line,
        message,
    }
}

/// Whether the event's anchor token is inside test code.
fn in_test(file: &AnalyzedFile, e: &Event) -> bool {
    file.test_mask.get(e.tok).copied().unwrap_or(false)
}

/// End of the statement containing token `from` (exclusive): the next
/// `;` at the bracket depth of `from`, capped at `limit`.
fn statement_end(tokens: &[Token], from: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < limit {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return i;
            }
        } else if t.is_punct(';') && depth == 0 {
            return i;
        }
        i += 1;
    }
    limit
}

/// Start of the statement containing token `from`: the token after the
/// previous `;`, `{` or `}` at the bracket depth of `from`, floored at
/// `floor`.
fn statement_start(tokens: &[Token], from: usize, floor: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i > floor {
        let t = &tokens[i - 1];
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth += 1;
            if t.is_punct('}') && depth == 1 {
                // A `}` at our depth closes a preceding block statement.
                return i;
            }
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth -= 1;
            if depth < 0 {
                return i;
            }
        } else if t.is_punct(';') && depth == 0 {
            return i;
        }
        i -= 1;
    }
    floor
}

/// L006: iteration over hash-ordered collections in deterministic
/// crates. A name is hash-typed when any declaration in the crate types
/// it `HashMap`/`HashSet`; `for` loops and iteration-method calls over
/// such names are flagged unless the same statement sorts the result or
/// collects it into an ordered container.
pub fn check_l006(ctx: &CrateContext<'_>) -> Vec<Diagnostic> {
    if !ctx
        .crate_name
        .is_some_and(|c| DETERMINISTIC_ITER_CRATES.contains(&c))
    {
        return Vec::new();
    }
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    for f in ctx.files {
        for d in &f.ast.decls {
            // Test-only declarations don't taint production names.
            let test_only = f.test_mask.get(d.tok).copied().unwrap_or(false);
            if !test_only && (d.ty_head == "HashMap" || d.ty_head == "HashSet") {
                hash_names.insert(&d.name);
            }
        }
    }
    if hash_names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in ctx.files {
        for fun in &f.ast.fns {
            for e in &fun.events {
                if in_test(f, e) {
                    continue;
                }
                let (what, range) = match &e.kind {
                    EventKind::MethodCall { method, recv } if ITER_METHODS.contains(&method.as_str()) => {
                        (format!(".{method}()"), recv)
                    }
                    EventKind::ForLoop { iter } => ("`for` loop".to_string(), iter),
                    _ => continue,
                };
                let Some(name) = last_name_in(&f.tokens, range) else {
                    continue;
                };
                if !hash_names.contains(name.as_str()) {
                    continue;
                }
                // Escape hatch: an explicitly ordered use in the same
                // statement — scan the whole statement so a
                // `let ks: BTreeSet<_> = …` annotation counts too.
                let start = statement_start(&f.tokens, e.tok, fun.body.start);
                let end = statement_end(&f.tokens, e.tok, fun.body.end);
                let sorted = (start..end).any(|i| {
                    let t = &f.tokens[i];
                    t.kind == TokenKind::Ident && SORTED_MARKERS.contains(&t.text.as_str())
                });
                if sorted {
                    continue;
                }
                out.push(diag(
                    "L006",
                    &f.path,
                    e.line,
                    format!(
                        "{what} over hash-ordered `{name}` is nondeterministic; \
                         iteration order feeds replayable schedules and wire bytes — \
                         use BTreeMap/BTreeSet or collect-and-sort in the same statement"
                    ),
                ));
            }
        }
    }
    out
}

/// L007: WAL-before-ack call ordering. In a core-crate handler whose
/// body both commits to the WAL and emits an ack/reply `Msg`, every
/// ack/reply emission must come after a commit: an acknowledgement that
/// leaves before the write-ahead record is a durability hole (a crash
/// between the two orphans a peer that believes the state change
/// stuck).
pub fn check_l007(ctx: &CrateContext<'_>) -> Vec<Diagnostic> {
    if ctx.crate_name != Some("core") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in ctx.files {
        if HARNESS_PATHS.contains(&f.path.as_str()) {
            continue;
        }
        for fun in &f.ast.fns {
            let first_wal = fun.events.iter().find_map(|e| {
                (!in_test(f, e) && event_callee(e).is_some_and(|n| WAL_FNS.contains(&n)))
                    .then_some(e.tok)
            });
            let Some(first_wal) = first_wal else {
                continue; // no durable commit in this fn — out of scope
            };
            let bindings = ack_bindings(&f.tokens, &fun.body);
            for e in &fun.events {
                if in_test(f, e) || e.tok >= first_wal {
                    continue;
                }
                if !event_callee(e).is_some_and(|n| SEND_FNS.contains(&n)) {
                    continue;
                }
                if let Some(variant) = ack_variant_in_args(&f.tokens, &e.args, &bindings) {
                    out.push(diag(
                        "L007",
                        &f.path,
                        e.line,
                        format!(
                            "`Msg::{variant}` is sent before this handler's WAL commit; \
                             the ack must not leave the node until the state change is \
                             durable (WAL-before-ack, DESIGN.md §9)"
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// The callee name of a call-like event.
fn event_callee(e: &Event) -> Option<&str> {
    match &e.kind {
        EventKind::Call { path } => path.last().map(|s| s.as_str()),
        EventKind::MethodCall { method, .. } => Some(method.as_str()),
        _ => None,
    }
}

/// `let NAME = … Msg::Variant …;` bindings in a body whose variant is
/// ack-like, so `ctx.send(to, kind, reply)` resolves through `reply`.
fn ack_bindings(tokens: &[Token], body: &Range<usize>) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let mut i = body.start;
    while i + 2 < body.end {
        if tokens[i].is_ident("Msg")
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
        {
            if let Some(v) = tokens.get(i + 3).filter(|t| t.kind == TokenKind::Ident) {
                if is_ack_variant(&v.text) {
                    // Find the statement start and check for `let NAME =`.
                    let mut j = i;
                    while j > body.start {
                        let t = &tokens[j - 1];
                        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                            break;
                        }
                        j -= 1;
                    }
                    let name = match (
                        tokens.get(j),
                        tokens.get(j + 1),
                        tokens.get(j + 2),
                        tokens.get(j + 3),
                    ) {
                        (Some(l), Some(n), Some(eq), _)
                            if l.is_ident("let")
                                && n.kind == TokenKind::Ident
                                && eq.is_punct('=') =>
                        {
                            Some(n.text.clone())
                        }
                        (Some(l), Some(m), Some(n), Some(eq))
                            if l.is_ident("let")
                                && m.is_ident("mut")
                                && n.kind == TokenKind::Ident
                                && eq.is_punct('=') =>
                        {
                            Some(n.text.clone())
                        }
                        _ => None,
                    };
                    if let Some(name) = name {
                        map.insert(name, v.text.clone());
                    }
                }
            }
        }
        i += 1;
    }
    map
}

fn is_ack_variant(name: &str) -> bool {
    ACK_MARKERS.iter().any(|m| name.contains(m))
}

/// Scans a send's argument tokens for a direct `Msg::AckLike` build or
/// an ident bound to one.
fn ack_variant_in_args(
    tokens: &[Token],
    args: &Range<usize>,
    bindings: &BTreeMap<String, String>,
) -> Option<String> {
    let mut i = args.start;
    while i < args.end {
        let t = &tokens[i];
        if t.is_ident("Msg")
            && tokens.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|x| x.is_punct(':'))
        {
            if let Some(v) = tokens.get(i + 3).filter(|x| x.kind == TokenKind::Ident) {
                if is_ack_variant(&v.text) {
                    return Some(v.text.clone());
                }
            }
        }
        if t.kind == TokenKind::Ident {
            if let Some(v) = bindings.get(&t.text) {
                return Some(v.clone());
            }
        }
        i += 1;
    }
    None
}

/// L008: timer arm/handle pairing. Every `set_timer(_, KIND)` arm site
/// in a protocol crate must use a *named* kind constant, and that kind
/// must be consumed somewhere else in the crate — an `on_timer` match
/// arm, a comparison, or a cancel path. An armed kind nobody matches is
/// exactly PR 3's crash-purge bug class: the timer fires (or survives a
/// crash) and nobody is responsible for it.
pub fn check_l008(ctx: &CrateContext<'_>) -> Vec<Diagnostic> {
    if !ctx.crate_name.is_some_and(|c| c == "core" || c == "net") {
        return Vec::new();
    }
    struct Arm<'a> {
        kind: String,
        file: &'a str,
        line: u32,
    }
    let mut arms: Vec<Arm<'_>> = Vec::new();
    let mut out = Vec::new();
    // Token positions used as a set_timer tag, per file: these do not
    // count as "handling" the kind.
    let mut tag_positions: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
    for f in ctx.files {
        if HARNESS_PATHS.contains(&f.path.as_str()) {
            continue;
        }
        for fun in &f.ast.fns {
            for e in &fun.events {
                if in_test(f, e) || event_callee(e) != Some("set_timer") {
                    continue;
                }
                let parts = split_args(&f.tokens, &e.args);
                let Some(tag) = parts.get(1) else { continue };
                let single = tag.len() == 1;
                if single && f.tokens[tag.start].kind == TokenKind::Literal {
                    out.push(diag(
                        "L008",
                        &f.path,
                        e.line,
                        "timer armed with a bare literal tag; use a named \
                         `TIMER_*` kind constant so arm and handling sites \
                         can be paired"
                            .to_string(),
                    ));
                    continue;
                }
                if let Some(kind) = last_name_in(&f.tokens, tag) {
                    tag_positions
                        .entry(f.path.as_str())
                        .or_default()
                        .extend(tag.clone());
                    arms.push(Arm {
                        kind,
                        file: &f.path,
                        line: e.line,
                    });
                }
            }
        }
    }
    // A kind is handled when it appears outside arm-tag position, its
    // own `const` definition, and `use` imports — i.e. a match arm, a
    // comparison, or a cancel site.
    let mut handled: BTreeSet<String> = BTreeSet::new();
    for f in ctx.files {
        let tags = tag_positions.get(f.path.as_str());
        for (i, t) in f.tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            if !arms.iter().any(|a| a.kind == t.text) {
                continue;
            }
            if tags.is_some_and(|s| s.contains(&i)) {
                continue;
            }
            if i > 0 && f.tokens[i - 1].is_ident("const") {
                continue;
            }
            if ident_in_use_statement(&f.tokens, i) {
                continue;
            }
            handled.insert(t.text.clone());
        }
    }
    for a in arms {
        if !handled.contains(&a.kind) {
            out.push(diag(
                "L008",
                a.file,
                a.line,
                format!(
                    "timer kind `{}` is armed here but never matched or \
                     cancelled anywhere in this crate; every armed timer \
                     needs a handling/cancel site (stale-timer bug class)",
                    a.kind
                ),
            ));
        }
    }
    out
}

/// Whether the ident at `i` sits inside a `use …;` statement.
fn ident_in_use_statement(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let t = &tokens[j - 1];
        if t.is_punct(';') || t.is_punct('}') {
            break;
        }
        if t.is_ident("use") {
            return true;
        }
        j -= 1;
    }
    tokens.get(j).is_some_and(|t| t.is_ident("use"))
}

/// L009: bare narrowing `as` casts in wire/codec files. `len() as u32`
/// shipped a real truncation bug (PR 5's length-prefix fix); narrowing
/// must go through `try_from` with a `Malformed` error.
pub fn check_l009(ctx: &CrateContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in ctx.files {
        if !WIRE_SENSITIVE_PATHS.contains(&f.path.as_str()) {
            continue;
        }
        for fun in &f.ast.fns {
            for e in &fun.events {
                if in_test(f, e) {
                    continue;
                }
                if let EventKind::Cast { target } = &e.kind {
                    if NARROWING_INT_TARGETS.contains(&target.as_str()) {
                        out.push(diag(
                            "L009",
                            &f.path,
                            e.line,
                            format!(
                                "bare `as {target}` in wire/codec code can silently \
                                 truncate (the PR 5 length-prefix bug class); use \
                                 `{target}::try_from(..)` and surface \
                                 `ProtocolError::Malformed`"
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// L010: panicking slice access in wire/codec files: `x[i]` / `x[a..b]`
/// indexing and the panicking slice-copy/split family. Hostile bytes
/// flow through these files; use `get(..)`, `split_at_checked`, or
/// fixed-size `try_into` instead.
pub fn check_l010(ctx: &CrateContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in ctx.files {
        if !WIRE_SENSITIVE_PATHS.contains(&f.path.as_str()) {
            continue;
        }
        for fun in &f.ast.fns {
            for e in &fun.events {
                if in_test(f, e) {
                    continue;
                }
                match &e.kind {
                    EventKind::Index { base } => {
                        let shown = last_name_in(&f.tokens, base)
                            .unwrap_or_else(|| "expression".to_string());
                        out.push(diag(
                            "L010",
                            &f.path,
                            e.line,
                            format!(
                                "indexing `{shown}[..]` panics on out-of-range input; \
                                 wire/codec code must use `get(..)` / \
                                 `split_at_checked` / `try_into` and return \
                                 `Malformed`"
                            ),
                        ));
                    }
                    EventKind::MethodCall { method, .. }
                        if PANICKING_SLICE_FNS.contains(&method.as_str()) =>
                    {
                        out.push(diag(
                            "L010",
                            &f.path,
                            e.line,
                            format!(
                                "`{method}` panics on length mismatch; wire/codec \
                                 code must use a checked variant and return \
                                 `Malformed`"
                            ),
                        ));
                    }
                    _ => {}
                }
            }
        }
    }
    out
}
