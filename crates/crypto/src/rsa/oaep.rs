//! RSAES-OAEP encryption (RFC 8017 §7.1 with MGF1-SHA256).
//!
//! A single RSA block holds at most `k - 2·hLen - 2` plaintext bytes
//! (190 bytes for a 2048-bit key with SHA-256). The paper hit the same
//! wall with OpenSSL's 215-byte limit and worked around it by wrapping a
//! one-time symmetric key; [`crate::envelope::HybridCiphertext`]
//! implements that workaround.

use super::{RsaKeyPair, RsaPublicKey};
use crate::bignum::BigUint;
use crate::sha256::{Sha256, DIGEST_LEN};
use crate::CryptoError;
use rand::RngCore;

/// MGF1 mask generation with SHA-256.
fn mgf1(seed: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + DIGEST_LEN);
    let mut counter = 0u32;
    while out.len() < len {
        let mut h = Sha256::new();
        h.update(seed);
        h.update(&counter.to_be_bytes());
        out.extend_from_slice(&h.finalize());
        counter += 1;
    }
    out.truncate(len);
    out
}

/// Label hash for an empty label (OAEP default).
fn empty_label_hash() -> [u8; DIGEST_LEN] {
    Sha256::digest(b"")
}

impl RsaPublicKey {
    /// Maximum plaintext bytes that fit in one encrypted block.
    pub fn max_plaintext_len(&self) -> usize {
        self.block_len().saturating_sub(2 * DIGEST_LEN + 2)
    }

    /// Encrypts `msg` under OAEP, producing one `block_len()`-byte
    /// ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLong`] when `msg` exceeds
    /// [`Self::max_plaintext_len`] — the situation the paper resolves
    /// with a hybrid one-time key (Section V-D).
    pub fn encrypt<R: RngCore + ?Sized>(
        &self,
        msg: &[u8],
        rng: &mut R,
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.block_len();
        let max = self.max_plaintext_len();
        if msg.len() > max {
            return Err(CryptoError::MessageTooLong {
                len: msg.len(),
                max,
            });
        }
        // EM = 0x00 || maskedSeed || maskedDB
        let db_len = k - DIGEST_LEN - 1;
        let mut db = Vec::with_capacity(db_len);
        db.extend_from_slice(&empty_label_hash());
        db.resize(db_len - msg.len() - 1, 0);
        db.push(0x01);
        db.extend_from_slice(msg);
        debug_assert_eq!(db.len(), db_len);

        let mut seed = [0u8; DIGEST_LEN];
        rng.fill_bytes(&mut seed);

        let db_mask = mgf1(&seed, db_len);
        for (b, m) in db.iter_mut().zip(&db_mask) {
            *b ^= m;
        }
        let seed_mask = mgf1(&db, DIGEST_LEN);
        let mut masked_seed = seed;
        for (b, m) in masked_seed.iter_mut().zip(&seed_mask) {
            *b ^= m;
        }

        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.extend_from_slice(&masked_seed);
        em.extend_from_slice(&db);

        let m_int = BigUint::from_bytes_be(&em);
        let c_int = self.raw_public_op(&m_int)?;
        c_int.to_bytes_be_padded(k)
    }
}

impl RsaKeyPair {
    /// Decrypts an OAEP ciphertext produced by [`RsaPublicKey::encrypt`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidCiphertextLength`] for a wrong-sized
    /// input and [`CryptoError::PaddingError`] when the OAEP structure
    /// fails to verify (wrong key, corrupted ciphertext).
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = self.public().block_len();
        if ciphertext.len() != k {
            return Err(CryptoError::InvalidCiphertextLength {
                len: ciphertext.len(),
                expected: k,
            });
        }
        let c_int = BigUint::from_bytes_be(ciphertext);
        let m_int = self.raw_private_op(&c_int)?;
        let em = m_int.to_bytes_be_padded(k)?;

        if em[0] != 0x00 {
            return Err(CryptoError::PaddingError);
        }
        let (masked_seed, masked_db) = em[1..].split_at(DIGEST_LEN);
        let seed_mask = mgf1(masked_db, DIGEST_LEN);
        let seed: Vec<u8> = masked_seed
            .iter()
            .zip(&seed_mask)
            .map(|(a, b)| a ^ b)
            .collect();
        let db_mask = mgf1(&seed, masked_db.len());
        let db: Vec<u8> = masked_db
            .iter()
            .zip(&db_mask)
            .map(|(a, b)| a ^ b)
            .collect();

        if !crate::ct::ct_eq(&db[..DIGEST_LEN], &empty_label_hash()) {
            return Err(CryptoError::PaddingError);
        }
        // Skip zero padding, expect a 0x01 separator, rest is the message.
        let rest = &db[DIGEST_LEN..];
        let sep = rest
            .iter()
            .position(|&b| b != 0)
            .ok_or(CryptoError::PaddingError)?;
        if rest[sep] != 0x01 {
            return Err(CryptoError::PaddingError);
        }
        Ok(rest[sep + 1..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_keys::{pair768, pair768_b};
    use super::*;
    use crate::drbg::Drbg;

    #[test]
    fn round_trip_various_lengths() {
        let pair = pair768();
        let mut rng = Drbg::from_seed(20);
        let max = pair.public().max_plaintext_len();
        for len in [0usize, 1, 16, max / 2, max] {
            let msg: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = pair.public().encrypt(&msg, &mut rng).unwrap();
            assert_eq!(ct.len(), pair.public().block_len());
            assert_eq!(pair.decrypt(&ct).unwrap(), msg, "len={len}");
        }
    }

    #[test]
    fn oversize_message_rejected_like_openssl() {
        // Mirrors the paper's Section V-D observation: the aux-key path
        // does not fit one block.
        let pair = pair768();
        let mut rng = Drbg::from_seed(21);
        let max = pair.public().max_plaintext_len();
        let msg = vec![0u8; max + 1];
        match pair.public().encrypt(&msg, &mut rng) {
            Err(CryptoError::MessageTooLong { len, max: m }) => {
                assert_eq!(len, max + 1);
                assert_eq!(m, max);
            }
            other => panic!("expected MessageTooLong, got {other:?}"),
        }
    }

    #[test]
    fn randomized_encryption() {
        let pair = pair768();
        let mut rng = Drbg::from_seed(22);
        let c1 = pair.public().encrypt(b"same message", &mut rng).unwrap();
        let c2 = pair.public().encrypt(b"same message", &mut rng).unwrap();
        assert_ne!(c1, c2, "OAEP must be randomized");
        assert_eq!(pair.decrypt(&c1).unwrap(), b"same message");
        assert_eq!(pair.decrypt(&c2).unwrap(), b"same message");
    }

    #[test]
    fn wrong_key_fails_padding() {
        let mut rng = Drbg::from_seed(23);
        let ct = pair768().public().encrypt(b"secret", &mut rng).unwrap();
        assert!(matches!(
            pair768_b().decrypt(&ct),
            Err(CryptoError::PaddingError)
        ));
    }

    #[test]
    fn corrupted_ciphertext_fails() {
        let pair = pair768();
        let mut rng = Drbg::from_seed(24);
        let mut ct = pair.public().encrypt(b"secret", &mut rng).unwrap();
        ct[10] ^= 0x80;
        assert!(pair.decrypt(&ct).is_err());
    }

    #[test]
    fn wrong_length_ciphertext_rejected() {
        let pair = pair768();
        assert!(matches!(
            pair.decrypt(&[0u8; 10]),
            Err(CryptoError::InvalidCiphertextLength { len: 10, .. })
        ));
    }

    #[test]
    fn mgf1_deterministic_and_sized() {
        let m1 = mgf1(b"seed", 100);
        let m2 = mgf1(b"seed", 100);
        assert_eq!(m1, m2);
        assert_eq!(m1.len(), 100);
        assert_ne!(mgf1(b"seed2", 100), m1);
        assert_eq!(mgf1(b"x", 0).len(), 0);
    }

    #[test]
    fn max_plaintext_matches_paper_shape() {
        // For a 2048-bit key the paper reports 215 usable bytes (SHA-1
        // OAEP); with SHA-256 the same formula k - 2*hLen - 2 gives 190.
        // At our 768-bit test size: 96 - 64 - 2 = 30.
        let k = pair768().public().block_len();
        assert_eq!(k, 96);
        assert_eq!(
            pair768().public().max_plaintext_len(),
            k - 2 * DIGEST_LEN - 2
        );
        assert_eq!(pair768().public().max_plaintext_len(), 30);
    }
}
