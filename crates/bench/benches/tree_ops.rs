//! Auxiliary-key-tree operation costs at the paper's area size.

use criterion::{criterion_group, criterion_main, Criterion};
use mykil_crypto::drbg::Drbg;
use mykil_tree::{KeyTree, MemberId, TreeConfig};

const AREA: u64 = 5_000;

fn bench_tree(c: &mut Criterion) {
    let mut rng = Drbg::from_seed(1);
    let mut tree = KeyTree::new(TreeConfig::quad(), &mut rng);
    for m in 0..AREA {
        tree.join(MemberId(m), &mut rng).unwrap();
    }

    let mut g = c.benchmark_group("tree_5000_members");
    g.bench_function("join_leave_cycle", |b| {
        let mut next = AREA;
        b.iter(|| {
            let m = MemberId(next);
            next += 1;
            let j = tree.join(m, &mut rng).unwrap();
            let l = tree.leave(m, &mut rng).unwrap();
            std::hint::black_box((j.multicast_bytes(), l.multicast_bytes()))
        });
    });
    g.bench_function("path_keys", |b| {
        let mut path = Vec::new();
        b.iter(|| {
            tree.path_keys_into(MemberId(AREA / 2), &mut path).unwrap();
            std::hint::black_box(path.len())
        })
    });
    g.bench_function("snapshot", |b| b.iter(|| tree.snapshot()));
    let snap = tree.snapshot();
    g.bench_function("restore", |b| b.iter(|| KeyTree::restore(&snap).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);
