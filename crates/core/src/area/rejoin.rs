//! The six-step rejoin protocol at the area controllers (Figure 7).
//!
//! `AC_B` (the new controller) authenticates the mobile member with its
//! ticket and a challenge–response, then — to defeat ticket-sharing
//! cohorts — asks `AC_A` (the previous controller) to confirm the member
//! really departed (steps 4–5). Under a partition between the
//! controllers, [`RejoinPolicy`](crate::config::RejoinPolicy) decides
//! between denying (option 1) and admitting with the NIC-address check
//! (option 2).

use super::{AreaController, PendingRejoin, RejoinStage};
use crate::config::RejoinPolicy;
use crate::durable::AcWalRecord;
use crate::identity::{ClientId, DeviceId};
use crate::msg::{Msg, RejoinDenyReason};
use crate::ticket::SealedTicket;
use crate::wire::{Reader, Writer};
use mykil_crypto::envelope::HybridCiphertext;
use mykil_crypto::rsa::RsaPublicKey;
use mykil_net::{Context, NodeId, Time};
use rand::RngCore;

impl AreaController {
    /// Rejoin step 1: ticket presentation.
    pub(crate) fn handle_rejoin1(&mut self, ctx: &mut Context<'_>, from: NodeId, ct: &[u8]) {
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = HybridCiphertext::from_bytes(ct)
            .ok()
            .and_then(|hc| hc.decrypt(&self.keypair).ok())
        else {
            return;
        };
        let parsed = (|| {
            let mut r = Reader::new(&plain);
            let nonce_cb = r.u64().ok()?;
            let device = DeviceId(r.array::<6>().ok()?);
            let ticket = r.bytes().ok()?.to_vec();
            r.finish().ok()?;
            Some((nonce_cb, device, ticket))
        })();
        let Some((nonce_cb, device, ticket_bytes)) = parsed else {
            return;
        };
        // Verify the ticket under K_shared.
        ctx.charge_compute(self.cost.symmetric_op);
        let Ok(ticket) = SealedTicket(ticket_bytes).open(&self.k_shared) else {
            self.deny_rejoin(ctx, from, RejoinDenyReason::BadTicket);
            return;
        };
        if !ticket.is_valid_at(ctx.now()) {
            self.deny_rejoin(ctx, from, RejoinDenyReason::BadTicket);
            return;
        }
        let Ok(client_pub) = RsaPublicKey::from_bytes(&ticket.public_key) else {
            self.deny_rejoin(ctx, from, RejoinDenyReason::BadTicket);
            return;
        };
        // Step 2: challenge the client (it must hold the private key
        // matching the ticket, which defeats simple ticket theft).
        let nonce_bc = ctx.rng().next_u64();
        let mut w = Writer::new();
        w.u64(nonce_cb.wrapping_add(1)).u64(nonce_bc);
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct2) = HybridCiphertext::encrypt(&client_pub, &w.into_bytes(), ctx.rng()) else {
            return;
        };
        self.pending_rejoins.insert(
            from,
            PendingRejoin {
                client: ticket.client,
                pubkey: client_pub,
                device,
                ticket_device: ticket.device,
                valid_until: ticket.valid_until,
                nonce_bc,
                stage: RejoinStage::AwaitStep3,
                deadline: ctx.now() + self.cfg.member_disconnect_after(),
            },
        );
        // Remember where to ask about departure.
        self.pending_rejoin_prev_ac
            .insert(from, (ticket.last_ac, ticket.last_area));
        ctx.send(from, "rejoin", Msg::Rejoin2 { ct: ct2.to_bytes() }.to_bytes());
    }

    /// Rejoin step 3: the client answers the challenge; `AC_B` then asks
    /// `AC_A` (step 4) or decides locally.
    pub(crate) fn handle_rejoin3(&mut self, ctx: &mut Context<'_>, from: NodeId, ct: &[u8]) {
        let Some(pending) = self.pending_rejoins.get(&from) else {
            return;
        };
        if pending.stage != RejoinStage::AwaitStep3 {
            return;
        }
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let ok = HybridCiphertext::from_bytes(ct)
            .ok()
            .and_then(|hc| hc.decrypt(&self.keypair).ok())
            .and_then(|plain| {
                let mut r = Reader::new(&plain);
                let v = r.u64().ok()?;
                r.finish().ok()?;
                Some(v)
            })
            .map(|v| v == pending.nonce_bc.wrapping_add(1))
            .unwrap_or(false);
        if !ok {
            self.pending_rejoins.remove(&from);
            self.pending_rejoin_prev_ac.remove(&from);
            return;
        }

        // Recorded at step 1; a missing entry means the peer skipped the
        // handshake order — drop the rejoin rather than panic.
        let Some((prev_ac, _prev_area)) = self.pending_rejoin_prev_ac.get(&from).copied() else {
            self.pending_rejoins.remove(&from);
            return;
        };

        // Ablation / paper Section V-D: skip the departure check
        // entirely (the 0.28 s rejoin variant).
        if !self.cfg.verify_departure_on_rejoin {
            self.resolve_unverified_rejoin(ctx, from);
            return;
        }

        // Local case: the member is rejoining its own previous area
        // (e.g. after a transient disconnection) — no steps 4/5 needed.
        if prev_ac == ctx.id().index() as u32 {
            let client = self.pending_rejoins[&from].client;
            if self.tree.contains(mykil_tree::MemberId(client.0)) {
                // Clear the stale membership before re-admitting.
                self.queue_leave(client);
            }
            self.complete_rejoin(ctx, from);
            return;
        }

        // Steps 4: ask the previous controller whether the member left.
        let target = NodeId::from_index(prev_ac as usize);
        let Some(prev_pub) = self.directory_pubkey(target) else {
            // Unknown previous AC: fall back to the partition policy.
            self.resolve_unverified_rejoin(ctx, from);
            return;
        };
        let client = self.pending_rejoins[&from].client;
        let mut w = Writer::new();
        w.u64(client.0)
            .u64(ctx.now().as_micros())
            .u32(from.index() as u32);
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct4) = HybridCiphertext::encrypt(&prev_pub, &w.into_bytes(), ctx.rng()) else {
            return;
        };
        let ct4 = ct4.to_bytes();
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig4 = self.keypair.sign(&ct4);
        if let Some(p) = self.pending_rejoins.get_mut(&from) {
            p.stage = RejoinStage::AwaitPrevAc;
            p.deadline = ctx.now() + self.cfg.member_disconnect_after();
        }
        ctx.send(target, "rejoin", Msg::Rejoin4 { ct: ct4, sig: sig4 }.to_bytes());
    }

    /// Rejoin step 4 at the *previous* controller: report whether the
    /// client has departed, evicting it if it is silently stale.
    pub(crate) fn handle_rejoin4(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        ct: &[u8],
        sig: &[u8],
    ) {
        let Some(requester_pub) = self.directory_pubkey(from) else {
            return;
        };
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        if !requester_pub.verify(ct, sig) {
            return;
        }
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = HybridCiphertext::from_bytes(ct)
            .ok()
            .and_then(|hc| hc.decrypt(&self.keypair).ok())
        else {
            return;
        };
        let parsed = (|| {
            let mut r = Reader::new(&plain);
            let client = ClientId(r.u64().ok()?);
            let ts = Time::from_micros(r.u64().ok()?);
            let client_node = r.u32().ok()?;
            r.finish().ok()?;
            Some((client, ts, client_node))
        })();
        let Some((client, ts, client_node)) = parsed else {
            return;
        };
        if !self.fresh_timestamp(ctx.now(), ts) {
            ctx.stats().bump("ac-replays-rejected", 1);
            return;
        }
        let departed = match self.members.get(&client) {
            None => true,
            Some(rec) => {
                let silent = ctx.now().since(rec.last_heard) >= self.cfg.member_disconnect_after();
                if silent {
                    // The member moved away; finalize its departure —
                    // durably, before telling the new controller it may
                    // admit (the member must never hold membership in
                    // two areas across a crash of this one).
                    self.queue_leave(client);
                    self.wal_commit_record(ctx, &AcWalRecord::Evict { client: client.0 });
                    self.after_membership_change(ctx);
                    self.stats.evictions += 1;
                    true
                } else {
                    false
                }
            }
        };
        // Step 5 response, encrypted + signed.
        let mut w = Writer::new();
        w.u64(client.0)
            .u8(departed as u8)
            .u64(ctx.now().as_micros())
            .u32(client_node);
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct5) = HybridCiphertext::encrypt(&requester_pub, &w.into_bytes(), ctx.rng())
        else {
            return;
        };
        let ct5 = ct5.to_bytes();
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig5 = self.keypair.sign(&ct5);
        ctx.send(from, "rejoin", Msg::Rejoin5 { ct: ct5, sig: sig5 }.to_bytes());
    }

    /// Rejoin step 5 back at the new controller.
    pub(crate) fn handle_rejoin5(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        ct: &[u8],
        sig: &[u8],
    ) {
        let Some(prev_pub) = self.directory_pubkey(from) else {
            return;
        };
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        if !prev_pub.verify(ct, sig) {
            return;
        }
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = HybridCiphertext::from_bytes(ct)
            .ok()
            .and_then(|hc| hc.decrypt(&self.keypair).ok())
        else {
            return;
        };
        let parsed = (|| {
            let mut r = Reader::new(&plain);
            let client = ClientId(r.u64().ok()?);
            let departed = r.u8().ok()? == 1;
            let ts = Time::from_micros(r.u64().ok()?);
            let client_node = r.u32().ok()?;
            r.finish().ok()?;
            Some((client, departed, ts, client_node))
        })();
        let Some((client, departed, ts, client_node)) = parsed else {
            return;
        };
        if !self.fresh_timestamp(ctx.now(), ts) {
            return;
        }
        let client_node = NodeId::from_index(client_node as usize);
        let Some(pending) = self.pending_rejoins.get(&client_node) else {
            return;
        };
        if pending.stage != RejoinStage::AwaitPrevAc || pending.client != client {
            return;
        }
        if departed {
            self.complete_rejoin(ctx, client_node);
        } else {
            self.pending_rejoins.remove(&client_node);
            self.pending_rejoin_prev_ac.remove(&client_node);
            self.deny_rejoin(ctx, client_node, RejoinDenyReason::StillMemberElsewhere);
        }
    }

    /// Admits the pending rejoiner and sends the signed step-6 welcome.
    pub(crate) fn complete_rejoin(&mut self, ctx: &mut Context<'_>, client_node: NodeId) {
        let Some(pending) = self.pending_rejoins.remove(&client_node) else {
            return;
        };
        self.pending_rejoin_prev_ac.remove(&client_node);
        let Ok(welcome) = self.admit(
            ctx,
            pending.client,
            pending.pubkey.clone(),
            Some(pending.device),
            pending.valid_until,
            client_node,
            0,
        ) else {
            ctx.stats().bump("ac-admissions-rejected", 1);
            return;
        };
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct6) = HybridCiphertext::encrypt(&pending.pubkey, &welcome.to_bytes(), ctx.rng())
        else {
            return;
        };
        let ct6 = ct6.to_bytes();
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig6 = self.keypair.sign(&ct6);
        self.stats.rejoins_admitted += 1;
        ctx.send(
            client_node,
            "rejoin",
            Msg::Rejoin6 { ct: ct6, sig: sig6 }.to_bytes(),
        );
        self.after_membership_change(ctx);
    }

    /// Applies the partition policy when `AC_A` cannot confirm the
    /// departure (Section IV-B options 1 and 2).
    pub(crate) fn resolve_unverified_rejoin(&mut self, ctx: &mut Context<'_>, client_node: NodeId) {
        let Some(pending) = self.pending_rejoins.get(&client_node) else {
            return;
        };
        match self.cfg.rejoin_policy {
            RejoinPolicy::Deny => {
                self.pending_rejoins.remove(&client_node);
                self.pending_rejoin_prev_ac.remove(&client_node);
                self.deny_rejoin(ctx, client_node, RejoinDenyReason::PartitionedStrict);
            }
            RejoinPolicy::AdmitWithDeviceCheck => {
                if pending.device == pending.ticket_device {
                    self.complete_rejoin(ctx, client_node);
                } else {
                    self.pending_rejoins.remove(&client_node);
                    self.pending_rejoin_prev_ac.remove(&client_node);
                    self.deny_rejoin(ctx, client_node, RejoinDenyReason::DeviceMismatch);
                }
            }
        }
    }

    pub(crate) fn deny_rejoin(
        &mut self,
        ctx: &mut Context<'_>,
        to: NodeId,
        reason: RejoinDenyReason,
    ) {
        self.stats.rejoins_denied += 1;
        ctx.stats().bump("ac-rejoins-denied", 1);
        ctx.send(to, "rejoin", Msg::RejoinDenied { reason }.to_bytes());
    }
}
