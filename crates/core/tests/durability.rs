//! Crash-durability regression tests (ISSUE 4): controllers and the
//! registration server persist their authoritative state through a
//! write-ahead log plus checkpoints, and a crash wipes everything
//! volatile. These scenarios pin down recovery composed with backup
//! takeover and with injected storage faults: a primary that recovers
//! before its backup promotes resumes its role from stable storage;
//! one that recovers after promotion is epoch-fenced back down; a torn
//! WAL tail falls back to the last checkpoint and the orphaned member
//! re-syncs via its ticket; a corrupted checkpoint falls back to the
//! older ping-pong slot.
//!
//! Every scenario runs twice — once against the simulated
//! [`SimStore`](mykil_net::SimStore) device and once against a real
//! file-backed [`FileStore`](mykil_net::FileStore) in a scratch
//! directory, wrapped in [`FaultyStore`](mykil_net::FaultyStore) so the
//! same fault injection applies (the `*_file_backed` variants). The
//! recovery outcome must be identical: the durable-state contract does
//! not depend on the backend.

use mykil::area::Role;
use mykil::durable::{snapshot_summary, AcCheckpoint};
use mykil::group::GroupBuilder;
use mykil::invariants::InvariantChecker;
use mykil_net::{Duration, FaultyStore, FileStore, NodeId, StableStore};

/// Routes a deployment's stable storage to per-node `FileStore`
/// directories under a fresh scratch root, wrapped in `FaultyStore` so
/// `arm_lying_sync`/`corrupt_latest_checkpoint` keep working.
fn file_backed(b: GroupBuilder, tag: &'static str) -> GroupBuilder {
    let root = mykil_net::scratch_dir(tag);
    b.storage_factory(move |n: NodeId| {
        let dir = root.join(format!("node{}", n.index()));
        Box::new(FaultyStore::new(
            FileStore::open(&dir).expect("open file-backed store"),
        )) as Box<dyn StableStore>
    })
}

/// A primary that crashes and restarts before the backup's watchdog
/// fires reconstructs its membership, tree and replication state from
/// stable storage — no takeover, no member churn.
fn primary_recovers_before_promotion(file: bool) {
    let mut b = GroupBuilder::new(61).rsa_bits(512).areas(2).replicated(true);
    if file {
        b = file_backed(b, "durability-recover-pre-promotion");
    }
    let mut g = b.build();
    let members: Vec<_> = (0..3).map(|i| g.register_member(i)).collect();
    g.settle();
    let mut checker = InvariantChecker::new();
    assert_eq!(checker.check(&g), vec![]);

    let area = 1usize;
    let node = g.primaries[area];
    let members_before = g.ac(area).member_ids();

    // Crash and restart within the same instant: the backup's
    // heartbeat watchdog never fires, so recovery must come entirely
    // from the node's own WAL + checkpoint.
    g.sim.crash(node);
    assert!(g.sim.restart(node));
    g.settle();

    assert_eq!(g.stats().counter("ac-recoveries"), 1);
    assert_eq!(
        g.stats().counter("ac-takeovers"),
        0,
        "backup promoted despite the instant restart"
    );
    assert_eq!(g.ac(area).role(), Role::Primary);
    assert_eq!(
        g.ac(area).member_ids(),
        members_before,
        "recovery lost the durable membership"
    );
    for &m in &members {
        assert!(g.is_member(m), "member session died with the AC restart");
    }
    assert_eq!(
        checker.check(&g),
        vec![],
        "invariants violated after in-place recovery"
    );
}

#[test]
fn primary_recovers_from_storage_before_backup_promotion() {
    primary_recovers_before_promotion(false);
}

#[test]
fn primary_recovers_from_storage_before_backup_promotion_file_backed() {
    primary_recovers_before_promotion(true);
}

/// A primary that recovers *after* its backup promoted wakes up with a
/// durable `Primary` role — and must still lose the epoch fence: the
/// promoted backup's higher takeover epoch demotes it, and the
/// demotion itself is made durable (checked by the durability
/// invariant at the end).
fn recovered_primary_is_fenced_down(file: bool) {
    let mut b = GroupBuilder::new(62).rsa_bits(512).areas(2).replicated(true);
    if file {
        b = file_backed(b, "durability-fenced-down");
    }
    let mut g = b.build();
    let members: Vec<_> = (0..2).map(|i| g.register_member(i)).collect();
    g.settle();
    let mut checker = InvariantChecker::new();
    assert_eq!(checker.check(&g), vec![]);

    g.crash_ac(1);
    g.run_for(Duration::from_secs(3));
    assert_eq!(g.backup(1).role(), Role::Primary, "backup never took over");

    assert!(g.sim.restart(g.primaries[1]));
    g.run_for(Duration::from_secs(5));

    assert!(g.stats().counter("ac-recoveries") >= 1);
    assert!(g.stats().counter("ac-demotions") >= 1);
    assert_eq!(
        g.ac(1).role(),
        Role::Backup { primary: g.backups[1] },
        "recovered primary's durable role beat the epoch fence"
    );
    assert_eq!(g.backup(1).role(), Role::Primary);
    assert_eq!(
        checker.check(&g),
        vec![],
        "invariants violated after recovery + demotion"
    );
    for m in members {
        assert!(g.is_member(m));
    }
}

#[test]
fn recovered_primary_after_promotion_is_fenced_down() {
    recovered_primary_is_fenced_down(false);
}

#[test]
fn recovered_primary_after_promotion_is_fenced_down_file_backed() {
    recovered_primary_is_fenced_down(true);
}

/// A lying fsync leaves a torn record at the WAL tail: the admission
/// committed there is genuinely lost, recovery falls back to the last
/// checkpoint plus the valid WAL prefix, and the orphaned member —
/// admitted by the pre-crash primary but unknown to the recovered one
/// — re-enters through its durable ticket.
fn torn_wal_tail_recovery(file: bool) {
    let mut b = GroupBuilder::new(63).rsa_bits(512).areas(1).replicated(true);
    if file {
        b = file_backed(b, "durability-torn-tail");
    }
    let mut g = b.build();
    let old_timers: Vec<_> = (0..2).map(|i| g.register_member(i)).collect();
    g.settle();
    let mut checker = InvariantChecker::new();
    assert_eq!(checker.check(&g), vec![]);

    let node = g.primaries[0];
    g.sim.storage_mut(node).arm_lying_sync(true);
    let newcomer = g.register_member(9);
    g.run_for(Duration::from_secs(2));
    assert!(g.is_member(newcomer), "join did not complete pre-crash");

    g.sim.crash(node);
    assert!(g.sim.restart(node));
    assert_eq!(g.stats().counter("storage-torn-write"), 1);
    g.run_for(Duration::from_secs(10));

    assert!(g.stats().counter("ac-recoveries") >= 1);
    assert_eq!(g.ac(0).role(), Role::Primary);
    // The newcomer's admission died with the torn tail; its disconnect
    // detector noticed the dead session and the ticket rejoin restored
    // membership without a fresh registration.
    assert!(
        g.is_member(newcomer),
        "orphaned member never re-entered the group"
    );
    for m in old_timers {
        assert!(g.is_member(m));
    }
    assert_eq!(
        checker.check(&g),
        vec![],
        "invariants violated after torn-tail recovery"
    );
}

#[test]
fn torn_wal_tail_falls_back_to_checkpoint_and_member_resyncs() {
    torn_wal_tail_recovery(false);
}

#[test]
fn torn_wal_tail_falls_back_to_checkpoint_and_member_resyncs_file_backed() {
    torn_wal_tail_recovery(true);
}

/// Bit-rot in the newest checkpoint slot: recovery must fall back to
/// the older ping-pong slot and replay the longer WAL suffix, landing
/// on the same membership.
fn corrupt_checkpoint_fallback(file: bool) {
    let mut b = GroupBuilder::new(64).rsa_bits(512).areas(1).replicated(true);
    if file {
        b = file_backed(b, "durability-ckpt-fallback");
    }
    let mut g = b.build();
    let members: Vec<_> = (0..3).map(|i| g.register_member(i)).collect();
    g.settle();
    let mut checker = InvariantChecker::new();
    assert_eq!(checker.check(&g), vec![]);

    let node = g.primaries[0];
    let members_before = g.ac(0).member_ids();
    assert!(
        g.sim.storage(node).checkpoint_count() >= 2,
        "scenario needs both ping-pong slots populated"
    );
    g.sim.storage_mut(node).corrupt_latest_checkpoint();
    g.sim.crash(node);
    assert!(g.sim.restart(node));
    g.settle();

    assert!(g.stats().counter("ac-recoveries") >= 1);
    assert_eq!(
        g.stats().counter("ac-recovery-bad-checkpoint"),
        0,
        "fallback slot failed to parse"
    );
    assert_eq!(g.ac(0).role(), Role::Primary);
    assert_eq!(
        g.ac(0).member_ids(),
        members_before,
        "older-slot recovery lost members"
    );
    for m in members {
        assert!(g.is_member(m));
    }
    assert_eq!(
        checker.check(&g),
        vec![],
        "invariants violated after checkpoint-corruption recovery"
    );
}

#[test]
fn corrupt_checkpoint_falls_back_to_older_slot() {
    corrupt_checkpoint_fallback(false);
}

#[test]
fn corrupt_checkpoint_falls_back_to_older_slot_file_backed() {
    corrupt_checkpoint_fallback(true);
}

/// Drift guard: the lightweight [`snapshot_summary`] parser and the
/// full replica-snapshot format must agree. If the snapshot encoding
/// grows a field without the summary (and thus the durability
/// invariant) learning about it, this fails at the exact seam.
fn snapshot_summary_matches(file: bool) {
    let mut b = GroupBuilder::new(65).rsa_bits(512).areas(1).replicated(true);
    if file {
        b = file_backed(b, "durability-snapshot-summary");
    }
    let mut g = b.build();
    for i in 0..3 {
        g.register_member(i);
    }
    g.settle();

    let rec = g.sim.storage(g.primaries[0]).load();
    let (_, ckpt_bytes) = rec.checkpoint.expect("settled primary has a checkpoint");
    let ckpt = AcCheckpoint::from_bytes(&ckpt_bytes).expect("checkpoint parses");
    assert!(ckpt.primary);
    let snap = ckpt.snapshot.expect("primary checkpoint embeds a snapshot");
    let summary = snapshot_summary(&snap).expect("snapshot summary parses");
    assert_eq!(summary.members, g.ac(0).member_ids());
    assert_eq!(summary.epoch, g.ac(0).epoch());
}

#[test]
fn checkpoint_snapshot_summary_matches_live_state() {
    snapshot_summary_matches(false);
}

#[test]
fn checkpoint_snapshot_summary_matches_live_state_file_backed() {
    snapshot_summary_matches(true);
}

/// The registration server's client-id counter is burned to the WAL
/// before any reply leaves the node: a crash/restart cycle can drop
/// in-flight handshakes but must never reissue an id.
fn rs_recovery_id_monotonic(file: bool) {
    let mut b = GroupBuilder::new(66).rsa_bits(512).areas(2);
    if file {
        b = file_backed(b, "durability-rs-ids");
    }
    let mut g = b.build();
    let first = g.register_member(0);
    g.settle();
    assert!(g.is_member(first));
    let first_id = g.member(first).client_id().expect("active member has an id");
    let next_before = g.registration_server().next_client();

    g.sim.crash(g.rs());
    assert!(g.sim.restart(g.rs()));
    g.run_for(Duration::from_secs(2));
    assert_eq!(g.stats().counter("rs-recoveries"), 1);
    assert!(
        g.registration_server().next_client() >= next_before,
        "client-id counter regressed across the RS restart"
    );

    let second = g.register_member(1);
    g.run_for(Duration::from_secs(6));
    assert!(g.is_member(second), "join never completed after RS recovery");
    assert_ne!(
        g.member(second).client_id().expect("active member has an id"),
        first_id,
        "recovered RS reissued a client id"
    );
}

#[test]
fn rs_recovery_never_reissues_client_ids() {
    rs_recovery_id_monotonic(false);
}

#[test]
fn rs_recovery_never_reissues_client_ids_file_backed() {
    rs_recovery_id_monotonic(true);
}
