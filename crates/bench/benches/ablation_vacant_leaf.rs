//! Ablation: Mykil's keep-empty-leaves rule.
//!
//! On a leave, Mykil does *not* prune the vacated leaf, betting that a
//! future join will reuse it cheaply (Section III-D). This bench
//! compares a join that lands on a vacant leaf (the Mykil fast path)
//! against a join that must split an occupied leaf (what every join
//! would pay if leaves were pruned).

use criterion::{criterion_group, criterion_main, Criterion};
use mykil_crypto::drbg::Drbg;
use mykil_tree::{KeyTree, MemberId, TreeConfig};

const AREA: u64 = 5_000;

fn bench_vacant_leaf(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_vacant_leaf");

    // Tree with a vacant leaf ready (a member just left).
    g.bench_function("join_into_vacant_leaf", |b| {
        let mut rng = Drbg::from_seed(1);
        let mut tree = KeyTree::new(TreeConfig::binary(), &mut rng);
        for m in 0..AREA {
            tree.join(MemberId(m), &mut rng).unwrap();
        }
        let mut next = AREA;
        b.iter(|| {
            // leave then join: the join reuses the vacated slot.
            tree.leave(MemberId(next - AREA / 2), &mut rng).ok();
            let m = MemberId(next);
            next += 1;
            let plan = tree.join(m, &mut rng).unwrap();
            std::hint::black_box(plan.unicast_bytes())
        });
    });

    // Full tree: every join must split a leaf (the pruned-tree cost).
    g.bench_function("join_requiring_split", |b| {
        let mut rng = Drbg::from_seed(2);
        let mut tree = KeyTree::new(TreeConfig::binary(), &mut rng);
        for m in 0..AREA {
            tree.join(MemberId(m), &mut rng).unwrap();
        }
        let mut next = AREA;
        b.iter(|| {
            let m = MemberId(next);
            next += 1;
            let plan = tree.join(m, &mut rng).unwrap();
            std::hint::black_box(plan.unicast_bytes())
        });
    });

    g.finish();
}

criterion_group!(benches, bench_vacant_leaf);
criterion_main!(benches);
