//! `mykil-lint` CLI.
//!
//! ```text
//! mykil-lint --workspace [--format human|json|sarif] [--out FILE]
//! mykil-lint [--format human|json|sarif] FILE...
//! mykil-lint --list-rules
//! mykil-lint --explain L007
//! ```
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O
//! error. JSON mode emits one object per finding (JSON Lines); SARIF
//! mode emits one SARIF 2.1.0 log. `--out` additionally writes the
//! machine-readable form to a file (human mode still prints findings
//! to stdout), which is how CI captures the artifact.

use mykil_lint::diagnostics::{display_path, to_sarif};
use mykil_lint::explain::{explain, render};
use mykil_lint::{lint_source, lint_workspace, Diagnostic, RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

enum Format {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut workspace = false;
    let mut list_rules = false;
    let mut explain_id: Option<String> = None;
    let mut out_file: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--list-rules" => list_rules = true,
            "--json" => format = Format::Json,
            "--explain" => match args.next() {
                Some(id) => explain_id = Some(id),
                None => {
                    eprintln!("mykil-lint: --explain expects a rule id (L001..L010)");
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out_file = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mykil-lint: --out expects a file path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    let got = other.unwrap_or("nothing");
                    eprintln!("mykil-lint: --format expects human|json|sarif, got {got:?}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("mykil-lint: unknown flag {arg}");
                print_usage();
                return ExitCode::from(2);
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    if let Some(id) = explain_id {
        return match explain(&id) {
            Some(e) => {
                println!("{}", render(e));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "mykil-lint: unknown rule {id:?}; known rules: {}",
                    RULES
                        .iter()
                        .map(|r| r.id)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                ExitCode::from(2)
            }
        };
    }
    if list_rules {
        for rule in RULES {
            println!("{}  {}", rule.id, normalize_ws(rule.description));
        }
        return ExitCode::SUCCESS;
    }
    if !workspace && paths.is_empty() {
        eprintln!("mykil-lint: pass --workspace or at least one file");
        print_usage();
        return ExitCode::from(2);
    }

    let root = workspace_root();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    if workspace {
        match lint_workspace(&root) {
            Ok(d) => diagnostics.extend(d),
            Err(e) => {
                eprintln!("mykil-lint: workspace walk failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(source) => {
                let rel = display_path(path, &root);
                diagnostics.extend(lint_source(&rel, &source));
            }
            Err(e) => {
                eprintln!("mykil-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    match format {
        Format::Human => {
            for d in &diagnostics {
                println!("{d}");
            }
        }
        Format::Json => {
            for d in &diagnostics {
                println!("{}", d.to_json());
            }
        }
        Format::Sarif => println!("{}", to_sarif(&diagnostics)),
    }
    if let Some(path) = &out_file {
        // The artifact file is always machine-readable: SARIF when that
        // format was chosen, JSON Lines otherwise.
        let body = match format {
            Format::Sarif => to_sarif(&diagnostics),
            _ => diagnostics
                .iter()
                .map(|d| d.to_json())
                .collect::<Vec<_>>()
                .join("\n"),
        };
        if let Err(e) = std::fs::write(path, body + "\n") {
            eprintln!("mykil-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if diagnostics.is_empty() {
        if matches!(format, Format::Human) {
            eprintln!("mykil-lint: clean");
        }
        ExitCode::SUCCESS
    } else {
        if matches!(format, Format::Human) {
            eprintln!(
                "mykil-lint: {} finding{} (run `mykil-lint --explain <rule>` for \
                 the invariant and fix guidance)",
                diagnostics.len(),
                if diagnostics.len() == 1 { "" } else { "s" }
            );
        }
        ExitCode::from(1)
    }
}

/// The workspace root: nearest ancestor of the current directory with a
/// `Cargo.toml` containing `[workspace]` (falls back to the cwd).
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: &Path = &cwd;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd,
        }
    }
}

fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn print_usage() {
    eprintln!(
        "usage: mykil-lint [--workspace] [--format human|json|sarif] [--out FILE]\n\
         \x20                 [--list-rules] [--explain L00N] [FILE...]\n\
         exit codes: 0 clean, 1 findings, 2 error"
    );
}
