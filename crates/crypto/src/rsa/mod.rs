//! RSA public-key cryptography (RFC 8017 style, from scratch).
//!
//! The paper's join and rejoin protocols (Figures 3 and 7) encrypt every
//! handshake message with RSA public keys and sign several of them with
//! RSA private keys; the prototype used OpenSSL's `RSA_public_encrypt` /
//! `RSA_sign` with 2048-bit keys. This module provides the same four
//! operations:
//!
//! - [`RsaPublicKey::encrypt`] — OAEP-style encryption (MGF1-SHA256),
//!   including the single-block plaintext limit the paper discusses in
//!   Section V-D (215 bytes with their SHA-1 padding; 190 bytes here with
//!   SHA-256 — either way the auxiliary-key path does not fit, forcing
//!   the hybrid one-time-key workaround that Mykil implements)
//! - [`RsaKeyPair::decrypt`] — CRT-accelerated decryption
//! - [`RsaKeyPair::sign`] / [`RsaPublicKey::verify`] — hash-then-sign
//!   signatures (PKCS#1 v1.5 layout with a SHA-256 DigestInfo)
//!
//! # Example
//!
//! ```
//! use mykil_crypto::drbg::Drbg;
//! use mykil_crypto::rsa::RsaKeyPair;
//!
//! let mut rng = Drbg::from_seed(42);
//! let pair = RsaKeyPair::generate(512, &mut rng)?;
//! let sig = pair.sign(b"key update");
//! assert!(pair.public().verify(b"key update", &sig));
//! # Ok::<(), mykil_crypto::CryptoError>(())
//! ```

mod keygen;
mod serialize;
mod oaep;
mod sign;

use crate::bignum::BigUint;
use crate::CryptoError;

/// The conventional RSA public exponent, 65537.
pub const PUBLIC_EXPONENT: u32 = 65_537;

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

impl RsaPublicKey {
    /// Constructs a public key from raw components.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] for a modulus smaller
    /// than 256 bits or an even/unit exponent.
    pub fn from_components(n: BigUint, e: BigUint) -> Result<Self, CryptoError> {
        if n.bit_len() < 256 {
            return Err(CryptoError::InvalidParameter("modulus below 256 bits"));
        }
        if e.is_even() || e.is_one() || e.is_zero() {
            return Err(CryptoError::InvalidParameter("bad public exponent"));
        }
        Ok(RsaPublicKey { n, e })
    }

    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent `e`.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Modulus size in whole bytes (the RSA block length `k`).
    pub fn block_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Modulus size in bits.
    pub fn bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Raw RSA public operation `m^e mod n` on a padded block.
    pub(crate) fn raw_public_op(&self, block: &BigUint) -> Result<BigUint, CryptoError> {
        if block >= &self.n {
            return Err(CryptoError::InvalidParameter("block exceeds modulus"));
        }
        block.modpow(&self.e, &self.n)
    }

    /// Serializes to `len(n) || n || len(e) || e` for wire transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(n.len() + e.len() + 8);
        out.extend_from_slice(&(n.len() as u32).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Parses the format produced by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] on truncated or
    /// malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let err = || CryptoError::InvalidParameter("malformed public key encoding");
        let take = |bytes: &mut &[u8]| -> Result<Vec<u8>, CryptoError> {
            if bytes.len() < 4 {
                return Err(err());
            }
            let len = u32::from_be_bytes(bytes[..4].try_into().unwrap()) as usize;
            *bytes = &bytes[4..];
            if bytes.len() < len {
                return Err(err());
            }
            let out = bytes[..len].to_vec();
            *bytes = &bytes[len..];
            Ok(out)
        };
        let mut cursor = bytes;
        let n = BigUint::from_bytes_be(&take(&mut cursor)?);
        let e = BigUint::from_bytes_be(&take(&mut cursor)?);
        if !cursor.is_empty() {
            return Err(err());
        }
        Self::from_components(n, e)
    }

    /// A short stable fingerprint (first 8 bytes of SHA-256 of the
    /// encoding) used for logging and key directories.
    pub fn fingerprint(&self) -> u64 {
        let digest = crate::sha256::Sha256::digest(&self.to_bytes());
        u64::from_be_bytes(digest[..8].try_into().unwrap())
    }
}

/// An RSA key pair with CRT parameters for fast private operations.
#[derive(Clone)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    d_p: BigUint,
    d_q: BigUint,
    q_inv: BigUint,
}

impl std::fmt::Debug for RsaKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Private components must never be printed.
        f.debug_struct("RsaKeyPair")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

impl Drop for RsaKeyPair {
    fn drop(&mut self) {
        // The public half is public by definition; every CRT component
        // reveals the factorization and must be wiped.
        self.d.zeroize();
        self.p.zeroize();
        self.q.zeroize();
        self.d_p.zeroize();
        self.d_q.zeroize();
        self.q_inv.zeroize();
    }
}

impl RsaKeyPair {
    /// The public half of the pair.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Raw RSA private operation `c^d mod n` using the CRT.
    pub(crate) fn raw_private_op(&self, block: &BigUint) -> Result<BigUint, CryptoError> {
        if block >= &self.public.n {
            return Err(CryptoError::InvalidParameter("block exceeds modulus"));
        }
        // CRT: m_p = c^d_p mod p ; m_q = c^d_q mod q
        let m_p = block.modpow(&self.d_p, &self.p)?;
        let m_q = block.modpow(&self.d_q, &self.q)?;
        // h = q_inv * (m_p - m_q) mod p
        let diff = if m_p >= m_q {
            &m_p - &m_q
        } else {
            // m_p - m_q mod p, computed as p - ((m_q - m_p) mod p)
            let r = (&m_q - &m_p).rem(&self.p)?;
            if r.is_zero() {
                r
            } else {
                &self.p - &r
            }
        };
        let h = (&self.q_inv * &diff).rem(&self.p)?;
        // m = m_q + h * q
        Ok(&m_q + &(&h * &self.q))
    }

    /// Slow non-CRT private operation, kept for cross-checking in tests.
    #[doc(hidden)]
    pub fn raw_private_op_no_crt(&self, block: &BigUint) -> Result<BigUint, CryptoError> {
        block.modpow(&self.d, &self.public.n)
    }
}

#[cfg(test)]
pub(crate) mod test_keys {
    use super::*;
    use crate::drbg::Drbg;
    use std::sync::OnceLock;

    /// Shared 768-bit test key (RSA keygen is the slow part of the suite;
    /// 768 bits leaves 30 bytes of OAEP plaintext room, enough for a
    /// wrapped one-time symmetric key).
    pub fn pair768() -> &'static RsaKeyPair {
        static PAIR: OnceLock<RsaKeyPair> = OnceLock::new();
        PAIR.get_or_init(|| {
            let mut rng = Drbg::from_seed(0xA11CE);
            RsaKeyPair::generate(768, &mut rng).expect("test keygen")
        })
    }

    /// A second, distinct 768-bit test key.
    pub fn pair768_b() -> &'static RsaKeyPair {
        static PAIR: OnceLock<RsaKeyPair> = OnceLock::new();
        PAIR.get_or_init(|| {
            let mut rng = Drbg::from_seed(0xB0B);
            RsaKeyPair::generate(768, &mut rng).expect("test keygen")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::test_keys::{pair768, pair768_b};
    use super::*;
    use crate::drbg::Drbg;

    #[test]
    fn public_key_round_trips_through_bytes() {
        let pk = pair768().public().clone();
        let bytes = pk.to_bytes();
        let back = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(pk, back);
        assert_eq!(pk.fingerprint(), back.fingerprint());
    }

    #[test]
    fn from_bytes_rejects_malformed() {
        assert!(RsaPublicKey::from_bytes(&[]).is_err());
        assert!(RsaPublicKey::from_bytes(&[0, 0, 0, 10, 1]).is_err());
        let mut ok = pair768().public().to_bytes();
        ok.push(0); // trailing garbage
        assert!(RsaPublicKey::from_bytes(&ok).is_err());
    }

    #[test]
    fn from_components_validation() {
        let pk = pair768().public();
        assert!(RsaPublicKey::from_components(
            BigUint::from(15_u64),
            BigUint::from(3_u64)
        )
        .is_err());
        assert!(
            RsaPublicKey::from_components(pk.modulus().clone(), BigUint::from(4_u64)).is_err()
        );
        assert!(
            RsaPublicKey::from_components(pk.modulus().clone(), BigUint::from(65_537_u64))
                .is_ok()
        );
    }

    #[test]
    fn raw_ops_invert() {
        let pair = pair768();
        let mut rng = Drbg::from_seed(77);
        let m = BigUint::random_below(pair.public().modulus(), &mut rng);
        let c = pair.public().raw_public_op(&m).unwrap();
        assert_ne!(c, m);
        assert_eq!(pair.raw_private_op(&c).unwrap(), m);
    }

    #[test]
    fn crt_matches_plain_exponentiation() {
        let pair = pair768();
        let mut rng = Drbg::from_seed(78);
        for _ in 0..4 {
            let c = BigUint::random_below(pair.public().modulus(), &mut rng);
            assert_eq!(
                pair.raw_private_op(&c).unwrap(),
                pair.raw_private_op_no_crt(&c).unwrap()
            );
        }
    }

    #[test]
    fn distinct_pairs_have_distinct_moduli() {
        assert_ne!(pair768().public().modulus(), pair768_b().public().modulus());
    }

    #[test]
    fn block_exceeding_modulus_rejected() {
        let pair = pair768();
        let too_big = pair.public().modulus().clone();
        assert!(pair.public().raw_public_op(&too_big).is_err());
        assert!(pair.raw_private_op(&too_big).is_err());
    }

    #[test]
    fn debug_hides_private_parts() {
        let s = format!("{:?}", pair768());
        assert!(s.contains("public"));
        assert!(!s.contains("d_p"));
    }
}
