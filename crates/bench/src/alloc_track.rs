//! A counting global allocator for allocation-budget benchmarks.
//!
//! The perf gate reports *allocations per operation* alongside
//! throughput: allocation counts are deterministic for a fixed seed and
//! workload, so they regress loudly and reproducibly where wall-clock
//! numbers drift with the host. Install [`CountingAllocator`] as the
//! `#[global_allocator]` in a binary, then bracket the measured region
//! with [`alloc_count`] reads.
//!
//! `realloc` is counted as one allocation event: a `Vec` that grows
//! without a reserved capacity shows up here, which is exactly the
//! class of hot-path waste the gate exists to catch.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn live_add(n: u64) {
    let live = LIVE_BYTES.fetch_add(n, Ordering::Relaxed) + n;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

/// Forwards to the system allocator while counting events and bytes.
pub struct CountingAllocator;

// SAFETY: delegates every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counters are side-effect-only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        live_add(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        live_add(new_size as u64);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocation events (alloc + realloc) since process start.
pub fn alloc_count() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// Total bytes requested since process start.
pub fn alloc_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}

/// Bytes currently allocated and not yet freed.
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start (or the last
/// [`reset_peak`]) — a deterministic RSS proxy for memory gates, free
/// of the page-cache and fragmentation noise a real RSS reading has.
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Restarts the high-water mark from the current live size, so a
/// measured region's peak is not masked by setup allocations.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}
