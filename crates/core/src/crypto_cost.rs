//! Virtual CPU cost of cryptographic operations.
//!
//! The paper's Section V-D latency numbers (0.45 s join, 0.4 s rejoin,
//! 0.28 s rejoin without steps 4–5) were measured on Pentium III 1 GHz
//! machines where 2048-bit RSA dominates. The simulator reproduces that
//! by charging each protocol step virtual compute time via
//! [`mykil_net::Context::charge_compute`], using the constants here.
//!
//! Constants are calibrated to OpenSSL 0.9.x-era throughput on a
//! Pentium III 1 GHz (the paper's testbed): a 2048-bit private
//! operation ≈ 50 ms, a public operation (e = 65537) ≈ 1.5 ms. Costs
//! scale cubically (private) and quadratically (public) in the modulus
//! size, so test configurations with small keys charge proportionally
//! less.

use mykil_net::Duration;

/// Cost model for one node's CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryptoCost {
    /// Cost of one RSA private operation (decrypt or sign) at 2048 bits.
    pub rsa_private_2048: Duration,
    /// Cost of one RSA public operation (encrypt or verify) at 2048 bits.
    pub rsa_public_2048: Duration,
    /// Cost of symmetric work (seal/open/MAC) per call — negligible next
    /// to RSA but non-zero.
    pub symmetric_op: Duration,
}

impl CryptoCost {
    /// The paper's Pentium III 1 GHz testbed.
    pub fn pentium3() -> CryptoCost {
        CryptoCost {
            rsa_private_2048: Duration::from_micros(50_000),
            rsa_public_2048: Duration::from_micros(1_500),
            symmetric_op: Duration::from_micros(20),
        }
    }

    /// Free crypto (isolates pure network latency in ablations).
    pub fn zero() -> CryptoCost {
        CryptoCost {
            rsa_private_2048: Duration::ZERO,
            rsa_public_2048: Duration::ZERO,
            symmetric_op: Duration::ZERO,
        }
    }

    /// RSA private-op cost for a given modulus size (cubic scaling).
    pub fn rsa_private(&self, bits: usize) -> Duration {
        scale(self.rsa_private_2048, bits, 3)
    }

    /// RSA public-op cost for a given modulus size (quadratic scaling).
    pub fn rsa_public(&self, bits: usize) -> Duration {
        scale(self.rsa_public_2048, bits, 2)
    }

    /// Extra cost of `RSA_blinding_on` per private op — the paper
    /// measured "+0.01 s per join", i.e. roughly +10 ms spread over the
    /// handshake's private operations.
    pub fn blinding_overhead(&self, bits: usize) -> Duration {
        // One additional public-op-sized multiplication pass.
        self.rsa_public(bits)
    }
}

impl Default for CryptoCost {
    fn default() -> Self {
        CryptoCost::pentium3()
    }
}

fn scale(base_2048: Duration, bits: usize, power: u32) -> Duration {
    let ratio = bits as f64 / 2048.0;
    let us = base_2048.as_micros() as f64 * ratio.powi(power as i32);
    Duration::from_micros(us as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p3_constants() {
        let c = CryptoCost::pentium3();
        assert_eq!(c.rsa_private(2048), Duration::from_micros(50_000));
        assert_eq!(c.rsa_public(2048), Duration::from_micros(1_500));
    }

    #[test]
    fn scaling_laws() {
        let c = CryptoCost::pentium3();
        // Halving the modulus: private cost / 8, public / 4.
        assert_eq!(c.rsa_private(1024).as_micros(), 50_000 / 8);
        assert_eq!(c.rsa_public(1024).as_micros(), 1_500 / 4);
        assert!(c.rsa_private(512) < c.rsa_private(2048));
    }

    #[test]
    fn zero_model_is_free() {
        let c = CryptoCost::zero();
        assert_eq!(c.rsa_private(2048), Duration::ZERO);
        assert_eq!(c.rsa_public(2048), Duration::ZERO);
        assert_eq!(c.blinding_overhead(2048), Duration::ZERO);
    }

    #[test]
    fn private_dominates_public() {
        let c = CryptoCost::default();
        for bits in [512usize, 1024, 2048, 4096] {
            assert!(c.rsa_private(bits) > c.rsa_public(bits), "bits={bits}");
        }
    }
}
