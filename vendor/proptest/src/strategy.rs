//! Strategies: deterministic value generators driven by a [`TestRng`].

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of test-case values.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// `generate` produces the value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; panics when `options` is empty or all-zero
    /// weighted.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.next_u64() % total;
        for (w, strat) in &self.options {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Produces an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

/// Generates any value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..500 {
            let v = (10u8..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (3usize..4).generate(&mut rng);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::from_seed(8);
        let s = Union::new(vec![
            (1, (0u8..10).prop_map(|v| v as u64).boxed()),
            (3, Just(99u64).boxed()),
        ]);
        let mut seen_low = false;
        let mut seen_just = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                99 => seen_just = true,
                v if v < 10 => seen_low = true,
                v => panic!("unexpected value {v}"),
            }
        }
        assert!(seen_low && seen_just, "both branches should be exercised");
    }

    #[test]
    fn arrays_and_tuples_generate() {
        let mut rng = TestRng::from_seed(9);
        let arr: [u8; 16] = Arbitrary::arbitrary(&mut rng);
        assert!(arr.iter().any(|&b| b != 0));
        let (a, b) = (any::<u8>(), any::<u64>()).generate(&mut rng);
        let _ = (a, b);
    }

    #[test]
    fn generation_is_deterministic() {
        let collect = |seed| {
            let mut rng = TestRng::from_seed(seed);
            (0..32).map(|_| (0u32..1000).generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }
}
