//! Karatsuba multiplication for large operands.
//!
//! Schoolbook multiplication is `O(n²)`; Karatsuba splits each operand
//! and recurses on three half-size products, giving `O(n^1.585)`. The
//! crossover is around 32 limbs (1024 bits) — right where RSA-2048's
//! intermediate products live, which is what makes keygen and signing
//! benches noticeably faster.

use super::BigUint;

/// Limb count above which Karatsuba beats schoolbook.
pub(crate) const KARATSUBA_THRESHOLD: usize = 32;

impl BigUint {
    /// Dispatching multiply: schoolbook for small operands, Karatsuba
    /// above the threshold.
    pub(crate) fn mul_dispatch(&self, other: &BigUint) -> BigUint {
        if self.limbs.len().min(other.limbs.len()) < KARATSUBA_THRESHOLD {
            self.mul_schoolbook(other)
        } else {
            self.mul_karatsuba(other)
        }
    }

    /// One Karatsuba step: split at half the larger operand.
    ///
    /// With `x = x1·B + x0` and `y = y1·B + y0` (B = 2^(32·split)):
    /// `x·y = z2·B² + (z1 − z2 − z0)·B + z0` where `z0 = x0·y0`,
    /// `z2 = x1·y1`, `z1 = (x0+x1)·(y0+y1)`.
    pub(crate) fn mul_karatsuba(&self, other: &BigUint) -> BigUint {
        let split = self.limbs.len().max(other.limbs.len()) / 2;
        if split == 0 || self.limbs.len() <= split || other.limbs.len() <= split {
            return self.mul_schoolbook(other);
        }
        let (x0, x1) = self.split_at_limb(split);
        let (y0, y1) = other.split_at_limb(split);

        let z0 = x0.mul_dispatch(&y0);
        let z2 = x1.mul_dispatch(&y1);
        let z1 = (&x0 + &x1).mul_dispatch(&(&y0 + &y1));
        // z1 >= z0 + z2 always (all values non-negative).
        let middle = &(&z1 - &z0) - &z2;

        let mut out = z2.shl_bits(64 * split);
        out.add_assign_ref(&middle.shl_bits(32 * split));
        out.add_assign_ref(&z0);
        out
    }

    /// Splits into (low `split` limbs, remaining high limbs).
    fn split_at_limb(&self, split: usize) -> (BigUint, BigUint) {
        let low = BigUint::from_limbs(self.limbs[..split.min(self.limbs.len())].to_vec());
        let high = if self.limbs.len() > split {
            BigUint::from_limbs(self.limbs[split..].to_vec())
        } else {
            BigUint::zero()
        };
        (low, high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::Drbg;

    fn random_n_limbs(limbs: usize, rng: &mut Drbg) -> BigUint {
        BigUint::random_bits(limbs * 32, rng)
    }

    #[test]
    fn karatsuba_matches_schoolbook_across_sizes() {
        let mut rng = Drbg::from_seed(1);
        for (la, lb) in [
            (32usize, 32usize),
            (33, 33),
            (64, 64),
            (64, 32),
            (32, 64),
            (100, 37),
            (37, 100),
            (128, 128),
        ] {
            let a = random_n_limbs(la, &mut rng);
            let b = random_n_limbs(lb, &mut rng);
            assert_eq!(
                a.mul_karatsuba(&b),
                a.mul_schoolbook(&b),
                "la={la} lb={lb}"
            );
        }
    }

    #[test]
    fn karatsuba_handles_unbalanced_and_zero() {
        let mut rng = Drbg::from_seed(2);
        let big = random_n_limbs(80, &mut rng);
        let one = BigUint::one();
        assert_eq!(big.mul_karatsuba(&one), big);
        assert_eq!(big.mul_karatsuba(&BigUint::zero()), BigUint::zero());
        let tiny = BigUint::from(7_u64);
        assert_eq!(big.mul_karatsuba(&tiny), big.mul_schoolbook(&tiny));
    }

    #[test]
    fn dispatch_uses_karatsuba_above_threshold() {
        // Functional check: results identical either way at the seam.
        let mut rng = Drbg::from_seed(3);
        for limbs in [KARATSUBA_THRESHOLD - 1, KARATSUBA_THRESHOLD, KARATSUBA_THRESHOLD + 1] {
            let a = random_n_limbs(limbs, &mut rng);
            let b = random_n_limbs(limbs, &mut rng);
            assert_eq!(a.mul_dispatch(&b), a.mul_schoolbook(&b), "limbs={limbs}");
        }
    }

    #[test]
    fn rsa_sized_products() {
        // 2048-bit × 2048-bit, the keygen hot path.
        let mut rng = Drbg::from_seed(4);
        let a = BigUint::random_bits(2048, &mut rng);
        let b = BigUint::random_bits(2048, &mut rng);
        let prod = &a * &b;
        // Top bits set on both factors: the product has 4095 or 4096 bits.
        assert!(prod.bit_len() >= 4095);
        assert_eq!(prod, a.mul_schoolbook(&b));
        // (a*b) / a == b round trip through division.
        let (q, r) = prod.div_rem(&a).unwrap();
        assert_eq!(q, b);
        assert!(r.is_zero());
    }
}
