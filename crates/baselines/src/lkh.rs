//! The flat-LKH baseline (Wong/Gouda/Lam, SIGCOMM'98): one global
//! auxiliary-key tree over the entire group.
//!
//! Identical tree machinery to a Mykil area ([`mykil_tree::KeyTree`]),
//! but spanning all `n` members — so a leave touches `O(arity·log n)`
//! keys and the key server stores `O(n)` keys (the paper's 4 MB at
//! 100,000 members), and there is no tolerance to partitions.

use crate::traffic::RekeyTraffic;
use crate::KeyManager;
use mykil_tree::{KeyTree, MemberId, RekeyPlan, TreeConfig, KEY_LEN};
use rand::RngCore;

/// The global-tree key manager.
#[derive(Debug, Clone)]
pub struct FlatLkh {
    tree: KeyTree,
}

fn traffic_of(plan: &RekeyPlan) -> RekeyTraffic {
    RekeyTraffic {
        multicast_bytes: plan.multicast_bytes() as u64,
        multicast_messages: u64::from(!plan.changes.is_empty()),
        unicast_bytes: plan.unicast_bytes() as u64,
        unicast_messages: plan.unicasts.len() as u64,
    }
}

impl FlatLkh {
    /// Creates an empty LKH group.
    pub fn new<R: RngCore + ?Sized>(cfg: TreeConfig, rng: &mut R) -> FlatLkh {
        FlatLkh {
            tree: KeyTree::new(cfg, rng),
        }
    }

    /// The underlying tree (inspection).
    pub fn tree(&self) -> &KeyTree {
        &self.tree
    }
}

impl KeyManager for FlatLkh {
    fn join(&mut self, member: MemberId, rng: &mut dyn RngCore) -> RekeyTraffic {
        match self.tree.join(member, rng) {
            Ok(plan) => traffic_of(&plan),
            Err(_) => RekeyTraffic::default(),
        }
    }

    fn leave(&mut self, member: MemberId, rng: &mut dyn RngCore) -> RekeyTraffic {
        match self.tree.leave(member, rng) {
            Ok(plan) => traffic_of(&plan),
            Err(_) => RekeyTraffic::default(),
        }
    }

    fn batch_leave(&mut self, members: &[MemberId], rng: &mut dyn RngCore) -> RekeyTraffic {
        let present: Vec<MemberId> = members
            .iter()
            .copied()
            .filter(|m| self.tree.contains(*m))
            .collect();
        match self.tree.batch_leave(&present, rng) {
            Ok(out) => traffic_of(&out.plan),
            Err(_) => RekeyTraffic::default(),
        }
    }

    fn member_count(&self) -> usize {
        self.tree.member_count()
    }

    fn member_storage_bytes(&self) -> u64 {
        // Path length ≈ height + 1 keys.
        (self.tree.height() as u64 + 1) * KEY_LEN as u64
    }

    fn controller_storage_bytes(&self) -> u64 {
        self.tree.node_count() as u64 * KEY_LEN as u64
    }

    fn name(&self) -> &'static str {
        "lkh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mykil_crypto::drbg::Drbg;

    #[test]
    fn leave_cost_is_logarithmic() {
        let mut rng = Drbg::from_seed(1);
        let mut lkh = FlatLkh::new(TreeConfig::binary(), &mut rng);
        crate::populate(&mut lkh, 4096, &mut rng);
        let t = lkh.leave(MemberId(100), &mut rng);
        // Binary tree of 4096: height ~12, about 2 keys per level.
        let h = 12u64;
        assert!(t.multicast_bytes <= 2 * (h + 2) * 16, "{t:?}");
        assert!(t.multicast_bytes >= (h - 2) * 16, "{t:?}");
        assert_eq!(t.unicast_bytes, 0);
    }

    #[test]
    fn join_unicasts_path_to_newcomer() {
        let mut rng = Drbg::from_seed(2);
        let mut lkh = FlatLkh::new(TreeConfig::binary(), &mut rng);
        crate::populate(&mut lkh, 1024, &mut rng);
        let t = lkh.join(MemberId(5000), &mut rng);
        assert!(t.unicast_bytes >= 10 * 16, "{t:?}");
        assert!(t.multicast_bytes > 0);
    }

    #[test]
    fn controller_storage_scales_with_group() {
        let mut rng = Drbg::from_seed(3);
        let mut small = FlatLkh::new(TreeConfig::binary(), &mut rng);
        let mut large = FlatLkh::new(TreeConfig::binary(), &mut rng);
        crate::populate(&mut small, 100, &mut rng);
        crate::populate(&mut large, 2000, &mut rng);
        assert!(large.controller_storage_bytes() > 10 * small.controller_storage_bytes() / 2);
        // O(n) nodes in a binary tree (between ~1.2n and 3n depending
        // on the split pattern — the paper rounds to 2n).
        let nodes = large.tree().node_count() as u64;
        assert!((2400..=6000).contains(&nodes), "nodes={nodes}");
    }

    #[test]
    fn unknown_member_is_free() {
        let mut rng = Drbg::from_seed(4);
        let mut lkh = FlatLkh::new(TreeConfig::quad(), &mut rng);
        crate::populate(&mut lkh, 8, &mut rng);
        assert_eq!(lkh.leave(MemberId(99), &mut rng), RekeyTraffic::default());
    }
}
