//! RC4 stream cipher — the paper's data-plane cipher.
//!
//! Section V-E of the paper evaluates Mykil on hand-held devices by
//! encrypting a 16 MB file with RC4 (~50 MB/s on a 600 MHz Celeron).
//! The `ve_rc4_throughput` bench regenerates that experiment.
//!
//! RC4 is broken for real-world confidentiality; it is reproduced here
//! only because the paper used it.
//!
//! # Example
//!
//! ```
//! use mykil_crypto::rc4::Rc4;
//!
//! let mut data = *b"multicast payload";
//! Rc4::new(b"area key").apply_keystream(&mut data);
//! Rc4::new(b"area key").apply_keystream(&mut data);
//! assert_eq!(&data, b"multicast payload");
//! ```

/// RC4 keystream generator.
#[derive(Clone)]
pub struct Rc4 {
    s: [u8; 256],
    i: u8,
    j: u8,
}

impl std::fmt::Debug for Rc4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the internal permutation (it is key material).
        f.debug_struct("Rc4").finish_non_exhaustive()
    }
}

impl Drop for Rc4 {
    fn drop(&mut self) {
        // The permutation is key-derived; wipe it with the indices.
        crate::ct::zeroize(&mut self.s);
        self.i = 0;
        self.j = 0;
    }
}

impl Rc4 {
    /// Initializes the cipher with the key-scheduling algorithm.
    ///
    /// # Panics
    ///
    /// Panics when `key` is empty or longer than 256 bytes.
    pub fn new(key: &[u8]) -> Self {
        assert!(
            !key.is_empty() && key.len() <= 256,
            "RC4 key must be 1..=256 bytes"
        );
        let mut s = [0u8; 256];
        for (i, v) in s.iter_mut().enumerate() {
            *v = i as u8;
        }
        let mut j = 0u8;
        for i in 0..256 {
            j = j
                .wrapping_add(s[i])
                .wrapping_add(key[i % key.len()]);
            s.swap(i, j as usize);
        }
        Rc4 { s, i: 0, j: 0 }
    }

    /// Produces the next keystream byte (PRGA).
    pub fn next_byte(&mut self) -> u8 {
        self.i = self.i.wrapping_add(1);
        self.j = self.j.wrapping_add(self.s[self.i as usize]);
        self.s.swap(self.i as usize, self.j as usize);
        let idx = self.s[self.i as usize].wrapping_add(self.s[self.j as usize]);
        self.s[idx as usize]
    }

    /// XORs the keystream into `data` in place (encrypt == decrypt).
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for byte in data {
            *byte ^= self.next_byte();
        }
    }

    /// Convenience one-shot: returns `data ^ keystream(key)`.
    pub fn process(key: &[u8], data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        Rc4::new(key).apply_keystream(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn known_vector_key() {
        // Classic test vector: key "Key", plaintext "Plaintext".
        let ct = Rc4::process(b"Key", b"Plaintext");
        assert_eq!(hex(&ct), "bbf316e8d940af0ad3");
    }

    #[test]
    fn known_vector_wiki() {
        let ct = Rc4::process(b"Wiki", b"pedia");
        assert_eq!(hex(&ct), "1021bf0420");
    }

    #[test]
    fn known_vector_secret() {
        let ct = Rc4::process(b"Secret", b"Attack at dawn");
        assert_eq!(hex(&ct), "45a01f645fc35b383552544b9bf5");
    }

    #[test]
    fn round_trip_large() {
        let key = [7u8; 16];
        let data: Vec<u8> = (0..65536u32).map(|i| (i * 31) as u8).collect();
        let ct = Rc4::process(&key, &data);
        assert_ne!(ct, data);
        assert_eq!(Rc4::process(&key, &ct), data);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut a = Rc4::new(b"0123456789abcdef");
        let mut buf = vec![0x11u8; 100];
        let (first, second) = buf.split_at_mut(37);
        a.apply_keystream(first);
        a.apply_keystream(second);
        let whole = Rc4::process(b"0123456789abcdef", &[0x11u8; 100]);
        assert_eq!(buf, whole);
    }

    #[test]
    #[should_panic(expected = "RC4 key")]
    fn empty_key_panics() {
        let _ = Rc4::new(b"");
    }

    #[test]
    fn debug_does_not_leak_state() {
        let c = Rc4::new(b"secret");
        let s = format!("{c:?}");
        assert!(s.contains("Rc4"));
        assert!(!s.contains("secret"));
        assert!(s.len() < 32, "state bytes must not be printed: {s}");
    }
}
