//! Umbrella crate for the Mykil reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests in
//! `tests/` and the runnable examples in `examples/`. The real library
//! surface lives in the member crates:
//!
//! - [`mykil`] — the Mykil protocol (join, rejoin, batching, fault tolerance)
//! - [`mykil_crypto`] — from-scratch RSA / SHA-256 / HMAC / RC4 / DRBG
//! - [`mykil_net`] — deterministic discrete-event network simulator
//! - [`mykil_tree`] — LKH auxiliary-key tree and batch rekeying
//! - [`mykil_baselines`] — Iolus and flat-LKH comparators
//! - [`mykil_analysis`] — closed-form cost models from the paper's Section V

pub use mykil;
pub use mykil_analysis;
pub use mykil_baselines;
pub use mykil_crypto;
pub use mykil_net;
pub use mykil_tree;
