//! [`FileStore`]: real file-backed stable storage.
//!
//! The same WAL + ping-pong-checkpoint model as [`SimStore`]
//! (see [`storage`](crate::storage)), persisted to an actual
//! directory so recovery is exercised against bytes that went through
//! the filesystem. One directory per node:
//!
//! ```text
//! <dir>/wal.log      append-only record log
//! <dir>/ckpt0.slot   ping-pong checkpoint slot 0
//! <dir>/ckpt1.slot   ping-pong checkpoint slot 1
//! ```
//!
//! On-disk byte layout (all integers little-endian):
//!
//! ```text
//! wal.log    := [magic "MKWL"][version u32][base u64] frame*
//! frame      := [len u32][crc32 u32][payload len bytes]
//!
//! ckptN.slot := [magic "MKCK"][version u32][seq u64][wal_pos u64]
//!               [len u32][crc32 u32][payload len bytes]
//! ```
//!
//! `base` is the absolute WAL position of the first frame (the prefix
//! below it has been truncated by checkpointing). The CRC is IEEE
//! CRC-32 over the payload only; slot metadata (`seq`, `wal_pos`)
//! deliberately sits *outside* the checksummed payload so payload
//! bit-rot can invalidate a slot but never forge a newer one — the
//! same separation the sim device models with its validity flag.
//!
//! Sync barriers model `O_SYNC`: appends stage in an in-memory device
//! cache and only reach the file (followed by `sync_data`) on
//! [`StableStore::sync`]. A crash therefore discards exactly the
//! unsynced tail, like the sim device. `FileStore` has no native
//! lying-sync hooks — wrap it in
//! [`FaultyStore`](crate::FaultyStore) for the full fault matrix —
//! but it does support on-disk checkpoint corruption
//! ([`StoreFault::CorruptCheckpoint`] / [`StoreFault::CorruptSlot`])
//! and tolerates truncated or garbage files left by a real crash:
//! `open` discards a partial trailing frame, and an unparseable slot
//! file reads as no checkpoint.
//!
//! I/O errors never panic: operations degrade (the write is dropped)
//! and the error is counted in [`FileStore::io_error_count`] so
//! harnesses can assert a clean run.

use crate::storage::{Recovered, SecretBytes, StableStore, StoreFault};
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const WAL_MAGIC: [u8; 4] = *b"MKWL";
const CKPT_MAGIC: [u8; 4] = *b"MKCK";
const VERSION: u32 = 1;
/// magic + version + base.
const WAL_HEADER_LEN: usize = 16;
/// magic + version + seq + wal_pos + len + crc.
const CKPT_HEADER_LEN: usize = 32;
/// Offset of the payload CRC within a slot file.
const CKPT_CRC_OFFSET: usize = 28;
/// len + crc preceding every WAL frame payload.
const FRAME_HEADER_LEN: usize = 8;

/// IEEE CRC-32 lookup table (polynomial 0xEDB88320, reflected).
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // mykil-lint: allow(L009, L010) -- const-evaluated: i < 256 by the loop bound
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        // mykil-lint: allow(L010) -- const-evaluated table fill, i < 256
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 (the zlib/PNG polynomial) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        // mykil-lint: allow(L009, L010) -- deliberate low-byte extraction; a u8 index is < 256
        c = CRC_TABLE[usize::from((c as u8) ^ b)] ^ (c >> 8);
    }
    !c
}

/// One WAL frame read back from disk. `valid` is the CRC verdict; an
/// invalid (torn) frame still occupies its WAL position.
struct RawFrame {
    payload: SecretBytes,
    valid: bool,
}

/// Splits the region past the WAL header into frames. Returns the
/// frames and the number of bytes consumed; a trailing partial frame
/// (no complete header, or payload shorter than its length field) is
/// not consumed — `open` truncates it away.
fn scan_frames(rest: &[u8]) -> (Vec<RawFrame>, usize) {
    let mut frames = Vec::new();
    let mut at = 0usize;
    while let Some(header) = rest.get(at..at + FRAME_HEADER_LEN) {
        let Some(len) = read_u32(header, 0) else {
            break;
        };
        let Some(crc) = read_u32(header, 4) else {
            break;
        };
        let Some(end) = (at + FRAME_HEADER_LEN).checked_add(len as usize) else {
            break;
        };
        let Some(payload) = rest.get(at + FRAME_HEADER_LEN..end) else {
            break;
        };
        frames.push(RawFrame {
            valid: crc32(payload) == crc,
            payload: SecretBytes::new(payload.to_vec()),
        });
        at = end;
    }
    (frames, at)
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let raw: [u8; 4] = bytes.get(at..at.checked_add(4)?)?.try_into().ok()?;
    Some(u32::from_le_bytes(raw))
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let raw: [u8; 8] = bytes.get(at..at.checked_add(8)?)?.try_into().ok()?;
    Some(u64::from_le_bytes(raw))
}

/// A checkpoint slot file parsed from disk.
struct SlotOnDisk {
    seq: u64,
    wal_pos: u64,
    payload: SecretBytes,
    /// CRC verdict over the payload.
    valid: bool,
}

/// Parses a slot file's bytes; `None` when the header is unreadable
/// (missing file, bad magic, torn header) — such a slot neither
/// recovers nor claims a ping-pong position.
fn parse_slot(bytes: &[u8]) -> Option<SlotOnDisk> {
    if bytes.get(0..4)? != CKPT_MAGIC {
        return None;
    }
    if read_u32(bytes, 4)? != VERSION {
        return None;
    }
    let seq = read_u64(bytes, 8)?;
    let wal_pos = read_u64(bytes, 16)?;
    let len = read_u32(bytes, 24)? as usize;
    let crc = read_u32(bytes, CKPT_CRC_OFFSET)?;
    let payload = bytes.get(CKPT_HEADER_LEN..CKPT_HEADER_LEN.checked_add(len)?)?;
    Some(SlotOnDisk {
        seq,
        wal_pos,
        valid: crc32(payload) == crc,
        payload: SecretBytes::new(payload.to_vec()),
    })
}

/// File-backed [`StableStore`]. See the [module docs](self).
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    /// Appended but not yet written+synced (device cache).
    cached: Vec<SecretBytes>,
    /// Absolute WAL position of the first frame in `wal.log`.
    wal_base: u64,
    /// Frames physically in `wal.log` (valid or torn).
    wal_count: u64,
    next_ckpt_seq: u64,
    syncs: u64,
    checkpoints: u64,
    io_errors: u64,
}

impl FileStore {
    /// Opens (or initializes) the store rooted at `dir`, recovering
    /// its framing: a partial trailing WAL frame from a real crash is
    /// truncated away, unparseable slot files are left for the
    /// ping-pong to overwrite.
    pub fn open(dir: &Path) -> io::Result<FileStore> {
        fs::create_dir_all(dir)?;
        let mut store = FileStore {
            dir: dir.to_path_buf(),
            cached: Vec::new(),
            wal_base: 0,
            wal_count: 0,
            next_ckpt_seq: 1,
            syncs: 0,
            checkpoints: 0,
            io_errors: 0,
        };
        match fs::read(store.wal_path()) {
            Ok(bytes) => {
                let header_ok = bytes.get(0..4) == Some(&WAL_MAGIC)
                    && read_u32(&bytes, 4) == Some(VERSION);
                if header_ok {
                    store.wal_base = read_u64(&bytes, 8).unwrap_or(0);
                    let rest = bytes.get(WAL_HEADER_LEN..).unwrap_or(&[]);
                    let (frames, consumed) = scan_frames(rest);
                    store.wal_count = frames.len() as u64;
                    if consumed < rest.len() {
                        // A real crash can leave a half-written frame;
                        // drop it so later appends keep valid framing.
                        let keep = WAL_HEADER_LEN as u64 + consumed as u64;
                        let f = OpenOptions::new().write(true).open(store.wal_path())?;
                        f.set_len(keep)?;
                        f.sync_data()?;
                    }
                } else {
                    // Unreadable header: reinitialize (factory-fresh).
                    store.write_wal_header(0)?;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => store.write_wal_header(0)?,
            Err(e) => return Err(e),
        }
        for i in 0..2u8 {
            if let Ok(bytes) = fs::read(store.slot_path(i)) {
                if let Some(slot) = parse_slot(&bytes) {
                    store.next_ckpt_seq = store.next_ckpt_seq.max(slot.seq + 1);
                }
            }
        }
        Ok(store)
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    fn slot_path(&self, i: u8) -> PathBuf {
        self.dir.join(format!("ckpt{i}.slot"))
    }

    /// Total I/O errors swallowed so far (each one dropped a write).
    pub fn io_error_count(&self) -> u64 {
        self.io_errors
    }

    fn write_wal_header(&self, base: u64) -> io::Result<()> {
        let mut f = fs::File::create(self.wal_path())?;
        f.write_all(&WAL_MAGIC)?;
        f.write_all(&VERSION.to_le_bytes())?;
        f.write_all(&base.to_le_bytes())?;
        f.sync_data()?;
        Ok(())
    }

    /// Absolute position one past the last record (durable or cached).
    fn wal_end(&self) -> u64 {
        self.wal_base + self.wal_count + self.cached.len() as u64
    }

    fn record_io<T>(&mut self, res: io::Result<T>) -> Option<T> {
        match res {
            Ok(v) => Some(v),
            Err(_) => {
                self.io_errors += 1;
                None
            }
        }
    }

    /// Flushes the device cache to `wal.log`.
    fn flush_cached(&mut self) {
        while !self.cached.is_empty() {
            let rec = self.cached.remove(0);
            let crc = crc32(rec.as_slice());
            if self
                .record_io(self.append_frame_buf(&rec, crc))
                .is_some()
            {
                self.wal_count += 1;
            }
        }
    }

    /// Appends one frame with the given CRC (callers pass a wrong CRC
    /// to write a deliberately torn frame) and syncs the file. The
    /// payload arrives wrapped so the only plaintext copy at the disk
    /// boundary is the `SecretBytes` view (lint L002).
    fn append_frame_buf(&self, payload: &SecretBytes, crc: u32) -> io::Result<()> {
        let len = u32::try_from(payload.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "record too large"))?;
        let mut f = OpenOptions::new().append(true).open(self.wal_path())?;
        f.write_all(&len.to_le_bytes())?;
        f.write_all(&crc.to_le_bytes())?;
        f.write_all(payload.as_slice())?;
        f.sync_data()?;
        Ok(())
    }

    /// Reads both slot files as parsed on-disk slots.
    fn read_slots(&self) -> [Option<SlotOnDisk>; 2] {
        let read = |i: u8| -> Option<SlotOnDisk> { parse_slot(&fs::read(self.slot_path(i)).ok()?) };
        [read(0), read(1)]
    }

    /// Rewrites `wal.log` keeping only frames at absolute position
    /// `keep_from` and above (raw bytes preserved, torn frames
    /// included, so positions stay consistent).
    fn truncate_wal_below(&mut self, keep_from: u64) -> io::Result<()> {
        if keep_from <= self.wal_base {
            return Ok(());
        }
        let bytes = fs::read(self.wal_path())?;
        let rest = bytes.get(WAL_HEADER_LEN..).unwrap_or(&[]);
        let drop_n = ((keep_from - self.wal_base) as usize).min(self.wal_count as usize);
        // Find the byte offset of the first retained frame.
        let mut at = 0usize;
        for _ in 0..drop_n {
            let Some(len) = read_u32(rest, at) else { break };
            let Some(next) = at
                .checked_add(FRAME_HEADER_LEN)
                .and_then(|x| x.checked_add(len as usize))
            else {
                break;
            };
            at = next;
        }
        let new_base = self.wal_base + drop_n as u64;
        // The retained frames hold key-bearing records: keep the copy
        // wrapped so it zeroizes once rewritten.
        let tail = SecretBytes::new(rest.get(at..).unwrap_or(&[]).to_vec());
        let tmp = self.dir.join("wal.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&WAL_MAGIC)?;
            f.write_all(&VERSION.to_le_bytes())?;
            f.write_all(&new_base.to_le_bytes())?;
            f.write_all(tail.as_slice())?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.wal_path())?;
        self.wal_base = new_base;
        self.wal_count -= drop_n as u64;
        Ok(())
    }

    /// Writes a checkpoint slot file over the older ping-pong slot and
    /// truncates the WAL prefix neither slot needs any more.
    fn install_slot(&mut self, seq: u64, wal_pos: u64, payload: &SecretBytes) -> io::Result<()> {
        let [slot0, slot1] = self.read_slots();
        let target: u8 = match (&slot0, &slot1) {
            (None, _) => 0,
            (_, None) => 1,
            (Some(a), Some(b)) => u8::from(a.seq > b.seq),
        };
        let len = u32::try_from(payload.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "checkpoint too large"))?;
        {
            let mut f = fs::File::create(self.slot_path(target))?;
            f.write_all(&CKPT_MAGIC)?;
            f.write_all(&VERSION.to_le_bytes())?;
            f.write_all(&seq.to_le_bytes())?;
            f.write_all(&wal_pos.to_le_bytes())?;
            f.write_all(&len.to_le_bytes())?;
            f.write_all(&crc32(payload.as_slice()).to_le_bytes())?;
            f.write_all(payload.as_slice())?;
            f.sync_data()?;
        }
        let keep_from = self
            .read_slots()
            .iter()
            .flatten()
            .map(|s| s.wal_pos)
            .min()
            .unwrap_or(self.wal_base);
        self.truncate_wal_below(keep_from)
    }

    /// Flips one payload byte (or, for an empty payload, a CRC byte)
    /// of slot `i` on disk — bit-rot the next read will detect.
    /// Corrupting an already-invalid (or absent, or garbage) slot is a
    /// no-op: the XOR is an involution, so flipping the same byte twice
    /// would silently *restore* the checkpoint. (Found by the
    /// backend-equivalence proptest: `ckpt-corrupt` followed by
    /// `ckpt-slot-corrupt` on the same slot resurrected the payload
    /// that `SimStore` kept invalid.)
    fn corrupt_slot_file(&mut self, i: u8) {
        let path = self.slot_path(i);
        let Ok(mut bytes) = fs::read(&path) else {
            return;
        };
        match parse_slot(&bytes) {
            Some(slot) if slot.valid => {}
            _ => return,
        }
        let at = if bytes.len() > CKPT_HEADER_LEN {
            CKPT_HEADER_LEN
        } else {
            CKPT_CRC_OFFSET
        };
        if let Some(b) = bytes.get_mut(at) {
            *b ^= 0xFF;
        }
        // The slot bytes embed the checkpoint payload: rewrap before
        // the rewrite so this copy zeroizes too.
        let bytes = SecretBytes::new(bytes);
        let write = fs::write(&path, bytes.as_slice());
        self.record_io(write);
    }
}

impl StableStore for FileStore {
    fn wal_append(&mut self, bytes: Vec<u8>) {
        self.cached.push(SecretBytes::new(bytes));
    }

    fn sync(&mut self) {
        self.syncs += 1;
        self.flush_cached();
    }

    fn checkpoint(&mut self, payload: Vec<u8>) {
        self.checkpoints += 1;
        let payload = SecretBytes::new(payload);
        let seq = self.next_ckpt_seq;
        self.next_ckpt_seq += 1;
        let wal_pos = self.wal_end();
        self.sync();
        let res = self.install_slot(seq, wal_pos, &payload);
        self.record_io(res);
    }

    fn append_torn(&mut self, bytes: Vec<u8>) {
        let bytes = SecretBytes::new(bytes);
        // A CRC that cannot match the payload: the frame occupies its
        // WAL position but reads back invalid.
        let crc = !crc32(bytes.as_slice());
        if self
            .record_io(self.append_frame_buf(&bytes, crc))
            .is_some()
        {
            self.wal_count += 1;
        }
    }

    fn load(&self) -> Recovered {
        let slots = self.read_slots();
        let best = slots
            .iter()
            .flatten()
            .filter(|s| s.valid)
            .max_by_key(|s| s.seq);
        let Ok(bytes) = fs::read(self.wal_path()) else {
            return Recovered::default();
        };
        let base = read_u64(&bytes, 8).unwrap_or(0);
        let rest = bytes.get(WAL_HEADER_LEN..).unwrap_or(&[]);
        let (frames, _) = scan_frames(rest);
        let from = best.map(|s| s.wal_pos).unwrap_or(0).max(base);
        let mut wal = Vec::new();
        for frame in frames.iter().skip((from - base) as usize) {
            if !frame.valid {
                break;
            }
            wal.push(frame.payload.as_slice().to_vec());
        }
        Recovered {
            checkpoint: best.map(|s| (s.seq, s.payload.as_slice().to_vec())),
            wal,
        }
    }

    fn inject(&mut self, fault: StoreFault) -> bool {
        match fault {
            StoreFault::CorruptCheckpoint => {
                let newest = self
                    .read_slots()
                    .iter()
                    .zip(0u8..)
                    .filter_map(|(s, i)| s.as_ref().filter(|s| s.valid).map(|s| (s.seq, i)))
                    .max();
                if let Some((_, i)) = newest {
                    self.corrupt_slot_file(i);
                }
                true
            }
            StoreFault::CorruptSlot(i) => {
                if i < 2 {
                    self.corrupt_slot_file(i);
                }
                true
            }
            // Device-dishonesty faults need the FaultyStore wrapper:
            // this backend performs every write it acknowledges.
            StoreFault::LostTail
            | StoreFault::TornWrite
            | StoreFault::ShortRead
            | StoreFault::AppendFail => false,
        }
    }

    fn heal(&mut self) {
        self.sync();
    }

    fn on_crash(&mut self) -> Option<&'static str> {
        // The device cache dies with the process; files survive.
        self.cached.clear();
        None
    }

    fn has_durable_state(&self) -> bool {
        // A corrupted slot still counts: bytes were durably written
        // even if recovery can no longer parse them, matching
        // `SimStore`, whose invalidated slots stay occupied. (Found by
        // the backend-equivalence proptest: `checkpoint` + corrupt
        // both slots left the two devices disagreeing here.)
        self.wal_count > 0
            || (0..2u8).any(|i| fs::read(self.slot_path(i)).is_ok_and(|b| !b.is_empty()))
    }

    fn sync_count(&self) -> u64 {
        self.syncs
    }

    fn checkpoint_count(&self) -> u64 {
        self.checkpoints
    }
}

static SCRATCH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory under the system temp dir, unique per
/// process and call — for tests and harnesses that exercise
/// [`FileStore`] and want per-run isolation without an external
/// tempdir crate. The caller (or the OS) owns cleanup.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let n = SCRATCH_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mykil-{}-{}-{}",
        tag,
        std::process::id(),
        n
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> (FileStore, PathBuf) {
        let dir = scratch_dir(tag);
        let s = match FileStore::open(&dir) {
            Ok(s) => s,
            Err(e) => panic!("open {}: {e}", dir.display()),
        };
        (s, dir)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn commit_survives_reopen() {
        let (mut s, dir) = store("fs-reopen");
        s.wal_commit(vec![1]);
        s.wal_commit(vec![2, 3]);
        s.checkpoint(vec![0xAA]);
        s.wal_commit(vec![4]);
        drop(s);
        let s2 = match FileStore::open(&dir) {
            Ok(s) => s,
            Err(e) => panic!("reopen: {e}"),
        };
        let r = s2.load();
        assert_eq!(r.checkpoint, Some((1, vec![0xAA])));
        assert_eq!(r.wal, vec![vec![4]]);
        assert_eq!(s2.next_ckpt_seq, 2, "seq continues across reopen");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsynced_tail_dies_with_the_process() {
        let (mut s, dir) = store("fs-tail");
        s.wal_commit(vec![1]);
        s.wal_append(vec![2]); // cached, never synced
        s.on_crash();
        assert_eq!(s.load().wal, vec![vec![1]]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ping_pong_and_prefix_truncation() {
        let (mut s, dir) = store("fs-pingpong");
        s.wal_commit(vec![1]);
        s.checkpoint(vec![0xAA]);
        s.wal_commit(vec![2]);
        s.checkpoint(vec![0xBB]);
        s.wal_commit(vec![3]);
        let r = s.load();
        assert_eq!(r.checkpoint, Some((2, vec![0xBB])));
        assert_eq!(r.wal, vec![vec![3]]);
        // Corrupting the newest slot falls back to the older one with
        // its longer (still-durable) WAL suffix.
        s.inject(StoreFault::CorruptCheckpoint);
        let r = s.load();
        assert_eq!(r.checkpoint, Some((1, vec![0xAA])));
        assert_eq!(r.wal, vec![vec![2], vec![3]]);
        // Both slots gone: full replay of the retained log.
        s.inject(StoreFault::CorruptCheckpoint);
        let r = s.load();
        assert!(r.checkpoint.is_none());
        assert_eq!(r.wal, vec![vec![2], vec![3]]);
        assert_eq!(s.io_error_count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_frame_blocks_the_suffix_but_keeps_position() {
        let (mut s, dir) = store("fs-torn");
        s.wal_commit(vec![1]);
        s.append_torn(vec![9, 9]);
        s.wal_commit(vec![3]);
        assert_eq!(s.load().wal, vec![vec![1]]);
        // A checkpoint past the torn frame makes the tail reachable.
        s.checkpoint(vec![0xCC]);
        let r = s.load();
        assert_eq!(r.checkpoint, Some((1, vec![0xCC])));
        assert!(r.wal.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_trailing_frame_is_truncated_on_open() {
        let (mut s, dir) = store("fs-partial");
        s.wal_commit(vec![1]);
        s.wal_commit(vec![2]);
        drop(s);
        // A crash mid-append leaves half a frame: lop 3 bytes off.
        let path = dir.join("wal.log");
        let mut bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) => panic!("read wal: {e}"),
        };
        bytes.extend_from_slice(&[7, 0, 0]); // truncated length field
        if let Err(e) = fs::write(&path, &bytes) {
            panic!("write wal: {e}");
        }
        let mut s2 = match FileStore::open(&dir) {
            Ok(s) => s,
            Err(e) => panic!("reopen: {e}"),
        };
        assert_eq!(s2.load().wal, vec![vec![1], vec![2]]);
        // Framing is intact: appends after recovery read back fine.
        s2.wal_commit(vec![3]);
        assert_eq!(s2.load().wal, vec![vec![1], vec![2], vec![3]]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_slot_file_reads_as_no_checkpoint() {
        let (mut s, dir) = store("fs-garbage-slot");
        s.wal_commit(vec![1]);
        s.checkpoint(vec![0xAA]);
        drop(s);
        // A crash mid-checkpoint leaves the *other* slot file as
        // garbage; recovery must ignore it and use the good slot.
        if let Err(e) = fs::write(dir.join("ckpt1.slot"), b"\xDE\xAD\xBE\xEF junk") {
            panic!("write slot: {e}");
        }
        let s2 = match FileStore::open(&dir) {
            Ok(s) => s,
            Err(e) => panic!("reopen: {e}"),
        };
        let r = s2.load();
        assert_eq!(r.checkpoint, Some((1, vec![0xAA])));
        assert!(r.wal.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_never_forges_a_newer_slot() {
        let (mut s, dir) = store("fs-noforge");
        s.checkpoint(vec![0xAA]);
        s.checkpoint(vec![0xBB]);
        s.inject(StoreFault::CorruptCheckpoint);
        assert_eq!(s.load().checkpoint, Some((1, vec![0xAA])));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Regression (backend-equivalence proptest): corrupting the same
    /// slot twice must not XOR the flipped byte back into a valid
    /// checkpoint — corruption is sticky, as on the sim device.
    #[test]
    fn double_corruption_does_not_resurrect_the_checkpoint() {
        let (mut s, dir) = store("fs-double-corrupt");
        s.checkpoint(vec![1, 1, 1]);
        s.inject(StoreFault::CorruptCheckpoint);
        s.inject(StoreFault::CorruptSlot(0));
        s.inject(StoreFault::CorruptSlot(0));
        assert_eq!(s.load().checkpoint, None, "corruption came back off");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Regression (backend-equivalence proptest): a checkpoint whose
    /// every slot is corrupt still *occupies* storage — the device
    /// reports durable state exists, matching the sim device, even
    /// though nothing is recoverable.
    #[test]
    fn corrupt_slots_still_count_as_durable_state() {
        let (mut s, dir) = store("fs-corrupt-durable");
        assert!(!s.has_durable_state());
        s.checkpoint(vec![7; 4]);
        s.inject(StoreFault::CorruptCheckpoint);
        assert_eq!(s.load().checkpoint, None);
        assert!(s.has_durable_state(), "corrupted slot vanished");
        let _ = fs::remove_dir_all(&dir);
    }
}
