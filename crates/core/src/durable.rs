//! Durable on-disk formats for crash recovery.
//!
//! Mykil's fault-tolerance story in the paper (Section IV) assumes a
//! failed area controller "recovers with its state intact" or is
//! replaced by its backup. This module makes the first half honest: it
//! defines the write-ahead-log records and checkpoint images that an
//! area controller and the registration server commit to simulated
//! stable storage ([`mykil_net::NodeStorage`]), so that a crash wipes
//! volatile memory but `on_restarted` can rebuild from the durable
//! prefix.
//!
//! The discipline mirrors a classic ARIES-lite split:
//!
//! - **WAL records** ([`AcWalRecord`], [`RsWalRecord`]) are committed
//!   *before* a state change is acknowledged to a peer: member
//!   admissions, leaves, evictions, role transitions, client-id
//!   assignment, directory updates.
//! - **Checkpoints** ([`AcCheckpoint`], [`RsCheckpoint`]) capture full
//!   state at natural compaction points (every rekey flush, every
//!   replica-snapshot application, role changes) and truncate the log.
//!
//! The same formats are replayed offline by the durability invariant
//! checker ([`replay_ac`], [`replay_rs`]): at every quiescent point the
//! durable view of a live node must agree with its in-memory state —
//! same role and fencing epoch, same membership, no acknowledged change
//! lost, no evicted member resurrected.

use crate::directory::AcDirectory;
use crate::wire::{Reader, Writer};
use std::collections::BTreeSet;

/// Fencing jump applied to a recovered primary's rekey epoch and
/// replication sequence.
///
/// Both counters may lag their durable image: `sync_seq` is bumped
/// *after* the flush checkpoint that covers the same membership change,
/// and a lying-fsync crash can roll the whole image back to an older
/// consistent prefix. Resuming with a stale counter would make members
/// (epoch guard) and the backup (stale-`StateSync` guard) silently
/// discard the recovered primary's traffic. Jumping far past any value
/// the pre-crash incarnation could have used re-fences both channels.
pub const RECOVERY_EPOCH_JUMP: u64 = 1 << 20;

// ---------------------------------------------------------------------
// Area-controller WAL
// ---------------------------------------------------------------------

const AC_WAL_JOIN: u8 = 1;
const AC_WAL_LEAVE: u8 = 2;
const AC_WAL_EVICT: u8 = 3;
const AC_WAL_PROMOTED: u8 = 4;
const AC_WAL_DEMOTED: u8 = 5;

/// One durable membership or role delta, logged by an area controller
/// before the change is acknowledged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcWalRecord {
    /// A member was admitted (join or rejoin step 7).
    Join {
        /// Client id.
        client: u64,
        /// The member's node address (raw index).
        node: u32,
        /// Encoded member public key.
        pubkey: Vec<u8>,
        /// Device identity from the ticket, if presented.
        device: Option<[u8; 6]>,
        /// Membership expiry, microseconds of virtual time.
        valid_until_us: u64,
    },
    /// A member left voluntarily.
    Leave {
        /// Client id.
        client: u64,
    },
    /// A member was evicted (failure detector or expiry).
    Evict {
        /// Client id.
        client: u64,
    },
    /// This node promoted itself from backup to primary.
    Promoted {
        /// The fencing epoch claimed by the promotion.
        takeover_epoch: u64,
        /// The primary taken over from (raw node index) — the only peer
        /// whose stale heartbeats warrant a signed `Demote`.
        old_primary: u32,
    },
    /// This node accepted an epoch-fenced demotion to backup.
    Demoted {
        /// The surviving primary (raw node index).
        new_primary: u32,
    },
}

impl AcWalRecord {
    /// Serializes the record for [`mykil_net::NodeStorage::wal_commit`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            AcWalRecord::Join {
                client,
                node,
                pubkey,
                device,
                valid_until_us,
            } => {
                w.u8(AC_WAL_JOIN).u64(*client).u32(*node).bytes(pubkey);
                match device {
                    Some(d) => {
                        w.u8(1).raw(d);
                    }
                    None => {
                        w.u8(0);
                    }
                }
                w.u64(*valid_until_us);
            }
            AcWalRecord::Leave { client } => {
                w.u8(AC_WAL_LEAVE).u64(*client);
            }
            AcWalRecord::Evict { client } => {
                w.u8(AC_WAL_EVICT).u64(*client);
            }
            AcWalRecord::Promoted {
                takeover_epoch,
                old_primary,
            } => {
                w.u8(AC_WAL_PROMOTED).u64(*takeover_epoch).u32(*old_primary);
            }
            AcWalRecord::Demoted { new_primary } => {
                w.u8(AC_WAL_DEMOTED).u32(*new_primary);
            }
        }
        w.into_bytes()
    }

    /// Parses a record read back by recovery; `None` on any malformed
    /// input (storage corruption surfaces as an unparseable record, not
    /// a panic).
    pub fn from_bytes(bytes: &[u8]) -> Option<AcWalRecord> {
        let mut r = Reader::new(bytes);
        let rec = match r.u8().ok()? {
            AC_WAL_JOIN => {
                let client = r.u64().ok()?;
                let node = r.u32().ok()?;
                let pubkey = r.bytes().ok()?.to_vec();
                let device = if r.u8().ok()? == 1 {
                    Some(r.array::<6>().ok()?)
                } else {
                    None
                };
                let valid_until_us = r.u64().ok()?;
                AcWalRecord::Join {
                    client,
                    node,
                    pubkey,
                    device,
                    valid_until_us,
                }
            }
            AC_WAL_LEAVE => AcWalRecord::Leave {
                client: r.u64().ok()?,
            },
            AC_WAL_EVICT => AcWalRecord::Evict {
                client: r.u64().ok()?,
            },
            AC_WAL_PROMOTED => AcWalRecord::Promoted {
                takeover_epoch: r.u64().ok()?,
                old_primary: r.u32().ok()?,
            },
            AC_WAL_DEMOTED => AcWalRecord::Demoted {
                new_primary: r.u32().ok()?,
            },
            _ => return None,
        };
        r.finish().ok()?;
        Some(rec)
    }
}

// ---------------------------------------------------------------------
// Area-controller checkpoint
// ---------------------------------------------------------------------

/// Full-state image an area controller writes at compaction points.
///
/// The membership/tree/hierarchy payload reuses the replication
/// snapshot format (`replica_snapshot`), so the checkpoint of a primary
/// is byte-identical to what it ships to its backup; a backup
/// checkpoints the last snapshot it applied, raw. Everything else is
/// the replication/fencing state that the snapshot deliberately leaves
/// out — in particular `stale_peer`, without which a recovered promoted
/// backup could no longer fence the old primary it took over from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcCheckpoint {
    /// Role at checkpoint time.
    pub primary: bool,
    /// The primary this node replicates (raw index; backup role only).
    pub primary_node: u32,
    /// Fencing epoch.
    pub takeover_epoch: u64,
    /// Counterpart's fencing epoch as last seen.
    pub peer_takeover_epoch: u64,
    /// Next-snapshot sequence (primary role).
    pub sync_seq: u64,
    /// Highest snapshot sequence applied (backup role).
    pub applied_sync_seq: u64,
    /// The demoted peer this node still fences, if any (raw index).
    pub stale_peer: Option<u32>,
    /// Backup replica address and encoded public key, if replicated.
    pub backup: Option<(u32, Vec<u8>)>,
    /// Replica-format state snapshot: own state for a primary, the last
    /// applied primary snapshot for a backup (`None` before first
    /// sync).
    pub snapshot: Option<Vec<u8>>,
}

impl AcCheckpoint {
    /// Serializes the checkpoint for
    /// [`mykil_net::NodeStorage::checkpoint`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        if self.primary {
            w.u8(0);
        } else {
            w.u8(1).u32(self.primary_node);
        }
        w.u64(self.takeover_epoch)
            .u64(self.peer_takeover_epoch)
            .u64(self.sync_seq)
            .u64(self.applied_sync_seq);
        match self.stale_peer {
            Some(n) => {
                w.u8(1).u32(n);
            }
            None => {
                w.u8(0);
            }
        }
        match &self.backup {
            Some((node, pubkey)) => {
                w.u8(1).u32(*node).bytes(pubkey);
            }
            None => {
                w.u8(0);
            }
        }
        match &self.snapshot {
            Some(s) => {
                w.u8(1).bytes(s);
            }
            None => {
                w.u8(0);
            }
        }
        w.into_bytes()
    }

    /// Parses a checkpoint read back by recovery; `None` on corruption.
    pub fn from_bytes(bytes: &[u8]) -> Option<AcCheckpoint> {
        let mut r = Reader::new(bytes);
        let (primary, primary_node) = match r.u8().ok()? {
            0 => (true, 0),
            1 => (false, r.u32().ok()?),
            _ => return None,
        };
        let takeover_epoch = r.u64().ok()?;
        let peer_takeover_epoch = r.u64().ok()?;
        let sync_seq = r.u64().ok()?;
        let applied_sync_seq = r.u64().ok()?;
        let stale_peer = match r.u8().ok()? {
            0 => None,
            1 => Some(r.u32().ok()?),
            _ => return None,
        };
        let backup = match r.u8().ok()? {
            0 => None,
            1 => {
                let node = r.u32().ok()?;
                let pubkey = r.bytes().ok()?.to_vec();
                Some((node, pubkey))
            }
            _ => return None,
        };
        let snapshot = match r.u8().ok()? {
            0 => None,
            1 => Some(r.bytes().ok()?.to_vec()),
            _ => return None,
        };
        r.finish().ok()?;
        Some(AcCheckpoint {
            primary,
            primary_node,
            takeover_epoch,
            peer_takeover_epoch,
            sync_seq,
            applied_sync_seq,
            stale_peer,
            backup,
            snapshot,
        })
    }
}

// ---------------------------------------------------------------------
// Registration-server WAL and checkpoint
// ---------------------------------------------------------------------

const RS_WAL_CLIENT: u8 = 1;
const RS_WAL_UPSERT: u8 = 2;

/// One durable registration-server delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsWalRecord {
    /// A client id was handed out in join step 4/5. Logged before the
    /// reply so a recovered RS never re-issues the same id.
    ClientAssigned {
        /// The id assigned.
        client: u64,
    },
    /// A takeover notification updated the AC directory.
    DirectoryUpsert {
        /// Area whose entry changed.
        area: u32,
        /// The new controller's node address (raw index).
        node: u32,
        /// The new controller's encoded public key.
        pubkey: Vec<u8>,
    },
}

impl RsWalRecord {
    /// Serializes the record.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            RsWalRecord::ClientAssigned { client } => {
                w.u8(RS_WAL_CLIENT).u64(*client);
            }
            RsWalRecord::DirectoryUpsert { area, node, pubkey } => {
                w.u8(RS_WAL_UPSERT).u32(*area).u32(*node).bytes(pubkey);
            }
        }
        w.into_bytes()
    }

    /// Parses a record; `None` on corruption.
    pub fn from_bytes(bytes: &[u8]) -> Option<RsWalRecord> {
        let mut r = Reader::new(bytes);
        let rec = match r.u8().ok()? {
            RS_WAL_CLIENT => RsWalRecord::ClientAssigned {
                client: r.u64().ok()?,
            },
            RS_WAL_UPSERT => RsWalRecord::DirectoryUpsert {
                area: r.u32().ok()?,
                node: r.u32().ok()?,
                pubkey: r.bytes().ok()?.to_vec(),
            },
            _ => return None,
        };
        r.finish().ok()?;
        Some(rec)
    }
}

/// Registration-server checkpoint: id allocators plus the directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsCheckpoint {
    /// Next client id to hand out.
    pub next_client: u64,
    /// Next area for round-robin placement.
    pub next_area: u64,
    /// Current AC directory (reflects all applied takeovers).
    pub directory: AcDirectory,
}

impl RsCheckpoint {
    /// Serializes the checkpoint.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.next_client).u64(self.next_area);
        self.directory.write(&mut w);
        w.into_bytes()
    }

    /// Parses a checkpoint; `None` on corruption.
    pub fn from_bytes(bytes: &[u8]) -> Option<RsCheckpoint> {
        let mut r = Reader::new(bytes);
        let next_client = r.u64().ok()?;
        let next_area = r.u64().ok()?;
        let directory = AcDirectory::read(&mut r).ok()?;
        r.finish().ok()?;
        Some(RsCheckpoint {
            next_client,
            next_area,
            directory,
        })
    }
}

// ---------------------------------------------------------------------
// Offline replay (durability invariants)
// ---------------------------------------------------------------------

/// Membership facts extracted from a replica-format snapshot without
/// decoding the key tree: the member-id set and the rekey epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotSummary {
    /// Client ids of every member in the snapshot.
    pub members: BTreeSet<u64>,
    /// Rekey epoch at snapshot time.
    pub epoch: u64,
}

/// Parses the membership portion of a `replica_snapshot` image. Walks
/// the exact field layout (tree bytes, member list, parent link, parent
/// keys, epoch); returns `None` if the image does not parse that far.
pub fn snapshot_summary(bytes: &[u8]) -> Option<SnapshotSummary> {
    let mut r = Reader::new(bytes);
    r.bytes().ok()?; // tree snapshot, opaque here
    let count = r.u32().ok()? as usize;
    let mut members = BTreeSet::new();
    for _ in 0..count {
        let client = r.u64().ok()?;
        r.u32().ok()?; // node
        r.bytes().ok()?; // pubkey
        if r.u8().ok()? == 1 {
            r.array::<6>().ok()?; // device
        }
        r.u64().ok()?; // valid_until
        members.insert(client);
    }
    if r.u8().ok()? == 1 {
        r.u32().ok()?; // parent node
        r.u32().ok()?; // parent area
        r.u32().ok()?; // parent group
    }
    r.bytes().ok()?; // parent keys
    let epoch = r.u64().ok()?;
    Some(SnapshotSummary { members, epoch })
}

/// What an area controller's durable state says it should look like
/// after recovery: checkpoint applied, WAL suffix replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableAcView {
    /// Whether the durable role is primary.
    pub primary: bool,
    /// Durable fencing epoch.
    pub takeover_epoch: u64,
    /// Durable rekey epoch (primary state only; 0 otherwise).
    pub epoch: u64,
    /// Durable next-snapshot sequence.
    pub sync_seq: u64,
    /// Durable highest-applied snapshot sequence.
    pub applied_sync_seq: u64,
    /// Durable member-id set (primary state only).
    pub members: BTreeSet<u64>,
    /// Members evicted in the WAL suffix and not re-admitted since: a
    /// recovered controller must not count any of them as members.
    pub evicted: BTreeSet<u64>,
    /// Whether a valid checkpoint contributed to this view.
    pub had_checkpoint: bool,
}

/// Replays an area controller's durable state (as returned by
/// [`mykil_net::NodeStorage::load`]) into the view recovery must
/// produce. `None` only when the checkpoint exists but does not parse;
/// unparseable WAL records end the replay early (mirroring recovery's
/// torn-tail handling).
pub fn replay_ac(checkpoint: Option<&[u8]>, wal: &[Vec<u8>]) -> Option<DurableAcView> {
    let mut view = DurableAcView {
        primary: false,
        takeover_epoch: 0,
        epoch: 0,
        sync_seq: 0,
        applied_sync_seq: 0,
        members: BTreeSet::new(),
        evicted: BTreeSet::new(),
        had_checkpoint: false,
    };
    // A backup's checkpointed snapshot is its primary's state, held in
    // escrow: it becomes this node's own membership only at promotion.
    let mut escrow: Option<SnapshotSummary> = None;
    if let Some(bytes) = checkpoint {
        let cp = AcCheckpoint::from_bytes(bytes)?;
        view.primary = cp.primary;
        view.takeover_epoch = cp.takeover_epoch;
        view.sync_seq = cp.sync_seq;
        view.applied_sync_seq = cp.applied_sync_seq;
        view.had_checkpoint = true;
        if let Some(snap) = &cp.snapshot {
            let summary = snapshot_summary(snap)?;
            if cp.primary {
                view.members = summary.members;
                view.epoch = summary.epoch;
            } else {
                escrow = Some(summary);
            }
        }
    }
    for raw in wal {
        let Some(rec) = AcWalRecord::from_bytes(raw) else {
            break;
        };
        match rec {
            AcWalRecord::Join { client, .. } => {
                view.members.insert(client);
                view.evicted.remove(&client);
            }
            AcWalRecord::Leave { client } => {
                view.members.remove(&client);
            }
            AcWalRecord::Evict { client } => {
                view.members.remove(&client);
                view.evicted.insert(client);
            }
            AcWalRecord::Promoted { takeover_epoch, .. } => {
                view.primary = true;
                view.takeover_epoch = takeover_epoch;
                if let Some(s) = escrow.take() {
                    view.members = s.members;
                    view.epoch = s.epoch;
                }
            }
            AcWalRecord::Demoted { .. } => {
                view.primary = false;
                view.members.clear();
                view.evicted.clear();
                view.epoch = 0;
            }
        }
    }
    Some(view)
}

/// The registration server's durable view: checkpoint plus WAL suffix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableRsView {
    /// Durable next client id.
    pub next_client: u64,
    /// Durable next round-robin area.
    pub next_area: u64,
    /// Durable AC directory.
    pub directory: AcDirectory,
}

/// Replays the registration server's durable state. `None` when the
/// checkpoint exists but does not parse.
pub fn replay_rs(checkpoint: Option<&[u8]>, wal: &[Vec<u8>]) -> Option<DurableRsView> {
    let mut view = DurableRsView {
        next_client: 1,
        next_area: 0,
        directory: AcDirectory::default(),
    };
    if let Some(bytes) = checkpoint {
        let cp = RsCheckpoint::from_bytes(bytes)?;
        view.next_client = cp.next_client;
        view.next_area = cp.next_area;
        view.directory = cp.directory;
    }
    for raw in wal {
        let Some(rec) = RsWalRecord::from_bytes(raw) else {
            break;
        };
        match rec {
            RsWalRecord::ClientAssigned { client } => {
                view.next_client = view.next_client.max(client + 1);
            }
            RsWalRecord::DirectoryUpsert { area, node, pubkey } => {
                view.directory.upsert(crate::directory::AcInfo {
                    area: crate::identity::AreaId(area),
                    node,
                    pubkey,
                });
            }
        }
    }
    Some(view)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ac_wal_records_round_trip() {
        let records = vec![
            AcWalRecord::Join {
                client: 42,
                node: 7,
                pubkey: vec![1, 2, 3],
                device: Some([9; 6]),
                valid_until_us: 1_000_000,
            },
            AcWalRecord::Join {
                client: 43,
                node: 8,
                pubkey: vec![4],
                device: None,
                valid_until_us: 0,
            },
            AcWalRecord::Leave { client: 42 },
            AcWalRecord::Evict { client: 43 },
            AcWalRecord::Promoted {
                takeover_epoch: 3,
                old_primary: 1,
            },
            AcWalRecord::Demoted { new_primary: 2 },
        ];
        for rec in records {
            let bytes = rec.to_bytes();
            assert_eq!(AcWalRecord::from_bytes(&bytes), Some(rec));
        }
    }

    #[test]
    fn ac_wal_rejects_garbage() {
        assert_eq!(AcWalRecord::from_bytes(&[]), None);
        assert_eq!(AcWalRecord::from_bytes(&[0xFF, 1, 2]), None);
        // Trailing bytes after a valid record are corruption.
        let mut bytes = AcWalRecord::Leave { client: 1 }.to_bytes();
        bytes.push(0);
        assert_eq!(AcWalRecord::from_bytes(&bytes), None);
    }

    #[test]
    fn ac_checkpoint_round_trips_both_roles() {
        let primary = AcCheckpoint {
            primary: true,
            primary_node: 0,
            takeover_epoch: 2,
            peer_takeover_epoch: 1,
            sync_seq: 17,
            applied_sync_seq: 0,
            stale_peer: Some(4),
            backup: Some((5, vec![0xAB, 0xCD])),
            snapshot: Some(vec![1, 2, 3]),
        };
        assert_eq!(
            AcCheckpoint::from_bytes(&primary.to_bytes()),
            Some(primary)
        );
        let backup = AcCheckpoint {
            primary: false,
            primary_node: 3,
            takeover_epoch: 0,
            peer_takeover_epoch: 2,
            sync_seq: 0,
            applied_sync_seq: 9,
            stale_peer: None,
            backup: None,
            snapshot: None,
        };
        assert_eq!(AcCheckpoint::from_bytes(&backup.to_bytes()), Some(backup));
    }

    #[test]
    fn rs_formats_round_trip() {
        let records = vec![
            RsWalRecord::ClientAssigned { client: 12 },
            RsWalRecord::DirectoryUpsert {
                area: 1,
                node: 9,
                pubkey: vec![7, 7],
            },
        ];
        for rec in records {
            assert_eq!(RsWalRecord::from_bytes(&rec.to_bytes()), Some(rec));
        }
        let cp = RsCheckpoint {
            next_client: 5,
            next_area: 2,
            directory: AcDirectory::default(),
        };
        assert_eq!(RsCheckpoint::from_bytes(&cp.to_bytes()), Some(cp));
    }

    #[test]
    fn replay_ac_applies_wal_over_checkpoint() {
        // No checkpoint: pure WAL replay.
        let wal: Vec<Vec<u8>> = vec![
            AcWalRecord::Join {
                client: 1,
                node: 10,
                pubkey: vec![1],
                device: None,
                valid_until_us: 0,
            }
            .to_bytes(),
            AcWalRecord::Join {
                client: 2,
                node: 11,
                pubkey: vec![2],
                device: None,
                valid_until_us: 0,
            }
            .to_bytes(),
            AcWalRecord::Evict { client: 1 }.to_bytes(),
            AcWalRecord::Leave { client: 2 }.to_bytes(),
        ];
        let view = replay_ac(None, &wal).unwrap();
        assert!(view.members.is_empty());
        assert_eq!(view.evicted, BTreeSet::from([1]));
        assert!(!view.had_checkpoint);
    }

    #[test]
    fn replay_ac_readmission_clears_eviction() {
        let wal: Vec<Vec<u8>> = vec![
            AcWalRecord::Evict { client: 1 }.to_bytes(),
            AcWalRecord::Join {
                client: 1,
                node: 10,
                pubkey: vec![1],
                device: None,
                valid_until_us: 0,
            }
            .to_bytes(),
        ];
        let view = replay_ac(None, &wal).unwrap();
        assert_eq!(view.members, BTreeSet::from([1]));
        assert!(view.evicted.is_empty());
    }

    #[test]
    fn replay_ac_promotion_adopts_escrowed_replica() {
        // A backup checkpoint holds the primary's snapshot in escrow;
        // a Promoted record in the WAL suffix adopts it.
        let snap = {
            // Minimal replica-format image: empty tree bytes, one
            // member, no parent, empty parent keys, epoch 7.
            let mut w = Writer::new();
            w.bytes(&[]);
            w.u32(1);
            w.u64(31).u32(12).bytes(&[1]).u8(0).u64(0);
            w.u8(0);
            w.bytes(&[]);
            w.u64(7);
            w.u32(0);
            w.u32(0);
            w.into_bytes()
        };
        let cp = AcCheckpoint {
            primary: false,
            primary_node: 2,
            takeover_epoch: 0,
            peer_takeover_epoch: 1,
            sync_seq: 0,
            applied_sync_seq: 4,
            stale_peer: None,
            backup: None,
            snapshot: Some(snap),
        };
        let wal = vec![AcWalRecord::Promoted {
            takeover_epoch: 2,
            old_primary: 2,
        }
        .to_bytes()];
        let view = replay_ac(Some(&cp.to_bytes()), &wal).unwrap();
        assert!(view.primary);
        assert_eq!(view.takeover_epoch, 2);
        assert_eq!(view.members, BTreeSet::from([31]));
        assert_eq!(view.epoch, 7);
    }

    #[test]
    fn replay_ac_stops_at_first_bad_record() {
        let wal: Vec<Vec<u8>> = vec![
            AcWalRecord::Join {
                client: 1,
                node: 10,
                pubkey: vec![1],
                device: None,
                valid_until_us: 0,
            }
            .to_bytes(),
            vec![0xFF, 0xFF],
            AcWalRecord::Evict { client: 1 }.to_bytes(),
        ];
        let view = replay_ac(None, &wal).unwrap();
        // The eviction after the bad record must not apply.
        assert_eq!(view.members, BTreeSet::from([1]));
        assert!(view.evicted.is_empty());
    }

    #[test]
    fn replay_rs_tracks_allocator_high_water_mark() {
        let cp = RsCheckpoint {
            next_client: 5,
            next_area: 1,
            directory: AcDirectory::default(),
        };
        let wal = vec![
            RsWalRecord::ClientAssigned { client: 5 }.to_bytes(),
            RsWalRecord::ClientAssigned { client: 6 }.to_bytes(),
        ];
        let view = replay_rs(Some(&cp.to_bytes()), &wal).unwrap();
        assert_eq!(view.next_client, 7);
        assert_eq!(view.next_area, 1);
    }
}
