//! Constant-time primitives: comparison and zeroization.
//!
//! Everything that compares MAC tags, digests, or key bytes must come
//! through [`ct_eq`]; lint rule L003 enforces this. Everything that
//! holds key material zeroizes through [`zeroize`] on `Drop`; rule
//! L002 enforces that.

/// Constant-time byte-slice equality.
///
/// Runs in time dependent only on the slice lengths, never on the
/// contents: the mismatch accumulator is OR-folded over every byte with
/// no early exit. Slices of different lengths compare unequal, and the
/// length check is the only data-independent branch.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Collapse without branching on the value.
    diff == 0
}

/// Overwrites `bytes` with zeros through volatile writes, so the
/// compiler cannot elide the wipe as a dead store when the buffer is
/// about to be dropped.
pub fn zeroize(bytes: &mut [u8]) {
    for b in bytes.iter_mut() {
        // SAFETY: `b` is a valid, aligned, exclusive reference.
        unsafe { core::ptr::write_volatile(b, 0) };
    }
    core::sync::atomic::compiler_fence(core::sync::atomic::Ordering::SeqCst);
}

/// [`zeroize`] for `u32` words (cipher state, bignum limbs).
pub fn zeroize_u32(words: &mut [u32]) {
    for w in words.iter_mut() {
        // SAFETY: `w` is a valid, aligned, exclusive reference.
        unsafe { core::ptr::write_volatile(w, 0) };
    }
    core::sync::atomic::compiler_fence(core::sync::atomic::Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_and_unequal() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"", b"x"));
    }

    #[test]
    fn first_and_last_byte_differences_detected() {
        let a = [0u8; 32];
        let mut b = a;
        b[0] = 1;
        assert!(!ct_eq(&a, &b));
        let mut c = a;
        c[31] = 1;
        assert!(!ct_eq(&a, &c));
    }

    #[test]
    fn zeroize_clears() {
        let mut buf = [0xAAu8; 64];
        zeroize(&mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        let mut words = [0xDEADBEEFu32; 16];
        zeroize_u32(&mut words);
        assert!(words.iter().all(|&w| w == 0));
    }
}
