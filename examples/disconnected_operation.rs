//! Disconnected operation: the group keeps working inside each network
//! partition (Section IV of the paper).
//!
//! Mykil's decentralized key management means a partition does not stop
//! the service: "as long as a member can contact its area controller,
//! it can continue to multicast data and receive data multicast by
//! another member within the same partition". This example splits a
//! two-area deployment down the middle and shows both halves streaming
//! independently, then heals the partition and shows full connectivity
//! returning.
//!
//! ```sh
//! cargo run --example disconnected_operation --release
//! ```

use mykil::group::GroupBuilder;
use mykil_net::Duration;

fn main() {
    let mut group = GroupBuilder::new(17).areas(2).build();

    // Two members per area.
    let members: Vec<_> = (0..4).map(|i| group.register_member(i)).collect();
    group.settle();
    let in_area = |group: &mykil::group::GroupHandle, area: u32| -> Vec<_> {
        members
            .iter()
            .copied()
            .filter(|&m| group.member(m).area().unwrap().0 == area)
            .collect()
    };
    let area0 = in_area(&group, 0);
    let area1 = in_area(&group, 1);
    println!("area 0 members: {}, area 1 members: {}", area0.len(), area1.len());

    // Partition the network between the two areas: every area-1 node
    // (its AC and members) moves to partition label 1. The registration
    // server stays with partition 0.
    println!("partitioning the network between the areas...");
    group.sim.partition(group.primaries[1], 1);
    for &m in &area1 {
        group.sim.partition(m, 1);
    }

    // Each partition keeps multicasting internally.
    group.send_data(area0[0], b"partition-0 broadcast");
    group.send_data(area1[0], b"partition-1 broadcast");
    group.run_for(Duration::from_secs(3));

    for &m in &area0 {
        let got = group.received_data(m);
        assert!(got.contains(&b"partition-0 broadcast".to_vec()));
        assert!(!got.contains(&b"partition-1 broadcast".to_vec()));
    }
    for &m in &area1 {
        let got = group.received_data(m);
        assert!(got.contains(&b"partition-1 broadcast".to_vec()));
        assert!(!got.contains(&b"partition-0 broadcast".to_vec()));
    }
    println!("both halves kept their multicast service (keys, rekeying, data)");

    // Heal: cross-area traffic resumes.
    println!("healing the partition...");
    group.sim.heal_partitions();
    group.run_for(Duration::from_secs(2));
    group.send_data(area0[0], b"reunited");
    group.run_for(Duration::from_secs(2));
    for &m in &members {
        assert!(
            group.received_data(m).contains(&b"reunited".to_vec()),
            "member did not recover after heal"
        );
    }
    println!("all {} members received the post-heal broadcast", members.len());
}
