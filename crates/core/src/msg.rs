//! Top-level wire messages.
//!
//! One tag byte plus fields. Encrypted payloads (`ct`) are opaque here:
//! the join/rejoin steps encode their inner fields with
//! [`crate::wire`] and encrypt with the recipient's RSA key (hybrid
//! envelopes, per the paper's one-time-key workaround); `sig` fields are
//! RSA signatures over the ciphertext bytes, mirroring the
//! `{...}_Pub_x; Sig_Prv_y` notation of Figures 3 and 7.
//!
//! A note on MACs: each figure lists an explicit "MAC" field inside the
//! encrypted payload. In this implementation that MAC is provided by
//! the hybrid envelope's encrypt-then-MAC construction
//! ([`mykil_crypto::envelope`]), which authenticates exactly the fields
//! the figures enumerate.
//!
//! A note on delivery: most messages are fire-and-forget (loss is
//! handled by protocol-level retries or the epoch-gap
//! [`Msg::KeyRefreshRequest`] machinery), but the control-plane
//! unicasts that would otherwise stall recovery ride the simulator's
//! reliable channel (`Context::send_reliable` — retransmission with
//! exponential backoff plus receiver-side dedup):
//! [`Msg::AreaJoinReq`]/[`Msg::AreaJoinAck`] (parent switch and
//! post-takeover re-enrollment), [`Msg::StateSync`] (primary → backup,
//! with a monotonic sequence guard), the unicast [`Msg::Takeover`]
//! announcement to the registration server, and [`Msg::LeaveRequest`].

use crate::error::ProtocolError;
use crate::identity::{AreaId, ClientId};
use crate::wire::{Reader, Writer};

/// Why a rejoin was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejoinDenyReason {
    /// Ticket failed to verify or expired.
    BadTicket,
    /// Previous AC reports the client is still an active member
    /// (cohort-sharing suspected).
    StillMemberElsewhere,
    /// Previous AC unreachable and policy is deny (Section IV-B
    /// option 1).
    PartitionedStrict,
    /// Device id does not match the ticket (option 2 NIC check).
    DeviceMismatch,
    /// The controller does not know this client at all — sent in reply
    /// to a `KeyRefreshRequest` from a node outside the member list
    /// (evicted during a partition or lost in a failover). The session
    /// is dead; the client must rejoin or re-register, not refresh.
    NotMember,
}

impl RejoinDenyReason {
    fn to_u8(self) -> u8 {
        match self {
            RejoinDenyReason::BadTicket => 0,
            RejoinDenyReason::StillMemberElsewhere => 1,
            RejoinDenyReason::PartitionedStrict => 2,
            RejoinDenyReason::DeviceMismatch => 3,
            RejoinDenyReason::NotMember => 4,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ProtocolError> {
        Ok(match v {
            0 => RejoinDenyReason::BadTicket,
            1 => RejoinDenyReason::StillMemberElsewhere,
            2 => RejoinDenyReason::PartitionedStrict,
            3 => RejoinDenyReason::DeviceMismatch,
            4 => RejoinDenyReason::NotMember,
            _ => return Err(ProtocolError::Malformed("deny reason")),
        })
    }
}

/// Every message exchanged in the Mykil protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Join step 1, client → registration server (Figure 3).
    Join1 { ct: Vec<u8> },
    /// Join step 2, RS → client.
    Join2 { ct: Vec<u8> },
    /// Join step 3, client → RS.
    Join3 { ct: Vec<u8> },
    /// Join step 4, RS → area controller (signed).
    Join4 { ct: Vec<u8>, sig: Vec<u8> },
    /// Join step 5, RS → client (signed).
    Join5 { ct: Vec<u8>, sig: Vec<u8> },
    /// Join step 6, client → AC.
    Join6 { ct: Vec<u8> },
    /// Join step 7, AC → client (welcome payload with ticket and keys).
    Join7 { ct: Vec<u8> },

    /// Rejoin step 1, client → new AC (Figure 7).
    Rejoin1 { ct: Vec<u8> },
    /// Rejoin step 2, new AC → client.
    Rejoin2 { ct: Vec<u8> },
    /// Rejoin step 3, client → new AC.
    Rejoin3 { ct: Vec<u8> },
    /// Rejoin step 4, new AC → previous AC (signed).
    Rejoin4 { ct: Vec<u8>, sig: Vec<u8> },
    /// Rejoin step 5, previous AC → new AC (signed).
    Rejoin5 { ct: Vec<u8>, sig: Vec<u8> },
    /// Rejoin step 6, new AC → client (signed welcome).
    Rejoin6 { ct: Vec<u8>, sig: Vec<u8> },
    /// Rejoin refused.
    RejoinDenied { reason: RejoinDenyReason },

    /// Area-join request: an AC asks another AC to become its parent
    /// (Section IV-C, signed).
    AreaJoinReq { ct: Vec<u8>, sig: Vec<u8> },
    /// Area-join acknowledgement (signed).
    AreaJoinAck { ct: Vec<u8>, sig: Vec<u8> },

    /// Multicast rekey message, signed by the AC (Section III-E).
    KeyUpdate {
        /// The area being rekeyed.
        area: AreaId,
        /// Monotonic rekey epoch within the area.
        epoch: u64,
        /// Serialized key changes (see `area::encode_key_update`).
        body: Vec<u8>,
        /// AC signature over area ‖ epoch ‖ body.
        sig: Vec<u8>,
    },
    /// Unicast key delivery to one member (hybrid-encrypted).
    KeyUnicast { ct: Vec<u8> },
    /// A member asks its AC to re-send its current key path (recovery
    /// after missed key-update multicasts; loss is possible because the
    /// multicast transport, unlike the paper's TCP, is unreliable).
    KeyRefreshRequest {
        /// The requesting member.
        client: ClientId,
    },
    /// A member announces a voluntary departure (Section III-D);
    /// hybrid-encrypted to the AC.
    LeaveRequest { ct: Vec<u8> },

    /// Multicast application data within an area: RC4 ciphertext under a
    /// random key `K_r`, with `K_r` sealed under the area key
    /// (Section III / Figure 2).
    Data {
        /// The original sender.
        origin: ClientId,
        /// Sender-assigned sequence number (dedup across forwarding).
        seq: u64,
        /// `K_r` sealed under the local area key.
        wrapped_key: Vec<u8>,
        /// The data encrypted under `K_r`.
        payload: Vec<u8>,
    },

    /// AC's idle-period alive multicast (`T_idle`, Section IV-A). It
    /// carries the current rekey epoch so receivers that missed a
    /// key-update multicast detect it within one idle period.
    AcAlive { area: AreaId, epoch: u64 },
    /// Member's alive unicast to its AC (`T_active`).
    MemberAlive { client: ClientId },

    /// Primary → backup liveness probe. Carries the sender's takeover
    /// epoch so a stale primary surviving a partition heal discovers a
    /// newer promotion (split-brain fencing, see `area::replication`).
    Heartbeat { seq: u64, takeover_epoch: u64 },
    /// Backup → primary response, echoing the responder's takeover
    /// epoch (a backup that was promoted during a partition answers
    /// with a higher epoch than the stale primary's own).
    HeartbeatAck { seq: u64, takeover_epoch: u64 },
    /// Primary → backup state synchronization (sealed under the
    /// replication key).
    StateSync { ct: Vec<u8> },
    /// Backup announces takeover to the area (signed).
    Takeover {
        /// The area whose controller failed.
        area: AreaId,
        /// Signature by the backup's key over the area id.
        sig: Vec<u8>,
        /// The backup's public key (members verify against the copy
        /// received at join time).
        pubkey: Vec<u8>,
    },
    /// Promoted primary → stale primary: "a takeover with this epoch
    /// superseded you; demote yourself to backup and resync" (signed by
    /// the promoted backup's key, which the stale primary can verify
    /// against its own deployment record).
    Demote {
        /// The contested area.
        area: AreaId,
        /// The superseding takeover epoch.
        takeover_epoch: u64,
        /// Signature over area ‖ takeover_epoch by the promoted
        /// backup's key.
        sig: Vec<u8>,
    },
}

macro_rules! ct_only {
    ($w:expr, $tag:expr, $ct:expr) => {{
        $w.u8($tag).bytes($ct);
    }};
}

macro_rules! ct_sig {
    ($w:expr, $tag:expr, $ct:expr, $sig:expr) => {{
        $w.u8($tag).bytes($ct).bytes($sig);
    }};
}

impl Msg {
    /// Serializes to bytes for the simulator.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Msg::Join1 { ct } => ct_only!(w, 1, ct),
            Msg::Join2 { ct } => ct_only!(w, 2, ct),
            Msg::Join3 { ct } => ct_only!(w, 3, ct),
            Msg::Join4 { ct, sig } => ct_sig!(w, 4, ct, sig),
            Msg::Join5 { ct, sig } => ct_sig!(w, 5, ct, sig),
            Msg::Join6 { ct } => ct_only!(w, 6, ct),
            Msg::Join7 { ct } => ct_only!(w, 7, ct),
            Msg::Rejoin1 { ct } => ct_only!(w, 10, ct),
            Msg::Rejoin2 { ct } => ct_only!(w, 11, ct),
            Msg::Rejoin3 { ct } => ct_only!(w, 12, ct),
            Msg::Rejoin4 { ct, sig } => ct_sig!(w, 13, ct, sig),
            Msg::Rejoin5 { ct, sig } => ct_sig!(w, 14, ct, sig),
            Msg::Rejoin6 { ct, sig } => ct_sig!(w, 15, ct, sig),
            Msg::RejoinDenied { reason } => {
                w.u8(16).u8(reason.to_u8());
            }
            Msg::AreaJoinReq { ct, sig } => ct_sig!(w, 20, ct, sig),
            Msg::AreaJoinAck { ct, sig } => ct_sig!(w, 21, ct, sig),
            Msg::KeyUpdate {
                area,
                epoch,
                body,
                sig,
            } => {
                w.u8(30).u32(area.0).u64(*epoch).bytes(body).bytes(sig);
            }
            Msg::KeyUnicast { ct } => ct_only!(w, 31, ct),
            Msg::KeyRefreshRequest { client } => {
                w.u8(32).u64(client.0);
            }
            Msg::LeaveRequest { ct } => ct_only!(w, 33, ct),
            Msg::Data {
                origin,
                seq,
                wrapped_key,
                payload,
            } => {
                w.u8(40)
                    .u64(origin.0)
                    .u64(*seq)
                    .bytes(wrapped_key)
                    .bytes(payload);
            }
            Msg::AcAlive { area, epoch } => {
                w.u8(50).u32(area.0).u64(*epoch);
            }
            Msg::MemberAlive { client } => {
                w.u8(51).u64(client.0);
            }
            Msg::Heartbeat {
                seq,
                takeover_epoch,
            } => {
                w.u8(60).u64(*seq).u64(*takeover_epoch);
            }
            Msg::HeartbeatAck {
                seq,
                takeover_epoch,
            } => {
                w.u8(61).u64(*seq).u64(*takeover_epoch);
            }
            Msg::StateSync { ct } => ct_only!(w, 62, ct),
            Msg::Takeover { area, sig, pubkey } => {
                w.u8(63).u32(area.0).bytes(sig).bytes(pubkey);
            }
            Msg::Demote {
                area,
                takeover_epoch,
                sig,
            } => {
                w.u8(64).u32(area.0).u64(*takeover_epoch).bytes(sig);
            }
        }
        w.into_bytes()
    }

    /// Parses bytes received from the simulator.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] for unknown tags or truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Msg, ProtocolError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let msg = match tag {
            1 => Msg::Join1 { ct: r.bytes()?.to_vec() },
            2 => Msg::Join2 { ct: r.bytes()?.to_vec() },
            3 => Msg::Join3 { ct: r.bytes()?.to_vec() },
            4 => Msg::Join4 { ct: r.bytes()?.to_vec(), sig: r.bytes()?.to_vec() },
            5 => Msg::Join5 { ct: r.bytes()?.to_vec(), sig: r.bytes()?.to_vec() },
            6 => Msg::Join6 { ct: r.bytes()?.to_vec() },
            7 => Msg::Join7 { ct: r.bytes()?.to_vec() },
            10 => Msg::Rejoin1 { ct: r.bytes()?.to_vec() },
            11 => Msg::Rejoin2 { ct: r.bytes()?.to_vec() },
            12 => Msg::Rejoin3 { ct: r.bytes()?.to_vec() },
            13 => Msg::Rejoin4 { ct: r.bytes()?.to_vec(), sig: r.bytes()?.to_vec() },
            14 => Msg::Rejoin5 { ct: r.bytes()?.to_vec(), sig: r.bytes()?.to_vec() },
            15 => Msg::Rejoin6 { ct: r.bytes()?.to_vec(), sig: r.bytes()?.to_vec() },
            16 => Msg::RejoinDenied {
                reason: RejoinDenyReason::from_u8(r.u8()?)?,
            },
            20 => Msg::AreaJoinReq { ct: r.bytes()?.to_vec(), sig: r.bytes()?.to_vec() },
            21 => Msg::AreaJoinAck { ct: r.bytes()?.to_vec(), sig: r.bytes()?.to_vec() },
            30 => Msg::KeyUpdate {
                area: AreaId(r.u32()?),
                epoch: r.u64()?,
                body: r.bytes()?.to_vec(),
                sig: r.bytes()?.to_vec(),
            },
            31 => Msg::KeyUnicast { ct: r.bytes()?.to_vec() },
            32 => Msg::KeyRefreshRequest { client: ClientId(r.u64()?) },
            33 => Msg::LeaveRequest { ct: r.bytes()?.to_vec() },
            40 => Msg::Data {
                origin: ClientId(r.u64()?),
                seq: r.u64()?,
                wrapped_key: r.bytes()?.to_vec(),
                payload: r.bytes()?.to_vec(),
            },
            50 => Msg::AcAlive {
                area: AreaId(r.u32()?),
                epoch: r.u64()?,
            },
            51 => Msg::MemberAlive { client: ClientId(r.u64()?) },
            60 => Msg::Heartbeat {
                seq: r.u64()?,
                takeover_epoch: r.u64()?,
            },
            61 => Msg::HeartbeatAck {
                seq: r.u64()?,
                takeover_epoch: r.u64()?,
            },
            62 => Msg::StateSync { ct: r.bytes()?.to_vec() },
            63 => Msg::Takeover {
                area: AreaId(r.u32()?),
                sig: r.bytes()?.to_vec(),
                pubkey: r.bytes()?.to_vec(),
            },
            64 => Msg::Demote {
                area: AreaId(r.u32()?),
                takeover_epoch: r.u64()?,
                sig: r.bytes()?.to_vec(),
            },
            _ => return Err(ProtocolError::Malformed("unknown message tag")),
        };
        r.finish()?;
        Ok(msg)
    }

    /// The accounting kind used for simulator traffic statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Join1 { .. }
            | Msg::Join2 { .. }
            | Msg::Join3 { .. }
            | Msg::Join4 { .. }
            | Msg::Join5 { .. }
            | Msg::Join6 { .. }
            | Msg::Join7 { .. } => "join",
            Msg::LeaveRequest { .. } => "leave",
            Msg::Rejoin1 { .. }
            | Msg::Rejoin2 { .. }
            | Msg::Rejoin3 { .. }
            | Msg::Rejoin4 { .. }
            | Msg::Rejoin5 { .. }
            | Msg::Rejoin6 { .. }
            | Msg::RejoinDenied { .. } => "rejoin",
            Msg::AreaJoinReq { .. } | Msg::AreaJoinAck { .. } => "area-join",
            Msg::KeyUpdate { .. } => "key-update",
            Msg::KeyUnicast { .. } | Msg::KeyRefreshRequest { .. } => "key-unicast",
            Msg::Data { .. } => "data",
            Msg::AcAlive { .. } | Msg::MemberAlive { .. } => "alive",
            Msg::Heartbeat { .. } | Msg::HeartbeatAck { .. } | Msg::StateSync { .. } => {
                "replication"
            }
            Msg::Takeover { .. } | Msg::Demote { .. } => "takeover",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Msg) {
        let bytes = msg.to_bytes();
        let back = Msg::from_bytes(&bytes).unwrap();
        assert_eq!(msg, back);
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Msg::Join1 { ct: vec![1, 2, 3] });
        round_trip(Msg::Join2 { ct: vec![] });
        round_trip(Msg::Join3 { ct: vec![9; 100] });
        round_trip(Msg::Join4 { ct: vec![1], sig: vec![2; 64] });
        round_trip(Msg::Join5 { ct: vec![3; 500], sig: vec![4; 64] });
        round_trip(Msg::Join6 { ct: vec![5] });
        round_trip(Msg::Join7 { ct: vec![6; 300] });
        round_trip(Msg::Rejoin1 { ct: vec![7] });
        round_trip(Msg::Rejoin2 { ct: vec![8] });
        round_trip(Msg::Rejoin3 { ct: vec![9] });
        round_trip(Msg::Rejoin4 { ct: vec![1], sig: vec![2] });
        round_trip(Msg::Rejoin5 { ct: vec![3], sig: vec![4] });
        round_trip(Msg::Rejoin6 { ct: vec![5], sig: vec![6] });
        round_trip(Msg::RejoinDenied { reason: RejoinDenyReason::BadTicket });
        round_trip(Msg::RejoinDenied { reason: RejoinDenyReason::DeviceMismatch });
        round_trip(Msg::AreaJoinReq { ct: vec![1], sig: vec![2] });
        round_trip(Msg::AreaJoinAck { ct: vec![3], sig: vec![4] });
        round_trip(Msg::KeyUpdate {
            area: AreaId(3),
            epoch: 17,
            body: vec![0xab; 200],
            sig: vec![0xcd; 64],
        });
        round_trip(Msg::KeyUnicast { ct: vec![0xee; 90] });
        round_trip(Msg::KeyRefreshRequest { client: ClientId(5) });
        round_trip(Msg::LeaveRequest { ct: vec![1, 2, 3] });
        round_trip(Msg::Data {
            origin: ClientId(12),
            seq: 99,
            wrapped_key: vec![1; 44],
            payload: vec![2; 1000],
        });
        round_trip(Msg::AcAlive { area: AreaId(1), epoch: 9 });
        round_trip(Msg::MemberAlive { client: ClientId(2) });
        round_trip(Msg::Heartbeat { seq: 5, takeover_epoch: 2 });
        round_trip(Msg::HeartbeatAck { seq: 5, takeover_epoch: 3 });
        round_trip(Msg::StateSync { ct: vec![1, 2] });
        round_trip(Msg::Takeover {
            area: AreaId(2),
            sig: vec![1; 64],
            pubkey: vec![2; 100],
        });
        round_trip(Msg::Demote {
            area: AreaId(2),
            takeover_epoch: 4,
            sig: vec![3; 64],
        });
    }

    #[test]
    fn garbage_rejected() {
        assert!(Msg::from_bytes(&[]).is_err());
        assert!(Msg::from_bytes(&[255]).is_err());
        assert!(Msg::from_bytes(&[1, 0, 0]).is_err()); // truncated len
        // Trailing garbage after a valid message.
        let mut bytes = Msg::Heartbeat { seq: 1, takeover_epoch: 0 }.to_bytes();
        bytes.push(0);
        assert!(Msg::from_bytes(&bytes).is_err());
    }

    #[test]
    fn kinds_cover_accounting_categories() {
        assert_eq!(Msg::Join1 { ct: vec![] }.kind(), "join");
        assert_eq!(Msg::Rejoin1 { ct: vec![] }.kind(), "rejoin");
        assert_eq!(
            Msg::KeyUpdate {
                area: AreaId(0),
                epoch: 0,
                body: vec![],
                sig: vec![]
            }
            .kind(),
            "key-update"
        );
        assert_eq!(
            Msg::Data {
                origin: ClientId(0),
                seq: 0,
                wrapped_key: vec![],
                payload: vec![]
            }
            .kind(),
            "data"
        );
        assert_eq!(
            Msg::AcAlive { area: AreaId(0), epoch: 0 }.kind(),
            "alive"
        );
        assert_eq!(
            Msg::Heartbeat { seq: 0, takeover_epoch: 0 }.kind(),
            "replication"
        );
    }
}
