//! Hybrid hot/cold scale harness tests (ISSUEs 7 and 8).
//!
//! Small-scale tests drive the full join / mass-leave lifecycle and
//! cross-check every counter by hand; the mobility tests drive
//! inter-area ticket rejoins with chaos faults against durable
//! controllers; the 100k flash crowd is the CI smoke for the
//! million-member scenario the scale benchmark runs.

use mykil::invariants::check_scale;
use mykil::scale::{ScaleConfig, ScaleGroup};
use mykil_net::{
    Duration, FaultPlan, FaultSpec, FaultyStore, FileStore, NodeId, StableStore, Time,
};

/// A storm group whose controllers persist to real per-node
/// [`FileStore`] directories (wrapped in [`FaultyStore`] so the storm's
/// storage verbs still inject) instead of the in-memory `SimStore`.
fn file_backed_group(cfg: ScaleConfig, tag: &'static str) -> ScaleGroup {
    let root = mykil_net::scratch_dir(tag);
    ScaleGroup::new_with_storage(cfg, move |n: NodeId| {
        let dir = root.join(format!("node{}", n.index()));
        Box::new(FaultyStore::new(
            FileStore::open(&dir).expect("open file-backed store"),
        )) as Box<dyn StableStore>
    })
}

fn tiny_config() -> ScaleConfig {
    ScaleConfig {
        members: 200,
        areas: 4,
        hot_pool: 8,
        hot_leaves_per_pool: 2,
        cold_batch: 10,
        ..ScaleConfig::paper_million()
    }
}

/// The mobility analog of [`tiny_config`]: durable controllers, the
/// population seeded cold, storms driven explicitly.
fn storm_config() -> ScaleConfig {
    ScaleConfig {
        members: 200,
        areas: 4,
        hot_pool: 8,
        hot_leaves_per_pool: 2,
        cold_batch: 10,
        ..ScaleConfig::mobility_million()
    }
}

#[test]
fn flash_crowd_join_reaches_target_membership() {
    let mut g = ScaleGroup::new(tiny_config());
    g.run_flash_crowd_join()
        .unwrap_or_else(|stall| panic!("join phase stalled: {stall}"));

    assert_eq!(g.live_members(), 200);
    // Every area got its round-robin share and demoted it to cold.
    for ctrl in g.controllers() {
        assert_eq!(ctrl.joins(), 50);
        assert_eq!(ctrl.cold().cold_members(), 50);
        assert_eq!(ctrl.hot_members(), 0, "hot members left behind after demotion");
    }
    let violations = check_scale(&g);
    assert!(violations.is_empty(), "join-phase violations: {violations:?}");

    // Join rekeys were charged: bytes flowed into the stats ledger.
    assert!(g.sim.stats().counter("scale-rekey-multicast-bytes") > 0);
    assert!(g.sim.stats().counter("scale-rekey-unicast-bytes") > 0);
    assert_eq!(g.sim.stats().counter("scale-joins"), 200);
}

#[test]
fn mass_leave_drains_everyone_and_rotates_epochs() {
    let mut g = ScaleGroup::new(tiny_config());
    g.run_flash_crowd_join()
        .unwrap_or_else(|stall| panic!("join phase stalled: {stall}"));
    let join_multicast = g.sim.stats().counter("scale-rekey-multicast-bytes");
    g.run_mass_leave()
        .unwrap_or_else(|stall| panic!("leave phase stalled: {stall}"));

    assert_eq!(g.live_members(), 0, "members left behind after mass leave");
    let mut hot_leaves = 0;
    let mut cold_leaves = 0;
    for ctrl in g.controllers() {
        hot_leaves += ctrl.hot_leaves();
        cold_leaves += ctrl.cold_leaves();
        assert_eq!(ctrl.hot_members(), 0);
        assert_eq!(ctrl.cold().cold_members(), 0);
        // Forward-secrecy analog: every departure batch rotated the key.
        assert_eq!(ctrl.cold().epoch(), ctrl.cold().leave_batches());
        assert!(ctrl.cold().epoch() > ctrl.hot_leaves());
    }
    // 8 pool nodes x 2 hot leaves each; the rest drained cold.
    assert_eq!(hot_leaves, 16);
    assert_eq!(cold_leaves, 200 - 16);
    assert_eq!(g.sim.stats().counter("scale-hot-leaves"), 16);
    assert_eq!(g.sim.stats().counter("scale-cold-leaves"), 200 - 16);
    // Leave rekeys added multicast bytes on top of the join phase.
    assert!(g.sim.stats().counter("scale-rekey-multicast-bytes") > join_multicast);

    let violations = check_scale(&g);
    assert!(violations.is_empty(), "leave-phase violations: {violations:?}");
}

#[test]
fn scale_run_is_deterministic() {
    let run = || {
        let mut g = ScaleGroup::new(tiny_config());
        let _ = g.run_flash_crowd_join();
        let _ = g.run_mass_leave();
        (
            g.sim.events_processed(),
            g.sim.now(),
            g.sim.stats().counter("scale-rekey-multicast-bytes"),
            g.sim.stats().counter("scale-rekey-unicast-bytes"),
        )
    };
    assert_eq!(run(), run(), "identical configs must replay identically");
}

#[test]
fn ledger_drift_is_detected() {
    let mut g = ScaleGroup::new(tiny_config());
    g.run_flash_crowd_join()
        .unwrap_or_else(|stall| panic!("join phase stalled: {stall}"));
    // Corrupt one ledger: the stats counter drifts from the replay.
    g.sim.stats_mut().bump("scale-rekey-multicast-bytes", 1);
    let violations = check_scale(&g);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            mykil::invariants::InvariantViolation::ScaleLedgerDrift {
                counter: "scale-rekey-multicast-bytes",
                ..
            }
        )),
        "corrupted ledger not flagged: {violations:?}"
    );
}

#[test]
fn mobility_storm_moves_members_between_areas() {
    let mut g = ScaleGroup::new(storm_config());
    g.seed_cold_population();
    assert_eq!(g.live_members(), 200);
    let report = g
        .run_mobility_storm(40, &FaultPlan::new())
        .unwrap_or_else(|stall| panic!("storm stalled: {stall}"));

    assert_eq!(report.moves, 40);
    assert_eq!(report.faults_applied, 0);
    assert!(report.recoveries.is_empty());
    // Moves preserve the population; they only relocate it.
    assert_eq!(g.live_members(), 200);
    let moves_out: u64 = g.controllers().map(|c| c.moves_out()).sum();
    let moves_in: u64 = g.controllers().map(|c| c.moves_in()).sum();
    assert_eq!(moves_out, 40);
    assert_eq!(moves_in, 40);
    assert_eq!(g.sim.stats().counter("scale-moves-out"), 40);
    assert_eq!(g.sim.stats().counter("scale-moves-in"), 40);
    // Every move-out rotated the source area's key (forward secrecy
    // across areas: the mover must not keep its old area key).
    for ctrl in g.controllers() {
        assert!(ctrl.cold().epoch() >= ctrl.moves_out());
    }
    let violations = check_scale(&g);
    assert!(violations.is_empty(), "storm violations: {violations:?}");
}

#[test]
fn mobility_storm_survives_chaos_faults() {
    let mut g = ScaleGroup::new(storm_config());
    g.seed_cold_population();
    let plan = g.mobility_fault_plan(9, 11, Duration::from_millis(2500));
    let planned_crashes = plan
        .faults()
        .iter()
        .filter(|tf| matches!(tf.fault, FaultSpec::Crash(_)))
        .count() as u64;
    assert!(planned_crashes >= 1, "plan must crash at least one controller");

    let report = g
        .run_mobility_storm(60, &plan)
        .unwrap_or_else(|stall| panic!("chaos storm stalled: {stall}"));

    assert_eq!(report.moves, 60);
    assert_eq!(report.faults_applied, plan.faults().len() as u64);
    assert_eq!(report.crashes, planned_crashes);
    // Every crash produced a measured recovery, and time moved forward.
    assert_eq!(report.recoveries.len() as u64, report.crashes);
    for r in &report.recoveries {
        assert!(r.recovery_micros > 0, "zero-width recovery window: {r:?}");
    }
    assert!(report.recovery_percentile_micros(0.99) >= report.recovery_percentile_micros(0.50));
    // Post-fault state passes the full invariant battery: conservation
    // with moves, re-convergence, journal/directory agreement, and the
    // byte-exact three-way ledger.
    assert_eq!(g.live_members(), 200);
    let violations = check_scale(&g);
    assert!(violations.is_empty(), "post-chaos violations: {violations:?}");
}

#[test]
fn mobility_storm_is_deterministic() {
    let run = || {
        let mut g = ScaleGroup::new(storm_config());
        g.seed_cold_population();
        let plan = g.mobility_fault_plan(6, 3, Duration::from_millis(2000));
        let report = g
            .run_mobility_storm(32, &plan)
            .unwrap_or_else(|stall| panic!("storm stalled: {stall}"));
        (
            g.sim.events_processed(),
            g.sim.now(),
            g.sim.stats().counter("scale-rekey-multicast-bytes"),
            g.sim.stats().counter("scale-rekey-unicast-bytes"),
            report.recoveries,
        )
    };
    assert_eq!(run(), run(), "identical storms must replay identically");
}

fn storage_fault_storm(mut g: ScaleGroup) {
    g.seed_cold_population();
    let node = g.controller_ids()[1];
    let mut plan = FaultPlan::new();
    // A torn-write window swallowed by a crash, healed after restart…
    plan.push(Time::from_millis(80), FaultSpec::StorageTorn(node));
    plan.push(Time::from_millis(200), FaultSpec::Crash(node));
    plan.push(Time::from_millis(400), FaultSpec::Restart(node));
    plan.push(Time::from_millis(405), FaultSpec::StorageHeal(node));
    // …then bit-rot in the newest checkpoint before a second crash.
    plan.push(Time::from_millis(600), FaultSpec::CorruptCheckpoint(node));
    plan.push(Time::from_millis(700), FaultSpec::Crash(node));
    plan.push(Time::from_millis(900), FaultSpec::Restart(node));

    let report = g
        .run_mobility_storm(48, &plan)
        .unwrap_or_else(|stall| panic!("storage-fault storm stalled: {stall}"));

    assert_eq!(report.moves, 48);
    assert_eq!(report.crashes, 2);
    assert_eq!(report.storage_faults, 2);
    assert_eq!(report.recoveries.len(), 2);
    let ctrl = g.controllers().nth(1).expect("area 1 exists");
    assert!(ctrl.converged());
    assert_eq!(ctrl.recovery_samples().len(), 2);
    // The resynced journal and the directory replica agree, the ledger
    // is byte-exact: nothing the faults ate was actually lost.
    let violations = check_scale(&g);
    assert!(violations.is_empty(), "storage-fault violations: {violations:?}");
}

#[test]
fn storage_faults_recover_through_directory_resync() {
    storage_fault_storm(ScaleGroup::new(storm_config()));
}

#[test]
fn storage_faults_recover_through_directory_resync_file_backed() {
    storage_fault_storm(file_backed_group(storm_config(), "scale-storage-faults"));
}

/// The mobility + durability matrix on real files: the same chaos storm
/// recovers identically whether controllers persist to `SimStore` or to
/// a `FileStore` directory — the byte ledger, the recovery count and
/// the surviving membership all match the sim-backed run exactly.
#[test]
fn mobility_storm_on_file_backed_storage_matches_sim() {
    let run = |mut g: ScaleGroup| {
        g.seed_cold_population();
        let plan = g.mobility_fault_plan(9, 11, Duration::from_millis(2500));
        let report = g
            .run_mobility_storm(60, &plan)
            .unwrap_or_else(|stall| panic!("file-backed storm stalled: {stall}"));
        let violations = check_scale(&g);
        assert!(violations.is_empty(), "violations: {violations:?}");
        (
            report.moves,
            report.crashes,
            report.recoveries.len(),
            g.live_members(),
            g.sim.stats().counter("scale-rekey-multicast-bytes"),
            g.sim.stats().counter("scale-rekey-unicast-bytes"),
        )
    };
    let sim = run(ScaleGroup::new(storm_config()));
    let file = run(file_backed_group(storm_config(), "scale-storm-file"));
    assert_eq!(sim, file, "file-backed storm diverged from the sim-backed run");
}

#[test]
fn unrecovered_crash_stalls_with_diagnostic_residue() {
    let mut g = ScaleGroup::new(storm_config());
    g.seed_cold_population();
    let node = g.controller_ids()[0];
    let mut plan = FaultPlan::new();
    // Crash area 0's controller mid-handshake and never restart it.
    plan.push(Time::from_micros(500), FaultSpec::Crash(node));

    let stall = match g.run_mobility_storm(40, &plan) {
        Ok(report) => panic!("storm with a dead controller completed: {report:?}"),
        Err(stall) => stall,
    };
    assert_eq!(stall.phase, "mobility storm");
    assert!(stall.events_executed > 0);
    assert!(stall.members_stuck > 0, "no stuck moves reported");
    let dead = stall
        .residue
        .iter()
        .find(|r| r.area == 0)
        .expect("area 0 missing from residue");
    assert!(dead.crashed, "residue must flag the crashed controller");
    // The Display form carries the numbers a soak log needs.
    let text = stall.to_string();
    assert!(text.contains("mobility storm"), "bad stall text: {text}");
    assert!(text.contains("area 0"), "bad stall text: {text}");
}

/// The CI smoke for the acceptance scenario: 100,000 members across
/// 100 areas join as a flash crowd and then all leave, with the
/// invariant checker auditing both quiescent points.
#[test]
fn flash_crowd_100k_smoke() {
    let mut g = ScaleGroup::new(ScaleConfig::smoke_100k());
    g.run_flash_crowd_join()
        .unwrap_or_else(|stall| panic!("100k join stalled: {stall}"));
    assert_eq!(g.live_members(), 100_000);
    let violations = check_scale(&g);
    assert!(violations.is_empty(), "100k join violations: {violations:?}");

    g.run_mass_leave()
        .unwrap_or_else(|stall| panic!("100k leave stalled: {stall}"));
    assert_eq!(g.live_members(), 0);
    let violations = check_scale(&g);
    assert!(violations.is_empty(), "100k leave violations: {violations:?}");
}

/// A smoke-sized mobility storm with a generated fault plan: the CI
/// analog of the million-member acceptance run in `scalegate
/// --mobility`.
#[test]
fn mobility_storm_10k_smoke() {
    let mut g = ScaleGroup::new(ScaleConfig {
        members: 10_000,
        areas: 20,
        hot_pool: 16,
        ..ScaleConfig::mobility_million()
    });
    g.seed_cold_population();
    let plan = g.mobility_fault_plan(12, 5, Duration::from_millis(4000));
    let report = g
        .run_mobility_storm(1_000, &plan)
        .unwrap_or_else(|stall| panic!("10k storm stalled: {stall}"));
    assert_eq!(report.moves, 1_000);
    assert!(report.crashes >= 1);
    assert_eq!(report.recoveries.len() as u64, report.crashes);
    assert_eq!(g.live_members(), 10_000);
    let violations = check_scale(&g);
    assert!(violations.is_empty(), "10k storm violations: {violations:?}");
}
