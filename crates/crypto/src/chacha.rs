//! ChaCha20 block function (RFC 8439), used as the core of the
//! deterministic random generator in [`crate::drbg`] and as a modern
//! alternative data cipher in the hand-held ablation bench.
//!
//! # Example
//!
//! ```
//! use mykil_crypto::chacha::ChaCha20;
//!
//! let key = [0u8; 32];
//! let nonce = [0u8; 12];
//! let mut msg = *b"hello multicast";
//! ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut msg);
//! ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut msg);
//! assert_eq!(&msg, b"hello multicast");
//! ```

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// ChaCha20 stream cipher with a 32-byte key and 12-byte nonce.
#[derive(Clone)]
pub struct ChaCha20 {
    state: [u32; 16],
    buffer: [u8; 64],
    buffered: usize,
}

impl std::fmt::Debug for ChaCha20 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaCha20").finish_non_exhaustive()
    }
}

impl Drop for ChaCha20 {
    fn drop(&mut self) {
        // State words 4..12 hold the key; wipe everything, including
        // buffered keystream bytes.
        crate::ct::zeroize_u32(&mut self.state);
        crate::ct::zeroize(&mut self.buffer);
        self.buffered = 0;
    }
}

impl ChaCha20 {
    /// Creates a cipher instance positioned at block `counter`.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha20 {
            state,
            buffer: [0; 64],
            buffered: 0,
        }
    }

    #[inline]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    /// Runs the 20-round block function and returns 64 keystream bytes,
    /// advancing the block counter.
    pub fn next_block(&mut self) -> [u8; 64] {
        let mut working = self.state;
        for _ in 0..10 {
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(self.state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        out
    }

    /// XORs keystream into `data` in place (encrypt == decrypt).
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.buffered == 0 {
                self.buffer = self.next_block();
                self.buffered = 64;
            }
            *byte ^= self.buffer[64 - self.buffered];
            self.buffered -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 section 2.3.2 test vector.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = ChaCha20::new(&key, &nonce, 1).next_block();
        assert_eq!(
            hex(&block[..16]),
            "10f1e7e4d13b5915500fdd1fa32071c4"
        );
        assert_eq!(hex(&block[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 section 2.4.2.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut msg = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        ChaCha20::new(&key, &nonce, 1).apply_keystream(&mut msg);
        assert_eq!(
            hex(&msg[..16]),
            "6e2e359a2568f98041ba0728dd0d6981"
        );
    }

    #[test]
    fn round_trip() {
        let key = [0x42u8; 32];
        let nonce = [0x24u8; 12];
        let original: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut data = original.clone();
        ChaCha20::new(&key, &nonce, 7).apply_keystream(&mut data);
        assert_ne!(data, original);
        ChaCha20::new(&key, &nonce, 7).apply_keystream(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn counter_advances_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut c = ChaCha20::new(&key, &nonce, 0);
        let b0 = c.next_block();
        let b1 = c.next_block();
        assert_ne!(b0, b1);
        // Restarting at counter 1 reproduces the second block.
        let again = ChaCha20::new(&key, &nonce, 1).next_block();
        assert_eq!(b1, again);
    }

    #[test]
    fn partial_streaming_matches() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let mut whole = vec![0u8; 150];
        ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut whole);
        let mut parts = vec![0u8; 150];
        let mut c = ChaCha20::new(&key, &nonce, 0);
        for chunk in parts.chunks_mut(13) {
            c.apply_keystream(chunk);
        }
        assert_eq!(whole, parts);
    }
}
