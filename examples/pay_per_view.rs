//! A pay-per-view service with subscriber churn — the motivating
//! workload of the paper's introduction.
//!
//! Subscribers join over time, a broadcaster streams frames, some
//! subscribers cancel (go silent and are evicted), and the run prints
//! the rekeying traffic with and without Mykil's batching
//! (Section III-E).
//!
//! ```sh
//! cargo run --example pay_per_view --release
//! ```

use mykil::config::BatchPolicy;
use mykil::group::GroupBuilder;
use mykil_net::Duration;

fn run_season(policy: BatchPolicy, label: &str) {
    let mut group = GroupBuilder::new(7)
        .areas(2)
        .batch_policy(policy)
        .build();

    // Five subscribers sign up for the season premiere.
    let subs: Vec<_> = (0..5).map(|i| group.register_member(i)).collect();
    group.settle();
    let broadcaster = subs[0];

    // Stream five frames with churn in between.
    for frame in 0..5u32 {
        let payload = format!("episode-1 frame-{frame}");
        group.send_data(broadcaster, payload.as_bytes());
        group.run_for(Duration::from_millis(700));

        if frame == 2 {
            // Two subscribers cancel at once (the paper's end-of-month
            // scenario) — they simply go dark and get evicted together.
            group.sim.partition(subs[3], 1);
            group.sim.partition(subs[4], 1);
        }
    }
    group.run_for(Duration::from_secs(4));

    let stats = group.stats();
    let ku = stats.kind("key-update");
    println!(
        "{label:>20}: {:>2} key-update multicasts, {:>5} bytes; \
         {} evictions, {} members remain",
        ku.messages_sent,
        ku.bytes_sent,
        stats.counter("ac-evictions"),
        group.ac(0).member_count() + group.ac(1).member_count(),
    );

    // Every remaining subscriber saw every frame.
    for &s in &subs[..3] {
        let got = group.received_data(s).len();
        assert!(got >= 5, "subscriber missed frames: {got}");
    }
    // The cancelled ones did not see the post-cancellation frames.
    for &s in &subs[3..] {
        let received = group.received_data(s);
        assert!(
            !received.iter().any(|p| p.ends_with(b"frame-4")),
            "cancelled subscriber decrypted a late frame"
        );
    }
}

fn main() {
    println!("pay-per-view season with churn, batched vs immediate rekeying:");
    run_season(BatchPolicy::OnDataOrTimer, "batched (Mykil)");
    run_season(BatchPolicy::Immediate, "immediate");
    println!("(batching aggregates join/leave rekeys; Section III-E claims 40-60% savings)");
}
