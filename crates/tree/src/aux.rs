//! The backend-independent auxiliary-tree surface.
//!
//! [`AuxTree`] is the trait the rest of the workspace actually consumes
//! from a key tree: the area key, member paths, join/leave/batch
//! planning, snapshot/restore and the invariant checker. Both concrete
//! backends ([`KeyTree`], [`KhfTree`]) implement it through one blanket
//! impl, so generic code (the equivalence proptests, perfgate) is
//! written once.
//!
//! [`AreaTree`] is the runtime-selected form an area controller holds:
//! a two-variant enum dispatching to whichever backend
//! [`TreeConfig::backend`] selected, with [`AreaTree::restore`]
//! dispatching on the snapshot magic so replicated state round-trips
//! regardless of backend.

use crate::batch::BatchOutcome;
use crate::error::TreeError;
use crate::plan::RekeyPlan;
use crate::snapshot::SnapshotError;
use crate::store::{ExplicitKeys, KeyStore, KhfKeys};
use crate::tree::{KeyTree, KhfTree, NodeIdx, Tree, TreeBackend, TreeConfig};
use crate::MemberId;
use mykil_crypto::keys::SymmetricKey;
use rand::RngCore;

/// What every auxiliary-tree backend provides (the surface `rekey`,
/// `batch`, `snapshot` and the member-view machinery consume).
///
/// Keys are returned owned: a derivation backend computes them on
/// demand and has nothing to borrow. Explicit trees additionally offer
/// borrowed accessors ([`KeyTree::area_key`], [`KeyTree::key_of`],
/// [`KeyTree::path_key_refs`]) as inherent methods.
pub trait AuxTree {
    /// The tree configuration.
    fn config(&self) -> TreeConfig;
    /// Number of members currently in the tree.
    fn member_count(&self) -> usize;
    /// Total nodes ever allocated.
    fn node_count(&self) -> usize;
    /// Height of the tree (root = 0).
    fn height(&self) -> u32;
    /// The root index (whose key is the area key).
    fn root(&self) -> NodeIdx;
    /// Whether the member is present.
    fn contains(&self, member: MemberId) -> bool;
    /// The leaf associated with a member.
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAMember`] when absent.
    fn leaf_of(&self, member: MemberId) -> Result<NodeIdx, TreeError>;
    /// The current area key, owned.
    fn area_key(&self) -> SymmetricKey;
    /// Current key of a node, owned.
    fn node_key(&self, node: NodeIdx) -> SymmetricKey;
    /// Version counter of a node's key.
    fn version_of(&self, node: NodeIdx) -> u64;
    /// Collects the member's path keys into `out` (leaf first).
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAMember`] when absent.
    fn path_keys_into(
        &self,
        member: MemberId,
        out: &mut Vec<(NodeIdx, SymmetricKey)>,
    ) -> Result<(), TreeError>;
    /// Adds a member (Figure 4 rekey plan).
    ///
    /// # Errors
    ///
    /// [`TreeError::AlreadyMember`] when present.
    fn join<R: RngCore + ?Sized>(
        &mut self,
        member: MemberId,
        rng: &mut R,
    ) -> Result<RekeyPlan, TreeError>;
    /// Removes a member (Figure 5 rekey plan).
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAMember`] when absent.
    fn leave<R: RngCore + ?Sized>(
        &mut self,
        member: MemberId,
        rng: &mut R,
    ) -> Result<RekeyPlan, TreeError>;
    /// Aggregated joins and leaves as one rekey (Figure 6).
    ///
    /// # Errors
    ///
    /// See [`Tree::batch`]; the tree is unmodified on validation errors.
    fn batch<R: RngCore + ?Sized>(
        &mut self,
        joins: &[MemberId],
        leaves: &[MemberId],
        rng: &mut R,
    ) -> Result<BatchOutcome, TreeError>;
    /// Rotates only the area key (the periodic freshness rekey).
    fn rotate_area_key<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> RekeyPlan;
    /// Serializes the tree for replication.
    fn snapshot(&self) -> Vec<u8>;
    /// Bytes of key material resident in controller memory.
    fn resident_key_bytes(&self) -> usize;
    /// Panics with a description when an internal invariant is violated.
    fn check_invariants(&self);
}

impl<S: KeyStore> AuxTree for Tree<S> {
    fn config(&self) -> TreeConfig {
        Tree::config(self)
    }

    fn member_count(&self) -> usize {
        Tree::member_count(self)
    }

    fn node_count(&self) -> usize {
        Tree::node_count(self)
    }

    fn height(&self) -> u32 {
        Tree::height(self)
    }

    fn root(&self) -> NodeIdx {
        Tree::root(self)
    }

    fn contains(&self, member: MemberId) -> bool {
        Tree::contains(self, member)
    }

    fn leaf_of(&self, member: MemberId) -> Result<NodeIdx, TreeError> {
        Tree::leaf_of(self, member)
    }

    fn area_key(&self) -> SymmetricKey {
        self.node_key(NodeIdx::from_raw(0))
    }

    fn node_key(&self, node: NodeIdx) -> SymmetricKey {
        Tree::node_key(self, node)
    }

    fn version_of(&self, node: NodeIdx) -> u64 {
        Tree::version_of(self, node)
    }

    fn path_keys_into(
        &self,
        member: MemberId,
        out: &mut Vec<(NodeIdx, SymmetricKey)>,
    ) -> Result<(), TreeError> {
        Tree::path_keys_into(self, member, out)
    }

    fn join<R: RngCore + ?Sized>(
        &mut self,
        member: MemberId,
        rng: &mut R,
    ) -> Result<RekeyPlan, TreeError> {
        Tree::join(self, member, rng)
    }

    fn leave<R: RngCore + ?Sized>(
        &mut self,
        member: MemberId,
        rng: &mut R,
    ) -> Result<RekeyPlan, TreeError> {
        Tree::leave(self, member, rng)
    }

    fn batch<R: RngCore + ?Sized>(
        &mut self,
        joins: &[MemberId],
        leaves: &[MemberId],
        rng: &mut R,
    ) -> Result<BatchOutcome, TreeError> {
        Tree::batch(self, joins, leaves, rng)
    }

    fn rotate_area_key<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> RekeyPlan {
        Tree::rotate_area_key(self, rng)
    }

    fn snapshot(&self) -> Vec<u8> {
        Tree::snapshot(self)
    }

    fn resident_key_bytes(&self) -> usize {
        Tree::resident_key_bytes(self)
    }

    fn check_invariants(&self) {
        Tree::check_invariants(self)
    }
}

/// An area's tree with the backend chosen at runtime (from
/// [`TreeConfig::backend`]), as held by an area controller.
///
/// Every method delegates to the selected backend; plans, wire
/// encodings and placement decisions are identical across backends —
/// only key values (and the controller's storage bill) differ.
#[derive(Debug, Clone)]
pub enum AreaTree {
    /// Every key stored explicitly (the paper's design).
    Explicit(KeyTree),
    /// Keyed-hash-forest derivation; O(updated set) resident key bytes.
    Khf(KhfTree),
}

macro_rules! delegate {
    ($self:ident, $tree:ident => $body:expr) => {
        match $self {
            AreaTree::Explicit($tree) => $body,
            AreaTree::Khf($tree) => $body,
        }
    };
}

impl AreaTree {
    /// Creates a tree of the backend `cfg.backend()` selects.
    pub fn new<R: RngCore + ?Sized>(cfg: TreeConfig, rng: &mut R) -> AreaTree {
        match cfg.backend() {
            TreeBackend::Explicit => AreaTree::Explicit(KeyTree::new(cfg, rng)),
            TreeBackend::Khf => AreaTree::Khf(KhfTree::new(cfg, rng)),
        }
    }

    /// Which backend this tree runs.
    pub fn backend(&self) -> TreeBackend {
        match self {
            AreaTree::Explicit(_) => TreeBackend::Explicit,
            AreaTree::Khf(_) => TreeBackend::Khf,
        }
    }

    /// Rebuilds a tree from [`AuxTree::snapshot`] output of either
    /// backend, dispatching on the 4-byte magic.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on truncated or malformed input.
    pub fn restore(bytes: &[u8]) -> Result<AreaTree, SnapshotError> {
        match bytes.get(..4) {
            Some(m) if m == ExplicitKeys::SNAPSHOT_MAGIC => {
                Ok(AreaTree::Explicit(KeyTree::restore(bytes)?))
            }
            Some(m) if m == KhfKeys::SNAPSHOT_MAGIC => Ok(AreaTree::Khf(KhfTree::restore(bytes)?)),
            _ => Err(SnapshotError::new("bad magic")),
        }
    }

    /// See [`AuxTree::config`].
    pub fn config(&self) -> TreeConfig {
        delegate!(self, t => t.config())
    }

    /// See [`AuxTree::member_count`].
    pub fn member_count(&self) -> usize {
        delegate!(self, t => t.member_count())
    }

    /// See [`AuxTree::node_count`].
    pub fn node_count(&self) -> usize {
        delegate!(self, t => t.node_count())
    }

    /// See [`AuxTree::height`].
    pub fn height(&self) -> u32 {
        delegate!(self, t => t.height())
    }

    /// See [`AuxTree::root`].
    pub fn root(&self) -> NodeIdx {
        NodeIdx::from_raw(0)
    }

    /// See [`AuxTree::contains`].
    pub fn contains(&self, member: MemberId) -> bool {
        delegate!(self, t => t.contains(member))
    }

    /// Iterates over current members in deterministic order.
    pub fn members(&self) -> impl Iterator<Item = MemberId> + '_ {
        // The two backends' `members()` are distinct opaque types; a
        // collected Vec keeps the signature allocation-simple here
        // (member enumeration is not on a hot path).
        let v: Vec<MemberId> = delegate!(self, t => t.members().collect());
        v.into_iter()
    }

    /// See [`AuxTree::leaf_of`].
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAMember`] when absent.
    pub fn leaf_of(&self, member: MemberId) -> Result<NodeIdx, TreeError> {
        delegate!(self, t => t.leaf_of(member))
    }

    /// The current area key, owned.
    pub fn area_key(&self) -> SymmetricKey {
        self.node_key(NodeIdx::from_raw(0))
    }

    /// See [`AuxTree::node_key`].
    pub fn node_key(&self, node: NodeIdx) -> SymmetricKey {
        delegate!(self, t => t.node_key(node))
    }

    /// See [`AuxTree::version_of`].
    pub fn version_of(&self, node: NodeIdx) -> u64 {
        delegate!(self, t => t.version_of(node))
    }

    /// See [`AuxTree::path_keys_into`].
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAMember`] when absent.
    pub fn path_keys_into(
        &self,
        member: MemberId,
        out: &mut Vec<(NodeIdx, SymmetricKey)>,
    ) -> Result<(), TreeError> {
        delegate!(self, t => t.path_keys_into(member, out))
    }

    /// See [`AuxTree::join`].
    ///
    /// # Errors
    ///
    /// [`TreeError::AlreadyMember`] when present.
    pub fn join<R: RngCore + ?Sized>(
        &mut self,
        member: MemberId,
        rng: &mut R,
    ) -> Result<RekeyPlan, TreeError> {
        delegate!(self, t => t.join(member, rng))
    }

    /// See [`AuxTree::leave`].
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAMember`] when absent.
    pub fn leave<R: RngCore + ?Sized>(
        &mut self,
        member: MemberId,
        rng: &mut R,
    ) -> Result<RekeyPlan, TreeError> {
        delegate!(self, t => t.leave(member, rng))
    }

    /// See [`AuxTree::batch`].
    ///
    /// # Errors
    ///
    /// See [`Tree::batch`]; the tree is unmodified on validation errors.
    pub fn batch<R: RngCore + ?Sized>(
        &mut self,
        joins: &[MemberId],
        leaves: &[MemberId],
        rng: &mut R,
    ) -> Result<BatchOutcome, TreeError> {
        delegate!(self, t => t.batch(joins, leaves, rng))
    }

    /// Processes a batch of leave events as one rekey.
    ///
    /// # Errors
    ///
    /// See [`Tree::batch_leave`].
    pub fn batch_leave<R: RngCore + ?Sized>(
        &mut self,
        members: &[MemberId],
        rng: &mut R,
    ) -> Result<BatchOutcome, TreeError> {
        delegate!(self, t => t.batch_leave(members, rng))
    }

    /// Processes a batch of join events as one rekey.
    ///
    /// # Errors
    ///
    /// See [`Tree::batch_join`].
    pub fn batch_join<R: RngCore + ?Sized>(
        &mut self,
        members: &[MemberId],
        rng: &mut R,
    ) -> Result<BatchOutcome, TreeError> {
        delegate!(self, t => t.batch_join(members, rng))
    }

    /// See [`AuxTree::rotate_area_key`].
    pub fn rotate_area_key<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> RekeyPlan {
        delegate!(self, t => t.rotate_area_key(rng))
    }

    /// See [`AuxTree::snapshot`].
    pub fn snapshot(&self) -> Vec<u8> {
        delegate!(self, t => t.snapshot())
    }

    /// See [`AuxTree::resident_key_bytes`].
    pub fn resident_key_bytes(&self) -> usize {
        delegate!(self, t => t.resident_key_bytes())
    }

    /// See [`AuxTree::check_invariants`].
    pub fn check_invariants(&self) {
        delegate!(self, t => t.check_invariants())
    }

    /// Renders the tree in Graphviz `dot` syntax (structure only; see
    /// [`Tree::to_dot`]).
    pub fn to_dot(&self) -> String {
        delegate!(self, t => t.to_dot())
    }
}

impl AuxTree for AreaTree {
    fn config(&self) -> TreeConfig {
        AreaTree::config(self)
    }

    fn member_count(&self) -> usize {
        AreaTree::member_count(self)
    }

    fn node_count(&self) -> usize {
        AreaTree::node_count(self)
    }

    fn height(&self) -> u32 {
        AreaTree::height(self)
    }

    fn root(&self) -> NodeIdx {
        AreaTree::root(self)
    }

    fn contains(&self, member: MemberId) -> bool {
        AreaTree::contains(self, member)
    }

    fn leaf_of(&self, member: MemberId) -> Result<NodeIdx, TreeError> {
        AreaTree::leaf_of(self, member)
    }

    fn area_key(&self) -> SymmetricKey {
        AreaTree::area_key(self)
    }

    fn node_key(&self, node: NodeIdx) -> SymmetricKey {
        AreaTree::node_key(self, node)
    }

    fn version_of(&self, node: NodeIdx) -> u64 {
        AreaTree::version_of(self, node)
    }

    fn path_keys_into(
        &self,
        member: MemberId,
        out: &mut Vec<(NodeIdx, SymmetricKey)>,
    ) -> Result<(), TreeError> {
        AreaTree::path_keys_into(self, member, out)
    }

    fn join<R: RngCore + ?Sized>(
        &mut self,
        member: MemberId,
        rng: &mut R,
    ) -> Result<RekeyPlan, TreeError> {
        AreaTree::join(self, member, rng)
    }

    fn leave<R: RngCore + ?Sized>(
        &mut self,
        member: MemberId,
        rng: &mut R,
    ) -> Result<RekeyPlan, TreeError> {
        AreaTree::leave(self, member, rng)
    }

    fn batch<R: RngCore + ?Sized>(
        &mut self,
        joins: &[MemberId],
        leaves: &[MemberId],
        rng: &mut R,
    ) -> Result<BatchOutcome, TreeError> {
        AreaTree::batch(self, joins, leaves, rng)
    }

    fn rotate_area_key<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> RekeyPlan {
        AreaTree::rotate_area_key(self, rng)
    }

    fn snapshot(&self) -> Vec<u8> {
        AreaTree::snapshot(self)
    }

    fn resident_key_bytes(&self) -> usize {
        AreaTree::resident_key_bytes(self)
    }

    fn check_invariants(&self) {
        AreaTree::check_invariants(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mykil_crypto::drbg::Drbg;

    #[test]
    fn backend_selection_follows_config() {
        let mut rng = Drbg::from_seed(1);
        let explicit = AreaTree::new(TreeConfig::quad(), &mut rng);
        assert_eq!(explicit.backend(), TreeBackend::Explicit);
        let khf = AreaTree::new(TreeConfig::quad().with_backend(TreeBackend::Khf), &mut rng);
        assert_eq!(khf.backend(), TreeBackend::Khf);
    }

    #[test]
    fn restore_dispatches_on_magic() {
        let mut rng = Drbg::from_seed(2);
        for backend in [TreeBackend::Explicit, TreeBackend::Khf] {
            let mut t = AreaTree::new(TreeConfig::quad().with_backend(backend), &mut rng);
            for m in 0..12 {
                t.join(MemberId(m), &mut rng).unwrap();
            }
            t.leave(MemberId(3), &mut rng).unwrap();
            let restored = AreaTree::restore(&t.snapshot()).unwrap();
            assert_eq!(restored.backend(), backend);
            assert_eq!(restored.member_count(), t.member_count());
            assert_eq!(restored.area_key(), t.area_key());
            restored.check_invariants();
        }
        assert!(AreaTree::restore(b"ZZZZrest").is_err());
        assert!(AreaTree::restore(b"").is_err());
    }

    #[test]
    fn generic_code_runs_on_both_backends() {
        fn churn<T: AuxTree>(tree: &mut T, rng: &mut Drbg) -> usize {
            for m in 0..10 {
                tree.join(MemberId(m), rng).unwrap();
            }
            tree.batch(&[MemberId(100)], &[MemberId(2), MemberId(5)], rng)
                .unwrap();
            tree.check_invariants();
            tree.resident_key_bytes()
        }
        let mut rng = Drbg::from_seed(3);
        let mut explicit = KeyTree::new(TreeConfig::quad(), &mut rng);
        let mut khf = KhfTree::new(TreeConfig::quad(), &mut rng);
        let explicit_resident = churn(&mut explicit, &mut rng);
        let khf_resident = churn(&mut khf, &mut rng);
        assert_eq!(explicit.member_count(), khf.member_count());
        assert!(khf_resident < explicit_resident);
    }
}
