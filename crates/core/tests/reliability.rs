//! Control-plane reliability tests: the retransmission/dedup layer
//! plus the failover state-drift regressions (ISSUE 2).
//!
//! These exercise the four bugfix scenarios end to end and sweep the
//! whole join → parent-switch → takeover pipeline under uniform
//! message loss.

use mykil::area::Role;
use mykil::group::GroupBuilder;
use mykil_net::Duration;

/// Bugfix 1: `child_ac_members` rides the replica snapshot, so a
/// promoted backup can answer a child controller's
/// `KeyRefreshRequest` after a missed rekey.
#[test]
fn promoted_backup_serves_child_ac_key_refresh() {
    let mut g = GroupBuilder::new(41).areas(2).replicated(true).build();
    let members: Vec<_> = (0..4).map(|i| g.register_member(i)).collect();
    g.settle();
    let m0 = members
        .iter()
        .copied()
        .find(|&m| g.member(m).area().map(|a| a.0) == Some(0))
        .expect("no member landed in area 0");

    // Root primary dies; its backup takes over and area 1 repoints.
    g.crash_ac(0);
    g.run_for(Duration::from_secs(3));
    let promoted = g.backups[0];
    assert_eq!(g.backup(0).role(), Role::Primary);
    assert_eq!(g.ac(1).parent().map(|p| p.node), Some(promoted));

    // AC1 goes deaf to the promoted parent and misses a rekey (the
    // area-0 member leaves, forcing a forward-secrecy epoch bump).
    let ac1_node = g.primaries[1];
    g.sim.cut_link(promoted, ac1_node);
    let epoch_before = g.backup(0).epoch();
    let left = g.sim.invoke(m0, |m: &mut mykil::member::Member, ctx| m.leave(ctx));
    assert!(left, "area-0 member could not leave");
    // Departure rekeys are batched; allow a full rekey interval.
    g.run_for(Duration::from_secs(3));
    assert!(g.backup(0).epoch() > epoch_before, "leave did not rekey area 0");
    assert_ne!(
        g.ac(1).parent_area_key(),
        Some(g.backup(0).area_key()),
        "AC1 was supposed to miss the rekey"
    );

    // The link heals. The next `AcAlive` advertises the missed epoch
    // and AC1 pulls its path keys back with a `KeyRefreshRequest`.
    // Without the child-AC enrollments in the replica snapshot, the
    // promoted backup drops that request and AC1 stays keyless.
    g.sim.restore_link(promoted, ac1_node);
    g.run_for(Duration::from_secs(2));
    assert_eq!(
        g.ac(1).parent_area_key(),
        Some(g.backup(0).area_key()),
        "promoted backup never re-keyed its child controller"
    );
}

/// Bugfix 2: the parent switch rotates through *all* preferred
/// parents instead of hammering the first (possibly dead) candidate.
#[test]
fn parent_switch_rotates_past_dead_candidates() {
    // Areas: 0 is the root, 1 and 2 its children, 3 a child of 1 with
    // preferred alternates [0, 2]. Killing AC0 *and* AC1 leaves area 3
    // with a dead parent whose first alternate is dead too — only
    // cursor rotation onto AC2 can restore the hierarchy.
    let mut g = GroupBuilder::new(42).areas(4).build();
    let members: Vec<_> = (0..4).map(|i| g.register_member(i)).collect();
    g.settle();
    let by_area = |g: &mykil::group::GroupHandle, area: u32| {
        members
            .iter()
            .copied()
            .find(|&m| g.member(m).area().map(|a| a.0) == Some(area))
    };
    let m3 = by_area(&g, 3);
    let m2 = by_area(&g, 2);

    g.crash_ac(0);
    g.crash_ac(1);
    g.run_for(Duration::from_secs(8));

    assert_eq!(
        g.ac(3).parent().map(|p| p.node),
        Some(g.primaries[2]),
        "area 3 did not land on the only live alternate"
    );
    assert!(g.ac(3).stats.parent_switches >= 1);
    assert!(
        g.stats().counter("ac-parent-switch-attempts") >= 2,
        "rotation never even tried the dead candidate"
    );

    // The re-parented link carries data between areas 3 and 2.
    if let (Some(m3), Some(m2)) = (m3, m2) {
        g.send_data(m3, b"via rotated parent");
        g.run_for(Duration::from_secs(2));
        assert!(
            g.received_data(m2).contains(&b"via rotated parent".to_vec()),
            "area 2 unreachable after rotation"
        );
    }
}

/// The whole control plane — joins, a root-controller crash, parent
/// switches, automatic member rejoins — converges at 0%, 10% and 20%
/// uniform message loss.
#[test]
fn control_plane_converges_under_loss_sweep() {
    for &loss in &[0u32, 100, 200] {
        let mut g = GroupBuilder::new(900 + loss as u64).areas(3).build();
        g.sim.set_loss_per_mille(loss);
        let members: Vec<_> = (0..3).map(|i| g.register_member(i)).collect();
        g.run_for(Duration::from_secs(20));
        for &m in &members {
            assert!(g.is_member(m), "loss={loss}: member never joined");
        }

        g.crash_ac(0);
        g.run_for(Duration::from_secs(20));
        let switches = g.ac(1).stats.parent_switches + g.ac(2).stats.parent_switches;
        assert!(switches >= 1, "loss={loss}: no parent switch");

        // Let stragglers drain on a clean network, then check keys.
        g.sim.set_loss_per_mille(0);
        g.run_for(Duration::from_secs(5));
        for &m in &members {
            assert!(g.is_member(m), "loss={loss}: member lost after AC crash");
            let area = g.member(m).area().expect("active member has an area").0;
            assert!(
                area == 1 || area == 2,
                "loss={loss}: member stranded in dead area {area}"
            );
            assert_eq!(
                g.member(m).current_area_key(),
                Some(g.ac(area as usize).area_key()),
                "loss={loss}: member key diverged from area {area}"
            );
        }
        // The control plane's reliable channel was exercised: the
        // enrollment and switch exchanges completed with transport
        // acks. (Retransmission counts are asserted in the acceptance
        // test below — at 10% loss a handful of frames can get
        // through clean.)
        assert!(
            g.stats().counter("reliable-acked") > 0,
            "loss={loss}: no reliable exchange completed"
        );
    }
}

/// Acceptance scenario (ISSUE 2): at 15% loss, run join + backup
/// takeover + parent-switch rotation; all live members must hold the
/// final group key of their area, and the dedup window must have
/// caught actual duplicate deliveries (verified via stats).
#[test]
fn lossy_failover_acceptance() {
    let mut g = GroupBuilder::new(46).areas(3).replicated(true).build();
    g.sim.set_loss_per_mille(150);
    let members: Vec<_> = (0..3).map(|i| g.register_member(i)).collect();
    g.run_for(Duration::from_secs(15));
    for &m in &members {
        assert!(g.is_member(m), "member failed to join under 15% loss");
    }

    // Phase 2: area 2's primary dies; its backup takes over.
    g.crash_ac(2);
    g.run_for(Duration::from_secs(10));
    assert_eq!(g.backup(2).role(), Role::Primary);
    assert_eq!(g.backup(2).stats.takeovers, 1);

    // Phase 3: the root area dies entirely (primary and backup). The
    // promoted area-2 controller's first preferred parent is the dead
    // root, so only rotation can land it on AC1.
    g.crash_ac(0);
    g.sim.crash(g.backups[0]);
    g.run_for(Duration::from_secs(20));

    g.sim.set_loss_per_mille(0);
    g.run_for(Duration::from_secs(5));

    // Under sustained 15% loss, area 1's backup can falsely presume its
    // primary dead and take over; epoch-fenced demotion then resolves
    // the split brain in the backup's favor. Whichever way that race
    // went, exactly one of the pair must be primary now, and the
    // promoted area-2 controller must have re-parented onto it.
    let area1_active = if g.ac(1).role() == Role::Primary {
        assert_ne!(
            g.backup(1).role(),
            Role::Primary,
            "split brain in area 1 was never reconciled"
        );
        g.primaries[1]
    } else {
        assert_eq!(g.backup(1).role(), Role::Primary);
        g.backups[1]
    };
    assert_eq!(
        g.backup(2).parent().map(|p| p.node),
        Some(area1_active),
        "promoted controller never re-parented onto area 1's live controller"
    );
    assert!(g.backup(2).stats.parent_switches >= 1);

    // Every member survived and converged on its area's current key.
    for &m in &members {
        assert!(g.is_member(m), "member lost after the failover gauntlet");
        let area = g.member(m).area().expect("active member has an area").0;
        let key = match area {
            1 if area1_active == g.primaries[1] => g.ac(1).area_key(),
            1 => g.backup(1).area_key(),
            2 => g.backup(2).area_key(),
            other => panic!("member stranded in dead area {other}"),
        };
        assert_eq!(
            g.member(m).current_area_key(),
            Some(key),
            "member key diverged from area {area}"
        );
    }

    // The reliable layer did real work: retransmissions happened, and
    // the per-peer dedup window swallowed the duplicates so no handler
    // processed a control message twice.
    assert!(g.stats().counter("reliable-retransmits") > 0);
    assert!(
        g.stats().counter("reliable-dup-dropped") > 0,
        "no duplicate was ever suppressed — dedup untested by this run"
    );
}
