//! The event queue: a binary heap of timestamped events with a FIFO
//! tiebreaker so simultaneous events preserve insertion order (this is
//! what makes runs deterministic).

use crate::id::NodeId;
use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How a delivery travels: plain fire-and-forget, a reliable frame that
/// must be acknowledged and deduplicated, or the acknowledgement itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Transport {
    Plain,
    Reliable { msg_id: u64 },
    Ack { msg_id: u64 },
}

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// Deliver message bytes from `from` to the destination node.
    Deliver {
        from: NodeId,
        bytes: Vec<u8>,
        kind: &'static str,
        transport: Transport,
    },
    /// Fire a timer with the given tag (cancelled if `token_cancelled`).
    Timer { tag: u64, token: u64 },
    /// Retry a reliable send (`dst` is the original sender); a no-op if
    /// the message was acknowledged or cancelled in the meantime.
    Retransmit { msg_id: u64 },
    /// Invoke `on_start` for a node added while the simulation runs.
    Start,
    /// Invoke `on_restarted` for a node that recovered from a crash
    /// (skipped if the node crashed again before the event fires).
    Restarted,
}

#[derive(Debug)]
pub(crate) struct Event {
    pub at: Time,
    pub seq: u64,
    pub dst: NodeId,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then lowest seq)
        // pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic priority queue of simulation events.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, at: Time, dst: NodeId, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, dst, kind });
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(q: &mut EventQueue, at_us: u64, tag: u64) {
        q.push(
            Time::from_micros(at_us),
            NodeId::from_index(0),
            EventKind::Timer { tag, token: 0 },
        );
    }

    fn pop_tag(q: &mut EventQueue) -> u64 {
        match q.pop().unwrap().kind {
            EventKind::Timer { tag, .. } => tag,
            _ => panic!("expected timer"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        ev(&mut q, 30, 3);
        ev(&mut q, 10, 1);
        ev(&mut q, 20, 2);
        assert_eq!(pop_tag(&mut q), 1);
        assert_eq!(pop_tag(&mut q), 2);
        assert_eq!(pop_tag(&mut q), 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for tag in 0..50 {
            ev(&mut q, 100, tag);
        }
        for tag in 0..50 {
            assert_eq!(pop_tag(&mut q), tag);
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        ev(&mut q, 42, 0);
        ev(&mut q, 7, 1);
        assert_eq!(q.peek_time(), Some(Time::from_micros(7)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
