//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build container has no access to crates.io, so the
//! workspace routes its `rand` dependency here (see `[workspace.
//! dependencies]` in the root manifest). Only the traits the code
//! actually consumes are provided: [`RngCore`], [`CryptoRng`] and
//! [`Error`]. All randomness in the reproduction flows through
//! `mykil_crypto::drbg::Drbg`, which implements these traits itself —
//! this crate deliberately ships no generator of its own.

use std::fmt;

/// Error type for fallible RNG operations (mirrors `rand::Error`).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Wraps a static message as an RNG error.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Marker trait for cryptographically secure generators (mirrors
/// `rand::CryptoRng`).
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn trait_object_and_reference_forwarding() {
        let mut c = Counter(0);
        fn take<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        assert_eq!(take(&mut c), 1);
        let dyn_rng: &mut dyn RngCore = &mut c;
        assert_eq!(dyn_rng.next_u64(), 2);
        let mut buf = [0u8; 11];
        c.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn error_displays() {
        let e = Error::new("broken source");
        assert!(e.to_string().contains("broken source"));
    }
}
