//! Experiment implementations shared by the `report` binary, the
//! criterion benches, and the workspace integration tests.
//!
//! One function per paper artifact — see `DESIGN.md` §3 for the full
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured results.

pub mod alloc_track;
pub mod experiments;
pub mod workload;

pub use experiments::*;
