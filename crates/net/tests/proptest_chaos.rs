//! Property-based tests for the chaos harness (ISSUE 8): the
//! serialize/parse round-trip over *every* fault verb (the unit tests
//! only cover hand-picked cases), parse diagnostics, and the driver's
//! deadline semantics — a fault scheduled at the exact `run_until`
//! deadline must fire, deterministically.

use mykil_net::{
    ChaosDriver, Context, Duration, FaultPlan, FaultSpec, Node, NodeId, Simulator, Time,
};
use proptest::prelude::*;

fn node_id() -> impl Strategy<Value = NodeId> {
    (0usize..64).prop_map(NodeId::from_index)
}

/// Every [`FaultSpec`] verb, with representative argument ranges.
fn fault_spec() -> impl Strategy<Value = FaultSpec> {
    prop_oneof![
        node_id().prop_map(FaultSpec::Crash),
        node_id().prop_map(FaultSpec::Restart),
        (node_id(), 0u32..8).prop_map(|(n, l)| FaultSpec::Partition(n, l)),
        Just(FaultSpec::HealPartitions),
        (node_id(), node_id()).prop_map(|(a, b)| FaultSpec::CutLink(a, b)),
        (node_id(), node_id()).prop_map(|(a, b)| FaultSpec::RestoreLink(a, b)),
        (0u32..1001).prop_map(FaultSpec::Loss),
        (0u32..1001).prop_map(FaultSpec::Duplication),
        (0u32..1001, 0u64..10_000_000)
            .prop_map(|(pm, w)| FaultSpec::Reorder(pm, Duration::from_micros(w))),
        (node_id(), 1u32..4000).prop_map(|(n, pm)| FaultSpec::TimerSkew(n, pm)),
        node_id().prop_map(FaultSpec::StorageLostTail),
        node_id().prop_map(FaultSpec::StorageTorn),
        node_id().prop_map(FaultSpec::CorruptCheckpoint),
        node_id().prop_map(FaultSpec::StorageShortRead),
        node_id().prop_map(FaultSpec::StorageAppendFail),
        (node_id(), 0u8..2).prop_map(|(n, s)| FaultSpec::CorruptSlot(n, s)),
        node_id().prop_map(FaultSpec::StorageHeal),
    ]
}

proptest! {
    /// serialize → parse reproduces the plan exactly, whatever mix of
    /// verbs, argument values, and (possibly equal) times it holds.
    #[test]
    fn fault_plan_round_trips(
        faults in proptest::collection::vec((0u64..100_000_000, fault_spec()), 0..40)
    ) {
        let mut plan = FaultPlan::new();
        for (at, fault) in faults {
            plan.push(Time::from_micros(at), fault);
        }
        let text = plan.serialize();
        let reparsed = FaultPlan::parse(&text)
            .unwrap_or_else(|e| panic!("serialized plan failed to parse: {e}\n{text}"));
        prop_assert_eq!(reparsed, plan);
    }

    /// Every parse error points at the offending 1-based line and
    /// quotes its text.
    #[test]
    fn parse_errors_carry_line_number_and_text(
        good in proptest::collection::vec((0u64..1_000_000, fault_spec()), 0..5),
        bad_line in prop_oneof![
            // Unknown verb, bad time, and missing-argument shapes.
            any::<u8>().prop_map(|n| format!("7 zzz-verb-{n} 1")),
            any::<u8>().prop_map(|n| format!("not-a-time crash {n}")),
            Just("12 crash".to_string()),
            Just("12 partition 3".to_string()),
            Just("12 reorder 100".to_string()),
            // fs-level verbs: missing args, bad slot, and values that a
            // bare `as u32` would have silently truncated onto a real
            // node / rate / label instead of rejecting.
            Just("12 wal-short-read".to_string()),
            Just("12 ckpt-slot-corrupt 1".to_string()),
            (2u64..256).prop_map(|s| format!("12 ckpt-slot-corrupt 1 {s}")),
            (u32::MAX as u64 + 1..u64::MAX).prop_map(|n| format!("12 wal-append-fail {n}")),
            (u32::MAX as u64 + 1..u64::MAX).prop_map(|n| format!("12 loss {n}")),
            (u32::MAX as u64 + 1..u64::MAX).prop_map(|n| format!("12 partition 0 {n}")),
        ],
    ) {
        let mut text = String::new();
        for (at, fault) in &good {
            text.push_str(&format!("{at} {fault}\n"));
        }
        let bad_lineno = good.len() + 1;
        text.push_str(&bad_line);
        let err = FaultPlan::parse(&text).expect_err("malformed line must not parse");
        prop_assert!(
            err.contains(&format!("line {bad_lineno}:")),
            "error `{}` does not name line {}", err, bad_lineno
        );
        prop_assert!(
            err.contains(bad_line.trim()),
            "error `{}` does not quote the offending text `{}`", err, bad_line
        );
    }
}

/// A minimal node that counts timer fires, to give the simulator a
/// pulse while the driver steps through a plan.
struct Ticker {
    fires: u64,
}

impl Node for Ticker {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(Duration::from_millis(1), 1);
    }
    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _bytes: &[u8]) {}
    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        self.fires += 1;
        ctx.set_timer(Duration::from_millis(1), 1);
    }
}

/// A fault scheduled at the exact `run_until` deadline fires on that
/// call (the deadline is inclusive), not on the next one — and does so
/// deterministically across identical runs.
#[test]
fn deadline_faults_fire_deterministically() {
    let run = || {
        let mut sim = Simulator::new(3);
        let a = sim.add_node(Ticker { fires: 0 });
        let b = sim.add_node(Ticker { fires: 0 });
        let deadline = Time::from_millis(10);
        let mut plan = FaultPlan::new();
        plan.push(deadline, FaultSpec::Crash(a));
        plan.push(deadline, FaultSpec::Loss(250));
        // Strictly past the deadline: must NOT fire on this call.
        plan.push(deadline + Duration::from_micros(1), FaultSpec::Crash(b));
        let mut driver = ChaosDriver::new(plan);
        driver.run_until(&mut sim, deadline);
        assert!(
            sim.is_crashed(a),
            "fault at the exact deadline did not fire"
        );
        assert!(
            !sim.is_crashed(b),
            "fault past the deadline fired early"
        );
        assert!(!driver.finished(), "driver consumed the post-deadline fault");
        // The remainder fires on the next call.
        driver.run_until(&mut sim, deadline + Duration::from_millis(1));
        assert!(sim.is_crashed(b));
        assert!(driver.finished());
        (sim.events_processed(), sim.now(), sim.node::<Ticker>(b).fires)
    };
    assert_eq!(run(), run(), "deadline chaos replay diverged");
}
