//! HMAC-SHA256 (RFC 2104), the MAC used on every Mykil protocol message.
//!
//! The paper attaches a MAC to each step of the join protocol (Figure 3),
//! the rejoin protocol (Figure 7), and to tickets. All of those MACs are
//! computed here.
//!
//! # Example
//!
//! ```
//! use mykil_crypto::hmac::{hmac_sha256, verify_hmac};
//!
//! let tag = hmac_sha256(b"shared key", b"step 1 payload");
//! assert!(verify_hmac(b"shared key", b"step 1 payload", &tag));
//! assert!(!verify_hmac(b"shared key", b"tampered", &tag));
//! ```

use crate::sha256::{Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block are pre-hashed per RFC 2104.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        key_block[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Verifies a tag in constant time with respect to tag content.
///
/// Returns `false` for any length mismatch.
pub fn verify_hmac(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    let expected = hmac_sha256(key, message);
    crate::ct::ct_eq(&expected, tag)
}

/// Incremental HMAC builder for multi-part messages.
///
/// Protocol steps MAC several concatenated fields; this avoids
/// intermediate copies.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Starts a MAC computation under `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            key_block[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, opad }
    }

    /// Absorbs another message fragment.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the final tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac(b"k", b"m", &tag));
        assert!(!verify_hmac(b"k2", b"m", &tag));
        assert!(!verify_hmac(b"k", b"m2", &tag));
        assert!(!verify_hmac(b"k", b"m", &tag[..31]));
        assert!(!verify_hmac(b"k", b"m", &[]));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"area-controller-key");
        h.update(b"nonce:");
        h.update(&42u64.to_be_bytes());
        h.update(b"|ticket");
        let tag = h.finalize();
        let mut whole = b"nonce:".to_vec();
        whole.extend_from_slice(&42u64.to_be_bytes());
        whole.extend_from_slice(b"|ticket");
        assert_eq!(tag, hmac_sha256(b"area-controller-key", &whole));
    }

    #[test]
    fn different_keys_different_tags() {
        let t1 = hmac_sha256(b"key-1", b"same message");
        let t2 = hmac_sha256(b"key-2", b"same message");
        assert_ne!(t1, t2);
    }
}
