//! Data-plane forwarding (Figure 2 of the paper).
//!
//! A sender encrypts its payload under a fresh random key `K_r` and
//! seals `K_r` under its area key. Its AC re-seals `K_r` under the
//! current area key and multicasts into the area (rekeying first when a
//! batch is pending — the "update needed flag" of Section III-E), then
//! forwards upward to its parent, re-sealed under the parent's area
//! key. Child ACs hear their parent's area multicast (they are members
//! of the parent area) and cascade downward.

use super::AreaController;
use crate::identity::ClientId;
use crate::msg::Msg;
use mykil_crypto::envelope;
use mykil_net::{Context, NodeId};

/// Cap on the dedup window for data packets.
const SEEN_CAP: usize = 4096;

impl AreaController {
    pub(crate) fn handle_data(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        origin: ClientId,
        seq: u64,
        wrapped: &[u8],
        payload: &[u8],
    ) {
        // Dedup: the same packet can arrive via several paths.
        let key = (origin.0, seq);
        if self.seen_data.contains(&key) {
            return;
        }
        self.seen_data.insert(key);
        self.seen_order.push_back(key);
        if self.seen_order.len() > SEEN_CAP {
            if let Some(old) = self.seen_order.pop_front() {
                self.seen_data.remove(&old);
            }
        }

        // Record member liveness.
        if let Some(rec) = self.members.values_mut().find(|r| r.node == from) {
            rec.last_heard = ctx.now();
        }

        // Unwrap K_r with the key of the region the packet came from.
        let from_parent = self.parent.as_ref().is_some_and(|p| p.node == from);
        let unwrap_keys = if from_parent {
            self.parent_keys.area_keys_with_history()
        } else {
            self.own_area_keys()
        };
        ctx.charge_compute(self.cost.symmetric_op);
        let Some(k_r) = unwrap_keys
            .iter()
            .find_map(|k| envelope::open(k, wrapped).ok())
            .and_then(|b| <[u8; 16]>::try_from(b.as_slice()).ok())
        else {
            ctx.stats().bump("ac-data-unwrap-failures", 1);
            return;
        };
        let k_r = mykil_crypto::keys::SymmetricKey::from_bytes(k_r);

        // Section III-E: pending key updates are flushed *before* data
        // is forwarded, so members always decrypt with fresh keys.
        if self.update_needed {
            self.flush_key_updates(ctx);
            self.sync_backup(ctx);
        }

        // Multicast into our area under the (possibly new) area key.
        ctx.charge_compute(self.cost.symmetric_op);
        let rewrapped = envelope::seal(&self.tree.area_key(), k_r.as_bytes(), ctx.rng());
        ctx.multicast(
            self.deploy.group,
            "data",
            Msg::Data {
                origin,
                seq,
                wrapped_key: rewrapped,
                payload: payload.to_vec(),
            }
            .to_bytes(),
        );
        self.last_area_mcast = ctx.now();
        self.stats.data_forwarded += 1;

        // Forward upward unless the packet came from above.
        if !from_parent {
            if let Some(parent) = self.parent.clone() {
                if let Some(parent_key) = self.parent_keys.area_key() {
                    ctx.charge_compute(self.cost.symmetric_op);
                    let up = envelope::seal(&parent_key, k_r.as_bytes(), ctx.rng());
                    ctx.send(
                        parent.node,
                        "data",
                        Msg::Data {
                            origin,
                            seq,
                            wrapped_key: up,
                            payload: payload.to_vec(),
                        }
                        .to_bytes(),
                    );
                }
            }
        }
    }
}
