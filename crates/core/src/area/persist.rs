//! Stable-storage persistence and crash recovery for the area
//! controller.
//!
//! The durable footprint (formats in [`crate::durable`]) is:
//!
//! - a WAL record per acknowledged membership or role change
//!   ([`AcWalRecord`]), committed before the change's effects leave the
//!   node;
//! - a full checkpoint ([`crate::durable::AcCheckpoint`]) at every
//!   compaction point: rekey flushes, snapshot applications, role
//!   transitions, and start-up. The membership payload reuses the
//!   replication snapshot format, so primary checkpoints and
//!   `StateSync` bodies are the same bytes.
//!
//! A crash wipes everything else ([`AreaController::wipe_volatile`]);
//! recovery ([`AreaController::recover_from_storage`]) loads the newest
//! valid checkpoint, replays the WAL suffix, re-fences the counters
//! that may lag their durable image, and re-issues key paths to every
//! member — WAL-replayed tree joins draw fresh randomness, so the
//! replayed tree's path keys differ from the ones members still hold.

use super::{AreaController, MemberRecord, Role};
use crate::durable::{AcCheckpoint, AcWalRecord, RECOVERY_EPOCH_JUMP};
use crate::identity::{ClientId, DeviceId};
use crate::msg::Msg;
use mykil_crypto::envelope::HybridCiphertext;
use mykil_crypto::rsa::RsaPublicKey;
use mykil_net::{Context, NodeId, SecretBytes, Time};
use mykil_tree::MemberId;

impl AreaController {
    /// Commits one WAL record (append + fsync) to stable storage.
    pub(crate) fn wal_commit_record(&mut self, ctx: &mut Context<'_>, rec: &AcWalRecord) {
        ctx.storage().wal_commit(rec.to_bytes());
    }

    /// Serializes the full-state checkpoint for the current role.
    pub(crate) fn checkpoint_bytes(&self) -> Vec<u8> {
        let (primary, primary_node, snapshot) = match self.role {
            Role::Primary => (true, 0, Some(self.replica_snapshot())),
            Role::Backup { primary } => (
                false,
                primary.index() as u32,
                self.replica_state.as_ref().map(|s| s.as_slice().to_vec()),
            ),
        };
        AcCheckpoint {
            primary,
            primary_node,
            takeover_epoch: self.takeover_epoch,
            peer_takeover_epoch: self.peer_takeover_epoch,
            sync_seq: self.sync_seq,
            applied_sync_seq: self.applied_sync_seq,
            stale_peer: self.stale_peer.map(|n| n.index() as u32),
            backup: self
                .deploy
                .backup
                .map(|n| (n.index() as u32, self.deploy.backup_pubkey.clone())),
            snapshot,
        }
        .to_bytes()
    }

    /// Writes a checkpoint (compaction point): after this the durable
    /// state equals the in-memory state and the WAL prefix is
    /// truncated.
    pub(crate) fn persist_checkpoint(&mut self, ctx: &mut Context<'_>) {
        let bytes = self.checkpoint_bytes();
        ctx.storage().checkpoint(bytes);
    }

    /// Resets every field that does not survive a power loss. Called by
    /// the simulator at crash time (no [`Context`] exists then).
    ///
    /// What survives is the durable local configuration a real node
    /// would read back from its config files at boot: `cfg`, `cost`,
    /// the keypair, the RS public key, `K_shared` (and the replication
    /// key derived from it), the pristine deployment record, and the
    /// deployment-time tree seed. The `stats` counters also survive —
    /// they are harness-side diagnostics, not protocol state.
    pub(crate) fn wipe_volatile(&mut self) {
        self.deploy = self.deploy_pristine.clone();
        self.role = self.deploy.role;
        self.parent = self.deploy.parent.clone();
        let mut rng = mykil_crypto::drbg::Drbg::from_seed(self.tree_seed);
        self.tree = mykil_tree::AreaTree::new(self.cfg.tree, &mut rng);
        self.members.clear();
        self.pending_admissions.clear();
        self.pending_rejoins.clear();
        self.pending_rejoin_prev_ac.clear();
        self.epoch = 0;
        self.update_needed = false;
        self.buffered_join_updates.clear();
        self.recorded_members.clear();
        self.pending_leaves.clear();
        self.parent_keys.clear();
        self.parent_epoch = 0;
        self.last_heard_parent = Time::ZERO;
        self.child_acs.clear();
        self.child_ac_members.clear();
        self.pending_parent_join = None;
        self.parent_switch_cursor = 0;
        self.prev_area_keys.clear();
        self.seen_data.clear();
        self.seen_order.clear();
        self.last_area_mcast = Time::ZERO;
        self.hb_seq = 0;
        self.last_heartbeat = Time::ZERO;
        self.replica_state = None;
        self.sync_seq = 0;
        self.applied_sync_seq = 0;
        self.pending_sync = None;
        self.last_backup_ack = Time::ZERO;
        self.backup_presumed_dead = false;
        self.takeover_epoch = 0;
        self.peer_takeover_epoch = 0;
        self.stale_peer = None;
        self.pending_demote = None;
    }

    /// Rebuilds state from stable storage: newest valid checkpoint,
    /// then the durable WAL suffix. Returns whether any durable state
    /// was applied.
    ///
    /// A recovered primary re-fences its rekey epoch and replication
    /// sequence by [`RECOVERY_EPOCH_JUMP`]: both counters can lag their
    /// durable image (the flush checkpoint precedes the `sync_backup`
    /// bump, and a lying fsync can roll storage back to an older
    /// prefix), and resuming below a value the pre-crash incarnation
    /// already used would make members and the backup silently drop
    /// this node's traffic.
    pub(crate) fn recover_from_storage(&mut self, ctx: &mut Context<'_>) -> bool {
        let rec = ctx.storage().load();
        let mut applied = false;
        if let Some((_seq, bytes)) = rec.checkpoint {
            if let Some(cp) = AcCheckpoint::from_bytes(&bytes) {
                self.role = if cp.primary {
                    Role::Primary
                } else {
                    Role::Backup {
                        primary: NodeId::from_index(cp.primary_node as usize),
                    }
                };
                self.takeover_epoch = cp.takeover_epoch;
                self.peer_takeover_epoch = cp.peer_takeover_epoch;
                self.sync_seq = cp.sync_seq;
                self.applied_sync_seq = cp.applied_sync_seq;
                self.stale_peer = cp.stale_peer.map(|n| NodeId::from_index(n as usize));
                match cp.backup {
                    Some((node, pubkey)) => {
                        self.deploy.backup = Some(NodeId::from_index(node as usize));
                        self.deploy.backup_pubkey = pubkey;
                    }
                    None => {
                        self.deploy.backup = None;
                        self.deploy.backup_pubkey = Vec::new();
                    }
                }
                if let Some(snap) = cp.snapshot {
                    match self.role {
                        Role::Primary => {
                            if self.apply_replica_snapshot(&snap, ctx.now()).is_none() {
                                ctx.stats().bump("ac-recovery-bad-snapshot", 1);
                            }
                        }
                        Role::Backup { .. } => {
                            self.replica_state = Some(SecretBytes::new(snap));
                        }
                    }
                }
                applied = true;
            } else {
                ctx.stats().bump("ac-recovery-bad-checkpoint", 1);
            }
        }
        for raw in &rec.wal {
            let Some(record) = AcWalRecord::from_bytes(raw) else {
                // An unparseable durable record: everything after it is
                // suspect, stop the replay (mirrors the storage layer's
                // torn-tail handling).
                ctx.stats().bump("ac-recovery-bad-wal-record", 1);
                break;
            };
            self.replay_wal_record(ctx, record);
            applied = true;
        }
        if applied && self.role == Role::Primary {
            self.epoch += RECOVERY_EPOCH_JUMP;
            self.sync_seq += RECOVERY_EPOCH_JUMP;
        }
        applied
    }

    /// Applies one WAL record during recovery, mirroring the durable
    /// effects of the live-path handler that wrote it.
    fn replay_wal_record(&mut self, ctx: &mut Context<'_>, rec: AcWalRecord) {
        match rec {
            AcWalRecord::Join {
                client,
                node,
                pubkey,
                device,
                valid_until_us,
            } => {
                let Ok(pk) = RsaPublicKey::from_bytes(&pubkey) else {
                    return;
                };
                let member = MemberId(client);
                self.note_area_key();
                self.pending_leaves.retain(|c| c.0 != client);
                if self.tree.contains(member) {
                    let _ = self.tree.leave(member, ctx.rng());
                }
                if self.tree.join(member, ctx.rng()).is_err() {
                    ctx.stats().bump("ac-recovery-join-failed", 1);
                    return;
                }
                self.members.insert(
                    ClientId(client),
                    MemberRecord {
                        node: NodeId::from_index(node as usize),
                        pubkey: pk,
                        device: device.map(DeviceId),
                        valid_until: Time::from_micros(valid_until_us),
                        // Fresh liveness grace after recovery, as after
                        // a takeover.
                        last_heard: ctx.now(),
                    },
                );
            }
            AcWalRecord::Leave { client } | AcWalRecord::Evict { client } => {
                let member = MemberId(client);
                if self.tree.contains(member) {
                    self.note_area_key();
                    let _ = self.tree.leave(member, ctx.rng());
                }
                self.members.remove(&ClientId(client));
            }
            AcWalRecord::Promoted {
                takeover_epoch,
                old_primary,
            } => {
                if let Some(state) = self.replica_state.take() {
                    if self
                        .apply_replica_snapshot(state.as_slice(), ctx.now())
                        .is_none()
                    {
                        ctx.stats().bump("ac-recovery-bad-snapshot", 1);
                    }
                }
                self.role = Role::Primary;
                self.takeover_epoch = takeover_epoch;
                self.stale_peer = Some(NodeId::from_index(old_primary as usize));
                self.deploy.backup = None;
                self.deploy.backup_pubkey = Vec::new();
            }
            AcWalRecord::Demoted { new_primary } => {
                self.role = Role::Backup {
                    primary: NodeId::from_index(new_primary as usize),
                };
                self.replica_state = None;
                self.applied_sync_seq = 0;
            }
        }
    }

    /// Post-recovery key resynchronization (primary role).
    ///
    /// WAL-replayed tree joins rotated path keys with fresh randomness,
    /// so members' held paths may be stale; re-issue the current path
    /// to every member and child controller, then checkpoint (which
    /// also compacts the just-replayed WAL) and push a catch-up
    /// snapshot to the backup.
    pub(crate) fn post_recovery_resync(&mut self, ctx: &mut Context<'_>) {
        let clients: Vec<ClientId> = self.members.keys().copied().collect();
        for client in clients {
            self.unicast_current_path(ctx, client);
        }
        let children: Vec<(u64, NodeId)> = self
            .child_ac_members
            .iter()
            .map(|(m, n)| (*m, *n))
            .collect();
        for (member, node) in children {
            let mut path = Vec::new();
            if self.tree.path_keys_into(MemberId(member), &mut path).is_err() {
                continue;
            }
            let Some(pubkey) = self.directory_pubkey(node) else {
                continue;
            };
            ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
            if let Ok(ct) = HybridCiphertext::encrypt(
                &pubkey,
                &crate::rekey::encode_tree_path(&path),
                ctx.rng(),
            ) {
                ctx.send(
                    node,
                    "key-unicast",
                    Msg::KeyUnicast { ct: ct.to_bytes() }.to_bytes(),
                );
            }
        }
        self.persist_checkpoint(ctx);
        self.sync_backup(ctx);
    }
}
