//! Deterministic discrete-event network simulator.
//!
//! The Mykil paper evaluated its prototype on "a network of Linux
//! workstations" connected by TCP. This crate replaces that testbed with
//! a single-threaded, deterministic discrete-event simulator:
//!
//! - **Virtual time** in microseconds ([`Time`]), advanced only by the
//!   event loop — runs are bit-for-bit reproducible from a seed.
//! - **Nodes** implement the [`Node`] trait (message + timer callbacks)
//!   and communicate by unicast [`Context::send`] or group
//!   [`Context::multicast`].
//! - **Failure injection**: network partitions, node crashes and
//!   restarts, per-link drops ([`Simulator::partition`],
//!   [`Simulator::crash`], …) — exactly the fault model of Section IV of
//!   the paper.
//! - **Byte accounting** ([`Stats`]): every unicast/multicast is counted
//!   by kind, which is how the reproduction regenerates the bandwidth
//!   figures (Figures 8–10).
//! - **Compute delays**: protocol code charges virtual CPU time for
//!   cryptographic operations ([`Context::charge_compute`]) so that
//!   join/rejoin latency measurements (Section V-D) reflect both network
//!   round trips and crypto cost.
//!
//! # Example
//!
//! ```
//! use mykil_net::{Context, Node, NodeId, Simulator, Time};
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
//!         if bytes == b"ping" {
//!             ctx.send(from, "pong", b"pong".to_vec());
//!         }
//!     }
//! }
//!
//! struct Probe { target: NodeId, got_pong: bool }
//! impl Node for Probe {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.send(self.target, "ping", b"ping".to_vec());
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, bytes: &[u8]) {
//!         self.got_pong = bytes == b"pong";
//!     }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let echo = sim.add_node(Echo);
//! let probe = sim.add_node(Probe { target: echo, got_pong: false });
//! sim.run_until(Time::from_millis(10));
//! assert!(sim.node::<Probe>(probe).got_pong);
//! ```

mod chaos;
mod context;
mod event;
mod file_store;
mod id;
mod latency;
mod sim;
mod stats;
mod storage;
mod time;
mod topology;
mod trace;

pub use chaos::{ChaosDriver, ChaosOptions, FaultPlan, FaultSpec, TimedFault};
pub use context::{Context, MsgToken, TimerToken};
pub use file_store::{crc32, scratch_dir, FileStore};
pub use id::{GroupId, NodeId};
pub use latency::LatencyModel;
pub use sim::{Node, Simulator, StorageFactory};
pub use stats::Stats;
pub use storage::{
    FaultyStore, NodeStorage, Recovered, SecretBytes, SimStore, StableStore, StoreFault,
};
pub use time::{Duration, Time};
pub use trace::{DropReason, TraceEvent};
