//! Primary-backup replication of an area controller (Section IV-C).
//!
//! The replicated state is exactly what the paper lists: "the complete
//! auxiliary tree, public keys of the area members, area controllers
//! and the registration server, and the identities of the parent area
//! controller and all child area controllers". Multicast data in flight
//! is deliberately *not* replicated — members may miss packets during a
//! takeover, which the paper accepts.

use super::{
    AreaController, MemberRecord, ParentLink, Role, TIMER_BACKUP_WATCH, TIMER_HEARTBEAT,
    TIMER_IDLE_ALIVE, TIMER_PARENT_CHECK, TIMER_REKEY, TIMER_SWEEP,
};
use crate::identity::{AreaId, ClientId, DeviceId};
use crate::msg::Msg;
use crate::rekey::KeyState;
use crate::wire::{Reader, Writer};
use mykil_crypto::envelope;
use mykil_crypto::rsa::RsaPublicKey;
use mykil_net::{Context, GroupId, NodeId, Time};
use mykil_tree::KeyTree;

impl AreaController {
    /// Serializes the replicated state (tree, members, hierarchy,
    /// epoch).
    fn replica_snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.tree.snapshot());
        w.u32(self.members.len() as u32);
        let mut members: Vec<(&ClientId, &MemberRecord)> = self.members.iter().collect();
        members.sort_by_key(|(c, _)| **c);
        for (client, rec) in members {
            w.u64(client.0)
                .u32(rec.node.index() as u32)
                .bytes(&rec.pubkey.to_bytes())
                .u8(rec.device.is_some() as u8);
            if let Some(d) = rec.device {
                w.raw(d.as_bytes());
            }
            w.u64(rec.valid_until.as_micros());
        }
        match &self.parent {
            Some(p) => {
                w.u8(1)
                    .u32(p.node.index() as u32)
                    .u32(p.area.0)
                    .u32(p.group.index() as u32);
            }
            None => {
                w.u8(0);
            }
        }
        w.bytes(&self.parent_keys.to_bytes());
        w.u64(self.epoch);
        w.u32(self.child_acs.len() as u32);
        let mut children: Vec<u32> = self.child_acs.iter().map(|n| n.index() as u32).collect();
        children.sort_unstable();
        for c in children {
            w.u32(c);
        }
        w.into_bytes()
    }

    fn apply_replica_snapshot(&mut self, bytes: &[u8], now: Time) -> Option<()> {
        let mut r = Reader::new(bytes);
        let tree = KeyTree::restore(r.bytes().ok()?).ok()?;
        let count = r.u32().ok()? as usize;
        let mut members = std::collections::HashMap::with_capacity(count);
        for _ in 0..count {
            let client = ClientId(r.u64().ok()?);
            let node = NodeId::from_index(r.u32().ok()? as usize);
            let pubkey = RsaPublicKey::from_bytes(r.bytes().ok()?).ok()?;
            let device = if r.u8().ok()? == 1 {
                Some(DeviceId(r.array::<6>().ok()?))
            } else {
                None
            };
            let valid_until = Time::from_micros(r.u64().ok()?);
            members.insert(
                client,
                MemberRecord {
                    node,
                    pubkey,
                    device,
                    valid_until,
                    // Give everyone a fresh liveness grace period after
                    // the takeover.
                    last_heard: now,
                },
            );
        }
        let parent = if r.u8().ok()? == 1 {
            Some(ParentLink {
                node: NodeId::from_index(r.u32().ok()? as usize),
                area: AreaId(r.u32().ok()?),
                group: GroupId::from_index(r.u32().ok()? as usize),
            })
        } else {
            None
        };
        let parent_keys = KeyState::from_bytes(r.bytes().ok()?).ok()?;
        let epoch = r.u64().ok()?;
        let child_count = r.u32().ok()? as usize;
        let mut child_acs = std::collections::HashSet::with_capacity(child_count);
        for _ in 0..child_count {
            child_acs.insert(NodeId::from_index(r.u32().ok()? as usize));
        }
        r.finish().ok()?;
        self.tree = tree;
        self.members = members;
        self.parent = parent;
        self.parent_keys = parent_keys;
        self.epoch = epoch;
        self.child_acs = child_acs;
        Some(())
    }

    /// Pushes current state to the backup (called after every key
    /// update, membership change, or hierarchy change).
    pub(crate) fn sync_backup(&mut self, ctx: &mut Context<'_>) {
        let Some(backup) = self.deploy.backup else {
            return;
        };
        if self.role != Role::Primary {
            return;
        }
        let snapshot = self.replica_snapshot();
        ctx.charge_compute(self.cost.symmetric_op);
        let ct = envelope::seal(&self.repl_key, &snapshot, ctx.rng());
        ctx.send(backup, "replication", Msg::StateSync { ct }.to_bytes());
    }

    /// Primary heartbeat tick.
    pub(crate) fn tick_heartbeat(&mut self, ctx: &mut Context<'_>) {
        if let Some(backup) = self.deploy.backup {
            self.hb_seq += 1;
            ctx.send(
                backup,
                "replication",
                Msg::Heartbeat { seq: self.hb_seq }.to_bytes(),
            );
        }
        ctx.set_timer(self.cfg.heartbeat_interval, TIMER_HEARTBEAT);
    }

    /// Message dispatch while in the backup role.
    pub(crate) fn on_backup_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Msg) {
        let Role::Backup { primary } = self.role else {
            return;
        };
        match msg {
            Msg::Heartbeat { seq } if from == primary => {
                self.last_heartbeat = ctx.now();
                ctx.send(from, "replication", Msg::HeartbeatAck { seq }.to_bytes());
            }
            Msg::StateSync { ct } if from == primary => {
                self.last_heartbeat = ctx.now();
                if let Ok(plain) = envelope::open(&self.repl_key, &ct) {
                    self.replica_state = Some(plain);
                }
            }
            // Replication traffic from impostor nodes, and every area/
            // join/rekey message: a standby replica ignores them all
            // (listed explicitly so a new wire message fails to compile
            // until triaged here).
            Msg::Heartbeat { .. }
            | Msg::StateSync { .. }
            | Msg::Join1 { .. }
            | Msg::Join2 { .. }
            | Msg::Join3 { .. }
            | Msg::Join4 { .. }
            | Msg::Join5 { .. }
            | Msg::Join6 { .. }
            | Msg::Join7 { .. }
            | Msg::Rejoin1 { .. }
            | Msg::Rejoin2 { .. }
            | Msg::Rejoin3 { .. }
            | Msg::Rejoin4 { .. }
            | Msg::Rejoin5 { .. }
            | Msg::Rejoin6 { .. }
            | Msg::RejoinDenied { .. }
            | Msg::AreaJoinReq { .. }
            | Msg::AreaJoinAck { .. }
            | Msg::KeyUpdate { .. }
            | Msg::KeyUnicast { .. }
            | Msg::KeyRefreshRequest { .. }
            | Msg::LeaveRequest { .. }
            | Msg::Data { .. }
            | Msg::AcAlive { .. }
            | Msg::MemberAlive { .. }
            | Msg::HeartbeatAck { .. }
            | Msg::Takeover { .. } => {}
        }
    }

    /// Backup watchdog: take over after `failover_threshold` missed
    /// heartbeats.
    pub(crate) fn tick_backup_watch(&mut self, ctx: &mut Context<'_>) {
        let Role::Backup { primary } = self.role else {
            return;
        };
        let silence = ctx.now().since(self.last_heartbeat);
        let threshold = self
            .cfg
            .heartbeat_interval
            .saturating_mul(self.cfg.failover_threshold as u64);
        if silence >= threshold {
            self.take_over(ctx, primary);
        } else {
            ctx.set_timer(self.cfg.heartbeat_interval, TIMER_BACKUP_WATCH);
        }
    }

    /// Becomes the area's controller: restore replicated state, announce
    /// to the area, the registration server and the parent, and start
    /// the primary timers.
    fn take_over(&mut self, ctx: &mut Context<'_>, _old_primary: NodeId) {
        if let Some(state) = self.replica_state.take() {
            if self.apply_replica_snapshot(&state, ctx.now()).is_none() {
                ctx.stats().bump("ac-takeover-corrupt-state", 1);
            }
        }
        self.role = Role::Primary;
        // This node no longer has a backup of its own.
        self.deploy.backup = None;
        self.deploy.backup_pubkey = Vec::new();
        self.stats.takeovers += 1;
        ctx.stats().bump("ac-takeovers", 1);

        // Signed announcement: members switch their AC pointer, the RS
        // updates its directory, child controllers repoint parents.
        let mut w = Writer::new();
        w.u32(self.deploy.area.0);
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig = self.keypair.sign(&w.into_bytes());
        let announce = Msg::Takeover {
            area: self.deploy.area,
            sig,
            pubkey: self.keypair.public().to_bytes(),
        }
        .to_bytes();
        ctx.multicast(self.deploy.group, "takeover", announce.clone());
        ctx.send(self.deploy.rs_node, "takeover", announce);
        self.last_area_mcast = ctx.now();

        // Re-enroll with the parent so parent-area keys are fresh.
        if self.parent.is_some() {
            self.last_heard_parent = ctx.now();
            if let Some(p) = self.parent.clone() {
                ctx.join_group(p.group);
                self.request_parent_enrollment(ctx, &p);
            }
        }

        ctx.set_timer(self.cfg.t_idle, TIMER_IDLE_ALIVE);
        ctx.set_timer(self.cfg.t_active, TIMER_SWEEP);
        ctx.set_timer(self.cfg.rekey_interval, TIMER_REKEY);
        ctx.set_timer(self.cfg.t_idle, TIMER_PARENT_CHECK);
    }

    /// Sends a signed area-join request to (re)establish membership in
    /// the parent area.
    pub(crate) fn request_parent_enrollment(&mut self, ctx: &mut Context<'_>, parent: &ParentLink) {
        let Some(parent_pub) = self.directory_pubkey(parent.node) else {
            return;
        };
        let mut w = Writer::new();
        w.u32(self.deploy.area.0).u64(ctx.now().as_micros());
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct) = mykil_crypto::envelope::HybridCiphertext::encrypt(
            &parent_pub,
            &w.into_bytes(),
            ctx.rng(),
        ) else {
            return;
        };
        let ct = ct.to_bytes();
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig = self.keypair.sign(&ct);
        ctx.send(
            parent.node,
            "area-join",
            Msg::AreaJoinReq { ct, sig }.to_bytes(),
        );
    }
}
