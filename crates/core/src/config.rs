//! Protocol configuration knobs.

use mykil_net::Duration;
use mykil_tree::TreeConfig;

/// How an area controller handles a rejoin when the member's previous
/// controller cannot be reached (the two options of Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RejoinPolicy {
    /// Option 1: deny the rejoin — unfair to legitimate mobile clients,
    /// but immune to ticket-sharing cohorts.
    Deny,
    /// Option 2: admit without the previous-AC check, but verify the
    /// device id (NIC MAC) inside the ticket matches the requester.
    #[default]
    AdmitWithDeviceCheck,
}

/// When an area controller performs aggregated rekeying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// No batching: rekey immediately on every membership event
    /// (baseline for the Section III-E savings measurement).
    Immediate,
    /// The paper's scheme: aggregate until multicast data arrives, with
    /// a periodic freshness rekey as a backstop.
    #[default]
    OnDataOrTimer,
}

/// All protocol timing and crypto parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MykilConfig {
    /// RSA modulus size in bits (the paper uses 2048; tests use smaller).
    pub rsa_bits: usize,
    /// Auxiliary-key tree shape.
    pub tree: TreeConfig,
    /// An AC multicasts `alive` after this much multicast silence
    /// (`T_idle`, Section IV-A).
    pub t_idle: Duration,
    /// A member unicasts `alive` to its AC after this much sending
    /// silence (`T_active`; "typically much larger than `T_idle`").
    pub t_active: Duration,
    /// Silence threshold multiplier before declaring disconnection
    /// (the paper's example uses 5).
    pub disconnect_multiplier: u32,
    /// Rejoin handling under partition.
    pub rejoin_policy: RejoinPolicy,
    /// Whether a rejoin runs steps 4-5 (previous-AC departure check).
    /// Disabling reproduces the paper's faster 0.28 s rejoin variant at
    /// the cost of the cohort defense (Section IV-B / V-D).
    pub verify_departure_on_rejoin: bool,
    /// Rekey aggregation policy.
    pub batch_policy: BatchPolicy,
    /// Rotate the area key on every freshness interval even without
    /// membership changes ("preserves the freshness of the area key",
    /// Section III-E). Off by default; an ablation knob.
    pub idle_freshness_rekey: bool,
    /// Freshness interval for the batching backstop timer.
    pub rekey_interval: Duration,
    /// Ticket validity period from issue time.
    pub ticket_validity: Duration,
    /// Maximum clock skew tolerated when checking timestamps
    /// (replay-protection window).
    pub timestamp_window: Duration,
    /// Heartbeat period between a primary AC and its backup.
    pub heartbeat_interval: Duration,
    /// Missed heartbeats before the backup takes over.
    pub failover_threshold: u32,
}

impl Default for MykilConfig {
    fn default() -> Self {
        MykilConfig {
            rsa_bits: 2048,
            tree: TreeConfig::quad(),
            t_idle: Duration::from_millis(500),
            t_active: Duration::from_secs(5),
            disconnect_multiplier: 5,
            rejoin_policy: RejoinPolicy::default(),
            verify_departure_on_rejoin: true,
            batch_policy: BatchPolicy::default(),
            idle_freshness_rekey: false,
            rekey_interval: Duration::from_secs(30),
            ticket_validity: Duration::from_secs(24 * 3600),
            timestamp_window: Duration::from_secs(30),
            heartbeat_interval: Duration::from_millis(500),
            failover_threshold: 3,
        }
    }
}

impl MykilConfig {
    /// A configuration sized for fast tests: small RSA keys, short
    /// timers.
    pub fn test() -> Self {
        MykilConfig {
            rsa_bits: 512,
            t_idle: Duration::from_millis(100),
            t_active: Duration::from_millis(400),
            rekey_interval: Duration::from_secs(2),
            ticket_validity: Duration::from_secs(3600),
            heartbeat_interval: Duration::from_millis(100),
            ..MykilConfig::default()
        }
    }

    /// The silence threshold after which a member considers its AC
    /// unreachable (`disconnect_multiplier · t_idle`).
    pub fn member_disconnect_after(&self) -> Duration {
        self.t_idle.saturating_mul(self.disconnect_multiplier as u64)
    }

    /// The silence threshold after which an AC evicts a member
    /// (`disconnect_multiplier · t_active`).
    pub fn ac_evict_after(&self) -> Duration {
        self.t_active
            .saturating_mul(self.disconnect_multiplier as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = MykilConfig::default();
        assert_eq!(c.rsa_bits, 2048);
        assert_eq!(c.disconnect_multiplier, 5);
        assert_eq!(c.tree.arity(), 4);
        assert!(c.t_active > c.t_idle, "paper: T_active >> T_idle");
    }

    #[test]
    fn disconnect_thresholds() {
        let c = MykilConfig::test();
        assert_eq!(
            c.member_disconnect_after(),
            c.t_idle.saturating_mul(5)
        );
        assert_eq!(c.ac_evict_after(), c.t_active.saturating_mul(5));
        assert!(c.member_disconnect_after() < c.ac_evict_after());
    }

    #[test]
    fn policies_default_to_paper_recommendations() {
        assert_eq!(RejoinPolicy::default(), RejoinPolicy::AdmitWithDeviceCheck);
        assert_eq!(BatchPolicy::default(), BatchPolicy::OnDataOrTimer);
    }
}
