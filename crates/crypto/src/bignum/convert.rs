//! Conversions between [`BigUint`] and primitive integers / byte strings.

use super::BigUint;

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_limbs(vec![v as u32, (v >> 32) as u32])
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![
            v as u32,
            (v >> 32) as u32,
            (v >> 64) as u32,
            (v >> 96) as u32,
        ])
    }
}

impl BigUint {
    /// Parses a big-endian byte string (leading zero bytes allowed).
    ///
    /// This is the format RSA uses on the wire: the empty slice parses
    /// as zero.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut chunk_iter = bytes.rchunks(4);
        for chunk in &mut chunk_iter {
            let mut limb = 0u32;
            for &b in chunk {
                limb = (limb << 8) | b as u32;
            }
            limbs.push(limb);
        }
        BigUint::from_limbs(limbs)
    }

    /// Serializes to minimal-length big-endian bytes (zero becomes `[]`).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`](crate::CryptoError) when
    /// the value needs more than `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Result<Vec<u8>, crate::CryptoError> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return Err(crate::CryptoError::InvalidParameter(
                "value too large for requested width",
            ));
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(BigUint::from(0_u32).to_u64(), Some(0));
        assert_eq!(BigUint::from(u32::MAX).to_u64(), Some(u32::MAX as u64));
        assert_eq!(BigUint::from(u64::MAX).to_u64(), Some(u64::MAX));
        let big = BigUint::from(u128::MAX);
        assert_eq!(big.bit_len(), 128);
    }

    #[test]
    fn bytes_be_round_trip() {
        let cases: [&[u8]; 5] = [
            b"",
            b"\x01",
            b"\xff\xff\xff\xff\xff",
            b"\x01\x00\x00\x00\x00\x00\x00\x00\x00",
            b"\x12\x34\x56\x78\x9a\xbc\xde\xf0\x11",
        ];
        for case in cases {
            let n = BigUint::from_bytes_be(case);
            let back = n.to_bytes_be();
            // Minimal encoding strips leading zeros.
            let minimal: Vec<u8> =
                case.iter().copied().skip_while(|&b| b == 0).collect();
            assert_eq!(back, minimal);
        }
    }

    #[test]
    fn leading_zeros_ignored_on_parse() {
        let a = BigUint::from_bytes_be(b"\x00\x00\x01\x02");
        let b = BigUint::from_bytes_be(b"\x01\x02");
        assert_eq!(a, b);
        assert_eq!(a.to_u64(), Some(0x0102));
    }

    #[test]
    fn padded_serialization() {
        let n = BigUint::from(0xabcd_u64);
        assert_eq!(n.to_bytes_be_padded(4).unwrap(), vec![0, 0, 0xab, 0xcd]);
        assert_eq!(n.to_bytes_be_padded(2).unwrap(), vec![0xab, 0xcd]);
        assert!(n.to_bytes_be_padded(1).is_err());
        assert_eq!(BigUint::zero().to_bytes_be_padded(3).unwrap(), vec![0; 3]);
    }

    #[test]
    fn multi_limb_byte_order() {
        // 0x0102030405060708090a big-endian.
        let n = BigUint::from_bytes_be(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(n.to_string(), "102030405060708090a");
    }
}
