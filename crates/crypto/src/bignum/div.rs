//! Division with remainder — Knuth TAOCP Vol. 2, Algorithm 4.3.1 D.

use super::BigUint;
use crate::CryptoError;

impl BigUint {
    /// Computes `(self / divisor, self % divisor)`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] when `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> Result<(BigUint, BigUint), CryptoError> {
        if divisor.is_zero() {
            return Err(CryptoError::InvalidParameter("division by zero"));
        }
        if self < divisor {
            return Ok((BigUint::zero(), self.clone()));
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u32(divisor.limbs[0]);
            return Ok((q, BigUint::from(r)));
        }
        Ok(self.div_rem_knuth(divisor))
    }

    /// Computes `self % modulus`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] when `modulus` is zero.
    pub fn rem(&self, modulus: &BigUint) -> Result<BigUint, CryptoError> {
        Ok(self.div_rem(modulus)?.1)
    }

    /// Single-limb short division.
    pub(crate) fn div_rem_u32(&self, d: u32) -> (BigUint, u32) {
        debug_assert!(d != 0);
        let d = d as u64;
        let mut q = vec![0u32; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | self.limbs[i] as u64;
            q[i] = (cur / d) as u32;
            rem = cur % d;
        }
        (BigUint::from_limbs(q), rem as u32)
    }

    /// Knuth Algorithm D for divisors of two or more limbs.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl_bits(shift);
        let v = divisor.shl_bits(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        // Working copy of the dividend with one extra high limb.
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let v_top = vn[n - 1] as u64;
        let v_next = vn[n - 2] as u64;

        let mut q = vec![0u32; m + 1];
        const BASE: u64 = 1 << 32;

        // D2-D7: main loop over quotient digits, most significant first.
        for j in (0..=m).rev() {
            // D3: estimate q_hat from the top two dividend limbs.
            let num = ((un[j + n] as u64) << 32) | un[j + n - 1] as u64;
            let mut q_hat = num / v_top;
            let mut r_hat = num % v_top;
            while q_hat >= BASE || q_hat * v_next > (r_hat << 32) + un[j + n - 2] as u64 {
                q_hat -= 1;
                r_hat += v_top;
                if r_hat >= BASE {
                    break;
                }
            }

            // D4: multiply and subtract q_hat * v from the window.
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = q_hat * vn[i] as u64 + carry;
                carry = p >> 32;
                let t = un[i + j] as i64 - (p as u32) as i64 - borrow;
                un[i + j] = t as u32;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i64 - carry as i64 - borrow;
            un[j + n] = t as u32;

            // D5/D6: if we subtracted one v too many, add it back.
            if t < 0 {
                q_hat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let s = un[i + j] as u64 + vn[i] as u64 + carry;
                    un[i + j] = s as u32;
                    carry = s >> 32;
                }
                un[j + n] = (un[j + n] as u64).wrapping_add(carry) as u32;
            }
            q[j] = q_hat as u32;
        }

        // D8: denormalize the remainder.
        let rem = BigUint::from_limbs(un[..n].to_vec()).shr_bits(shift);
        (BigUint::from_limbs(q), rem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: &BigUint, b: &BigUint) {
        let (q, r) = a.div_rem(b).unwrap();
        assert!(r < *b, "remainder not reduced: {r} >= {b}");
        assert_eq!(&(&q * b) + &r, *a, "q*b + r != a for a={a} b={b}");
    }

    #[test]
    fn division_by_zero_errors() {
        let a = BigUint::from(5_u64);
        assert!(a.div_rem(&BigUint::zero()).is_err());
        assert!(a.rem(&BigUint::zero()).is_err());
    }

    #[test]
    fn small_cases() {
        let a = BigUint::from(100_u64);
        let b = BigUint::from(7_u64);
        let (q, r) = a.div_rem(&b).unwrap();
        assert_eq!(q.to_u64(), Some(14));
        assert_eq!(r.to_u64(), Some(2));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let a = BigUint::from(3_u64);
        let b = BigUint::from(10_u64);
        let (q, r) = a.div_rem(&b).unwrap();
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn exact_division() {
        let b = BigUint::from_bytes_be(&[0xab; 9]);
        let a = &b * &BigUint::from(123_456_u64);
        let (q, r) = a.div_rem(&b).unwrap();
        assert_eq!(q.to_u64(), Some(123_456));
        assert!(r.is_zero());
    }

    #[test]
    fn single_limb_divisor_path() {
        let a = BigUint::from_bytes_be(&[0xfe, 0xdc, 0xba, 0x98, 0x76, 0x54, 0x32, 0x10, 0xff]);
        check(&a, &BigUint::from(0xdead_u32));
        check(&a, &BigUint::from(1_u32));
        check(&a, &BigUint::from(u32::MAX));
    }

    #[test]
    fn knuth_d6_add_back_case() {
        // Constructed to exercise the rare add-back branch: u = b^4/2,
        // v = b^2/2 + 1 with b = 2^32 triggers q_hat overestimation.
        let b32 = BigUint::one().shl_bits(32);
        let v = &b32.shl_bits(32).shr_bits(1) + &BigUint::one();
        let u = BigUint::one().shl_bits(127);
        check(&u, &v);
    }

    #[test]
    fn wide_operands() {
        let a = BigUint::from_bytes_be(&[0x77; 64]);
        let b = BigUint::from_bytes_be(&[0x13; 24]);
        check(&a, &b);
        check(&b, &a);
        check(&a, &a);
    }

    #[test]
    fn rem_matches_div_rem() {
        let a = BigUint::from_bytes_be(&[0x42; 17]);
        let m = BigUint::from_bytes_be(&[9, 9, 9, 9, 9]);
        assert_eq!(a.rem(&m).unwrap(), a.div_rem(&m).unwrap().1);
    }
}
