//! Tickets: the "ski pass" that makes Mykil mobility cheap.
//!
//! Section IV-B of the paper: a member receives a ticket at join time
//! (step 7). To move to another area it presents the ticket to the new
//! area's controller instead of re-running the full registration. The
//! ticket embeds join time, validity period, the member's identity, the
//! MAC address of its NIC, its public key, and the id of the last area
//! controller — all sealed under `K_shared`, a symmetric key shared by
//! every area controller, so no client can read or forge one ("all ski
//! resorts scan the same bar code").

use crate::error::ProtocolError;
use crate::identity::{AreaId, ClientId, DeviceId};
use crate::wire::{Reader, Writer};
use mykil_crypto::envelope;
use mykil_crypto::keys::SymmetricKey;
use mykil_net::Time;
use rand::RngCore;

/// The plaintext contents of a ticket (visible only to area
/// controllers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ticket {
    /// When the member first joined the group.
    pub join_time: Time,
    /// Expiry instant — after this the member must re-register.
    pub valid_until: Time,
    /// The member's group-wide identity.
    pub client: ClientId,
    /// The NIC address the ticket is bound to (Section IV-B option 2).
    pub device: DeviceId,
    /// The member's RSA public key (encoded).
    pub public_key: Vec<u8>,
    /// The area the member last belonged to.
    pub last_area: AreaId,
    /// Simulator address of that area's controller.
    pub last_ac: u32,
}

/// A ticket sealed under `K_shared`: opaque bytes to everyone but ACs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedTicket(pub Vec<u8>);

impl Ticket {
    /// Whether the ticket is still within its validity period.
    pub fn is_valid_at(&self, now: Time) -> bool {
        now <= self.valid_until
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.join_time.as_micros())
            .u64(self.valid_until.as_micros())
            .u64(self.client.0)
            .raw(self.device.as_bytes())
            .bytes(&self.public_key)
            .u32(self.last_area.0)
            .u32(self.last_ac);
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Ticket, ProtocolError> {
        let mut r = Reader::new(bytes);
        let ticket = Ticket {
            join_time: Time::from_micros(r.u64()?),
            valid_until: Time::from_micros(r.u64()?),
            client: ClientId(r.u64()?),
            device: DeviceId(r.array::<6>()?),
            public_key: r.bytes()?.to_vec(),
            last_area: AreaId(r.u32()?),
            last_ac: r.u32()?,
        };
        r.finish()?;
        Ok(ticket)
    }

    /// Seals the ticket under `K_shared` (encrypt-then-MAC), producing
    /// the opaque blob handed to the member.
    pub fn seal<R: RngCore + ?Sized>(&self, k_shared: &SymmetricKey, rng: &mut R) -> SealedTicket {
        SealedTicket(envelope::seal(k_shared, &self.to_bytes(), rng))
    }
}

impl SealedTicket {
    /// Opens and authenticates a sealed ticket. Only holders of
    /// `K_shared` (area controllers) can do this.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidTicket`] when the MAC fails (forged or
    /// corrupted) or the contents do not parse.
    pub fn open(&self, k_shared: &SymmetricKey) -> Result<Ticket, ProtocolError> {
        let plain = envelope::open(k_shared, &self.0)
            .map_err(|_| ProtocolError::InvalidTicket("seal verification failed"))?;
        Ticket::from_bytes(&plain).map_err(|_| ProtocolError::InvalidTicket("malformed contents"))
    }

    /// Size on the wire.
    pub fn wire_len(&self) -> usize {
        self.0.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mykil_crypto::drbg::Drbg;

    fn sample() -> Ticket {
        Ticket {
            join_time: Time::from_secs(100),
            valid_until: Time::from_secs(100 + 86_400),
            client: ClientId(42),
            device: DeviceId::from_seed(42),
            public_key: vec![7u8; 100],
            last_area: AreaId(3),
            last_ac: 17,
        }
    }

    fn k_shared() -> SymmetricKey {
        SymmetricKey::from_label("k-shared-test")
    }

    #[test]
    fn seal_open_round_trip() {
        let mut rng = Drbg::from_seed(1);
        let t = sample();
        let sealed = t.seal(&k_shared(), &mut rng);
        let opened = sealed.open(&k_shared()).unwrap();
        assert_eq!(opened, t);
    }

    #[test]
    fn wrong_shared_key_rejected() {
        let mut rng = Drbg::from_seed(2);
        let sealed = sample().seal(&k_shared(), &mut rng);
        let other = SymmetricKey::from_label("not-k-shared");
        assert!(matches!(
            sealed.open(&other),
            Err(ProtocolError::InvalidTicket(_))
        ));
    }

    #[test]
    fn tampering_anywhere_is_detected() {
        let mut rng = Drbg::from_seed(3);
        let sealed = sample().seal(&k_shared(), &mut rng);
        for i in (0..sealed.0.len()).step_by(7) {
            let mut bad = sealed.clone();
            bad.0[i] ^= 0x40;
            assert!(bad.open(&k_shared()).is_err(), "byte {i} flip accepted");
        }
    }

    #[test]
    fn clients_cannot_read_their_ticket() {
        // The sealed blob must not contain the plaintext fields.
        let mut rng = Drbg::from_seed(4);
        let t = sample();
        let sealed = t.seal(&k_shared(), &mut rng);
        let plain = t.to_bytes();
        // No 8-byte window of the plaintext appears in the sealed blob.
        for window in plain.windows(8) {
            assert!(
                !sealed.0.windows(8).any(|w| w == window),
                "plaintext leaked into sealed ticket"
            );
        }
    }

    #[test]
    fn validity_window() {
        let t = sample();
        assert!(!t.is_valid_at(Time::from_secs(100 + 86_400 + 1)));
        assert!(t.is_valid_at(Time::from_secs(100 + 86_400)));
        assert!(t.is_valid_at(Time::from_secs(500)));
    }

    #[test]
    fn sealing_is_randomized() {
        let mut rng = Drbg::from_seed(5);
        let a = sample().seal(&k_shared(), &mut rng);
        let b = sample().seal(&k_shared(), &mut rng);
        assert_ne!(a, b, "two seals of the same ticket must differ");
        assert_eq!(a.open(&k_shared()).unwrap(), b.open(&k_shared()).unwrap());
    }
}
