//! A hand-rolled Rust token scanner.
//!
//! This is not a full lexer for the Rust grammar — it is exactly enough
//! to lint reliably: it distinguishes identifiers, punctuation, and
//! literals; it never confuses comment or string contents for code; it
//! handles nested block comments, raw strings (`r#"…"#`), byte strings,
//! char literals, and lifetimes; and every token carries its 1-based
//! source line.
//!
//! Comments are not discarded: line comments are collected per line so
//! the rule engine can honor `// mykil-lint: allow(<rule>)` suppression
//! directives.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`match`, `unwrap`, `SymmetricKey`, …).
    Ident,
    /// A single punctuation character (`.`, `=`, `{`, …). Multi-char
    /// operators appear as consecutive tokens.
    Punct,
    /// String, raw-string, byte-string, char, or numeric literal. The
    /// text of string-like literals is the *delimiters only* (`"…"`),
    /// so rule patterns can never match inside quoted data.
    Literal,
    /// A lifetime such as `'a` (kept distinct so char-literal handling
    /// cannot eat code).
    Lifetime,
}

/// One lexeme with its location.
#[derive(Debug, Clone)]
pub struct Token {
    /// The kind of lexeme.
    pub kind: TokenKind,
    /// Token text; string-like literals are collapsed to `"…"`.
    pub text: String,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A line comment found during scanning (block comments are folded to
/// their first line).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` delimiters, trimmed.
    pub text: String,
    /// Whether anything other than whitespace preceded the comment on
    /// its line (directive comments on their own line apply to the
    /// *next* line instead).
    pub has_code_before: bool,
}

/// Result of scanning one source file.
#[derive(Debug, Default)]
pub struct ScannedFile {
    /// All code tokens in order.
    pub tokens: Vec<Token>,
    /// All comments in order.
    pub comments: Vec<Comment>,
}

/// Scans Rust source text into tokens and comments.
pub fn scan(source: &str) -> ScannedFile {
    let bytes = source.as_bytes();
    let mut out = ScannedFile::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_had_code = false;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                line_had_code = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: source[start..end].trim().to_string(),
                    has_code_before: line_had_code,
                });
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let comment_line = line;
                let had_code = line_had_code;
                let start = i + 2;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        line_had_code = false;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: comment_line,
                    text: source[start..end].trim().to_string(),
                    has_code_before: had_code,
                });
            }
            '"' => {
                let consumed = scan_string(bytes, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: "\"…\"".to_string(),
                    line,
                });
                line_had_code = true;
                i = consumed;
            }
            'r' | 'b' if starts_string_prefix(bytes, i) => {
                let tok_line = line;
                let consumed = scan_prefixed_string(bytes, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: "\"…\"".to_string(),
                    line: tok_line,
                });
                line_had_code = true;
                i = consumed;
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is `'` followed by
                // an identifier NOT terminated by a closing quote.
                if is_lifetime(bytes, i) {
                    let mut end = i + 1;
                    while end < bytes.len() && is_ident_continue(bytes[end]) {
                        end += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[i..end].to_string(),
                        line,
                    });
                    line_had_code = true;
                    i = end;
                } else {
                    let consumed = scan_char_literal(bytes, i);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: "'…'".to_string(),
                        line,
                    });
                    line_had_code = true;
                    i = consumed;
                }
            }
            c if c.is_ascii_digit() => {
                let mut end = i + 1;
                // Good enough for linting: digits, `_`, type suffixes,
                // hex/oct/bin bodies, and float dots (a dot followed by a
                // digit, so `0..24` stays two punct tokens).
                while end < bytes.len()
                    && (is_ident_continue(bytes[end])
                        || (bytes[end] == b'.'
                            && bytes.get(end + 1).is_some_and(u8::is_ascii_digit)
                            && bytes.get(end.wrapping_sub(1)) != Some(&b'.')))
                {
                    end += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[i..end].to_string(),
                    line,
                });
                line_had_code = true;
                i = end;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut end = i + 1;
                while end < bytes.len() && is_ident_continue(bytes[end]) {
                    end += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[i..end].to_string(),
                    line,
                });
                line_had_code = true;
                i = end;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                });
                line_had_code = true;
                i += c.len_utf8();
            }
        }
    }
    out
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || (b as char).is_ascii_alphanumeric()
}

/// Whether the `r`/`b` at `i` starts a raw/byte string or char prefix.
fn starts_string_prefix(bytes: &[u8], i: usize) -> bool {
    // r", r#, b", b', br", br#, rb is not valid Rust.
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Consumes a plain `"…"` string starting at `i`; returns the index
/// after the closing quote and updates `line` for embedded newlines.
fn scan_string(bytes: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Consumes `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#` forms.
fn scan_prefixed_string(bytes: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    let mut raw = false;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
        raw |= bytes[j] == b'r';
        j += 1;
    }
    if !raw {
        return match bytes.get(j) {
            Some(b'"') => scan_string(bytes, j, line),
            Some(b'\'') => scan_char_literal(bytes, j),
            _ => j + 1,
        };
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return j;
    }
    j += 1;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    j
}

/// Consumes a char literal `'x'`, `'\n'`, `'\\'`, `'\u{…}'`.
fn scan_char_literal(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// `'` at `i` starts a lifetime (not a char literal) when an identifier
/// follows and the char after the identifier is not a closing `'`.
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let Some(&first) = bytes.get(i + 1) else {
        return false;
    };
    if !(first == b'_' || (first as char).is_ascii_alphabetic()) {
        return false;
    }
    let mut j = i + 2;
    while j < bytes.len() && is_ident_continue(bytes[j]) {
        j += 1;
    }
    bytes.get(j) != Some(&b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_invisible() {
        let src = r##"
            // this unwrap() is a comment
            /* and this expect() too, /* nested */ still comment */
            let s = "calling unwrap() in a string";
            let r = r#"raw unwrap() string"#;
            let b = b"byte unwrap()";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let scanned = scan(src);
        let lifetimes: Vec<_> = scanned
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(scanned
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'…'"));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = r"let q = '\''; let b = '\\'; after();";
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a();\nb();\n\nc();";
        let scanned = scan(src);
        let line_of = |name: &str| {
            scanned
                .tokens
                .iter()
                .find(|t| t.is_ident(name))
                .unwrap()
                .line
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 2);
        assert_eq!(line_of("c"), 4);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let src = "let s = \"one\ntwo\nthree\";\nafter();";
        let scanned = scan(src);
        let after = scanned.tokens.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn comments_record_position_and_code_presence() {
        let src = "let x = 1; // trailing\n// standalone\nlet y = 2;";
        let scanned = scan(src);
        assert_eq!(scanned.comments.len(), 2);
        assert!(scanned.comments[0].has_code_before);
        assert_eq!(scanned.comments[0].text, "trailing");
        assert!(!scanned.comments[1].has_code_before);
        assert_eq!(scanned.comments[1].line, 2);
    }

    #[test]
    fn range_expressions_are_not_floats() {
        let src = "let r = 0..24;";
        let scanned = scan(src);
        let texts: Vec<_> = scanned.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"24"));
        assert_eq!(texts.iter().filter(|t| **t == ".").count(), 2);
    }
}
