//! Storage requirements (Section V-A of the paper).
//!
//! Per-member and per-controller key-material footprints for the three
//! protocols. The paper's headline numbers (binary-tree arithmetic,
//! 100k members, 20 areas): members need 32 B (Iolus), 272 B (LKH),
//! 176 B (Mykil) of symmetric keys; controllers need ~80 KB (Iolus),
//! ~4 MB (LKH), ~132 KB (Mykil).

use crate::Params;

/// Storage breakdown in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageCost {
    /// Symmetric key bytes.
    pub symmetric: u64,
    /// Public-key bytes (own pair plus peers').
    pub public: u64,
}

impl StorageCost {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.symmetric + self.public
    }
}

/// Per-member storage for Iolus: an area key and a pairwise key with the
/// subgroup controller, plus public keys for registration.
pub fn iolus_member(p: &Params) -> StorageCost {
    StorageCost {
        symmetric: 2 * p.key_len,
        // Own pair (2 keys) + registration server + subgroup controller.
        public: 4 * p.rsa_len,
    }
}

/// Per-member storage for LKH: the full path of the global tree
/// (the paper counts `height` keys, group key included).
pub fn lkh_member(p: &Params) -> StorageCost {
    StorageCost {
        symmetric: p.tree_height(p.members) * p.key_len,
        public: 4 * p.rsa_len,
    }
}

/// Per-member storage for Mykil: the path of the *area* tree plus the
/// public keys of the registration server, the member's own pair, its
/// area controller, and (optionally) other ACs cached for fast rejoin.
pub fn mykil_member(p: &Params) -> StorageCost {
    mykil_member_with_cached_acs(p, 0)
}

/// Mykil member storage when `cached_acs` other area controllers' public
/// keys are kept for the rejoin protocol (Section V-A discusses 10,
/// costing ~2.5 KB extra).
pub fn mykil_member_with_cached_acs(p: &Params, cached_acs: u64) -> StorageCost {
    StorageCost {
        symmetric: p.tree_height(p.area_size()) * p.key_len,
        public: (4 + cached_acs) * p.rsa_len,
    }
}

/// Iolus subgroup-controller storage: a pairwise key per member plus the
/// subgroup key.
pub fn iolus_controller(p: &Params) -> StorageCost {
    StorageCost {
        symmetric: (p.area_size() + 1) * p.key_len,
        public: 4 * p.rsa_len,
    }
}

/// LKH key-server storage: every node of the global tree
/// (≈ `arity/(arity-1) · n` keys; 2n for binary — the paper's "2^18
/// auxiliary keys ≈ 4 MB").
pub fn lkh_controller(p: &Params) -> StorageCost {
    let tree_nodes = p.members * p.arity / (p.arity - 1).max(1);
    StorageCost {
        symmetric: tree_nodes * p.key_len,
        public: 4 * p.rsa_len,
    }
}

/// Mykil area-controller storage: its area's whole tree, plus the public
/// keys of every other AC and the registration server (needed by the
/// rejoin and parent-switch protocols), plus `K_shared` for tickets.
pub fn mykil_controller(p: &Params) -> StorageCost {
    let tree_nodes = p.area_size() * p.arity / (p.arity - 1).max(1);
    StorageCost {
        symmetric: (tree_nodes + 1) * p.key_len,
        public: (p.areas + 1 + 2) * p.rsa_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params::paper()
    }

    #[test]
    fn member_symmetric_matches_paper_magnitudes() {
        // Paper: 32 B Iolus, 272 B LKH, 176 B Mykil (its roundings give
        // 11 keys; our ceil(log2 5000)=13 gives 208 B — same magnitude
        // and ordering).
        assert_eq!(iolus_member(&p()).symmetric, 32);
        assert_eq!(lkh_member(&p()).symmetric, 272);
        assert_eq!(mykil_member(&p()).symmetric, 208);
    }

    #[test]
    fn member_ordering_iolus_lt_mykil_lt_lkh() {
        let i = iolus_member(&p()).symmetric;
        let m = mykil_member(&p()).symmetric;
        let l = lkh_member(&p()).symmetric;
        assert!(i < m && m < l, "{i} {m} {l}");
    }

    #[test]
    fn controller_ordering_and_magnitudes() {
        let i = iolus_controller(&p());
        let l = lkh_controller(&p());
        let m = mykil_controller(&p());
        // Paper: ~80 KB, ~4 MB (3.2 MB with exact 2n), ~132 KB.
        assert_eq!(i.symmetric, 5_001 * 16); // 80_016
        assert_eq!(l.symmetric, 200_000 * 16); // 3.2 MB
        assert_eq!(m.symmetric, 10_001 * 16); // 160 KB
        assert!(i.total() < m.total());
        assert!(m.total() < l.total());
    }

    #[test]
    fn cached_acs_add_rejoin_capacity() {
        let base = mykil_member(&p()).public;
        let cached = mykil_member_with_cached_acs(&p(), 10).public;
        // Paper: 10 extra ACs ≈ 2.5 KB at 2048-bit keys.
        assert_eq!(cached - base, 10 * 256);
    }

    #[test]
    fn controller_public_scales_with_areas() {
        let few = mykil_controller(&p().with_areas(5)).public;
        let many = mykil_controller(&p().with_areas(40)).public;
        assert!(many > few);
    }

    #[test]
    fn quad_trees_shrink_member_state() {
        let quad = Params { arity: 4, ..p() };
        assert!(mykil_member(&quad).symmetric < mykil_member(&p()).symmetric);
        assert!(lkh_member(&quad).symmetric < lkh_member(&p()).symmetric);
    }
}
