//! Identities used across the protocol.

use std::fmt;

/// A client's group-wide identity (the paper's `K_id`), assigned by the
/// registration server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The hardware identity embedded in tickets — the paper uses "the MAC
/// address of the NIC" to bind a ticket to a device (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub [u8; 6]);

impl DeviceId {
    /// Derives a deterministic device id from an integer (test/sim
    /// convenience — think "the MAC of simulated NIC #n").
    pub fn from_seed(n: u64) -> DeviceId {
        let b = n.to_be_bytes();
        DeviceId([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// The raw six bytes.
    pub fn as_bytes(&self) -> &[u8; 6] {
        &self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// Identity of a Mykil area (one subgroup with its own controller and
/// key tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AreaId(pub u32);

impl fmt::Display for AreaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "area{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_id_deterministic_and_distinct() {
        assert_eq!(DeviceId::from_seed(5), DeviceId::from_seed(5));
        assert_ne!(DeviceId::from_seed(5), DeviceId::from_seed(6));
        // Locally-administered bit set, like a virtual NIC.
        assert_eq!(DeviceId::from_seed(1).as_bytes()[0], 0x02);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ClientId(3).to_string(), "c3");
        assert_eq!(AreaId(2).to_string(), "area2");
        assert_eq!(
            DeviceId([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }
}
