//! Section V-D: join/rejoin protocol latency.
//!
//! The paper's numbers (0.45 s join, 0.4 s rejoin, 0.28 s without
//! steps 4–5) are *virtual-time* results of the deterministic
//! simulation with the Pentium-III cost model — printed by the `report`
//! binary. This criterion bench measures the *wall-clock* cost of
//! executing one full join handshake simulation, which tracks the real
//! cryptographic work the handshake performs.

use criterion::{criterion_group, criterion_main, Criterion};
use mykil::group::GroupBuilder;
use mykil::member::Member;
use mykil_net::Duration;

fn bench_join_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("vd_handshakes");
    g.sample_size(10);
    g.bench_function("join_protocol_full_sim", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut group = GroupBuilder::new(seed).areas(1).build();
            let m = group.register_member_manual(1);
            group
                .sim
                .invoke(m, |mm: &mut Member, ctx| mm.start_join(ctx));
            group.run_for(Duration::from_secs(10));
            assert!(group.is_member(m));
            std::hint::black_box(group.member(m).timings)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_join_simulation);
criterion_main!(benches);
