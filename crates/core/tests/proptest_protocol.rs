//! Property-based testing of the full protocol: random churn schedules
//! (joins, voluntary leaves, moves, data, transient partitions) must
//! always converge to a consistent group — every active member holds
//! its area's current key and can decrypt fresh data.
//!
//! Case counts are small because every member carries a real RSA key
//! pair; the value is in the schedule diversity, not the case count.

use mykil::group::{GroupBuilder, GroupHandle};
use mykil::member::Member;
use mykil_net::{Duration, NodeId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Join,
    VoluntaryLeave(u8),
    Move(u8),
    SendData(u8),
    TransientPartition(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Join),
        1 => (0u8..255).prop_map(Op::VoluntaryLeave),
        1 => (0u8..255).prop_map(Op::Move),
        2 => (0u8..255).prop_map(Op::SendData),
        1 => (0u8..255).prop_map(Op::TransientPartition),
    ]
}

fn pick(members: &[NodeId], n: u8) -> Option<NodeId> {
    if members.is_empty() {
        None
    } else {
        Some(members[n as usize % members.len()])
    }
}

fn active_members(g: &GroupHandle) -> Vec<NodeId> {
    g.members
        .iter()
        .copied()
        .filter(|&m| g.is_member(m))
        .collect()
}

fn run_schedule(seed: u64, ops: Vec<Op>) {
    let mut g = GroupBuilder::new(seed).areas(2).build();
    let mut device = 0u64;
    // Start with two members so early data ops have receivers.
    for _ in 0..2 {
        device += 1;
        g.register_member(device);
    }
    g.settle();

    for op in ops {
        match op {
            Op::Join => {
                device += 1;
                g.register_member(device);
                g.run_for(Duration::from_secs(1));
            }
            Op::VoluntaryLeave(n) => {
                if let Some(m) = pick(&active_members(&g), n) {
                    g.sim.invoke(m, |mm: &mut Member, ctx| mm.leave(ctx));
                    g.run_for(Duration::from_secs(1));
                }
            }
            Op::Move(n) => {
                if let Some(m) = pick(&active_members(&g), n) {
                    let home = g.member(m).area().unwrap().0 as usize;
                    // Model roaming: drop the home link, wait out the
                    // silence threshold, rejoin the other area.
                    let home_ac = g.primaries[home];
                    g.sim.cut_link(m, home_ac);
                    g.sim.cut_link(home_ac, m);
                    g.run_for(Duration::from_millis(700));
                    g.move_member(m, 1 - home);
                    g.sim.restore_link(m, home_ac);
                    g.sim.restore_link(home_ac, m);
                    g.run_for(Duration::from_secs(1));
                }
            }
            Op::SendData(n) => {
                if let Some(m) = pick(&active_members(&g), n) {
                    g.send_data(m, b"prop-data");
                    g.run_for(Duration::from_millis(700));
                }
            }
            Op::TransientPartition(n) => {
                if let Some(m) = pick(&active_members(&g), n) {
                    // Shorter than the 500 ms detection threshold.
                    g.sim.partition(m, 3);
                    g.run_for(Duration::from_millis(250));
                    g.sim.heal_partitions();
                    g.run_for(Duration::from_millis(500));
                }
            }
        }
    }

    // Let everything settle, then check convergence.
    g.run_for(Duration::from_secs(6));

    let actives = active_members(&g);
    for &m in &actives {
        let area = g.member(m).area().expect("active member has an area");
        let ac_key = g.ac(area.0 as usize).area_key();
        assert_eq!(
            g.member(m).current_area_key(),
            Some(ac_key),
            "member diverged from its area key after the schedule"
        );
    }

    // Fresh data reaches every active member.
    if let Some(&sender) = actives.first() {
        let before: Vec<usize> = actives.iter().map(|&m| g.received_data(m).len()).collect();
        g.send_data(sender, b"final-probe");
        g.run_for(Duration::from_secs(2));
        for (&m, &seen) in actives.iter().zip(&before) {
            assert!(
                g.received_data(m).len() > seen,
                "active member missed the final probe"
            );
        }
    }
}

/// Regression: the shrunk failure case recorded in
/// `proptest_protocol.proptest-regressions` (`seed = 0, ops =
/// [Move(0)]`) — a single roam with the minimal two-member group used
/// to leave the mover without the destination area's key. Folded into
/// a named deterministic test so the case always runs, regardless of
/// the property-testing engine's seed-persistence behavior.
#[test]
fn regression_single_move_with_minimal_group() {
    run_schedule(0, vec![Op::Move(0)]);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        max_shrink_iters: 20,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_churn_converges(
        seed in 0u64..1_000,
        ops in proptest::collection::vec(op_strategy(), 1..7),
    ) {
        run_schedule(seed, ops);
    }
}
