//! The area controller — Mykil's workhorse node.
//!
//! An area controller (AC) owns one area: it manages the area's
//! auxiliary-key tree, admits members (join step 7 and the rejoin
//! protocol), batches and multicasts key updates, forwards multicast
//! data up and down the area hierarchy, detects and evicts dead
//! members, re-parents itself when its parent area fails, and
//! synchronizes a backup replica (Sections III and IV of the paper).
//!
//! The implementation is split by concern:
//!
//! - `join` — handling join steps 4 and 6, admission, welcomes
//! - `rejoin` — the six-step rejoin protocol (both AC roles)
//! - `rekey_flow` — join-update buffering, leave batching, flushes
//! - `data` — data-plane forwarding (Figure 2)
//! - `liveness` — alive messages, eviction, parent failover
//! - `replication` — primary-backup state sync and takeover

mod data;
mod join;
mod liveness;
mod persist;
mod rejoin;
mod rekey_flow;
mod replication;

use crate::config::{BatchPolicy, MykilConfig};
use crate::crypto_cost::CryptoCost;
use crate::directory::AcDirectory;
use crate::identity::{AreaId, ClientId, DeviceId};
use crate::msg::{Msg, RejoinDenyReason};
use crate::rekey::KeyState;
use mykil_crypto::keys::SymmetricKey;
use mykil_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use mykil_net::{Context, GroupId, MsgToken, Node, NodeId, SecretBytes, Time};
use mykil_tree::{AreaTree, MemberId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

pub(crate) const TIMER_IDLE_ALIVE: u64 = 1;
pub(crate) const TIMER_SWEEP: u64 = 2;
pub(crate) const TIMER_REKEY: u64 = 3;
pub(crate) const TIMER_HEARTBEAT: u64 = 4;
pub(crate) const TIMER_BACKUP_WATCH: u64 = 5;
pub(crate) const TIMER_PARENT_CHECK: u64 = 6;

/// Tree member ids for ACs enrolled in parent areas live above this
/// base so they can never collide with client ids.
pub const AC_MEMBER_BASE: u64 = 1 << 48;

/// Whether this node currently runs the area or stands by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Active controller.
    Primary,
    /// Replica synchronized from the given primary (Section IV-C).
    Backup {
        /// The primary controller's address.
        primary: NodeId,
    },
}

/// A member as the AC sees it.
#[derive(Debug, Clone)]
pub(crate) struct MemberRecord {
    pub node: NodeId,
    pub pubkey: RsaPublicKey,
    pub device: Option<DeviceId>,
    pub valid_until: Time,
    pub last_heard: Time,
}

/// A client admitted by the RS (join step 4) awaiting its step 6.
#[derive(Debug)]
pub(crate) struct PendingAdmission {
    pub client: ClientId,
    pub pubkey: RsaPublicKey,
    pub valid_until: Time,
}

/// Rejoin handshake state at the new AC.
#[derive(Debug)]
pub(crate) struct PendingRejoin {
    pub client: ClientId,
    pub pubkey: RsaPublicKey,
    pub device: DeviceId,
    pub ticket_device: DeviceId,
    pub valid_until: Time,
    pub nonce_bc: u64,
    pub stage: RejoinStage,
    pub deadline: Time,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RejoinStage {
    AwaitStep3,
    AwaitPrevAc,
}

/// Link to the parent area (the AC is a member there).
#[derive(Debug, Clone)]
pub struct ParentLink {
    /// The parent controller's address.
    pub node: NodeId,
    /// The parent's area.
    pub area: AreaId,
    /// The parent area's multicast group.
    pub group: GroupId,
}

/// Static deployment configuration for one controller.
#[derive(Debug, Clone)]
pub struct AcDeployment {
    /// The area this controller manages.
    pub area: AreaId,
    /// The area's multicast group.
    pub group: GroupId,
    /// Initial parent link, if not the root area.
    pub parent: Option<ParentLink>,
    /// Backup replica address, if replicated.
    pub backup: Option<NodeId>,
    /// Backup replica public key (encoded), if replicated.
    pub backup_pubkey: Vec<u8>,
    /// Primary/backup role.
    pub role: Role,
    /// Registration server address (takeover notifications).
    pub rs_node: NodeId,
    /// Directory of all (primary) ACs — the paper assumes controllers
    /// know one another's public keys.
    pub directory: AcDirectory,
    /// Directory of backup controllers (area → backup node + key), used
    /// to validate takeover announcements from neighbors.
    pub backups: AcDirectory,
    /// Preferred alternative parents for failover, in order.
    pub preferred_parents: Vec<ParentLink>,
}

/// Operation counters exposed for tests and reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct AcStats {
    /// Members admitted through the join protocol.
    pub joins_admitted: u64,
    /// Members admitted through the rejoin protocol.
    pub rejoins_admitted: u64,
    /// Rejoins denied (any reason).
    pub rejoins_denied: u64,
    /// Members evicted by the failure detector or expiry.
    pub evictions: u64,
    /// Key-update multicasts sent.
    pub rekeys: u64,
    /// Data packets forwarded.
    pub data_forwarded: u64,
    /// Takeovers performed (backup role only).
    pub takeovers: u64,
    /// Demotions accepted after a split-brain heal (primary role only).
    pub demotions: u64,
    /// Parent switches performed.
    pub parent_switches: u64,
}

/// The area controller node (primary or backup).
pub struct AreaController {
    pub(crate) cfg: MykilConfig,
    pub(crate) cost: CryptoCost,
    pub(crate) keypair: RsaKeyPair,
    pub(crate) rs_pub: RsaPublicKey,
    pub(crate) k_shared: SymmetricKey,
    pub(crate) deploy: AcDeployment,
    /// The deployment record as handed to [`AreaController::new`] —
    /// `deploy` mutates at runtime (backup address after a promotion);
    /// this copy models the on-disk configuration a crashed node reads
    /// back at boot (see `persist::wipe_volatile`).
    pub(crate) deploy_pristine: AcDeployment,
    /// Seed the deployment-time key tree was drawn from, kept so a
    /// crash-wipe can rebuild the same pristine tree before recovery
    /// replays storage on top of it.
    pub(crate) tree_seed: u64,
    pub(crate) role: Role,

    pub(crate) tree: AreaTree,
    pub(crate) members: BTreeMap<ClientId, MemberRecord>,
    pub(crate) pending_admissions: BTreeMap<u64, PendingAdmission>,
    pub(crate) pending_rejoins: BTreeMap<NodeId, PendingRejoin>,
    /// Per pending rejoin: the previous AC (node, area) from the ticket.
    pub(crate) pending_rejoin_prev_ac: BTreeMap<NodeId, (u32, AreaId)>,

    // Batching state (Section III-E).
    pub(crate) epoch: u64,
    pub(crate) update_needed: bool,
    /// node → its key value before the first buffered join update.
    pub(crate) buffered_join_updates: BTreeMap<u32, SymmetricKey>,
    /// Members "whose path may have changed" — the paper refreshes them
    /// by unicast at flush time. Value = the rekey epoch at admission;
    /// a newcomer is refreshed at the first flush *after* its admission
    /// flush, covering the window before it subscribed to the area
    /// multicast.
    pub(crate) recorded_members: BTreeMap<ClientId, u64>,
    pub(crate) pending_leaves: Vec<ClientId>,

    // Hierarchy state.
    pub(crate) parent: Option<ParentLink>,
    pub(crate) parent_keys: KeyState,
    /// Last parent-area rekey epoch applied (ordering guard).
    pub(crate) parent_epoch: u64,
    pub(crate) last_heard_parent: Time,
    pub(crate) child_acs: BTreeSet<NodeId>,
    /// Tree member id → node address for enrolled child controllers.
    pub(crate) child_ac_members: BTreeMap<u64, NodeId>,
    /// In-flight parent switch/enrollment: the only node whose
    /// `AreaJoinAck` will be accepted, plus the reliable-send token of
    /// the outstanding request (replay/impostor hardening).
    pub(crate) pending_parent_join: Option<(NodeId, MsgToken)>,
    /// Rotation cursor into `deploy.preferred_parents` so consecutive
    /// switch attempts try different candidates.
    pub(crate) parent_switch_cursor: usize,

    // Data plane.
    /// Recently superseded area keys (own tree), for unwrapping data
    /// sealed just before a rotation.
    pub(crate) prev_area_keys: VecDeque<SymmetricKey>,
    pub(crate) seen_data: BTreeSet<(u64, u64)>,
    pub(crate) seen_order: VecDeque<(u64, u64)>,
    pub(crate) last_area_mcast: Time,

    // Replication.
    pub(crate) repl_key: SymmetricKey,
    pub(crate) hb_seq: u64,
    pub(crate) last_heartbeat: Time,
    /// Latest decrypted state snapshot (backup role). Held zeroizing —
    /// the snapshot embeds the primary's full key tree.
    pub(crate) replica_state: Option<SecretBytes>,
    /// Monotonic snapshot sequence (primary role) so a retransmitted or
    /// reordered `StateSync` can never regress the backup.
    pub(crate) sync_seq: u64,
    /// Highest snapshot sequence applied (backup role).
    pub(crate) applied_sync_seq: u64,
    /// Reliable-send token of the outstanding `StateSync`, cancelled
    /// when a newer snapshot supersedes it.
    pub(crate) pending_sync: Option<MsgToken>,
    /// When the backup last acknowledged a heartbeat (primary role).
    pub(crate) last_backup_ack: Time,
    /// Set after `failover_threshold` unacknowledged heartbeats; stops
    /// `StateSync` traffic to the dead backup until it acks again.
    pub(crate) backup_presumed_dead: bool,
    /// Fencing epoch for split-brain reconciliation: bumped on every
    /// takeover, carried in heartbeats, and compared after a heal — the
    /// lower-epoch primary demotes itself (Section IV-C extension).
    pub(crate) takeover_epoch: u64,
    /// The counterpart's takeover epoch as last seen in heartbeat
    /// traffic (a backup tracks its primary; a primary its backup).
    pub(crate) peer_takeover_epoch: u64,
    /// After a takeover: the primary this node took over from, i.e. the
    /// only node whose stale heartbeats warrant a signed `Demote`.
    pub(crate) stale_peer: Option<NodeId>,
    /// Reliable-send token of the outstanding `Demote`, if any.
    pub(crate) pending_demote: Option<MsgToken>,

    /// Operation counters.
    pub stats: AcStats,
}

impl std::fmt::Debug for AreaController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AreaController")
            .field("area", &self.deploy.area)
            .field("role", &self.role)
            .field("members", &self.members.len())
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl AreaController {
    /// Creates a controller. The initial tree is empty; the group
    /// builder enrolls child controllers and seeds replication state.
    pub fn new(
        cfg: MykilConfig,
        cost: CryptoCost,
        keypair: RsaKeyPair,
        rs_pub: RsaPublicKey,
        k_shared: SymmetricKey,
        deploy: AcDeployment,
        tree_seed: u64,
    ) -> AreaController {
        let mut rng = mykil_crypto::drbg::Drbg::from_seed(tree_seed);
        let tree = AreaTree::new(cfg.tree, &mut rng);
        let repl_key = k_shared.derive(format!("repl-{}", deploy.area.0).as_bytes());
        let role = deploy.role;
        AreaController {
            cfg,
            cost,
            keypair,
            rs_pub,
            k_shared,
            role,
            tree,
            members: BTreeMap::new(),
            pending_admissions: BTreeMap::new(),
            pending_rejoins: BTreeMap::new(),
            pending_rejoin_prev_ac: BTreeMap::new(),
            epoch: 0,
            update_needed: false,
            buffered_join_updates: BTreeMap::new(),
            recorded_members: BTreeMap::new(),
            pending_leaves: Vec::new(),
            parent: deploy.parent.clone(),
            parent_keys: KeyState::new(),
            parent_epoch: 0,
            last_heard_parent: Time::ZERO,
            child_acs: BTreeSet::new(),
            child_ac_members: BTreeMap::new(),
            pending_parent_join: None,
            parent_switch_cursor: 0,
            prev_area_keys: VecDeque::new(),
            seen_data: BTreeSet::new(),
            seen_order: VecDeque::new(),
            last_area_mcast: Time::ZERO,
            repl_key,
            hb_seq: 0,
            last_heartbeat: Time::ZERO,
            replica_state: None,
            sync_seq: 0,
            applied_sync_seq: 0,
            pending_sync: None,
            last_backup_ack: Time::ZERO,
            backup_presumed_dead: false,
            takeover_epoch: 0,
            peer_takeover_epoch: 0,
            stale_peer: None,
            pending_demote: None,
            stats: AcStats::default(),
            deploy_pristine: deploy.clone(),
            tree_seed,
            deploy,
        }
    }

    // ---- accessors for harnesses and tests ----

    /// The area managed by this controller.
    pub fn area(&self) -> AreaId {
        self.deploy.area
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Number of members in the area (child ACs excluded).
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Whether a client is currently a member here.
    pub fn has_member(&self, client: ClientId) -> bool {
        self.members.contains_key(&client)
    }

    /// Ids of all current members (durability invariant checks).
    pub fn member_ids(&self) -> std::collections::BTreeSet<u64> {
        self.members.keys().map(|c| c.0).collect()
    }

    /// The controller's public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keypair.public()
    }

    /// The current area key (root of the auxiliary tree).
    pub fn area_key(&self) -> SymmetricKey {
        self.tree.area_key()
    }

    /// The auxiliary-key tree (inspection only).
    pub fn tree(&self) -> &AreaTree {
        &self.tree
    }

    /// Current rekey epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current takeover (fencing) epoch — bumped on every promotion.
    pub fn takeover_epoch(&self) -> u64 {
        self.takeover_epoch
    }

    /// Snapshot sequence this controller last shipped to its backup
    /// (primary role; replication monotonicity checks).
    pub fn sync_seq(&self) -> u64 {
        self.sync_seq
    }

    /// Snapshot sequence this controller last applied from its primary
    /// (backup role; replication monotonicity checks).
    pub fn applied_sync_seq(&self) -> u64 {
        self.applied_sync_seq
    }

    /// The current parent link, if any.
    pub fn parent(&self) -> Option<&ParentLink> {
        self.parent.as_ref()
    }

    /// This controller's current view of its parent area's key
    /// (diagnostics and tests).
    pub fn parent_area_key(&self) -> Option<SymmetricKey> {
        self.parent_keys.area_key()
    }

    /// Whether a key-update flush is pending (batching).
    pub fn update_pending(&self) -> bool {
        self.update_needed
    }

    /// Enrolls `child` as a member of this controller's area at
    /// deployment time (before the simulation starts). The runtime
    /// equivalent is the signed area-join exchange handled by
    /// `handle_area_join_req`.
    pub fn enroll_child_static<R: rand::RngCore + ?Sized>(
        &mut self,
        child: &mut AreaController,
        child_node: NodeId,
        rng: &mut R,
    ) {
        self.note_area_key();
        let member = MemberId(AC_MEMBER_BASE + child.deploy.area.0 as u64);
        // Deployment-time wiring, not a message handler: duplicate
        // enrollment is an operator configuration bug worth stopping on.
        // mykil-lint: allow(L001)
        let plan = self.tree.join(member, rng).expect("child not yet enrolled");
        self.child_ac_members.insert(member.0, child_node);
        // Deployment-time enrollment: hand the child its path directly.
        for u in &plan.unicasts {
            if u.member == member {
                child.parent_keys.install_tree_path(&u.keys);
            }
        }
        self.child_acs.insert(child_node);
    }

    /// Re-seeds this controller's view of its parent area's keys
    /// (deployment-time helper; see [`Self::enroll_child_static`]).
    pub fn seed_parent_keys(&mut self, path: &[(u32, SymmetricKey)]) {
        self.parent_keys.clear();
        self.parent_keys.install_path(path);
    }

    /// [`Self::seed_parent_keys`] straight from a tree plan's
    /// `(NodeIdx, key)` form.
    pub fn seed_parent_tree_keys(&mut self, path: &[(mykil_tree::NodeIdx, SymmetricKey)]) {
        self.parent_keys.clear();
        self.parent_keys.install_tree_path(path);
    }

    /// Records the current area key before a tree mutation rotates it.
    pub(crate) fn note_area_key(&mut self) {
        let current = self.tree.area_key();
        if self.prev_area_keys.front() != Some(&current) {
            self.prev_area_keys.push_front(current);
            self.prev_area_keys.truncate(crate::rekey::AREA_KEY_HISTORY);
        }
    }

    /// All area keys to try when unwrapping own-area data (current
    /// first).
    pub(crate) fn own_area_keys(&self) -> Vec<SymmetricKey> {
        let mut out = Vec::with_capacity(1 + self.prev_area_keys.len());
        out.push(self.tree.area_key());
        out.extend(self.prev_area_keys.iter().cloned());
        out
    }

    pub(crate) fn batch_now(&self) -> bool {
        self.cfg.batch_policy == BatchPolicy::Immediate
    }

    /// Looks up an AC's public key in the deployment directory
    /// (primaries first, then backups — a backup that took over signs
    /// with its own key).
    pub(crate) fn directory_pubkey(&self, node: NodeId) -> Option<RsaPublicKey> {
        let raw = node.index() as u32;
        self.deploy
            .directory
            .by_node(raw)
            .or_else(|| self.deploy.backups.by_node(raw))
            .and_then(|info| RsaPublicKey::from_bytes(&info.pubkey).ok())
    }

    fn is_backup(&self) -> bool {
        matches!(self.role, Role::Backup { .. })
    }
}

impl Node for AreaController {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.join_group(self.deploy.group);
        if let Some(p) = &self.parent {
            ctx.join_group(p.group);
        }
        // Baseline checkpoint: from t=0 a crash always finds durable
        // state to recover from, even before the first rekey flush.
        self.persist_checkpoint(ctx);
        self.last_heard_parent = ctx.now();
        self.last_heartbeat = ctx.now();
        self.last_backup_ack = ctx.now();
        match self.role {
            Role::Primary => {
                ctx.set_timer(self.cfg.t_idle, TIMER_IDLE_ALIVE);
                ctx.set_timer(self.cfg.t_active, TIMER_SWEEP);
                ctx.set_timer(self.cfg.rekey_interval, TIMER_REKEY);
                ctx.set_timer(self.cfg.t_idle, TIMER_PARENT_CHECK);
                if self.deploy.backup.is_some() {
                    ctx.set_timer(self.cfg.heartbeat_interval, TIMER_HEARTBEAT);
                }
            }
            Role::Backup { .. } => {
                ctx.set_timer(self.cfg.heartbeat_interval, TIMER_BACKUP_WATCH);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
        let Ok(msg) = Msg::from_bytes(bytes) else {
            return;
        };
        if let Some(p) = &self.parent {
            if from == p.node {
                self.last_heard_parent = ctx.now();
            }
        }
        if self.is_backup() {
            self.on_backup_message(ctx, from, msg);
            return;
        }
        match msg {
            Msg::Join4 { ct, sig } => self.handle_join4(ctx, &ct, &sig),
            Msg::Join6 { ct } => self.handle_join6(ctx, from, &ct),
            Msg::Rejoin1 { ct } => self.handle_rejoin1(ctx, from, &ct),
            Msg::Rejoin3 { ct } => self.handle_rejoin3(ctx, from, &ct),
            Msg::Rejoin4 { ct, sig } => self.handle_rejoin4(ctx, from, &ct, &sig),
            Msg::Rejoin5 { ct, sig } => self.handle_rejoin5(ctx, from, &ct, &sig),
            Msg::Data {
                origin,
                seq,
                wrapped_key,
                payload,
            } => self.handle_data(ctx, from, origin, seq, &wrapped_key, &payload),
            Msg::KeyUpdate {
                area,
                epoch,
                body,
                sig,
            } => self.handle_parent_key_update(ctx, from, area, epoch, &body, &sig),
            Msg::KeyUnicast { ct } => self.handle_parent_key_unicast(ctx, &ct),
            Msg::KeyRefreshRequest { client } => self.handle_key_refresh(ctx, from, client),
            Msg::LeaveRequest { ct } => self.handle_leave_request(ctx, from, &ct),
            Msg::MemberAlive { client } => {
                if let Some(rec) = self.members.get_mut(&client) {
                    if rec.node == from {
                        rec.last_heard = ctx.now();
                    }
                }
            }
            Msg::AcAlive { area, epoch } => {
                // A parent alive with a newer epoch means we missed a
                // parent-area key update.
                let is_parent = self
                    .parent
                    .as_ref()
                    .is_some_and(|p| p.node == from && p.area == area);
                if is_parent && epoch > self.parent_epoch {
                    self.parent_epoch = epoch;
                    self.request_parent_key_refresh(ctx);
                }
            }
            Msg::AreaJoinReq { ct, sig } => self.handle_area_join_req(ctx, from, &ct, &sig),
            Msg::AreaJoinAck { ct, sig } => self.handle_area_join_ack(ctx, from, &ct, &sig),
            Msg::HeartbeatAck { seq, takeover_epoch } => {
                self.handle_heartbeat_ack(ctx, from, seq, takeover_epoch)
            }
            // A primary receiving primary heartbeats: the sender also
            // believes it runs this area (split brain after a heal).
            Msg::Heartbeat { seq, takeover_epoch } => {
                self.handle_stale_primary_heartbeat(ctx, from, seq, takeover_epoch)
            }
            Msg::Demote { area, takeover_epoch, sig } => {
                self.handle_demote(ctx, from, area, takeover_epoch, &sig)
            }
            Msg::Takeover { area, sig, pubkey } => {
                self.handle_neighbor_takeover(ctx, from, area, &sig, &pubkey)
            }
            // The parent refused a key refresh because it no longer
            // counts us among its children (evicted behind a partition,
            // or lost from a takeover snapshot). Its alive beacons keep
            // the parent-silence detector quiet, so without this NACK
            // the subtree would stay key-partitioned forever; re-run the
            // signed area-join enrollment.
            Msg::RejoinDenied { reason: RejoinDenyReason::NotMember } => {
                if let Some(p) = self.parent.clone() {
                    if from == p.node && self.pending_parent_join.is_none() {
                        ctx.stats().bump("ac-reenrollments", 1);
                        self.request_parent_enrollment(ctx, &p);
                    }
                }
            }
            // Client-bound or RS-bound steps and replica traffic the
            // primary never consumes (listed explicitly so a new wire
            // message fails to compile until triaged here).
            Msg::Join1 { .. }
            | Msg::Join2 { .. }
            | Msg::Join3 { .. }
            | Msg::Join5 { .. }
            | Msg::Join7 { .. }
            | Msg::Rejoin2 { .. }
            | Msg::Rejoin6 { .. }
            | Msg::RejoinDenied { .. }
            | Msg::StateSync { .. } => {}
        }
    }

    fn on_reliable_acked(&mut self, ctx: &mut Context<'_>, _peer: NodeId, msg: MsgToken) {
        if self.pending_sync == Some(msg) {
            self.pending_sync = None;
        }
        if self.pending_demote == Some(msg) {
            self.pending_demote = None;
            self.handle_demote_acked(ctx);
        }
    }

    fn on_reliable_expired(
        &mut self,
        ctx: &mut Context<'_>,
        _to: NodeId,
        _kind: &'static str,
        msg: MsgToken,
    ) {
        if self.pending_sync == Some(msg) {
            // The backup never acknowledged the snapshot; heartbeat-ack
            // tracking decides whether it is presumed dead.
            self.pending_sync = None;
            ctx.stats().bump("ac-state-sync-expired", 1);
            return;
        }
        if self.pending_demote == Some(msg) {
            // The stale primary went unreachable again; the next of its
            // heartbeats to arrive restarts the fence.
            self.pending_demote = None;
            ctx.stats().bump("ac-demote-expired", 1);
            return;
        }
        if let Some((_, token)) = self.pending_parent_join {
            if token == msg {
                // The prospective parent is unreachable; rotate to the
                // next preferred candidate right away.
                self.pending_parent_join = None;
                ctx.stats().bump("ac-parent-join-expired", 1);
                if self.role == Role::Primary {
                    self.start_parent_switch(ctx);
                }
            }
        }
    }

    fn on_crashed_volatile_reset(&mut self) {
        self.wipe_volatile();
    }

    fn on_restarted(&mut self, ctx: &mut Context<'_>) {
        ctx.stats().bump("ac-restarts", 1);
        // The crash wiped all volatile state (`wipe_volatile`);
        // reconstruct from stable storage. Note the recovered role may
        // differ from the deployment role — a promoted backup recovers
        // as primary.
        let recovered = self.recover_from_storage(ctx);
        if recovered {
            ctx.stats().bump("ac-recoveries", 1);
        }
        self.last_heard_parent = ctx.now();
        self.last_heartbeat = ctx.now();
        self.last_backup_ack = ctx.now();
        ctx.join_group(self.deploy.group);
        match self.role {
            Role::Primary => {
                ctx.set_timer(self.cfg.t_idle, TIMER_IDLE_ALIVE);
                ctx.set_timer(self.cfg.t_active, TIMER_SWEEP);
                ctx.set_timer(self.cfg.rekey_interval, TIMER_REKEY);
                ctx.set_timer(self.cfg.t_idle, TIMER_PARENT_CHECK);
                if self.deploy.backup.is_some() {
                    ctx.set_timer(self.cfg.heartbeat_interval, TIMER_HEARTBEAT);
                }
                if recovered {
                    // Members hold pre-crash path keys; the replayed
                    // tree drew fresh randomness. Re-issue every path,
                    // compact the WAL, and push a snapshot to the
                    // backup.
                    self.post_recovery_resync(ctx);
                }
                // Re-enter the hierarchy rather than silently resuming
                // with possibly-stale keys: re-enrolling with the parent
                // re-issues this AC's parent-area path. If the backup
                // was promoted during the outage, its epoch fence
                // (`Demote`) will step this node down and resync it
                // through the StateSync path.
                if let Some(p) = self.parent.clone() {
                    ctx.join_group(p.group);
                    self.request_parent_enrollment(ctx, &p);
                }
            }
            Role::Backup { .. } => {
                ctx.set_timer(self.cfg.heartbeat_interval, TIMER_BACKUP_WATCH);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        match (self.role, tag) {
            (Role::Primary, TIMER_IDLE_ALIVE) => self.tick_idle_alive(ctx),
            (Role::Primary, TIMER_SWEEP) => self.tick_sweep(ctx),
            (Role::Primary, TIMER_REKEY) => self.tick_rekey(ctx),
            (Role::Primary, TIMER_PARENT_CHECK) => self.tick_parent_check(ctx),
            (Role::Primary, TIMER_HEARTBEAT) => self.tick_heartbeat(ctx),
            (Role::Backup { .. }, TIMER_BACKUP_WATCH) => self.tick_backup_watch(ctx),
            _ => {}
        }
    }
}
