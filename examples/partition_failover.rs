//! Fault tolerance: primary-backup failover of an area controller
//! (the paper's Section IV-C).
//!
//! An area controller is replicated; when its node crashes, the backup
//! misses heartbeats, restores the replicated state (auxiliary-key
//! tree, member table, hierarchy links), announces the takeover to the
//! area and the registration server, and service resumes.
//!
//! ```sh
//! cargo run --example partition_failover --release
//! ```

use mykil::area::Role;
use mykil::group::GroupBuilder;
use mykil_net::Duration;

fn main() {
    let mut group = GroupBuilder::new(13).areas(1).replicated(true).build();

    let alice = group.register_member(1);
    let bob = group.register_member(2);
    group.settle();
    println!(
        "area 0 running with {} members; backup role = {:?}",
        group.ac(0).member_count(),
        group.backup(0).role()
    );

    group.send_data(alice, b"before the crash");
    group.run_for(Duration::from_secs(1));
    assert!(group.received_data(bob).contains(&b"before the crash".to_vec()));

    // The primary's machine dies.
    println!("crashing the primary area controller...");
    group.crash_ac(0);
    group.run_for(Duration::from_secs(3));

    let backup = group.backup(0);
    println!(
        "backup role after missed heartbeats = {:?} (takeovers: {})",
        backup.role(),
        backup.stats.takeovers
    );
    assert_eq!(backup.role(), Role::Primary);
    println!(
        "replicated state restored: {} members, epoch {}",
        backup.member_count(),
        backup.epoch()
    );

    // Service resumes through the promoted backup: members learned the
    // new controller from its signed takeover announcement.
    group.send_data(alice, b"after the failover");
    group.run_for(Duration::from_secs(2));
    assert!(group
        .received_data(bob)
        .contains(&b"after the failover".to_vec()));
    println!("bob still receives data: failover transparent to the data plane");

    // New members keep joining: the registration server re-routed the
    // area's entry in its directory.
    let carol = group.register_member(3);
    group.settle();
    println!(
        "late joiner active through promoted backup: {}",
        group.is_member(carol)
    );
    assert!(group.is_member(carol));
}
