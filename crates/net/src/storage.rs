//! Simulated stable storage: a per-node write-ahead log plus dual
//! checkpoint slots, with deterministic crash-fault injection.
//!
//! Every simulated process owns one [`NodeStorage`], reachable from any
//! callback via [`Context::storage`](crate::Context::storage). The model
//! mirrors a real fsync-based design:
//!
//! - [`NodeStorage::wal_append`] stages a record in the device cache;
//!   [`NodeStorage::sync`] makes the cached tail durable (protocol code
//!   normally uses the combined [`NodeStorage::wal_commit`]).
//! - [`NodeStorage::checkpoint`] writes a full-state snapshot into the
//!   older of two slots (classic ping-pong), records the WAL position it
//!   covers, and truncates the log prefix no longer needed by either
//!   slot. Slot metadata (sequence, WAL position) is kept apart from the
//!   payload, so payload corruption never forges a valid newer slot.
//! - [`NodeStorage::load`] is the recovery read path: it returns the
//!   newest *valid* checkpoint and the durable WAL suffix past it,
//!   stopping at the first record whose checksum fails.
//!
//! Checksums are modeled, not computed: a record or slot carries a
//! validity flag that the fault injector clears, exactly as a real CRC
//! mismatch would read back. Three faults are injectable (see the
//! `torn` / `lost-tail` / `ckpt-corrupt` chaos verbs):
//!
//! - **Lost tail** (`arm_lying_sync(false)`): from arming until the next
//!   crash, `sync` lies — it reports success but leaves the tail in the
//!   cache, and the crash discards it (a lying-fsync power loss).
//! - **Torn write** (`arm_lying_sync(true)`): like lost-tail, except the
//!   first cached record survives the crash *partially* — present but
//!   checksum-invalid, so recovery must detect and discard it.
//! - **Checkpoint corruption** ([`NodeStorage::corrupt_latest_checkpoint`]):
//!   bit-rot in the newest slot's payload; recovery falls back to the
//!   other slot and a longer WAL replay.
//!
//! All buffers that may hold key material are wrapped in
//! [`SecretBytes`], which zeroizes on drop.

use mykil_crypto::ct;

/// A byte buffer that zeroizes its contents on drop. WAL records and
/// checkpoint payloads routinely contain wrapped keys and key-tree
/// snapshots; dropping them must not leave plaintext in freed memory
/// (same idiom as `mykil_crypto::keys::SymmetricKey`).
#[derive(Clone)]
pub struct SecretBytes(Vec<u8>);

impl SecretBytes {
    /// Wraps `bytes`, taking ownership.
    pub fn new(bytes: Vec<u8>) -> SecretBytes {
        SecretBytes(bytes)
    }

    /// Read access to the wrapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Length of the wrapped buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Drop for SecretBytes {
    fn drop(&mut self) {
        ct::zeroize(&mut self.0);
    }
}

/// Constant-time comparison: replica snapshots are compared in tests
/// and assertions, and a derived `PartialEq` would leak their contents
/// through timing.
impl PartialEq for SecretBytes {
    fn eq(&self, other: &SecretBytes) -> bool {
        ct::ct_eq(&self.0, &other.0)
    }
}

impl Eq for SecretBytes {}

impl std::fmt::Debug for SecretBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SecretBytes({} bytes)", self.0.len())
    }
}

/// One durable WAL record. `valid` models the stored checksum: a torn
/// write reads back with `valid == false` and recovery discards it
/// (and, by append-only construction, everything after it).
#[derive(Debug, Clone)]
struct WalRecord {
    bytes: SecretBytes,
    valid: bool,
}

/// One checkpoint slot. Metadata (`seq`, `wal_pos`) lives outside the
/// corruptible payload: bit-rot can invalidate a slot but never promote
/// it.
#[derive(Debug, Clone)]
struct CheckpointSlot {
    /// Monotone checkpoint sequence; recovery picks the valid slot with
    /// the highest value.
    seq: u64,
    /// Absolute WAL position this snapshot covers: recovery replays
    /// durable records from here on.
    wal_pos: u64,
    payload: SecretBytes,
    /// Models the payload checksum verifying on read-back.
    valid: bool,
}

/// What a recovering node reads back from stable storage.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// Newest valid checkpoint payload, with its sequence number.
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// Durable, checksum-valid WAL records past the checkpoint (all
    /// records when there is no checkpoint), oldest first.
    pub wal: Vec<Vec<u8>>,
}

/// The armed lying-sync failure mode (consumed by the next crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArmedFault {
    None,
    /// Crash discards the whole unsynced tail.
    LostTail,
    /// Crash persists the first cached record torn (checksum-invalid)
    /// and discards the rest.
    TornWrite,
}

/// Simulated stable storage for one node. See the [module docs](self).
#[derive(Debug)]
pub struct NodeStorage {
    /// Durable log records; index 0 is absolute position `wal_base`.
    wal: Vec<WalRecord>,
    /// Absolute position of `wal[0]` (the prefix below it has been
    /// truncated away by checkpointing).
    wal_base: u64,
    /// Appended but not yet durable (device cache).
    cached: Vec<SecretBytes>,
    /// Ping-pong checkpoint slots.
    slots: [Option<CheckpointSlot>; 2],
    /// A checkpoint written while a lying sync is armed parks here
    /// instead of reaching a slot; the crash discards it, an honest
    /// [`Self::heal`] installs it.
    pending_checkpoint: Option<CheckpointSlot>,
    next_ckpt_seq: u64,
    armed: ArmedFault,
    /// Counters (syncs, commits, checkpoints) for harness assertions.
    syncs: u64,
    checkpoints: u64,
}

impl Default for NodeStorage {
    fn default() -> Self {
        NodeStorage::new()
    }
}

impl NodeStorage {
    /// Creates empty storage (factory-fresh disk).
    pub fn new() -> NodeStorage {
        NodeStorage {
            wal: Vec::new(),
            wal_base: 0,
            cached: Vec::new(),
            slots: [None, None],
            pending_checkpoint: None,
            next_ckpt_seq: 1,
            armed: ArmedFault::None,
            syncs: 0,
            checkpoints: 0,
        }
    }

    /// Absolute position one past the last record (durable or cached).
    fn wal_end(&self) -> u64 {
        self.wal_base + self.wal.len() as u64 + self.cached.len() as u64
    }

    /// Stages a WAL record in the device cache; not durable until
    /// [`Self::sync`] (use [`Self::wal_commit`] for the common
    /// append-then-fsync pattern).
    pub fn wal_append(&mut self, bytes: Vec<u8>) {
        self.cached.push(SecretBytes::new(bytes));
    }

    /// Flushes the cache to the durable log. Under an armed lying-sync
    /// fault this *reports* success but retains the cache — the lie is
    /// only observable through the next crash.
    pub fn sync(&mut self) {
        self.syncs += 1;
        if self.armed != ArmedFault::None {
            return;
        }
        for rec in self.cached.drain(..) {
            self.wal.push(WalRecord {
                bytes: rec,
                valid: true,
            });
        }
        if let Some(slot) = self.pending_checkpoint.take() {
            self.install_slot(slot);
        }
    }

    /// Appends one record and syncs: the write-ahead discipline protocol
    /// code uses before acknowledging a state change.
    pub fn wal_commit(&mut self, bytes: Vec<u8>) {
        self.wal_append(bytes);
        self.sync();
    }

    /// Writes a full-state snapshot covering everything appended so far
    /// (implicitly syncing the WAL tail first), into the older slot.
    pub fn checkpoint(&mut self, payload: Vec<u8>) {
        self.checkpoints += 1;
        let slot = CheckpointSlot {
            seq: self.next_ckpt_seq,
            wal_pos: self.wal_end(),
            payload: SecretBytes::new(payload),
            valid: true,
        };
        self.next_ckpt_seq += 1;
        if self.armed != ArmedFault::None {
            // The slot write sits in the cache with the WAL tail; both
            // are lost together if the crash comes first.
            self.pending_checkpoint = Some(slot);
            return;
        }
        self.sync();
        self.install_slot(slot);
    }

    /// Writes `slot` over the older of the two ping-pong slots, then
    /// truncates the WAL prefix neither slot needs any more.
    fn install_slot(&mut self, slot: CheckpointSlot) {
        let target = match (&self.slots[0], &self.slots[1]) {
            (None, _) => 0,
            (_, None) => 1,
            (Some(a), Some(b)) => usize::from(a.seq > b.seq),
        };
        self.slots[target] = Some(slot);
        let keep_from = self
            .slots
            .iter()
            .flatten()
            .map(|s| s.wal_pos)
            .min()
            .unwrap_or(self.wal_base);
        if keep_from > self.wal_base {
            let drop_n = ((keep_from - self.wal_base) as usize).min(self.wal.len());
            self.wal.drain(..drop_n);
            self.wal_base += drop_n as u64;
        }
    }

    /// Recovery read path: newest valid checkpoint plus the durable,
    /// checksum-valid WAL suffix past it. A checksum-invalid (torn)
    /// record ends the replayable suffix.
    pub fn load(&self) -> Recovered {
        let best = self
            .slots
            .iter()
            .flatten()
            .filter(|s| s.valid)
            .max_by_key(|s| s.seq);
        let from = best.map(|s| s.wal_pos).unwrap_or(0).max(self.wal_base);
        let mut wal = Vec::new();
        for rec in self.wal.iter().skip((from - self.wal_base) as usize) {
            if !rec.valid {
                break;
            }
            wal.push(rec.bytes.as_slice().to_vec());
        }
        Recovered {
            checkpoint: best.map(|s| (s.seq, s.payload.as_slice().to_vec())),
            wal,
        }
    }

    /// Arms the lying-sync failure mode: every `sync` until the next
    /// crash reports success without persisting. `torn` selects whether
    /// the crash leaves the first cached record torn (checksum-invalid)
    /// or discards the tail cleanly.
    pub fn arm_lying_sync(&mut self, torn: bool) {
        self.armed = if torn {
            ArmedFault::TornWrite
        } else {
            ArmedFault::LostTail
        };
    }

    /// Flips the newest valid checkpoint slot's payload checksum to
    /// invalid (bit-rot). Takes effect immediately; with both slots
    /// populated, recovery falls back to the older one.
    pub fn corrupt_latest_checkpoint(&mut self) {
        if let Some(slot) = self
            .slots
            .iter_mut()
            .flatten()
            .filter(|s| s.valid)
            .max_by_key(|s| s.seq)
        {
            slot.valid = false;
        }
    }

    /// Disarms any lying-sync fault and honestly flushes the cache
    /// (the device comes back well-behaved).
    pub fn heal(&mut self) {
        self.armed = ArmedFault::None;
        self.sync();
    }

    /// Applies crash semantics to the device cache and consumes the
    /// armed fault; returns a stat label when an armed fault actually
    /// fired. Called by the simulator when the owning node crashes.
    pub(crate) fn on_crash(&mut self) -> Option<&'static str> {
        let armed = std::mem::replace(&mut self.armed, ArmedFault::None);
        let had_tail = !self.cached.is_empty() || self.pending_checkpoint.is_some();
        match armed {
            ArmedFault::TornWrite => {
                if !self.cached.is_empty() {
                    let first = self.cached.remove(0);
                    self.wal.push(WalRecord {
                        bytes: first,
                        valid: false,
                    });
                }
            }
            ArmedFault::LostTail | ArmedFault::None => {}
        }
        self.cached.clear();
        self.pending_checkpoint = None;
        match armed {
            ArmedFault::TornWrite if had_tail => Some("storage-torn-write"),
            ArmedFault::LostTail if had_tail => Some("storage-lost-tail"),
            _ => None,
        }
    }

    /// Number of `sync` calls (honest or lied-to) so far.
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// Number of checkpoints written so far.
    pub fn checkpoint_count(&self) -> u64 {
        self.checkpoints
    }

    /// Whether anything durable exists (a checkpoint or a WAL record).
    pub fn has_durable_state(&self) -> bool {
        !self.wal.is_empty() || self.slots.iter().any(|s| s.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(s: &mut NodeStorage) -> Option<&'static str> {
        s.on_crash()
    }

    #[test]
    fn commit_then_load_replays_everything() {
        let mut s = NodeStorage::new();
        s.wal_commit(vec![1]);
        s.wal_commit(vec![2]);
        crash(&mut s);
        let r = s.load();
        assert!(r.checkpoint.is_none());
        assert_eq!(r.wal, vec![vec![1], vec![2]]);
    }

    #[test]
    fn unsynced_tail_is_lost_even_without_faults() {
        let mut s = NodeStorage::new();
        s.wal_commit(vec![1]);
        s.wal_append(vec![2]); // never synced
        crash(&mut s);
        assert_eq!(s.load().wal, vec![vec![1]]);
    }

    #[test]
    fn checkpoint_covers_wal_and_truncates() {
        let mut s = NodeStorage::new();
        s.wal_commit(vec![1]);
        s.checkpoint(vec![0xAA]);
        s.wal_commit(vec![2]);
        let r = s.load();
        assert_eq!(r.checkpoint, Some((1, vec![0xAA])));
        assert_eq!(r.wal, vec![vec![2]]);
        // Second checkpoint: the prefix below the older slot is gone,
        // but the newer slot still replays from its own position.
        s.checkpoint(vec![0xBB]);
        s.wal_commit(vec![3]);
        let r = s.load();
        assert_eq!(r.checkpoint, Some((2, vec![0xBB])));
        assert_eq!(r.wal, vec![vec![3]]);
    }

    #[test]
    fn lying_sync_lost_tail_discards_synced_records_at_crash() {
        let mut s = NodeStorage::new();
        s.wal_commit(vec![1]);
        s.arm_lying_sync(false);
        s.wal_commit(vec![2]); // sync lies
        s.wal_commit(vec![3]);
        assert_eq!(crash(&mut s), Some("storage-lost-tail"));
        assert_eq!(s.load().wal, vec![vec![1]]);
        // The fault is consumed: post-restart commits are durable again.
        s.wal_commit(vec![4]);
        crash(&mut s);
        assert_eq!(s.load().wal, vec![vec![1], vec![4]]);
    }

    #[test]
    fn torn_write_leaves_invalid_record_that_load_discards() {
        let mut s = NodeStorage::new();
        s.wal_commit(vec![1]);
        s.arm_lying_sync(true);
        s.wal_commit(vec![2]);
        s.wal_commit(vec![3]);
        assert_eq!(crash(&mut s), Some("storage-torn-write"));
        // Record 2 is present-but-torn: the replayable suffix ends
        // before it, record 3 is gone entirely.
        assert_eq!(s.load().wal, vec![vec![1]]);
        assert_eq!(s.wal.len(), 2, "torn record occupies the log");
    }

    #[test]
    fn lying_sync_swallows_checkpoints_too() {
        let mut s = NodeStorage::new();
        s.checkpoint(vec![0xAA]);
        s.arm_lying_sync(false);
        s.wal_commit(vec![1]);
        s.checkpoint(vec![0xBB]); // parked in the cache
        assert_eq!(crash(&mut s), Some("storage-lost-tail"));
        let r = s.load();
        assert_eq!(r.checkpoint, Some((1, vec![0xAA])));
        assert!(r.wal.is_empty());
    }

    #[test]
    fn heal_installs_the_parked_tail() {
        let mut s = NodeStorage::new();
        s.arm_lying_sync(false);
        s.wal_commit(vec![1]);
        s.checkpoint(vec![0xAA]);
        s.heal();
        crash(&mut s);
        let r = s.load();
        assert_eq!(r.checkpoint, Some((1, vec![0xAA])));
        assert!(r.wal.is_empty(), "checkpoint covers the healed record");
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_older_slot() {
        let mut s = NodeStorage::new();
        s.wal_commit(vec![1]);
        s.checkpoint(vec![0xAA]); // covers record 1
        s.wal_commit(vec![2]);
        s.checkpoint(vec![0xBB]); // covers records 1-2
        s.wal_commit(vec![3]);
        s.corrupt_latest_checkpoint();
        let r = s.load();
        // The older slot wins; its longer WAL suffix is still durable
        // because truncation only drops below the *older* position.
        assert_eq!(r.checkpoint, Some((1, vec![0xAA])));
        assert_eq!(r.wal, vec![vec![2], vec![3]]);
        // Both slots corrupt: full WAL replay from the base.
        s.corrupt_latest_checkpoint();
        let r = s.load();
        assert!(r.checkpoint.is_none());
        assert_eq!(r.wal, vec![vec![2], vec![3]]);
    }

    #[test]
    fn corruption_never_forges_a_newer_slot() {
        let mut s = NodeStorage::new();
        s.checkpoint(vec![0xAA]);
        s.checkpoint(vec![0xBB]);
        s.corrupt_latest_checkpoint();
        // seq 2 is invalid; seq 1 must be chosen even though slot 0
        // holds it (order of slots is irrelevant).
        assert_eq!(s.load().checkpoint, Some((1, vec![0xAA])));
    }

    #[test]
    fn secret_bytes_zeroize_on_drop() {
        // Indirect check: dropping the buffer leaves no panic and the
        // wrapper reports its contents faithfully before the drop.
        let sb = SecretBytes::new(vec![7; 32]);
        assert_eq!(sb.as_slice(), &[7; 32]);
        assert_eq!(sb.len(), 32);
        assert!(!sb.is_empty());
        drop(sb);
    }
}
