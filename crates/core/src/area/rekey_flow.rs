//! Key-update buffering and flushing — the batching of Section III-E.
//!
//! Joins are applied to the tree immediately (the newcomer needs its
//! keys in step 7) but the *multicast* announcing the refreshed path is
//! buffered: per changed node we remember only the key value before the
//! first buffered change, so N aggregated joins cost one encrypted entry
//! per node instead of N. Leaves are deferred entirely and applied as
//! one batched tree operation at flush time. A flush happens when
//! multicast data arrives (`update_needed` flag), on the freshness
//! timer, or immediately under [`BatchPolicy::Immediate`](crate::config::BatchPolicy).

use super::AreaController;
use crate::durable::AcWalRecord;
use crate::identity::ClientId;
use crate::msg::Msg;
use crate::rekey::{entries_wire_len, write_plan_entries, KEY_ENV_LEN};
use crate::wire::Writer;
use mykil_crypto::envelope;
use mykil_net::Context;
use mykil_tree::{MemberId, RekeyPlan};

impl AreaController {
    /// Buffers the multicast part of a join rekey plan. For every
    /// changed node we keep the key value before its *first* buffered
    /// change, so consecutive joins collapse into a single
    /// `E_old(K_newest)` entry each — the paper's join aggregation.
    pub(crate) fn buffer_join_plan(&mut self, plan: &RekeyPlan) {
        for change in &plan.changes {
            let node = change.node.raw() as u32;
            for (under, key) in &change.encryptions {
                if matches!(under, mykil_tree::EncryptUnder::PreviousSelf) {
                    self.buffered_join_updates.entry(node).or_insert(key.clone());
                }
            }
        }
    }

    /// Unicasts a member's current full key path (flush refresh).
    pub(crate) fn unicast_current_path(&mut self, ctx: &mut Context<'_>, client: ClientId) {
        let Some(rec) = self.members.get(&client) else {
            return;
        };
        let mut path = Vec::new();
        if self.tree.path_keys_into(MemberId(client.0), &mut path).is_err() {
            return;
        }
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        if let Ok(ct) = mykil_crypto::envelope::HybridCiphertext::encrypt(
            &rec.pubkey,
            &crate::rekey::encode_tree_path(&path),
            ctx.rng(),
        ) {
            let node = rec.node;
            ctx.send(
                node,
                "key-unicast",
                Msg::KeyUnicast { ct: ct.to_bytes() }.to_bytes(),
            );
        }
    }

    /// Handles a voluntary member departure (Section III-D).
    ///
    /// The request is encrypted to this controller and must come from
    /// the network address the member joined from; the member-leave
    /// rekey of Figure 5 follows (batched like any other event).
    pub(crate) fn handle_leave_request(
        &mut self,
        ctx: &mut Context<'_>,
        from: mykil_net::NodeId,
        ct: &[u8],
    ) {
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = mykil_crypto::envelope::HybridCiphertext::from_bytes(ct)
            .ok()
            .and_then(|hc| hc.decrypt(&self.keypair).ok())
        else {
            return;
        };
        let mut r = crate::wire::Reader::new(&plain);
        let Ok(client) = r.u64().map(ClientId) else {
            return;
        };
        if self.members.get(&client).is_none_or(|rec| rec.node != from) {
            return;
        }
        self.queue_leave(client);
        // The departure must survive a crash: a recovered controller
        // re-admitting a member that left would resurrect its access.
        self.wal_commit_record(ctx, &AcWalRecord::Leave { client: client.0 });
        ctx.stats().bump("ac-voluntary-leaves", 1);
        self.after_membership_change(ctx);
    }

    /// Queues a member departure for the next flush.
    pub(crate) fn queue_leave(&mut self, client: ClientId) {
        self.members.remove(&client);
        self.pending_leaves.push(client);
        self.update_needed = true;
    }

    /// Performs the aggregated rekey and multicasts one signed
    /// key-update message (Figures 5/6 semantics over real envelopes).
    pub(crate) fn flush_key_updates(&mut self, ctx: &mut Context<'_>) {
        if !self.update_needed
            && self.buffered_join_updates.is_empty()
            && self.pending_leaves.is_empty()
        {
            return;
        }

        // 1. Aggregated join updates: E_{K_first_old}(K_current).
        //    Skipped for nodes that the leave batch below will change
        //    again — their join-era values die with the leave rekey.
        let join_nodes = std::mem::take(&mut self.buffered_join_updates);

        // 2. Batched leaves (single combined tree operation).
        let leavers: Vec<MemberId> = self
            .pending_leaves
            .drain(..)
            .map(|c| MemberId(c.0))
            .filter(|m| self.tree.contains(*m))
            .collect();
        let leave_plan = if leavers.is_empty() {
            None
        } else {
            self.note_area_key();
            // Leavers are pre-filtered with `contains`; a refusal here
            // means tree-state drift. Defer the eviction batch to the
            // next sweep instead of panicking mid-rekey.
            let plan = self.tree.batch_leave(&leavers, ctx.rng());
            if plan.is_err() {
                ctx.stats().bump("ac-evictions-deferred", 1);
            }
            plan.ok()
        };

        let leave_changed: std::collections::BTreeSet<u32> = leave_plan
            .as_ref()
            .map(|out| {
                out.plan
                    .changes
                    .iter()
                    .map(|c| c.node.raw() as u32)
                    .collect()
            })
            .unwrap_or_default();

        // Entry counts are known up front, so the whole signed body is
        // streamed into one pre-sized frame: each envelope is sealed in
        // place, with no per-entry allocations or intermediate entry list.
        let join_count = join_nodes
            .keys()
            .filter(|n| !leave_changed.contains(n))
            .count();
        let leave_count = leave_plan
            .as_ref()
            .map_or(0, |out| out.plan.encryption_count());
        let total_entries = join_count + leave_count;

        let mut w = Writer::with_capacity(
            4 + join_count * (4 + 1 + 4 + KEY_ENV_LEN)
                + leave_plan
                    .as_ref()
                    .map_or(0, |out| entries_wire_len(&out.plan) - 4),
        );
        w.u32(total_entries as u32);
        for (node, old_key) in &join_nodes {
            if leave_changed.contains(node) {
                continue;
            }
            let current = self.tree.node_key(mykil_tree::NodeIdx::from_raw(*node as usize));
            ctx.charge_compute(self.cost.symmetric_op);
            w.u32(*node).u8(0).u32(KEY_ENV_LEN as u32);
            w.append_with(|buf| envelope::seal_into(old_key, current.as_bytes(), ctx.rng(), buf));
        }

        if let Some(out) = &leave_plan {
            ctx.charge_compute(
                self.cost
                    .symmetric_op
                    .saturating_mul(out.plan.encryption_count() as u64),
            );
            write_plan_entries(&out.plan, ctx.rng(), &mut w);
        }

        // 3. Unicast current paths to recorded members (the paper:
        //    "sends appropriate unicast messages to the members whose
        //    identities were recorded"):
        //    - members admitted in an *earlier* flush window get their
        //      final refresh now (this closes the race where a newcomer
        //      missed a key-update multicast sent before it subscribed
        //      to the area's multicast group), then drop off the list;
        //    - members admitted in *this* window are refreshed now only
        //      if the window held several events (their step-7 path may
        //      already be stale), and stay recorded for one more flush.
        let this_window: Vec<ClientId> = self
            .recorded_members
            .iter()
            .filter(|(_, e)| **e == self.epoch)
            .map(|(c, _)| *c)
            .collect();
        let earlier: Vec<ClientId> = self
            .recorded_members
            .iter()
            .filter(|(_, e)| **e < self.epoch)
            .map(|(c, _)| *c)
            .collect();
        for client in earlier {
            self.recorded_members.remove(&client);
            if self.members.contains_key(&client) {
                self.unicast_current_path(ctx, client);
            }
        }
        if this_window.len() + leavers.len() > 1 {
            for client in &this_window {
                if self.members.contains_key(client) {
                    self.unicast_current_path(ctx, *client);
                }
            }
        }

        if total_entries == 0 {
            self.update_needed = false;
            return;
        }

        self.epoch += 1;
        let body = w.into_bytes();
        // Key updates are signed with the AC's private key so members
        // cannot forge them (Section III-E).
        let signed = self.key_update_signed_bytes(&body, self.epoch);
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig = self.keypair.sign(&signed);
        ctx.multicast(
            self.deploy.group,
            "key-update",
            Msg::KeyUpdate {
                area: self.deploy.area,
                epoch: self.epoch,
                body,
                sig,
            }
            .to_bytes(),
        );
        self.last_area_mcast = ctx.now();
        self.update_needed = false;
        self.stats.rekeys += 1;
        ctx.stats().bump("ac-rekeys", 1);
        // Compaction point: the new epoch and the batched membership
        // changes become one durable image, truncating the WAL records
        // logged since the previous flush.
        self.persist_checkpoint(ctx);
    }
}
