//! Traffic and custom-metric accounting.
//!
//! The paper's bandwidth figures (8–10) report *bytes of key-update
//! traffic*; the reproduction regenerates them from these counters.
//! Every send is tagged with a `kind` string (e.g. `"key-update"`,
//! `"data"`, `"alive"`), and both "bytes sent" (multicast counted once —
//! the paper's metric) and "bytes delivered" (multiplied by receiver
//! count) are tracked.

use std::collections::BTreeMap;

/// Per-kind traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounters {
    /// Messages sent (a multicast counts once).
    pub messages_sent: u64,
    /// Payload bytes sent (a multicast counts once).
    pub bytes_sent: u64,
    /// Message deliveries (a multicast counts once per receiver).
    pub messages_delivered: u64,
    /// Payload bytes delivered (multiplied by receiver count).
    pub bytes_delivered: u64,
}

/// Aggregated traffic statistics for a simulation run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    by_kind: BTreeMap<&'static str, KindCounters>,
    custom: BTreeMap<&'static str, u64>,
}

impl Stats {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_send(&mut self, kind: &'static str, bytes: usize, receivers: usize) {
        let c = self.by_kind.entry(kind).or_default();
        c.messages_sent += 1;
        c.bytes_sent += bytes as u64;
        c.messages_delivered += receivers as u64;
        c.bytes_delivered += (bytes * receivers) as u64;
    }

    /// Adds `value` to the custom counter `key` (used by protocol code
    /// to report experiment-specific metrics, e.g. rekey operations).
    pub fn bump(&mut self, key: &'static str, value: u64) {
        *self.custom.entry(key).or_insert(0) += value;
    }

    /// Counters for a message kind (zeros if the kind never appeared).
    pub fn kind(&self, kind: &str) -> KindCounters {
        self.by_kind.get(kind).copied().unwrap_or_default()
    }

    /// Sets the custom metric `key` to an absolute value — for gauges
    /// like `dedup-windows` that report a current level rather than an
    /// accumulating count.
    pub fn set(&mut self, key: &'static str, value: u64) {
        self.custom.insert(key, value);
    }

    /// A custom counter's value (zero if never bumped).
    pub fn counter(&self, key: &str) -> u64 {
        self.custom.get(key).copied().unwrap_or(0)
    }

    /// Iterates over all message kinds in deterministic order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, KindCounters)> + '_ {
        self.by_kind.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates over all custom counters in deterministic order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.custom.iter().map(|(k, v)| (*k, *v))
    }

    /// Total bytes sent across all kinds (multicast counted once).
    pub fn total_bytes_sent(&self) -> u64 {
        self.by_kind.values().map(|c| c.bytes_sent).sum()
    }

    /// Total messages sent across all kinds.
    pub fn total_messages_sent(&self) -> u64 {
        self.by_kind.values().map(|c| c.messages_sent).sum()
    }

    /// Resets every counter (used between measurement phases so a bench
    /// can isolate one event's traffic).
    pub fn reset(&mut self) {
        self.by_kind.clear();
        self.custom.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_sends_and_deliveries() {
        let mut s = Stats::new();
        s.record_send("key-update", 100, 3);
        s.record_send("key-update", 50, 1);
        s.record_send("data", 1000, 10);
        let ku = s.kind("key-update");
        assert_eq!(ku.messages_sent, 2);
        assert_eq!(ku.bytes_sent, 150);
        assert_eq!(ku.messages_delivered, 4);
        assert_eq!(ku.bytes_delivered, 350);
        assert_eq!(s.total_bytes_sent(), 1150);
        assert_eq!(s.total_messages_sent(), 3);
    }

    #[test]
    fn unknown_kind_is_zero() {
        let s = Stats::new();
        assert_eq!(s.kind("nothing"), KindCounters::default());
        assert_eq!(s.counter("nothing"), 0);
    }

    #[test]
    fn custom_counters_accumulate() {
        let mut s = Stats::new();
        s.bump("rekeys", 1);
        s.bump("rekeys", 2);
        assert_eq!(s.counter("rekeys"), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = Stats::new();
        s.record_send("x", 10, 1);
        s.bump("y", 5);
        s.reset();
        assert_eq!(s.total_bytes_sent(), 0);
        assert_eq!(s.counter("y"), 0);
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut s = Stats::new();
        s.record_send("b", 1, 1);
        s.record_send("a", 1, 1);
        s.record_send("c", 1, 1);
        let kinds: Vec<&str> = s.kinds().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec!["a", "b", "c"]);
    }
}
