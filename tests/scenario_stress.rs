//! A combined long-running scenario: the kind of week a production
//! deployment would actually have — growth, churn, roaming, a
//! controller crash with failover, a partition, and message loss — all
//! in one deterministic run that must end fully consistent.

use mykil::group::GroupBuilder;
use mykil::member::Member;
use mykil_net::Duration;

#[test]
fn one_bad_week_in_production() {
    let mut g = GroupBuilder::new(777).areas(3).replicated(true).build();

    // Monday: launch with six subscribers.
    let mut members: Vec<_> = (0..6).map(|i| g.register_member(i)).collect();
    g.settle();
    for &m in &members {
        assert!(g.is_member(m), "launch subscriber failed to join");
    }

    // Tuesday: traffic flows.
    g.send_data(members[0], b"tuesday frame");
    g.run_for(Duration::from_secs(2));

    // Wednesday: one member roams to another area.
    let roamer = members[1];
    let home = g.member(roamer).area().unwrap().0 as usize;
    let home_ac = g.primaries[home];
    g.sim.cut_link(roamer, home_ac);
    g.sim.cut_link(home_ac, roamer);
    g.run_for(Duration::from_secs(6)); // auto-detect + auto-rejoin
    assert!(g.is_member(roamer), "roamer lost membership");
    assert_ne!(g.member(roamer).area().unwrap().0 as usize, home);

    // Thursday: a controller machine dies; its backup takes over.
    // (Pick an area that is nobody's parent bridge for the roamer.)
    g.crash_ac(2);
    g.run_for(Duration::from_secs(3));
    assert_eq!(
        g.backup(2).role(),
        mykil::area::Role::Primary,
        "no failover happened"
    );

    // Friday: a lossy afternoon (10%), with churn on top.
    g.sim.set_loss_per_mille(100);
    let late = g.register_member(100);
    g.sim.invoke(members[5], |m: &mut Member, ctx| m.leave(ctx));
    members.remove(5);
    g.run_for(Duration::from_secs(10));
    g.sim.set_loss_per_mille(0);
    g.run_for(Duration::from_secs(5));
    assert!(g.is_member(late), "friday joiner never made it");
    members.push(late);

    // Weekend: everything consistent, everyone receives fresh data.
    g.run_for(Duration::from_secs(5));
    let sender = members[0];
    let before: Vec<usize> = members.iter().map(|&m| g.received_data(m).len()).collect();
    g.send_data(sender, b"sunday broadcast");
    g.run_for(Duration::from_secs(3));
    for (&m, &seen) in members.iter().zip(&before) {
        assert!(g.is_member(m));
        assert!(
            g.received_data(m).len() > seen,
            "member in area {:?} missed the sunday broadcast",
            g.member(m).area()
        );
    }

    // Final key consistency across all areas (primary 2 is dead; its
    // promoted backup holds the truth for area 2).
    for &m in &members {
        let area = g.member(m).area().unwrap().0 as usize;
        let authoritative = if area == 2 {
            g.backup(2).area_key()
        } else {
            g.ac(area).area_key()
        };
        assert_eq!(
            g.member(m).current_area_key(),
            Some(authoritative),
            "member in area {area} diverged"
        );
    }
}

#[test]
fn medium_scale_growth_and_decay() {
    // 12 members arrive in waves across 2 areas, then half drop off;
    // everyone remaining stays consistent throughout.
    let mut g = GroupBuilder::new(778).areas(2).build();
    let mut members = Vec::new();
    for wave in 0..3 {
        for i in 0..4 {
            members.push(g.register_member(wave * 10 + i));
        }
        g.run_for(Duration::from_secs(3));
    }
    for &m in &members {
        assert!(g.is_member(m));
    }
    assert_eq!(g.ac(0).member_count() + g.ac(1).member_count(), 12);

    // Half the group goes dark and is evicted.
    for &m in members.iter().step_by(2) {
        g.sim.partition(m, 9);
    }
    g.run_for(Duration::from_secs(8));
    assert_eq!(g.ac(0).member_count() + g.ac(1).member_count(), 6);

    // The survivors all hold their areas' current keys.
    for &m in members.iter().skip(1).step_by(2) {
        let area = g.member(m).area().unwrap().0 as usize;
        assert_eq!(
            g.member(m).current_area_key(),
            Some(g.ac(area).area_key())
        );
    }
}
