//! High-level modular arithmetic: `modpow`, `gcd`, and modular inverses.

use super::{BigUint, MontgomeryCtx};
use crate::CryptoError;

impl BigUint {
    /// Modular exponentiation `self^exp mod modulus`.
    ///
    /// Uses Montgomery form for odd moduli (the RSA case) and a plain
    /// square-and-multiply with trial division otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] when `modulus` is zero.
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> Result<BigUint, CryptoError> {
        if modulus.is_zero() {
            return Err(CryptoError::InvalidParameter("zero modulus"));
        }
        if modulus.is_one() {
            return Ok(BigUint::zero());
        }
        if modulus.is_odd() {
            return MontgomeryCtx::new(modulus)?.pow(self, exp);
        }
        // Generic ladder for even moduli (only hit in tests/tools).
        let mut base = self.rem(modulus)?;
        let mut acc = BigUint::one();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                acc = (&acc * &base).rem(modulus)?;
            }
            base = base.square().rem(modulus)?;
        }
        Ok(acc)
    }

    /// Greatest common divisor by the Euclidean algorithm.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b).expect("nonzero divisor");
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: finds `x` with `self·x ≡ 1 (mod modulus)`.
    ///
    /// Implemented with the extended Euclidean algorithm over signed
    /// cofactors tracked as (sign, magnitude) pairs.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] when no inverse exists
    /// (i.e. `gcd(self, modulus) != 1`) or the modulus is zero or one.
    pub fn mod_inverse(&self, modulus: &BigUint) -> Result<BigUint, CryptoError> {
        if modulus.is_zero() || modulus.is_one() {
            return Err(CryptoError::InvalidParameter(
                "inverse undefined for modulus zero or one",
            ));
        }
        let a = self.rem(modulus)?;
        if a.is_zero() {
            return Err(CryptoError::InvalidParameter("zero has no inverse"));
        }
        // Invariants: old_r = old_s*a (mod m), r = s*a (mod m).
        let mut old_r = a;
        let mut r = modulus.clone();
        let mut old_s = Signed::positive(BigUint::one());
        let mut s = Signed::positive(BigUint::zero());
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r)?;
            old_r = std::mem::replace(&mut r, rem);
            let qs = s.mul_mag(&q);
            let next = old_s.sub(&qs);
            old_s = std::mem::replace(&mut s, next);
        }
        if !old_r.is_one() {
            return Err(CryptoError::InvalidParameter("values are not coprime"));
        }
        old_s.reduce(modulus)
    }
}

/// Minimal signed big integer for the extended Euclid cofactors.
#[derive(Debug, Clone)]
struct Signed {
    negative: bool,
    mag: BigUint,
}

impl Signed {
    fn positive(mag: BigUint) -> Self {
        Signed {
            negative: false,
            mag,
        }
    }

    fn mul_mag(&self, q: &BigUint) -> Signed {
        Signed {
            negative: self.negative && !q.is_zero(),
            mag: &self.mag * q,
        }
    }

    fn sub(&self, other: &Signed) -> Signed {
        match (self.negative, other.negative) {
            // a - (-b) = a + b ; (-a) - b = -(a + b)
            (false, true) | (true, false) => Signed {
                negative: self.negative,
                mag: &self.mag + &other.mag,
            },
            // Same sign: compare magnitudes.
            (sn, _) => {
                if self.mag >= other.mag {
                    Signed {
                        negative: sn && self.mag != other.mag,
                        mag: &self.mag - &other.mag,
                    }
                } else {
                    Signed {
                        negative: !sn,
                        mag: &other.mag - &self.mag,
                    }
                }
            }
        }
    }

    /// Reduces to a canonical non-negative residue mod `m`.
    fn reduce(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        let r = self.mag.rem(m)?;
        if self.negative && !r.is_zero() {
            Ok(m - &r)
        } else {
            Ok(r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modpow_matches_reference() {
        // 3^200 mod 50 == (3^20)^10 mod 50; brute force with u128 windows.
        let m = BigUint::from(1_000_003_u64);
        let mut expect = 1u64;
        for e in 0..40u64 {
            let got = BigUint::from(7_u64)
                .modpow(&BigUint::from(e), &m)
                .unwrap()
                .to_u64()
                .unwrap();
            assert_eq!(got, expect, "e={e}");
            expect = expect * 7 % 1_000_003;
        }
    }

    #[test]
    fn modpow_even_modulus() {
        let m = BigUint::from(1_000_000_u64);
        let got = BigUint::from(3_u64)
            .modpow(&BigUint::from(10_u64), &m)
            .unwrap();
        assert_eq!(got.to_u64(), Some(59_049));
        let got = BigUint::from(7_u64)
            .modpow(&BigUint::from(9_u64), &m)
            .unwrap();
        assert_eq!(got.to_u64(), Some(40_353_607 % 1_000_000));
    }

    #[test]
    fn modpow_modulus_one_and_zero() {
        let b = BigUint::from(9_u64);
        assert!(b
            .modpow(&BigUint::from(2_u64), &BigUint::one())
            .unwrap()
            .is_zero());
        assert!(b.modpow(&BigUint::from(2_u64), &BigUint::zero()).is_err());
    }

    #[test]
    fn gcd_cases() {
        let g = BigUint::from(48_u64).gcd(&BigUint::from(18_u64));
        assert_eq!(g.to_u64(), Some(6));
        let g = BigUint::from(17_u64).gcd(&BigUint::from(13_u64));
        assert!(g.is_one());
        let g = BigUint::zero().gcd(&BigUint::from(5_u64));
        assert_eq!(g.to_u64(), Some(5));
        let g = BigUint::from(5_u64).gcd(&BigUint::zero());
        assert_eq!(g.to_u64(), Some(5));
    }

    #[test]
    fn mod_inverse_small() {
        let inv = BigUint::from(3_u64)
            .mod_inverse(&BigUint::from(11_u64))
            .unwrap();
        assert_eq!(inv.to_u64(), Some(4)); // 3*4 = 12 ≡ 1 (mod 11)
    }

    #[test]
    fn mod_inverse_verifies() {
        let m = BigUint::from(1_000_000_007_u64);
        for v in [2u64, 3, 65_537, 999_999_999] {
            let a = BigUint::from(v);
            let inv = a.mod_inverse(&m).unwrap();
            let prod = (&a * &inv).rem(&m).unwrap();
            assert!(prod.is_one(), "v={v}");
        }
    }

    #[test]
    fn mod_inverse_not_coprime() {
        assert!(BigUint::from(6_u64)
            .mod_inverse(&BigUint::from(9_u64))
            .is_err());
        assert!(BigUint::from(4_u64)
            .mod_inverse(&BigUint::from(8_u64))
            .is_err());
    }

    #[test]
    fn mod_inverse_rejects_degenerate() {
        assert!(BigUint::from(5_u64).mod_inverse(&BigUint::zero()).is_err());
        assert!(BigUint::from(5_u64).mod_inverse(&BigUint::one()).is_err());
        assert!(BigUint::zero().mod_inverse(&BigUint::from(7_u64)).is_err());
    }

    #[test]
    fn rsa_style_inverse() {
        // e*d ≡ 1 mod phi with realistic small-prime RSA numbers.
        let p = BigUint::from(61_u64);
        let q = BigUint::from(53_u64);
        let phi = &(&p - &BigUint::one()) * &(&q - &BigUint::one());
        let e = BigUint::from(17_u64);
        let d = e.mod_inverse(&phi).unwrap();
        assert!((&e * &d).rem(&phi).unwrap().is_one());
    }
}
