//! Fixture tests: every rule must fire on a violating snippet and stay
//! quiet on clean and suppressed variants.

use mykil_lint::lint_source;

fn rules_at(path: &str, src: &str) -> Vec<(String, u32)> {
    lint_source(path, src)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect()
}

fn rule_ids(path: &str, src: &str) -> Vec<String> {
    rules_at(path, src).into_iter().map(|(r, _)| r).collect()
}

// ---------------------------------------------------------------- L001

#[test]
fn l001_fires_on_unwrap_in_protocol_crate() {
    let src = "pub fn handle(m: Msg) {\n    let x = decode(m).unwrap();\n    use_it(x);\n}\n";
    for krate in ["core", "net", "tree"] {
        let path = format!("crates/{krate}/src/handler.rs");
        assert_eq!(rules_at(&path, src), vec![("L001".to_string(), 2)], "{krate}");
    }
}

#[test]
fn l001_fires_on_expect() {
    let src = "fn f() { g().expect(\"boom\"); }";
    assert_eq!(rule_ids("crates/core/src/a.rs", src), vec!["L001"]);
}

#[test]
fn l001_quiet_outside_protocol_crates() {
    let src = "fn f() { g().unwrap(); }";
    assert!(rule_ids("crates/crypto/src/a.rs", src).is_empty());
    assert!(rule_ids("crates/baselines/src/a.rs", src).is_empty());
    assert!(rule_ids("src/main.rs", src).is_empty());
}

#[test]
fn l001_quiet_in_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { g().unwrap(); }\n}\n";
    assert!(rule_ids("crates/core/src/a.rs", src).is_empty());
    // Integration tests live outside src/ and are always exempt.
    assert!(rule_ids("crates/core/tests/a.rs", "fn f() { g().unwrap(); }").is_empty());
}

#[test]
fn l001_quiet_on_identifiers_merely_named_unwrap() {
    // `unwrap` not called as a method: a field access or free fn.
    let src = "fn f() { let unwrap = 1; h(unwrap); unwrap_all(); }";
    assert!(rule_ids("crates/core/src/a.rs", src).is_empty());
}

#[test]
fn l001_quiet_on_unwrap_inside_string_or_comment() {
    let src = "fn f() {\n    // calling .unwrap() would be bad here\n    log(\"never .unwrap() peers\");\n}\n";
    assert!(rule_ids("crates/core/src/a.rs", src).is_empty());
}

#[test]
fn l001_suppressed_with_directive() {
    let same_line =
        "fn f() { g().unwrap(); // mykil-lint: allow(L001) -- init-time, config validated\n}";
    assert!(rule_ids("crates/core/src/a.rs", same_line).is_empty());
    let own_line =
        "fn f() {\n    // mykil-lint: allow(L001) -- invariant: key present\n    g().unwrap();\n}";
    assert!(rule_ids("crates/core/src/a.rs", own_line).is_empty());
}

#[test]
fn l001_fires_on_batch_planner_expect_pattern() {
    // The exact shape that used to live in the batch planner: an
    // "invariant" lookup unwrapped with .expect() in protocol code. A
    // forged snapshot restored into the tree can violate the invariant,
    // so the panic was a remote crash vector; the planner now returns
    // TreeError::Inconsistent instead.
    let src = "fn plan(&self, m: MemberId) {\n    \
               let leaf = self.leaf_of(m).expect(\"just placed\");\n    \
               let old = self.displaced.get(&m).expect(\"displaced member present\");\n    \
               use_them(leaf, old);\n}\n";
    assert_eq!(
        rules_at("crates/tree/src/batch.rs", src),
        vec![("L001".to_string(), 2), ("L001".to_string(), 3)]
    );
    // The typed-error replacement is clean.
    let fixed = "fn plan(&self, m: MemberId) -> Result<(), TreeError> {\n    \
                 let leaf = self.leaf_of(m).ok_or(TreeError::Inconsistent(\"leaf missing\"))?;\n    \
                 let old = self\n        .displaced\n        .get(&m)\n        \
                 .ok_or(TreeError::Inconsistent(\"displaced member missing\"))?;\n    \
                 use_them(leaf, old);\n    Ok(())\n}\n";
    assert!(rule_ids("crates/tree/src/batch.rs", fixed).is_empty());
}

#[test]
fn l001_quiet_in_harness_allowlisted_files() {
    // The chaos fault injector and the invariant checker live inside
    // protocol crates but run only under the test harness; intentional
    // panics there are not remote crash vectors.
    let src = "pub fn apply(f: Fault) { plan.get(&f).unwrap().fire(); }";
    assert!(rule_ids("crates/net/src/chaos.rs", src).is_empty());
    assert!(rule_ids("crates/core/src/invariants.rs", src).is_empty());
    // The allowlist is exact-path: a sibling file still fires.
    assert_eq!(rule_ids("crates/net/src/sim.rs", src), vec!["L001"]);
}

#[test]
fn harness_allowlist_exempts_only_l001() {
    // Determinism still matters in the chaos layer: a wall-clock read
    // there would make fault schedules non-replayable.
    let src = "fn jitter() { let t = std::time::Instant::now(); use_it(t); }";
    assert_eq!(rule_ids("crates/net/src/chaos.rs", src), vec!["L004"]);
}

// ---------------------------------------------------------------- L002

#[test]
fn l002_fires_on_debug_derive_for_secret_type() {
    let src = "#[derive(Clone, Debug)]\npub struct SymmetricKey([u8; 16]);\nimpl Drop for SymmetricKey { fn drop(&mut self) {} }\n";
    assert_eq!(rule_ids("crates/crypto/src/keys.rs", src), vec!["L002"]);
}

#[test]
fn l002_fires_on_derived_partial_eq_and_hash() {
    let src = "#[derive(PartialEq, Eq, Hash)]\npub struct SymmetricKey([u8; 16]);\nimpl Drop for SymmetricKey { fn drop(&mut self) {} }\n";
    let ids = rule_ids("crates/crypto/src/keys.rs", src);
    assert_eq!(ids, vec!["L002", "L002"]); // PartialEq + Hash
}

#[test]
fn l002_fires_when_drop_is_missing() {
    let src = "#[derive(Clone)]\npub struct Rc4 { s: [u8; 256] }\n";
    let diags = lint_source("crates/crypto/src/rc4.rs", src);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("Drop"), "{}", diags[0].message);
}

#[test]
fn l002_quiet_on_clean_secret_type() {
    let src = "#[derive(Clone)]\npub struct ChaCha20 { state: [u32; 16] }\nimpl Drop for ChaCha20 { fn drop(&mut self) { self.state = [0; 16]; } }\n";
    assert!(rule_ids("crates/crypto/src/chacha.rs", src).is_empty());
}

#[test]
fn l002_quiet_on_non_secret_type_with_debug() {
    let src = "#[derive(Clone, Debug, PartialEq)]\npub struct KeyId(u64);\n";
    assert!(rule_ids("crates/crypto/src/keys.rs", src).is_empty());
}

#[test]
fn l002_quiet_outside_secret_type_crates() {
    // Other crates may name-collide; the secrecy rule is scoped to the
    // crates that define the real types (crypto and net).
    let src = "#[derive(Debug)]\nstruct SymmetricKey;\n";
    assert!(rule_ids("crates/analysis/src/a.rs", src).is_empty());
}

#[test]
fn l002_fires_on_secret_bytes_derives_in_net() {
    // The stable-storage buffer type holds at-rest key material; a
    // derived PartialEq walks it with early exit (timing leak) and a
    // derived Debug would print it.
    let src = "#[derive(Clone, PartialEq, Eq)]\npub struct SecretBytes(Vec<u8>);\nimpl Drop for SecretBytes { fn drop(&mut self) {} }\n";
    assert_eq!(rule_ids("crates/net/src/storage.rs", src), vec!["L002"]);
    let dbg = "#[derive(Debug)]\npub struct SecretBytes(Vec<u8>);\nimpl Drop for SecretBytes { fn drop(&mut self) {} }\n";
    assert_eq!(rule_ids("crates/net/src/storage.rs", dbg), vec!["L002"]);
}

#[test]
fn l002_fires_when_secret_bytes_misses_drop() {
    let src = "#[derive(Clone)]\npub struct SecretBytes(Vec<u8>);\n";
    let diags = mykil_lint::lint_source("crates/net/src/storage.rs", src);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("Drop"), "{}", diags[0].message);
}

#[test]
fn l002_quiet_on_manual_impls_for_secret_bytes() {
    // Manual constant-time PartialEq and a len-only Debug are the
    // sanctioned shape; only *derives* leak.
    let src = "#[derive(Clone)]\npub struct SecretBytes(Vec<u8>);\nimpl Drop for SecretBytes { fn drop(&mut self) { zeroize(&mut self.0); } }\nimpl PartialEq for SecretBytes { fn eq(&self, o: &SecretBytes) -> bool { ct_eq(&self.0, &o.0) } }\nimpl Eq for SecretBytes {}\n";
    assert!(rule_ids("crates/net/src/storage.rs", src).is_empty());
}

#[test]
fn l002_suppressed_with_directive() {
    let src = "// mykil-lint: allow(L002) -- test-only mirror of the real type\n#[derive(Debug)]\npub struct SymmetricKey([u8; 16]);\nimpl Drop for SymmetricKey { fn drop(&mut self) {} }\n";
    assert!(rule_ids("crates/crypto/src/keys.rs", src).is_empty());
}

#[test]
fn l002_fires_on_raw_buffer_written_in_at_rest_storage() {
    // A plain Vec at the disk boundary never zeroizes: both the io
    // trait's write_all and fs::write must go through SecretBytes.
    let src = "fn persist(f: &mut std::fs::File, key_material: &[u8]) {\n    f.write_all(key_material).unwrap_or(());\n}\n";
    assert_eq!(
        rules_at("crates/net/src/file_store.rs", src),
        vec![("L002".to_string(), 2)]
    );
    let src = "fn persist(path: &Path, wrapped_key: Vec<u8>) {\n    let _ = fs::write(path, wrapped_key);\n}\n";
    assert_eq!(
        rules_at("crates/net/src/file_store.rs", src),
        vec![("L002".to_string(), 2)]
    );
}

#[test]
fn l002_quiet_on_secret_bytes_and_framing_writes() {
    // The sanctioned shapes: SecretBytes::as_slice for payloads, and
    // SCREAMING_CASE consts / to_le_bytes integers for framing.
    let src = "fn persist(f: &mut std::fs::File, payload: &SecretBytes, len: u32) {\n    let _ = f.write_all(&WAL_MAGIC);\n    let _ = f.write_all(&len.to_le_bytes());\n    let _ = f.write_all(payload.as_slice());\n}\n";
    assert!(rule_ids("crates/net/src/file_store.rs", src).is_empty());
}

#[test]
fn l002_at_rest_pass_scoped_to_storage_files() {
    // Elsewhere in the net crate a raw write is fine (e.g. the trace
    // dumper); the at-rest pass covers only the disk-backed store.
    let src = "fn dump(f: &mut std::fs::File, line: &[u8]) {\n    let _ = f.write_all(line);\n}\n";
    assert!(rule_ids("crates/net/src/trace.rs", src).is_empty());
}

#[test]
fn l002_at_rest_pass_skips_test_code_and_mode_setters() {
    // Tests write deliberate garbage to model crashes, and
    // OpenOptions::write(true) is a mode setter, not a buffer write.
    let src = "fn open(p: &Path) -> std::fs::File {\n    OpenOptions::new().write(true).open(p).unwrap_or_else(|e| panic!(\"{e}\"))\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn tear() { let garbage = vec![7u8; 3]; let _ = std::fs::write(\"x\", &garbage); }\n}\n";
    assert!(rule_ids("crates/net/src/file_store.rs", src).is_empty());
}

// ---------------------------------------------------------------- L003

#[test]
fn l003_fires_on_mac_equality() {
    let src = "fn verify(expected_mac: &[u8], got_mac: &[u8]) -> bool {\n    expected_mac == got_mac\n}\n";
    assert_eq!(rules_at("crates/crypto/src/hmac.rs", src), vec![("L003".to_string(), 2)]);
}

#[test]
fn l003_fires_on_tag_inequality_in_core() {
    let src = "fn check(tag: [u8; 16], expected_tag: [u8; 16]) {\n    if tag != expected_tag { reject(); }\n}\n";
    assert_eq!(rule_ids("crates/core/src/a.rs", src), vec!["L003"]);
}

#[test]
fn l003_fires_on_digest_compare() {
    let src = "fn f(digest: &[u8; 32], other: &[u8; 32]) -> bool { digest == other }";
    assert_eq!(rule_ids("crates/crypto/src/sha256.rs", src), vec!["L003"]);
}

#[test]
fn l003_quiet_on_length_checks() {
    let src = "fn f(mac: &[u8]) -> bool { mac.len() == 16 }";
    assert!(rule_ids("crates/crypto/src/hmac.rs", src).is_empty());
}

#[test]
fn l003_quiet_on_unrelated_identifiers() {
    // `stage` and `message` contain no mac/tag/digest snake segment.
    let src = "fn f(stage: u8, message: u8) -> bool { stage == message }";
    assert!(rule_ids("crates/crypto/src/a.rs", src).is_empty());
}

#[test]
fn l003_quiet_on_ct_eq_usage() {
    let src = "fn verify(mac: &[u8], expected_mac: &[u8]) -> bool { ct_eq(mac, expected_mac) }";
    assert!(rule_ids("crates/crypto/src/hmac.rs", src).is_empty());
}

#[test]
fn l003_quiet_in_tests() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(mac_a == mac_b); }\n}\n";
    assert!(rule_ids("crates/crypto/src/hmac.rs", src).is_empty());
}

#[test]
fn l003_suppressed_with_directive() {
    let src = "fn f(mac: &[u8], m2: &[u8]) -> bool {\n    // mykil-lint: allow(L003) -- public values, not secret-dependent\n    mac == m2\n}\n";
    assert!(rule_ids("crates/crypto/src/a.rs", src).is_empty());
}

// ---------------------------------------------------------------- L004

#[test]
fn l004_fires_on_instant_in_net() {
    let src = "use std::time::Instant;\nfn now() -> Instant { Instant::now() }\n";
    let ids = rule_ids("crates/net/src/clock.rs", src);
    assert!(!ids.is_empty() && ids.iter().all(|r| r == "L004"), "{ids:?}");
}

#[test]
fn l004_fires_on_system_time_in_core() {
    let src = "fn stamp() -> u64 { std::time::SystemTime::now().elapsed().as_secs() }";
    assert_eq!(rule_ids("crates/core/src/a.rs", src), vec!["L004"]);
}

#[test]
fn l004_quiet_on_duration() {
    let src = "use std::time::Duration;\nfn d() -> Duration { Duration::from_millis(5) }\n";
    assert!(rule_ids("crates/net/src/a.rs", src).is_empty());
}

#[test]
fn l004_quiet_outside_sim_deterministic_crates() {
    // Benchmarks and the crypto crate may time things for reporting.
    let src = "use std::time::Instant;\nfn t() { let _ = Instant::now(); }\n";
    assert!(rule_ids("crates/crypto/src/a.rs", src).is_empty());
    assert!(rule_ids("crates/net/benches/b.rs", src).is_empty());
}

#[test]
fn l004_suppressed_with_directive() {
    let src = "fn t() {\n    let _ = std::time::Instant::now(); // mykil-lint: allow(L004) -- wall-clock metrics only\n}\n";
    assert!(rule_ids("crates/net/src/a.rs", src).is_empty());
}

// ---------------------------------------------------------------- L005

#[test]
fn l005_fires_on_catch_all_in_msg_dispatch() {
    let src = "fn on_msg(&mut self, m: Msg) {\n    match m {\n        Msg::Join1 { .. } => self.join(m),\n        Msg::Data(d) => self.data(d),\n        _ => {}\n    }\n}\n";
    assert_eq!(rules_at("crates/core/src/member.rs", src), vec![("L005".to_string(), 5)]);
}

#[test]
fn l005_fires_on_guarded_catch_all() {
    let src = "fn on_msg(m: Msg) {\n    match m {\n        Msg::Data(d) => handle(d),\n        _ if true => {}\n        _ => {}\n    }\n}\n";
    let ids = rule_ids("crates/core/src/member.rs", src);
    assert_eq!(ids, vec!["L005", "L005"]);
}

#[test]
fn l005_quiet_on_exhaustive_dispatch() {
    let src = "fn on_msg(m: Msg) {\n    match m {\n        Msg::Join1 { .. } | Msg::Join2 { .. } => join(m),\n        Msg::Data(d) => data(d),\n        other => log_unexpected(other),\n    }\n}\n";
    assert!(rule_ids("crates/core/src/member.rs", src).is_empty());
}

#[test]
fn l005_quiet_on_non_msg_matches() {
    // `_ =>` over ordinary enums and integers is fine.
    let src = "fn f(x: u8) -> u8 {\n    match x {\n        0 => 1,\n        _ => 0,\n    }\n}\n";
    assert!(rule_ids("crates/core/src/a.rs", src).is_empty());
}

#[test]
fn l005_quiet_outside_core() {
    let src = "fn f(m: Msg) {\n    match m {\n        Msg::Data(d) => g(d),\n        _ => {}\n    }\n}\n";
    assert!(rule_ids("crates/net/src/a.rs", src).is_empty());
}

#[test]
fn l005_quiet_on_nested_non_msg_match_inside_dispatch_arm() {
    // The catch-all belongs to the *inner* numeric match, not the Msg
    // dispatch.
    let src = "fn f(m: Msg) {\n    match m {\n        Msg::Data(d) => match d.kind {\n            0 => a(),\n            _ => b(),\n        },\n        Msg::Heartbeat => c(),\n        other => log(other),\n    }\n}\n";
    assert!(rule_ids("crates/core/src/a.rs", src).is_empty());
}

#[test]
fn l005_suppressed_with_directive() {
    let src = "fn f(m: Msg) {\n    match m {\n        Msg::Data(d) => g(d),\n        _ => {} // mykil-lint: allow(L005) -- relay ignores control traffic\n    }\n}\n";
    assert!(rule_ids("crates/core/src/a.rs", src).is_empty());
}

// ------------------------------------------------------- cross-cutting

#[test]
fn diagnostics_are_sorted_and_json_renderable() {
    let src = "fn f(mac: &[u8], m: &[u8]) {\n    let _ = mac == m;\n    x.unwrap();\n}\n";
    let diags = lint_source("crates/core/src/a.rs", src);
    assert_eq!(diags.len(), 2);
    assert!(diags[0].line <= diags[1].line);
    for d in &diags {
        let j = d.to_json();
        assert!(j.contains(&format!("\"rule\":\"{}\"", d.rule)));
        assert!(j.contains("\"line\":"));
    }
}
