//! Regenerates every table and figure of the paper's evaluation.
//!
//! Run with `cargo run -p mykil-bench --bin report --release` for the
//! full paper-scale sweep, or pass `--quick` for a shrunk version.
//! The output of a release run is recorded in `EXPERIMENTS.md`.

use mykil_analysis::cpu;
use mykil_bench::workload::{replay, replay_unaggregated, ChurnSchedule};
use mykil_bench::*;
use mykil_baselines::{FlatLkh, IolusGroup, MykilModel};
use mykil_crypto::drbg::Drbg;
use mykil_tree::TreeConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n: u64 = if quick { 10_000 } else { PAPER_GROUP };
    let arity = 2; // the shape behind the paper's arithmetic

    println!("=== Mykil reproduction report ===");
    println!("group size n = {n}, tree arity = {arity} (paper arithmetic)");
    println!();

    println!("--- Figure 8: key bytes for one leave event (measured) ---");
    println!("{:>6} {:>12} {:>8} {:>8}", "areas", "iolus", "lkh", "mykil");
    for r in fig8_measured(n, arity) {
        println!(
            "{:>6} {:>12} {:>8} {:>8}",
            r.areas, r.iolus, r.lkh, r.mykil
        );
    }
    println!();

    println!("--- Figure 8 (analytic cross-check, paper arithmetic) ---");
    println!("{:>6} {:>12} {:>8} {:>8}", "areas", "iolus", "lkh", "mykil");
    for r in fig8_analytic(n) {
        println!(
            "{:>6} {:>12} {:>8} {:>8}",
            r.areas, r.iolus, r.lkh, r.mykil
        );
    }
    println!();

    println!("--- Figure 9: zoom on LKH vs Mykil (measured) ---");
    println!("{:>6} {:>8} {:>8}", "areas", "lkh", "mykil");
    for r in fig8_measured(n, arity) {
        println!("{:>6} {:>8} {:>8}", r.areas, r.lkh, r.mykil);
    }
    println!();

    println!("--- Figure 8 extension: leave cost vs group size to 1M (analytic) ---");
    println!(
        "{:>9} {:>6} {:>12} {:>8} {:>8}",
        "members", "areas", "iolus", "lkh", "mykil"
    );
    for r in fig8_group_size_sweep() {
        println!(
            "{:>9} {:>6} {:>12} {:>8} {:>8}",
            r.members, r.areas, r.iolus, r.lkh, r.mykil
        );
    }
    println!();

    println!("--- Figure 10: ten aggregated leaves (measured key bytes) ---");
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "areas", "lkh_seq", "mykil_best", "mykil_worst"
    );
    for r in fig10_measured(n, 10, arity) {
        println!(
            "{:>6} {:>10} {:>12} {:>12}",
            r.areas, r.lkh_sequential, r.mykil_best, r.mykil_worst
        );
    }
    println!();

    println!("--- Section V-A: storage (measured, bytes of symmetric keys) ---");
    println!("{:>8} {:>12} {:>14}", "protocol", "per-member", "per-controller");
    for r in storage_measured(n, 20, arity) {
        println!(
            "{:>8} {:>12} {:>14}",
            r.protocol, r.member_bytes, r.controller_bytes
        );
    }
    println!();

    println!("--- Section V-B: members updating k keys on one leave ---");
    for (name, dist) in cpu_table(n, 20) {
        let head: Vec<String> = dist
            .iter()
            .take(5)
            .map(|b| format!("{}x{}keys", b.members, b.keys_updated))
            .collect();
        println!(
            "{:>8}: {} ... (affected={}, mean keys/affected={:.2})",
            name,
            head.join(", "),
            cpu::members_affected(&dist),
            cpu::mean_updates_per_affected(&dist),
        );
    }
    println!();

    println!("--- Section V-C: join unicast key-path size ---");
    let p = mykil_analysis::Params { members: n, ..mykil_analysis::Params::paper() };
    println!(
        "lkh  : {} bytes (paper: 16*17 = 272 B)",
        mykil_analysis::bandwidth::lkh_join_unicast_bytes(&p)
    );
    println!(
        "mykil: {} bytes (paper: 16*12 ~ 192 B)",
        mykil_analysis::bandwidth::mykil_join_unicast_bytes(&p)
    );
    println!();

    println!("--- Section III-E: batching savings (full protocol sim) ---");
    let (batched, immediate) = batching_savings(7, if quick { 3 } else { 5 });
    println!(
        "key-update bytes: batched={batched}, immediate={immediate} (saved {:.0}%)",
        100.0 * (1.0 - batched as f64 / immediate as f64)
    );
    println!();

    println!("--- Section V-D: join/rejoin latency (simulated P-III 1 GHz, RSA-2048) ---");
    let lat = vd_latency();
    println!("join            : {:.3} s   (paper: ~0.45 s)", lat.join_s);
    println!(
        "join + blinding : {:.3} s   (paper: +~0.01 s)",
        lat.join_blinding_s
    );
    println!("rejoin          : {:.3} s   (paper: ~0.40 s)", lat.rejoin_s);
    println!(
        "rejoin w/o 4-5  : {:.3} s   (paper: ~0.28 s)",
        lat.rejoin_fast_s
    );
    println!();

    println!("--- Section V-E: hand-held data cipher throughput ---");
    let mb = if quick { 4 } else { 16 };
    let mbps = ve_rc4_throughput_mb_s(mb);
    println!(
        "rc4 over {mb} MB: {mbps:.1} MB/s (paper: ~50 MB/s on a 600 MHz Celeron; \
         a 16 MB file took ~0.32 s)"
    );
    println!();

    println!("--- Section V-D (analytic cross-check) ---");
    for (name, seconds) in mykil_analysis::latency::paper_predictions() {
        println!("{name:>12}: {seconds:.3} s predicted from critical-path RSA ops");
    }
    println!();

    println!("--- Churn workloads (macro-benchmark, key bytes) ---");
    let wl_n = if quick { 4_000 } else { 20_000 };
    let schedules = [
        ("steady (20 rounds, 5 join + 5 leave)",
         ChurnSchedule::steady(1, wl_n, 20, 5, 5)),
        ("flash crowd (500 joins)", ChurnSchedule::flash_crowd(wl_n, 500, 0)),
        ("end-of-month (200 cancellations)",
         ChurnSchedule::end_of_month(2, wl_n, 200)),
    ];
    for (label, schedule) in &schedules {
        let mut rng = Drbg::from_seed(0xC0FFEE);
        let mut iolus = IolusGroup::new(16);
        mykil_baselines::populate(&mut iolus, wl_n / 20, &mut rng);
        let mut lkh = FlatLkh::new(TreeConfig::binary(), &mut rng);
        mykil_baselines::populate(&mut lkh, wl_n, &mut rng);
        let mut mykil = MykilModel::new(20, TreeConfig::binary(), &mut rng);
        mykil_baselines::populate(&mut mykil, wl_n, &mut rng);
        let mut mykil_unagg = mykil.clone();

        let ti = replay(&mut iolus, schedule, &mut rng).total_key_bytes();
        let tl = replay(&mut lkh, schedule, &mut rng).total_key_bytes();
        let tm = replay(&mut mykil, schedule, &mut rng).total_key_bytes();
        let tmu = replay_unaggregated(&mut mykil_unagg, schedule, &mut rng).total_key_bytes();
        println!("{label}:");
        println!(
            "    iolus={ti}  lkh={tl}  mykil={tm}  mykil-unaggregated={tmu}"
        );
    }
    println!();

    println!("--- Ablation: tree arity (leave bytes at area=5000) ---");
    for arity in [2usize, 4, 8] {
        let rows = fig8_measured(if quick { 10_000 } else { n }, arity);
        let last = rows.last().unwrap();
        println!("arity {arity}: mykil leave = {} bytes at 20 areas", last.mykil);
    }
    println!();

    println!("--- Ablation: keep-vacant-leaves vs prune-on-leave (Section III-D) ---");
    let (keep, prune) = vacant_leaf_ablation(if quick { 2_000 } else { 5_000 }, 200);
    println!("over 200 leave+join cycles:");
    println!(
        "  keep : join-unicast={}B leave-multicast={}B nodes={}",
        keep.join_unicast_bytes, keep.leave_multicast_bytes, keep.final_nodes
    );
    println!(
        "  prune: join-unicast={}B leave-multicast={}B nodes={}",
        prune.join_unicast_bytes, prune.leave_multicast_bytes, prune.final_nodes
    );
    println!(
        "  (bandwidth is near-neutral in 1:1 churn; the keep rule avoids \
splits when joins burst after correlated leaves, at the cost of \
retaining empty nodes)"
    );
    println!();
    println!("=== end of report ===");
}
