//! The registration server (steps 1–5 of the join protocol, Figure 3).
//!
//! The registration server authenticates prospective members with a
//! challenge–response handshake, checks their authorization information
//! against an [`AuthDb`], assigns them a
//! [`ClientId`] and an area, and introduces them to that area's
//! controller — steps 4 and 5 run back-to-back after the client's
//! step-3 response verifies.

use crate::auth::{AuthDb, AuthDecision};
use crate::config::MykilConfig;
use crate::crypto_cost::CryptoCost;
use crate::directory::{AcDirectory, AcInfo};
use crate::error::ProtocolError;
use crate::identity::{AreaId, ClientId};
use crate::msg::Msg;
use crate::wire::{Reader, Writer};
use mykil_crypto::envelope::HybridCiphertext;
use mykil_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use mykil_net::{Context, Node, NodeId, Time};
use rand::RngCore;
use std::collections::HashMap;

/// A join handshake in flight at the registration server.
#[derive(Debug)]
struct PendingJoin {
    client_pub: RsaPublicKey,
    nonce_wc: u64,
    granted: mykil_net::Duration,
    started: Time,
}

/// Counters exposed for tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistrationStats {
    /// Join handshakes completed (through step 5).
    pub joins_completed: u64,
    /// Authorization rejections at step 1.
    pub denied: u64,
    /// Messages that failed to decrypt or verify.
    pub rejected_messages: u64,
}

/// The registration server node.
pub struct RegistrationServer {
    cfg: MykilConfig,
    cost: CryptoCost,
    keypair: RsaKeyPair,
    auth: Box<dyn AuthDb>,
    directory: AcDirectory,
    pending: HashMap<NodeId, PendingJoin>,
    next_client: u64,
    next_area: usize,
    /// Backup-controller public keys per area, for takeover validation.
    backup_keys: HashMap<AreaId, RsaPublicKey>,
    /// Counters exposed for tests and reports.
    pub stats: RegistrationStats,
}

impl std::fmt::Debug for RegistrationServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistrationServer")
            .field("areas", &self.directory.entries.len())
            .field("pending", &self.pending.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl RegistrationServer {
    /// Creates a registration server with a pre-generated key pair, an
    /// authorization backend, and the AC directory.
    pub fn new(
        cfg: MykilConfig,
        cost: CryptoCost,
        keypair: RsaKeyPair,
        auth: Box<dyn AuthDb>,
        directory: AcDirectory,
    ) -> Self {
        RegistrationServer {
            cfg,
            cost,
            keypair,
            auth,
            directory,
            pending: HashMap::new(),
            next_client: 1,
            next_area: 0,
            backup_keys: HashMap::new(),
            stats: RegistrationStats::default(),
        }
    }

    /// Registers the backup controller key for an area so a takeover
    /// announcement from it will be accepted.
    pub fn register_backup(&mut self, area: AreaId, key: RsaPublicKey) {
        self.backup_keys.insert(area, key);
    }

    /// The server's public key (well known, per the paper's assumption).
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keypair.public()
    }

    /// Current directory (tests inspect takeover updates).
    pub fn directory(&self) -> &AcDirectory {
        &self.directory
    }

    /// Chooses an area for a new member. The paper allows proximity or
    /// load-based policies; round-robin stands in for load balancing.
    fn pick_area(&mut self) -> AcInfo {
        let info = self.directory.entries[self.next_area % self.directory.entries.len()].clone();
        self.next_area += 1;
        info
    }

    fn handle_join1(&mut self, ctx: &mut Context<'_>, from: NodeId, ct: &[u8]) {
        // Decrypt {auth_info, Pub_k, Nonce_CW} (one private op).
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Ok(hc) = HybridCiphertext::from_bytes(ct) else {
            self.stats.rejected_messages += 1;
            return;
        };
        let Ok(plain) = hc.decrypt(&self.keypair) else {
            self.stats.rejected_messages += 1;
            return;
        };
        let parsed = (|| -> Result<_, ProtocolError> {
            let mut r = Reader::new(&plain);
            let auth_info = r.bytes()?.to_vec();
            let pubkey = r.bytes()?.to_vec();
            let nonce_cw = r.u64()?;
            r.finish()?;
            Ok((auth_info, pubkey, nonce_cw))
        })();
        let Ok((auth_info, pubkey, nonce_cw)) = parsed else {
            self.stats.rejected_messages += 1;
            return;
        };
        let Ok(client_pub) = RsaPublicKey::from_bytes(&pubkey) else {
            self.stats.rejected_messages += 1;
            return;
        };
        let granted = match self.auth.authorize(&auth_info) {
            AuthDecision::Granted { duration } => duration,
            AuthDecision::Denied => {
                self.stats.denied += 1;
                return;
            }
        };
        // Step 2: {Nonce_CW+1, Nonce_WC} to the client.
        let nonce_wc = ctx.rng().next_u64();
        let mut w = Writer::new();
        w.u64(nonce_cw.wrapping_add(1)).u64(nonce_wc);
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(reply) = HybridCiphertext::encrypt(&client_pub, &w.into_bytes(), ctx.rng()) else {
            return;
        };
        self.pending.insert(
            from,
            PendingJoin {
                client_pub,
                nonce_wc,
                granted,
                started: ctx.now(),
            },
        );
        ctx.send(from, "join", Msg::Join2 { ct: reply.to_bytes() }.to_bytes());
    }

    fn handle_join3(&mut self, ctx: &mut Context<'_>, from: NodeId, ct: &[u8]) {
        let Some(pending) = self.pending.remove(&from) else {
            self.stats.rejected_messages += 1;
            return;
        };
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let ok = HybridCiphertext::from_bytes(ct)
            .and_then(|hc| hc.decrypt(&self.keypair))
            .ok()
            .and_then(|plain| {
                let mut r = Reader::new(&plain);
                let v = r.u64().ok()?;
                r.finish().ok()?;
                Some(v)
            })
            .map(|v| v == pending.nonce_wc.wrapping_add(1))
            .unwrap_or(false);
        if !ok {
            self.stats.rejected_messages += 1;
            return;
        }

        // Client is authenticated and authorized. Assign identity/area.
        let client = ClientId(self.next_client);
        self.next_client += 1;
        let ac = self.pick_area();
        let Ok(ac_pub) = RsaPublicKey::from_bytes(&ac.pubkey) else {
            return;
        };
        let nonce_ac = ctx.rng().next_u64();
        let now_us = ctx.now().as_micros();

        // Step 4 → AC: {Nonce_AC, K_id, ts, Pub_k, membership duration},
        // encrypted to the AC and signed by the RS.
        let mut w = Writer::new();
        w.u64(nonce_ac)
            .u64(client.0)
            .u64(now_us)
            .bytes(&pending.client_pub.to_bytes())
            .u64(pending.granted.as_micros());
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct4) = HybridCiphertext::encrypt(&ac_pub, &w.into_bytes(), ctx.rng()) else {
            return;
        };
        let ct4 = ct4.to_bytes();
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig4 = self.keypair.sign(&ct4);
        ctx.send(
            NodeId::from_index(ac.node as usize),
            "join",
            Msg::Join4 { ct: ct4, sig: sig4 }.to_bytes(),
        );

        // Step 5 → client: {Nonce_AC+1, area, AC address+key, directory},
        // encrypted to the client and signed by the RS.
        let mut w = Writer::new();
        w.u64(nonce_ac.wrapping_add(1))
            .u32(ac.area.0)
            .u32(ac.node)
            .bytes(&ac.pubkey);
        self.directory.write(&mut w);
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct5) = HybridCiphertext::encrypt(&pending.client_pub, &w.into_bytes(), ctx.rng())
        else {
            return;
        };
        let ct5 = ct5.to_bytes();
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig5 = self.keypair.sign(&ct5);
        ctx.send(from, "join", Msg::Join5 { ct: ct5, sig: sig5 }.to_bytes());

        self.stats.joins_completed += 1;
        let _ = pending.started; // reserved for latency metrics
        ctx.stats().bump("rs-joins", 1);
    }

    fn handle_takeover(&mut self, area: AreaId, sig: &[u8], pubkey: &[u8], from: NodeId) {
        // The backup signs the area id with its own key; the RS trusts
        // the key it was configured with at deployment (the directory
        // carries primary keys, so the builder registers backup keys via
        // `register_backup`).
        let Some(expected) = self.backup_keys.get(&area) else {
            self.stats.rejected_messages += 1;
            return;
        };
        let Ok(pk) = RsaPublicKey::from_bytes(pubkey) else {
            self.stats.rejected_messages += 1;
            return;
        };
        if pk != *expected {
            self.stats.rejected_messages += 1;
            return;
        }
        let mut w = Writer::new();
        w.u32(area.0);
        if !pk.verify(&w.into_bytes(), sig) {
            self.stats.rejected_messages += 1;
            return;
        }
        self.directory.upsert(AcInfo {
            area,
            node: from.index() as u32,
            pubkey: pubkey.to_vec(),
        });
    }
}

impl Node for RegistrationServer {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
        let Ok(msg) = Msg::from_bytes(bytes) else {
            self.stats.rejected_messages += 1;
            return;
        };
        match msg {
            Msg::Join1 { ct } => self.handle_join1(ctx, from, &ct),
            Msg::Join3 { ct } => self.handle_join3(ctx, from, &ct),
            Msg::Takeover { area, sig, pubkey } => {
                self.handle_takeover(area, &sig, &pubkey, from)
            }
            // Everything else belongs to ACs, members, or replicas; the
            // RS counts it as rejected (listed explicitly so a new wire
            // message fails to compile until triaged here).
            Msg::Join2 { .. }
            | Msg::Join4 { .. }
            | Msg::Join5 { .. }
            | Msg::Join6 { .. }
            | Msg::Join7 { .. }
            | Msg::Rejoin1 { .. }
            | Msg::Rejoin2 { .. }
            | Msg::Rejoin3 { .. }
            | Msg::Rejoin4 { .. }
            | Msg::Rejoin5 { .. }
            | Msg::Rejoin6 { .. }
            | Msg::RejoinDenied { .. }
            | Msg::AreaJoinReq { .. }
            | Msg::AreaJoinAck { .. }
            | Msg::KeyUpdate { .. }
            | Msg::KeyUnicast { .. }
            | Msg::KeyRefreshRequest { .. }
            | Msg::LeaveRequest { .. }
            | Msg::Data { .. }
            | Msg::AcAlive { .. }
            | Msg::MemberAlive { .. }
            | Msg::Heartbeat { .. }
            | Msg::HeartbeatAck { .. }
            | Msg::StateSync { .. }
            | Msg::Demote { .. } => {
                self.stats.rejected_messages += 1;
            }
        }
    }

    fn on_restarted(&mut self, ctx: &mut Context<'_>) {
        // A crash forgets every handshake in flight. Surfacing that
        // honestly (instead of resuming with half-valid nonce state)
        // lets clients time out, retry step 1, and complete against the
        // fresh table.
        let dropped = self.pending.len() as u64;
        self.pending.clear();
        if dropped > 0 {
            ctx.stats().bump("rs-pending-dropped", dropped);
        }
        ctx.stats().bump("rs-restarts", 1);
    }
}
