//! Key-update wire format and the member-side key store.
//!
//! An area controller turns a [`RekeyPlan`] into a list of
//! [`WireKeyEntry`]s — one per encrypted key copy, each a sealed
//! envelope of the new key under the protecting key — and multicasts
//! them in a signed [`Msg::KeyUpdate`](crate::msg::Msg). Members feed
//! the entries to their [`KeyState`], which learns exactly the keys it
//! can decrypt — the executable form of the paper's Figure 5/6
//! semantics.

use crate::error::ProtocolError;
use crate::wire::{Reader, Writer};
use mykil_crypto::envelope;
use mykil_crypto::keys::SymmetricKey;
use mykil_tree::{EncryptUnder, RekeyPlan};
use rand::RngCore;
use std::collections::BTreeMap;

/// Which stored key a receiver should try for an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnderTag {
    /// The previous key of the same node (join-style update).
    PrevSelf,
    /// The key of the given child node (leave-style update).
    Child(u32),
}

/// One encrypted key copy inside a key-update multicast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireKeyEntry {
    /// The tree node whose key changed.
    pub node: u32,
    /// Hint for which stored key decrypts this entry.
    pub under: UnderTag,
    /// `seal(protecting_key, new_key_bytes)`.
    pub env: Vec<u8>,
}

/// Builds wire entries from a rekey plan (sealing each new key under
/// each protecting key).
pub fn entries_from_plan<R: RngCore + ?Sized>(plan: &RekeyPlan, rng: &mut R) -> Vec<WireKeyEntry> {
    let mut out = Vec::with_capacity(plan.encryption_count());
    for change in &plan.changes {
        for (under, key) in &change.encryptions {
            let tag = match under {
                EncryptUnder::PreviousSelf => UnderTag::PrevSelf,
                EncryptUnder::Child(c) => UnderTag::Child(c.raw() as u32),
            };
            out.push(WireKeyEntry {
                node: change.node.raw() as u32,
                under: tag,
                env: envelope::seal(key, change.new_key.as_bytes(), rng),
            });
        }
    }
    out
}

/// Serializes entries into a key-update body.
pub fn encode_entries(entries: &[WireKeyEntry]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(entries.len() as u32);
    for e in entries {
        w.u32(e.node);
        match e.under {
            UnderTag::PrevSelf => {
                w.u8(0);
            }
            UnderTag::Child(c) => {
                w.u8(1).u32(c);
            }
        }
        w.bytes(&e.env);
    }
    w.into_bytes()
}

/// Parses a key-update body.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] on truncation or bad tags.
pub fn decode_entries(bytes: &[u8]) -> Result<Vec<WireKeyEntry>, ProtocolError> {
    let mut r = Reader::new(bytes);
    let count = r.u32()? as usize;
    if count > 1 << 20 {
        return Err(ProtocolError::Malformed("entry count"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let node = r.u32()?;
        let under = match r.u8()? {
            0 => UnderTag::PrevSelf,
            1 => UnderTag::Child(r.u32()?),
            _ => return Err(ProtocolError::Malformed("under tag")),
        };
        out.push(WireKeyEntry {
            node,
            under,
            env: r.bytes()?.to_vec(),
        });
    }
    r.finish()?;
    Ok(out)
}

/// Serializes a unicast key path (`(node, key)` pairs, leaf first).
pub fn encode_path(path: &[(u32, SymmetricKey)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(path.len() as u32);
    for (node, key) in path {
        w.u32(*node).raw(key.as_bytes());
    }
    w.into_bytes()
}

/// Parses a unicast key path.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] on truncation.
pub fn decode_path(bytes: &[u8]) -> Result<Vec<(u32, SymmetricKey)>, ProtocolError> {
    let mut r = Reader::new(bytes);
    let count = r.u32()? as usize;
    if count > 1 << 16 {
        return Err(ProtocolError::Malformed("path length"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let node = r.u32()?;
        let key: [u8; 16] = r.array()?;
        out.push((node, SymmetricKey::from_bytes(key)));
    }
    r.finish()?;
    Ok(out)
}

/// The tree node index of the area key (the root is always node 0).
pub const AREA_KEY_NODE: u32 = 0;

/// Result of applying a key-update multicast to a [`KeyState`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Entries successfully decrypted and installed.
    pub learned: usize,
    /// Entries whose protecting key we hold a *stale* copy of —
    /// evidence that an earlier update was missed.
    pub stale: usize,
}

/// How many superseded area keys are retained for late-arriving data.
///
/// A key update and a data packet multicast back-to-back can be
/// reordered by network jitter; the paper's TCP transport hid this, the
/// simulator does not. Retaining a few previous area keys lets
/// receivers unwrap `K_r` from data sealed just before a rotation.
pub const AREA_KEY_HISTORY: usize = 8;

/// A member's (or downstream AC's) current view of one area's keys.
#[derive(Debug, Clone, Default)]
pub struct KeyState {
    keys: BTreeMap<u32, SymmetricKey>,
    previous_roots: std::collections::VecDeque<SymmetricKey>,
}

impl KeyState {
    /// An empty key store.
    pub fn new() -> KeyState {
        KeyState::default()
    }

    /// Installs a unicast key path (join step 7 / rejoin step 6).
    pub fn install_path(&mut self, path: &[(u32, SymmetricKey)]) {
        for (node, key) in path {
            if *node == AREA_KEY_NODE {
                self.note_root_change(key.clone());
            }
            self.keys.insert(*node, key.clone());
        }
    }

    fn note_root_change(&mut self, new: SymmetricKey) {
        if let Some(old) = self.keys.get(&AREA_KEY_NODE) {
            if *old != new {
                self.previous_roots.push_front(old.clone());
                self.previous_roots.truncate(AREA_KEY_HISTORY);
            }
        }
    }

    /// Applies a key-update multicast: for each entry, if the protecting
    /// key is held, the envelope opens and the new key is stored.
    pub fn apply_entries(&mut self, entries: &[WireKeyEntry]) -> ApplyOutcome {
        let mut outcome = ApplyOutcome::default();
        for e in entries {
            let trial = match e.under {
                UnderTag::PrevSelf => self.keys.get(&e.node),
                UnderTag::Child(c) => self.keys.get(&c),
            };
            let Some(trial) = trial.cloned() else { continue };
            match envelope::open(&trial, &e.env) {
                Ok(plain) => {
                    if let Ok(raw) = <[u8; 16]>::try_from(plain.as_slice()) {
                        let new = SymmetricKey::from_bytes(raw);
                        if e.node == AREA_KEY_NODE {
                            self.note_root_change(new.clone());
                        }
                        self.keys.insert(e.node, new);
                        outcome.learned += 1;
                    }
                }
                Err(_) => {
                    // We hold a key for the protecting node but it does
                    // not open this entry: our copy is stale (we missed
                    // an earlier update).
                    outcome.stale += 1;
                }
            }
        }
        outcome
    }

    /// The current area key, if known.
    pub fn area_key(&self) -> Option<SymmetricKey> {
        self.keys.get(&AREA_KEY_NODE).cloned()
    }

    /// The current area key followed by recently superseded ones
    /// (newest first) — the set a receiver tries when unwrapping data.
    pub fn area_keys_with_history(&self) -> Vec<SymmetricKey> {
        let mut out = Vec::with_capacity(1 + self.previous_roots.len());
        out.extend(self.area_key());
        out.extend(self.previous_roots.iter().cloned());
        out
    }

    /// Number of keys held (the storage metric of Section V-A).
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Removes everything (member left the area).
    pub fn clear(&mut self) {
        self.keys.clear();
    }

    /// Serializes the key store (used by AC replication).
    pub fn to_bytes(&self) -> Vec<u8> {
        let path: Vec<(u32, SymmetricKey)> =
            self.keys.iter().map(|(n, k)| (*n, k.clone())).collect();
        encode_path(&path)
    }

    /// Restores a key store serialized by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<KeyState, ProtocolError> {
        let mut st = KeyState::new();
        st.install_path(&decode_path(bytes)?);
        Ok(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mykil_crypto::drbg::Drbg;
    use mykil_tree::{KeyTree, MemberId, TreeConfig};

    #[test]
    fn entries_round_trip() {
        let mut rng = Drbg::from_seed(1);
        let mut tree = KeyTree::new(TreeConfig::binary(), &mut rng);
        for m in 0..8 {
            tree.join(MemberId(m), &mut rng).unwrap();
        }
        let plan = tree.leave(MemberId(3), &mut rng).unwrap();
        let entries = entries_from_plan(&plan, &mut rng);
        assert_eq!(entries.len(), plan.encryption_count());
        let bytes = encode_entries(&entries);
        assert_eq!(decode_entries(&bytes).unwrap(), entries);
        assert!(decode_entries(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn path_round_trip() {
        let path = vec![
            (5u32, SymmetricKey::from_label("a")),
            (2, SymmetricKey::from_label("b")),
            (0, SymmetricKey::from_label("c")),
        ];
        let bytes = encode_path(&path);
        assert_eq!(decode_path(&bytes).unwrap(), path);
        assert!(decode_path(&bytes[..7]).is_err());
    }

    /// Full distribution flow over real envelopes: members track the
    /// area key through joins and leaves; departed members cannot.
    #[test]
    fn keystate_tracks_area_key_through_churn() {
        let mut rng = Drbg::from_seed(2);
        let mut tree = KeyTree::new(TreeConfig::quad(), &mut rng);
        let mut states: BTreeMap<u64, KeyState> = BTreeMap::new();

        for m in 0..12u64 {
            let plan = tree.join(MemberId(m), &mut rng).unwrap();
            let entries = entries_from_plan(&plan, &mut rng);
            for st in states.values_mut() {
                st.apply_entries(&entries);
            }
            for u in &plan.unicasts {
                let path: Vec<(u32, SymmetricKey)> = u
                    .keys
                    .iter()
                    .map(|(n, k)| (n.raw() as u32, k.clone()))
                    .collect();
                states
                    .entry(u.member.0)
                    .or_default()
                    .install_path(&path);
            }
        }
        for st in states.values() {
            assert_eq!(st.area_key(), Some(tree.area_key()));
        }

        // One member leaves; the rest keep up, the departed one stalls.
        let plan = tree.leave(MemberId(4), &mut rng).unwrap();
        let entries = entries_from_plan(&plan, &mut rng);
        let mut departed = states.remove(&4).unwrap();
        assert_eq!(departed.apply_entries(&entries).learned, 0);
        assert_ne!(departed.area_key(), Some(tree.area_key()));
        for (m, st) in states.iter_mut() {
            st.apply_entries(&entries);
            assert_eq!(st.area_key(), Some(tree.area_key()), "member {m}");
        }
    }

    #[test]
    fn garbage_envelope_ignored() {
        let mut st = KeyState::new();
        st.install_path(&[(0, SymmetricKey::from_label("root"))]);
        let outcome = st.apply_entries(&[WireKeyEntry {
            node: 0,
            under: UnderTag::PrevSelf,
            env: vec![0u8; 50],
        }]);
        assert_eq!(outcome.learned, 0);
        assert_eq!(outcome.stale, 1, "held-but-unopenable must flag staleness");
        assert_eq!(st.area_key(), Some(SymmetricKey::from_label("root")));
    }

    #[test]
    fn clear_and_counters() {
        let mut st = KeyState::new();
        assert_eq!(st.key_count(), 0);
        assert_eq!(st.area_key(), None);
        st.install_path(&[(0, SymmetricKey::from_label("x")), (3, SymmetricKey::from_label("y"))]);
        assert_eq!(st.key_count(), 2);
        st.clear();
        assert_eq!(st.key_count(), 0);
    }
}
