//! Addition and subtraction for [`BigUint`].
//!
//! `+` is total; `-` panics on underflow (documented below) and a
//! non-panicking [`BigUint::checked_sub`] is provided for callers that
//! need to handle the borrow case.

use super::BigUint;
use std::ops::{Add, Sub};

impl BigUint {
    /// Adds `other` into `self` in place.
    pub(crate) fn add_assign_ref(&mut self, other: &BigUint) {
        if self.limbs.len() < other.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, dst) in self.limbs.iter_mut().enumerate() {
            let sum = *dst as u64 + other.limbs.get(i).copied().unwrap_or(0) as u64 + carry;
            *dst = sum as u32;
            carry = sum >> 32;
            if carry == 0 && i >= other.limbs.len() {
                break;
            }
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
        }
    }

    /// Subtracts `other` from `self`, returning `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let mut borrow = 0i64;
        for (i, dst) in limbs.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0) as i64;
            let mut diff = *dst as i64 - rhs - borrow;
            if diff < 0 {
                diff += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            *dst = diff as u32;
            if borrow == 0 && i >= other.limbs.len() {
                break;
            }
        }
        debug_assert_eq!(borrow, 0, "underflow despite ordering check");
        Some(BigUint::from_limbs(limbs))
    }

    /// Adds a single `u32` in place (used for incrementing nonces and
    /// building constants).
    pub fn add_u32_assign(&mut self, v: u32) {
        let mut carry = v as u64;
        for dst in self.limbs.iter_mut() {
            if carry == 0 {
                return;
            }
            let sum = *dst as u64 + carry;
            *dst = sum as u32;
            carry = sum >> 32;
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
        }
    }
}

impl Add for &BigUint {
    type Output = BigUint;

    fn add(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl Add for BigUint {
    type Output = BigUint;

    fn add(mut self, rhs: BigUint) -> BigUint {
        self.add_assign_ref(&rhs);
        self
    }
}

impl Add<&BigUint> for BigUint {
    type Output = BigUint;

    fn add(mut self, rhs: &BigUint) -> BigUint {
        self.add_assign_ref(rhs);
        self
    }
}

impl Sub for &BigUint {
    type Output = BigUint;

    /// # Panics
    ///
    /// Panics when `rhs > self`; use [`BigUint::checked_sub`] to handle
    /// underflow without panicking.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Sub for BigUint {
    type Output = BigUint;

    /// # Panics
    ///
    /// Panics when `rhs > self`.
    fn sub(self, rhs: BigUint) -> BigUint {
        (&self) - (&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let sum = &a + &b;
        assert_eq!(sum.to_string(), "10000000000000000");
        assert_eq!(&sum - &b, a);
    }

    #[test]
    fn add_zero_is_identity() {
        let a = BigUint::from(0x1234_5678_9abc_def0_u64);
        assert_eq!(&a + &BigUint::zero(), a);
        assert_eq!(&BigUint::zero() + &a, a);
    }

    #[test]
    fn sub_to_zero() {
        let a = BigUint::from(42_u64);
        assert!((&a - &a).is_zero());
    }

    #[test]
    fn checked_sub_underflow() {
        let a = BigUint::from(1_u64);
        let b = BigUint::from(2_u64);
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(b.checked_sub(&a), Some(BigUint::one()));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = &BigUint::one() - &BigUint::from(2_u64);
    }

    #[test]
    fn sub_with_borrow_chain() {
        // 2^96 - 1 requires borrows across all limbs.
        let mut big = BigUint::zero();
        big.set_bit(96);
        let r = &big - &BigUint::one();
        assert_eq!(r.to_string(), "ffffffffffffffffffffffff");
        assert_eq!(&r + &BigUint::one(), big);
    }

    #[test]
    fn add_u32_assign_carries() {
        let mut n = BigUint::from(u32::MAX);
        n.add_u32_assign(1);
        assert_eq!(n.to_u64(), Some(1 << 32));
        let mut z = BigUint::zero();
        z.add_u32_assign(0);
        assert!(z.is_zero());
    }
}
