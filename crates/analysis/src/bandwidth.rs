//! Key-update bandwidth (Section V-C, Figures 8–10 of the paper).
//!
//! All sizes are bytes of encrypted key material in the rekey messages
//! triggered by one membership event — the quantity on the y-axis of
//! Figures 8, 9 and 10.

use crate::Params;

/// Iolus, leave event: the subgroup controller re-encrypts the new
/// subgroup key under each remaining member's pairwise key —
/// `area_size` separate 16-byte payloads (80,000 bytes for a 5,000
/// member area, the paper's number).
pub fn iolus_leave_bytes(p: &Params) -> u64 {
    p.area_size() * p.key_len
}

/// Tree-based leave rekey: each key on the leaf-to-root path is
/// re-encrypted under each of its children's keys —
/// `arity · height · key_len` (the paper's `2·17·16 = 544` for LKH and
/// `2·12·16 = 384` for a Mykil area, binary trees).
fn tree_leave_bytes(p: &Params, leaves: u64) -> u64 {
    p.arity * p.tree_height(leaves) * p.key_len
}

/// LKH, leave event: one global tree over all members.
pub fn lkh_leave_bytes(p: &Params) -> u64 {
    tree_leave_bytes(p, p.members)
}

/// Mykil, leave event: a tree over one area only.
pub fn mykil_leave_bytes(p: &Params) -> u64 {
    tree_leave_bytes(p, p.area_size())
}

/// Join event, multicast part: all three protocols multicast one
/// re-encrypted group/area key.
pub fn join_multicast_bytes(p: &Params) -> u64 {
    p.key_len
}

/// Join event, unicast key path to the newcomer (LKH and Mykil only;
/// the paper's `16·17 = 272 B` for LKH, `16·12` for a Mykil area).
pub fn tree_join_unicast_bytes(p: &Params, leaves: u64) -> u64 {
    p.tree_height(leaves) * p.key_len
}

/// LKH join unicast.
pub fn lkh_join_unicast_bytes(p: &Params) -> u64 {
    tree_join_unicast_bytes(p, p.members)
}

/// Mykil join unicast.
pub fn mykil_join_unicast_bytes(p: &Params) -> u64 {
    tree_join_unicast_bytes(p, p.area_size())
}

/// Aggregated leave of `k` members, *best case*: all departed leaves
/// share parents as densely as possible, so the union of paths is one
/// subtree path — approximately the cost of a single leave plus the
/// extra sibling re-encryptions near the bottom.
pub fn mykil_batch_leave_bytes_best(p: &Params, k: u64) -> u64 {
    if k == 0 {
        return 0;
    }
    let h = p.tree_height(p.area_size());
    // The k leaves fill ceil(log_arity(k)) bottom levels entirely; the
    // remaining path to the root is refreshed once.
    let bottom = p.tree_height(k.max(1));
    let shared = h.saturating_sub(bottom);
    // Bottom levels: every node above a departed leaf changes; counting
    // arity encryptions per changed node minus the vacated ones.
    let mut bottom_nodes = 0u64;
    let mut level = k;
    for _ in 0..bottom {
        level = level.div_ceil(p.arity);
        bottom_nodes += level;
    }
    (bottom_nodes + shared) * p.arity * p.key_len
}

/// Aggregated leave of `k` members, *worst case*: departed leaves are
/// spread so each path is disjoint until near the root — the union is
/// `k` nearly full paths that only merge in the top `log_arity(k)`
/// levels.
pub fn mykil_batch_leave_bytes_worst(p: &Params, k: u64) -> u64 {
    if k == 0 {
        return 0;
    }
    let h = p.tree_height(p.area_size());
    let merge = p.tree_height(k.max(1));
    let disjoint = h.saturating_sub(merge);
    // k disjoint path segments + a merged top (a full `merge`-level
    // subtree worth of nodes).
    let mut top_nodes = 0u64;
    let mut level = k;
    for _ in 0..merge {
        level = level.div_ceil(p.arity);
        top_nodes += level;
    }
    (k * disjoint + top_nodes) * p.arity * p.key_len
}

/// Unaggregated cost of `k` consecutive leaves (for the Figure 10
/// comparison): `k` independent leave rekeys.
pub fn mykil_sequential_leave_bytes(p: &Params, k: u64) -> u64 {
    k * mykil_leave_bytes(p)
}

/// One row of Figure 8/9: `(areas, iolus, lkh, mykil)` bytes for a
/// single leave event.
pub fn leave_bandwidth_row(p: &Params, areas: u64) -> (u64, u64, u64, u64) {
    let p = p.with_areas(areas);
    (
        areas,
        iolus_leave_bytes(&p),
        lkh_leave_bytes(&p),
        mykil_leave_bytes(&p),
    )
}

/// The x-axis of Figures 8–10.
pub const FIGURE_AREA_COUNTS: [u64; 9] = [1, 2, 4, 6, 8, 10, 12, 16, 20];

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Params {
        Params::paper()
    }

    #[test]
    fn paper_headline_numbers() {
        // Section V-C: 80,000 B Iolus (5,000-member area), 544 B LKH,
        // 384 B Mykil.
        assert_eq!(iolus_leave_bytes(&p()), 80_000);
        assert_eq!(lkh_leave_bytes(&p()), 2 * 17 * 16); // 544
        assert_eq!(mykil_leave_bytes(&p()), 2 * 13 * 16); // 416 (paper rounds to 12 levels = 384)
    }

    #[test]
    fn figure8_shape() {
        // Iolus explodes at few areas; LKH constant; Mykil declines.
        let rows: Vec<_> = FIGURE_AREA_COUNTS
            .iter()
            .map(|&a| leave_bandwidth_row(&p(), a))
            .collect();
        // At 1 area Iolus costs 1.6 MB (the paper's y-axis peak).
        assert_eq!(rows[0].1, 1_600_000);
        // LKH is flat across the sweep.
        assert!(rows.iter().all(|r| r.2 == rows[0].2));
        // Mykil is monotonically non-increasing and always <= LKH.
        for w in rows.windows(2) {
            assert!(w[1].3 <= w[0].3);
        }
        assert!(rows.iter().all(|r| r.3 <= r.2));
        // Iolus monotonically decreases but stays far above Mykil at 20.
        assert!(rows.last().unwrap().1 > 100 * rows.last().unwrap().3);
    }

    #[test]
    fn figure9_zoom_values() {
        // Mykil equals LKH at one area and drops below as areas grow.
        let one = leave_bandwidth_row(&p(), 1);
        assert_eq!(one.2, one.3);
        let twenty = leave_bandwidth_row(&p(), 20);
        assert!(twenty.3 < twenty.2);
        // Both stay in the 400-560 B window of Figure 9.
        for &a in &FIGURE_AREA_COUNTS {
            let r = leave_bandwidth_row(&p(), a);
            assert!((380..=560).contains(&r.2), "lkh {}", r.2);
            assert!((380..=560).contains(&r.3), "mykil {}", r.3);
        }
    }

    #[test]
    fn join_unicast_paper_numbers() {
        // Paper: 16*17 = 272 B for LKH; 16*12/13 for Mykil.
        assert_eq!(lkh_join_unicast_bytes(&p()), 272);
        assert_eq!(mykil_join_unicast_bytes(&p()), 208);
        assert_eq!(join_multicast_bytes(&p()), 16);
    }

    #[test]
    fn aggregation_saves_figure10() {
        // Ten consecutive leaves: aggregated (either placement) must
        // save substantially over ten sequential rekeys.
        let seq = mykil_sequential_leave_bytes(&p(), 10);
        let best = mykil_batch_leave_bytes_best(&p(), 10);
        let worst = mykil_batch_leave_bytes_worst(&p(), 10);
        assert!(best <= worst, "best {best} worst {worst}");
        assert!(worst < seq, "worst {worst} seq {seq}");
        // Paper claims 40-60% savings for typical batches; the best-case
        // placement (clustered departures, e.g. end-of-month
        // cancellations) saves well over half, the worst case still
        // saves something.
        assert!((best as f64) < 0.5 * seq as f64, "best {best} seq {seq}");
        assert!((worst as f64) < 0.85 * seq as f64, "worst {worst} seq {seq}");
    }

    #[test]
    fn batch_degenerates_to_single_leave() {
        let single = mykil_leave_bytes(&p());
        let b1 = mykil_batch_leave_bytes_best(&p(), 1);
        let w1 = mykil_batch_leave_bytes_worst(&p(), 1);
        // k=1 aggregates to approximately one leave (within one level).
        assert!(b1.abs_diff(single) <= p().arity * p().key_len);
        assert!(w1.abs_diff(single) <= p().arity * p().key_len);
        assert_eq!(mykil_batch_leave_bytes_best(&p(), 0), 0);
    }

    #[test]
    fn savings_grow_with_batch_size() {
        let p = p();
        let mut prev_ratio = 1.0f64;
        for k in [2u64, 5, 10, 20] {
            let seq = mykil_sequential_leave_bytes(&p, k) as f64;
            let agg = mykil_batch_leave_bytes_worst(&p, k) as f64;
            let ratio = agg / seq;
            assert!(ratio < prev_ratio, "k={k} ratio={ratio}");
            prev_ratio = ratio;
        }
    }
}
