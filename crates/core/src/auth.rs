//! Registration authorization.
//!
//! Step 1 of the join protocol carries "authorization information" that
//! the registration server uses to decide eligibility and membership
//! duration (the paper's example: credit-card data plus the requested
//! subscription period). The exact backend is outside Mykil's scope —
//! the paper says so explicitly — so we model it as the [`AuthDb`]
//! trait with an in-memory implementation.

use mykil_net::Duration;
use std::collections::BTreeMap;

/// Decision returned by an authorization backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthDecision {
    /// Admit, with the granted membership duration.
    Granted {
        /// How long the membership (and therefore the ticket) is valid.
        duration: Duration,
    },
    /// Reject.
    Denied,
}

/// An authorization backend consulted by the registration server.
pub trait AuthDb: Send {
    /// Evaluates the opaque authorization blob from join step 1.
    fn authorize(&mut self, auth_info: &[u8]) -> AuthDecision;
}

/// In-memory authorization database.
///
/// Tokens registered via [`InMemoryAuthDb::allow`] are granted their
/// configured duration; unknown tokens follow the default policy.
#[derive(Debug)]
pub struct InMemoryAuthDb {
    tokens: BTreeMap<Vec<u8>, AuthDecision>,
    default: AuthDecision,
}

impl InMemoryAuthDb {
    /// A database that admits every token for `default_duration`
    /// (convenient for simulations).
    pub fn allow_all(default_duration: Duration) -> Self {
        InMemoryAuthDb {
            tokens: BTreeMap::new(),
            default: AuthDecision::Granted {
                duration: default_duration,
            },
        }
    }

    /// A database that rejects unknown tokens.
    pub fn deny_by_default() -> Self {
        InMemoryAuthDb {
            tokens: BTreeMap::new(),
            default: AuthDecision::Denied,
        }
    }

    /// Registers a token with a granted duration.
    pub fn allow(&mut self, token: &[u8], duration: Duration) -> &mut Self {
        self.tokens.insert(
            token.to_vec(),
            AuthDecision::Granted { duration },
        );
        self
    }

    /// Explicitly blacklists a token.
    pub fn deny(&mut self, token: &[u8]) -> &mut Self {
        self.tokens.insert(token.to_vec(), AuthDecision::Denied);
        self
    }
}

impl AuthDb for InMemoryAuthDb {
    fn authorize(&mut self, auth_info: &[u8]) -> AuthDecision {
        self.tokens.get(auth_info).copied().unwrap_or(self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_all_grants_default_duration() {
        let mut db = InMemoryAuthDb::allow_all(Duration::from_secs(60));
        assert_eq!(
            db.authorize(b"anything"),
            AuthDecision::Granted {
                duration: Duration::from_secs(60)
            }
        );
    }

    #[test]
    fn deny_by_default_rejects_unknown() {
        let mut db = InMemoryAuthDb::deny_by_default();
        assert_eq!(db.authorize(b"mystery"), AuthDecision::Denied);
        db.allow(b"visa-4242", Duration::from_secs(3600));
        assert!(matches!(
            db.authorize(b"visa-4242"),
            AuthDecision::Granted { .. }
        ));
    }

    #[test]
    fn explicit_deny_overrides_allow_all() {
        let mut db = InMemoryAuthDb::allow_all(Duration::from_secs(60));
        db.deny(b"stolen-card");
        assert_eq!(db.authorize(b"stolen-card"), AuthDecision::Denied);
        assert!(matches!(db.authorize(b"ok"), AuthDecision::Granted { .. }));
    }
}
