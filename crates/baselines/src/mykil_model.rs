//! The algorithmic Mykil model: one auxiliary-key tree per area.
//!
//! This is the rekeying core of Mykil without the protocol plumbing
//! (handshakes, tickets, liveness), used for large-scale byte
//! accounting: the bandwidth figures depend only on which keys change
//! and how they are encrypted, which this model reproduces exactly.
//! Members are assigned to areas round-robin, mirroring the
//! registration server's load-balancing policy.

use crate::traffic::RekeyTraffic;
use crate::KeyManager;
use mykil_tree::{KeyTree, MemberId, RekeyPlan, TreeConfig, KEY_LEN};
use rand::RngCore;
use std::collections::BTreeMap;

/// Mykil's area-partitioned key manager.
#[derive(Debug, Clone)]
pub struct MykilModel {
    areas: Vec<KeyTree>,
    area_of: BTreeMap<MemberId, usize>,
    next_area: usize,
}

fn traffic_of(plan: &RekeyPlan) -> RekeyTraffic {
    RekeyTraffic {
        multicast_bytes: plan.multicast_bytes() as u64,
        multicast_messages: u64::from(!plan.changes.is_empty()),
        unicast_bytes: plan.unicast_bytes() as u64,
        unicast_messages: plan.unicasts.len() as u64,
    }
}

impl MykilModel {
    /// Creates a model with `areas` areas.
    ///
    /// # Panics
    ///
    /// Panics when `areas` is zero.
    pub fn new<R: RngCore + ?Sized>(areas: usize, cfg: TreeConfig, rng: &mut R) -> MykilModel {
        assert!(areas > 0, "at least one area required");
        MykilModel {
            areas: (0..areas).map(|_| KeyTree::new(cfg, rng)).collect(),
            area_of: BTreeMap::new(),
            next_area: 0,
        }
    }

    /// Number of areas.
    pub fn area_count(&self) -> usize {
        self.areas.len()
    }

    /// The area a member lives in.
    pub fn area_of(&self, member: MemberId) -> Option<usize> {
        self.area_of.get(&member).copied()
    }

    /// A specific area's tree (inspection).
    pub fn area_tree(&self, area: usize) -> &KeyTree {
        &self.areas[area]
    }

    /// Aggregated leave of members that may span areas: each affected
    /// area performs one batched rekey (Section III-E per-area
    /// aggregation).
    pub fn batch_leave_multi_area(
        &mut self,
        members: &[MemberId],
        rng: &mut dyn RngCore,
    ) -> RekeyTraffic {
        let mut by_area: BTreeMap<usize, Vec<MemberId>> = BTreeMap::new();
        for &m in members {
            if let Some(a) = self.area_of.remove(&m) {
                by_area.entry(a).or_default().push(m);
            }
        }
        let mut total = RekeyTraffic::default();
        for (area, leavers) in by_area {
            if let Ok(out) = self.areas[area].batch_leave(&leavers, rng) {
                total += traffic_of(&out.plan);
            }
        }
        total
    }
}

impl KeyManager for MykilModel {
    fn join(&mut self, member: MemberId, rng: &mut dyn RngCore) -> RekeyTraffic {
        if self.area_of.contains_key(&member) {
            return RekeyTraffic::default();
        }
        let area = self.next_area % self.areas.len();
        self.next_area += 1;
        match self.areas[area].join(member, rng) {
            Ok(plan) => {
                self.area_of.insert(member, area);
                traffic_of(&plan)
            }
            Err(_) => RekeyTraffic::default(),
        }
    }

    fn leave(&mut self, member: MemberId, rng: &mut dyn RngCore) -> RekeyTraffic {
        let Some(area) = self.area_of.remove(&member) else {
            return RekeyTraffic::default();
        };
        match self.areas[area].leave(member, rng) {
            Ok(plan) => traffic_of(&plan),
            Err(_) => RekeyTraffic::default(),
        }
    }

    fn batch_leave(&mut self, members: &[MemberId], rng: &mut dyn RngCore) -> RekeyTraffic {
        self.batch_leave_multi_area(members, rng)
    }

    fn member_count(&self) -> usize {
        self.area_of.len()
    }

    fn member_storage_bytes(&self) -> u64 {
        // Path length in the (largest) area tree.
        let h = self.areas.iter().map(|t| t.height()).max().unwrap_or(0);
        (h as u64 + 1) * KEY_LEN as u64
    }

    fn controller_storage_bytes(&self) -> u64 {
        self.areas
            .iter()
            .map(|t| t.node_count() as u64 * KEY_LEN as u64)
            .max()
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "mykil"
    }
}

/// Closed-form aggregate of one area's *cold* membership, for the
/// hybrid hot/cold simulation mode (ISSUE 7).
///
/// At million-member scale only the members currently joining, leaving,
/// moving or failing ("hot") are worth simulating as protocol nodes;
/// everyone else sits in a key tree generating no events. This model
/// stands in for those cold members: it tracks their count, the area's
/// key epoch, and the rekey bytes their membership events *would* have
/// put on the wire, using the same closed forms as `mykil-analysis`
/// (which the measured `MykilModel` validates at small scale — see the
/// cross-check tests below).
///
/// What it does **not** model: per-member key material, handshake
/// control traffic, retransmissions, or timing — hot members exist for
/// exactly that. Moving a member between the hot pool and this
/// aggregate is free by design ([`ColdAreaModel::absorb`] /
/// [`ColdAreaModel::release`]): the real join/leave cost was (or will
/// be) accounted by whichever side performs the membership event.
#[derive(Debug, Clone)]
pub struct ColdAreaModel {
    cold: u64,
    epoch: u64,
    leave_batches: u64,
    traffic: RekeyTraffic,
    params: mykil_analysis::Params,
}

impl ColdAreaModel {
    /// An empty aggregate for one area.
    pub fn new(key_len: u64, rsa_len: u64, arity: u64) -> ColdAreaModel {
        ColdAreaModel {
            cold: 0,
            epoch: 0,
            leave_batches: 0,
            traffic: RekeyTraffic::default(),
            // One synthetic area whose `members` tracks the cold count,
            // so `area_size()` is always the aggregate's current size.
            params: mykil_analysis::Params {
                members: 0,
                areas: 1,
                key_len,
                rsa_len,
                arity,
            },
        }
    }

    /// Cold members currently aggregated.
    pub fn cold_members(&self) -> u64 {
        self.cold
    }

    /// Area-key epoch: bumps once per leave rekey batch (the
    /// forward-secrecy analog — departed members must not outlive the
    /// key they held).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of leave batches performed (each bumped the epoch once).
    pub fn leave_batches(&self) -> u64 {
        self.leave_batches
    }

    /// Total modeled rekey traffic so far.
    pub fn traffic(&self) -> RekeyTraffic {
        self.traffic
    }

    /// A member joins the area directly into the aggregate: the keys on
    /// the newcomer's path are refreshed and multicast to the existing
    /// members (one re-encryption per changed key — what the measured
    /// `KeyTree` join does, a superset of Figure 8's single area-key
    /// multicast), plus the unicast key path to the newcomer. Returns
    /// the traffic charged.
    pub fn join(&mut self) -> RekeyTraffic {
        self.cold += 1;
        self.params.members = self.cold;
        self.charge_join_at(self.cold)
    }

    /// Accounts the rekey traffic of admitting one member into an area
    /// of `size` members (counted *after* the join), without touching
    /// the cold population — for hybrid controllers whose area size is
    /// `cold + hot` and who track the hot side themselves.
    pub fn charge_join_at(&mut self, size: u64) -> RekeyTraffic {
        let p = mykil_analysis::Params {
            members: size.max(1),
            ..self.params
        };
        let path = mykil_analysis::bandwidth::mykil_join_unicast_bytes(&p);
        let t = RekeyTraffic {
            multicast_bytes: path.max(mykil_analysis::bandwidth::join_multicast_bytes(&p)),
            multicast_messages: 1,
            unicast_bytes: path,
            unicast_messages: 1,
        };
        self.traffic += t;
        t
    }

    /// Accounts one single-member leave rekey in an area of `size`
    /// members (counted *before* the leave) and rotates the key, again
    /// without touching the cold population.
    pub fn charge_single_leave_at(&mut self, size: u64) -> RekeyTraffic {
        let p = mykil_analysis::Params {
            members: size.max(1),
            ..self.params
        };
        let t = RekeyTraffic {
            multicast_bytes: mykil_analysis::bandwidth::mykil_leave_bytes(&p),
            multicast_messages: 1,
            unicast_bytes: 0,
            unicast_messages: 0,
        };
        self.epoch += 1;
        self.leave_batches += 1;
        self.traffic += t;
        t
    }

    /// Accounts one member *moving out* of this area (inter-area
    /// mobility, the paper's ticket-rejoin across areas): from the
    /// source area's perspective a departure is a departure — the keys
    /// on the leaver's path must rotate so the mover cannot read this
    /// area's traffic from its new home. Cost and epoch behaviour are
    /// therefore exactly a single-leave rekey at the pre-departure
    /// `size` (see the KeyTree cross-check test: a measured
    /// leave-here/join-there pair tracks `move_out + move_in`). Does
    /// not touch the cold population — the caller decides whether the
    /// mover was hot or cold.
    pub fn charge_move_out_at(&mut self, size: u64) -> RekeyTraffic {
        let p = mykil_analysis::Params {
            members: size.max(1),
            ..self.params
        };
        let t = RekeyTraffic {
            multicast_bytes: mykil_analysis::bandwidth::mykil_leave_bytes(&p),
            multicast_messages: 1,
            unicast_bytes: 0,
            unicast_messages: 0,
        };
        self.epoch += 1;
        self.leave_batches += 1;
        self.traffic += t;
        t
    }

    /// Accounts one member *moving into* this area on a ticket rejoin.
    /// The ticket spares the registration-server round trip, not the
    /// key management: the newcomer still gets a fresh unicast key path
    /// and the keys on that path are refreshed for the existing members,
    /// i.e. the cost of a join at the post-arrival `size`. Does not
    /// touch the cold population.
    pub fn charge_move_in_at(&mut self, size: u64) -> RekeyTraffic {
        self.charge_join_at(size)
    }

    /// A batch of `k` cold members leaves: one aggregated rekey using
    /// the worst-case (disjoint-paths) closed form, so the model never
    /// under-reports against a measured tree. Bumps the epoch once.
    /// Returns the traffic charged; `k = 0` is a no-op.
    pub fn batch_leave(&mut self, k: u64) -> RekeyTraffic {
        let k = k.min(self.cold);
        if k == 0 {
            return RekeyTraffic::default();
        }
        // Cost forms depend on the pre-departure tree size.
        let bytes = mykil_analysis::bandwidth::mykil_batch_leave_bytes_worst(&self.params, k);
        self.cold -= k;
        self.params.members = self.cold;
        self.epoch += 1;
        self.leave_batches += 1;
        let t = RekeyTraffic {
            multicast_bytes: bytes,
            multicast_messages: 1,
            unicast_bytes: 0,
            unicast_messages: 0,
        };
        self.traffic += t;
        t
    }

    /// Absorbs `n` hot members into the aggregate (demotion). Free: the
    /// join that admitted them was accounted by the hot handshake path.
    pub fn absorb(&mut self, n: u64) {
        self.cold += n;
        self.params.members = self.cold;
    }

    /// Releases up to `n` members back to the hot pool (promotion),
    /// returning how many were actually available. Free: whatever
    /// membership event follows is accounted by the hot path.
    pub fn release(&mut self, n: u64) -> u64 {
        let n = n.min(self.cold);
        self.cold -= n;
        self.params.members = self.cold;
        n
    }

    /// Marks a hot-path leave rekey in this area: the epoch advances
    /// (the key rotated) but the bytes were accounted by the caller.
    pub fn note_hot_leave_rekey(&mut self) {
        self.epoch += 1;
        self.leave_batches += 1;
    }

    /// Closed-form controller storage for the current aggregate size
    /// (symmetric tree keys + public key material).
    pub fn controller_storage_bytes(&self) -> u64 {
        let c = mykil_analysis::storage::mykil_controller(&self.params);
        c.symmetric + c.public
    }

    /// Closed-form per-member storage at the current aggregate size.
    pub fn member_storage_bytes(&self) -> u64 {
        let c = mykil_analysis::storage::mykil_member(&self.params);
        c.symmetric + c.public
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mykil_crypto::drbg::Drbg;

    #[test]
    fn members_spread_round_robin() {
        let mut rng = Drbg::from_seed(1);
        let mut m = MykilModel::new(4, TreeConfig::quad(), &mut rng);
        crate::populate(&mut m, 40, &mut rng);
        for area in 0..4 {
            assert_eq!(m.area_tree(area).member_count(), 10);
        }
        assert_eq!(m.area_of(MemberId(0)), Some(0));
        assert_eq!(m.area_of(MemberId(1)), Some(1));
    }

    #[test]
    fn leave_touches_only_one_area() {
        let mut rng = Drbg::from_seed(2);
        let mut m = MykilModel::new(4, TreeConfig::binary(), &mut rng);
        crate::populate(&mut m, 400, &mut rng);
        let keys_before: Vec<_> = (0..4).map(|a| m.area_tree(a).area_key().clone()).collect();
        let victim = MemberId(5);
        let victim_area = m.area_of(victim).unwrap();
        m.leave(victim, &mut rng);
        for (a, before) in keys_before.iter().enumerate() {
            if a == victim_area {
                assert_ne!(m.area_tree(a).area_key(), before);
            } else {
                assert_eq!(m.area_tree(a).area_key(), before);
            }
        }
    }

    #[test]
    fn leave_cost_depends_on_area_not_group() {
        let mut rng = Drbg::from_seed(3);
        // Same total group size, different area counts.
        let mut few = MykilModel::new(2, TreeConfig::binary(), &mut rng);
        let mut many = MykilModel::new(16, TreeConfig::binary(), &mut rng);
        crate::populate(&mut few, 1600, &mut rng);
        crate::populate(&mut many, 1600, &mut rng);
        let t_few = few.leave(MemberId(100), &mut rng).total_key_bytes();
        let t_many = many.leave(MemberId(100), &mut rng).total_key_bytes();
        assert!(t_many < t_few, "more areas must mean cheaper leaves");
    }

    #[test]
    fn multi_area_batch_leave() {
        let mut rng = Drbg::from_seed(4);
        let mut m = MykilModel::new(4, TreeConfig::quad(), &mut rng);
        crate::populate(&mut m, 100, &mut rng);
        // Members 0..8 spread across all areas round-robin.
        let leavers: Vec<MemberId> = (0..8).map(MemberId).collect();
        let t = m.batch_leave(&leavers, &mut rng);
        assert_eq!(m.member_count(), 92);
        assert!(t.multicast_messages <= 4, "one rekey per area at most");
    }

    #[test]
    fn storage_between_iolus_and_lkh() {
        let mut rng = Drbg::from_seed(5);
        let mut mykil = MykilModel::new(20, TreeConfig::binary(), &mut rng);
        let mut lkh = crate::FlatLkh::new(TreeConfig::binary(), &mut rng);
        crate::populate(&mut mykil, 5000, &mut rng);
        crate::populate(&mut lkh, 5000, &mut rng);
        assert!(mykil.member_storage_bytes() < lkh.member_storage_bytes());
        assert!(mykil.controller_storage_bytes() < lkh.controller_storage_bytes());
        assert!(mykil.member_storage_bytes() > 32);
    }

    #[test]
    #[should_panic(expected = "at least one area")]
    fn zero_areas_panics() {
        let mut rng = Drbg::from_seed(6);
        let _ = MykilModel::new(0, TreeConfig::quad(), &mut rng);
    }

    /// The cold aggregate's closed forms must track the measured
    /// `MykilModel` (one real key tree) within a modest band at a size
    /// where simulating the tree is still cheap — that agreement is
    /// what justifies substituting the aggregate for cold members at
    /// scales the tree cannot reach.
    #[test]
    fn cold_aggregate_tracks_measured_tree() {
        let mut rng = Drbg::from_seed(7);
        let mut measured = MykilModel::new(1, TreeConfig::binary(), &mut rng);
        let mut cold = ColdAreaModel::new(KEY_LEN as u64, 256, 2);

        // Same 2,000 joins on both sides.
        let mut measured_join = RekeyTraffic::default();
        for i in 0..2000u64 {
            measured_join += measured.join(MemberId(i), &mut rng);
            cold.join();
        }
        assert_eq!(cold.cold_members(), 2000);
        let modeled_join = cold.traffic();
        // The closed form uses ceil(log_arity) heights while the
        // measured tree's height depends on fill order, so agreement is
        // a band, not equality.
        let (mj, cj) = (
            measured_join.total_key_bytes() as f64,
            modeled_join.total_key_bytes() as f64,
        );
        assert!(
            cj >= 0.8 * mj && cj <= 1.3 * mj,
            "join bytes diverged: measured {mj}, modeled {cj}"
        );

        // A 50-member batch leave on both sides.
        let leavers: Vec<MemberId> = (0..50).map(|i| MemberId(i * 37)).collect();
        let measured_leave = measured.batch_leave(&leavers, &mut rng);
        let modeled_leave = cold.batch_leave(50);
        assert_eq!(cold.cold_members(), 1950);
        assert_eq!(cold.epoch(), 1, "a leave batch must rotate the key once");
        let (ml, cl) = (
            measured_leave.total_key_bytes() as f64,
            modeled_leave.total_key_bytes() as f64,
        );
        // Worst-case closed form: must not under-report the measured
        // cost (beyond rounding) and must stay within a small multiple.
        assert!(
            cl >= 0.9 * ml && cl <= 3.0 * ml,
            "leave bytes diverged: measured {ml}, modeled {cl}"
        );

        // Storage forms agree with the measured trees' order too.
        let modeled = cold.controller_storage_bytes() as f64;
        let measured_ctl = measured.controller_storage_bytes() as f64;
        assert!(
            modeled >= 0.5 * measured_ctl && modeled <= 2.5 * measured_ctl,
            "controller storage diverged: measured {measured_ctl}, modeled {modeled}"
        );
    }

    /// An inter-area move charged through the closed forms must track
    /// what two measured `KeyTree`s do when a member actually leaves
    /// one and joins the other — the justification for `move_out` /
    /// `move_in` charging in the hybrid mobility storm, exactly like
    /// the join/leave cross-check above.
    #[test]
    fn cold_aggregate_move_charging_tracks_measured_trees() {
        let mut rng = Drbg::from_seed(11);
        // Two measured areas of 1,000 members each.
        let mut src = MykilModel::new(1, TreeConfig::binary(), &mut rng);
        let mut dst = MykilModel::new(1, TreeConfig::binary(), &mut rng);
        for i in 0..1000u64 {
            src.join(MemberId(i), &mut rng);
            dst.join(MemberId(10_000 + i), &mut rng);
        }
        // The modeled counterparts at the same sizes.
        let mut cold_src = ColdAreaModel::new(KEY_LEN as u64, 256, 2);
        let mut cold_dst = ColdAreaModel::new(KEY_LEN as u64, 256, 2);
        cold_src.absorb(1000);
        cold_dst.absorb(1000);

        // Move 200 members src -> dst on both sides.
        let mut measured = RekeyTraffic::default();
        let mut modeled = RekeyTraffic::default();
        for i in 0..200u64 {
            measured += src.leave(MemberId(i), &mut rng);
            measured += dst.join(MemberId(20_000 + i), &mut rng);

            modeled += cold_src.charge_move_out_at(cold_src.cold_members());
            cold_src.release(1);
            cold_dst.absorb(1);
            modeled += cold_dst.charge_move_in_at(cold_dst.cold_members());
        }
        assert_eq!(cold_src.cold_members(), 800);
        assert_eq!(cold_dst.cold_members(), 1200);
        // Forward secrecy on the source side: every departure rotated
        // the key; arrivals alone never do.
        assert_eq!(cold_src.epoch(), 200);
        assert_eq!(cold_dst.epoch(), 0);

        // Same closed-form-vs-measured band as the join/leave check:
        // ceil-log heights vs fill-order heights.
        let (m, c) = (
            measured.total_key_bytes() as f64,
            modeled.total_key_bytes() as f64,
        );
        assert!(
            c >= 0.8 * m && c <= 1.3 * m,
            "move bytes diverged: measured {m}, modeled {c}"
        );
        // And a move must charge both sides: multicast (rotation in
        // both areas) plus the unicast key path to the mover's new
        // leaf.
        assert_eq!(modeled.unicast_messages, 200);
        assert_eq!(modeled.multicast_messages, 400);
    }

    /// Hot/cold bookkeeping: absorb/release move members without
    /// traffic; epochs only move on leave rekeys.
    #[test]
    fn cold_aggregate_absorb_release_are_free() {
        let mut cold = ColdAreaModel::new(16, 256, 2);
        cold.absorb(100);
        assert_eq!(cold.cold_members(), 100);
        assert_eq!(cold.traffic(), RekeyTraffic::default());
        assert_eq!(cold.release(30), 30);
        assert_eq!(cold.cold_members(), 70);
        assert_eq!(cold.release(1000), 70, "release caps at the population");
        assert_eq!(cold.cold_members(), 0);
        assert_eq!(cold.traffic(), RekeyTraffic::default());
        assert_eq!(cold.epoch(), 0);
        assert_eq!(cold.batch_leave(5), RekeyTraffic::default());
        assert_eq!(cold.epoch(), 0, "empty batch must not rotate the key");
        cold.note_hot_leave_rekey();
        assert_eq!(cold.epoch(), 1);
        assert_eq!(cold.leave_batches(), 1);
    }
}
