//! Workspace integration tests: full-stack scenarios spanning every
//! crate — crypto substrate, simulator, key trees, protocol, baselines
//! and analytic models together.

use mykil::config::BatchPolicy;
use mykil::group::GroupBuilder;
use mykil_net::Duration;

/// A miniature pay-per-view service: subscribers join over time, frames
/// stream continuously, subscribers churn, and nobody ever decrypts a
/// frame they should not see.
#[test]
fn pay_per_view_lifecycle() {
    let mut g = GroupBuilder::new(100)
        .areas(2)
        .batch_policy(BatchPolicy::OnDataOrTimer)
        .build();

    // Season 1: three subscribers.
    let subs: Vec<_> = (0..3).map(|i| g.register_member(i)).collect();
    g.settle();
    for &s in &subs {
        assert!(g.is_member(s));
    }

    // Broadcaster streams frames (any member can send).
    g.send_data(subs[0], b"frame-1");
    g.run_for(Duration::from_secs(1));
    for &s in &subs {
        assert!(g.received_data(s).contains(&b"frame-1".to_vec()));
    }

    // One subscriber churns out (goes dark) and a new one churns in.
    g.sim.partition(subs[2], 7);
    let late = g.register_member(10);
    g.run_for(Duration::from_secs(5)); // eviction happens

    g.send_data(subs[0], b"frame-2");
    g.run_for(Duration::from_secs(1));
    assert!(g.received_data(subs[1]).contains(&b"frame-2".to_vec()));
    assert!(g.received_data(late).contains(&b"frame-2".to_vec()));
    // The departed subscriber never saw frame 2.
    assert!(!g.received_data(subs[2]).contains(&b"frame-2".to_vec()));
    // And the late joiner never saw frame 1 (backward secrecy in
    // effect: it was not in the group yet).
    assert!(!g.received_data(late).contains(&b"frame-1".to_vec()));
}

/// The whole protocol stack runs unchanged on the keyed-hash-forest
/// tree backend: joins, data flow, secrecy-preserving churn, and a
/// primary crash where the backup takes over from an `MKH1` snapshot.
#[test]
fn khf_backend_full_protocol_with_failover() {
    use mykil_tree::TreeBackend;

    let mut g = GroupBuilder::new(103)
        .areas(1)
        .replicated(true)
        .tree_backend(TreeBackend::Khf)
        .build();
    let members: Vec<_> = (0..5).map(|i| g.register_member(i)).collect();
    g.settle();
    for &m in &members {
        assert!(g.is_member(m));
    }
    assert_eq!(g.ac(0).tree().backend(), TreeBackend::Khf);

    g.send_data(members[0], b"khf frame");
    g.run_for(Duration::from_secs(1));
    for &m in &members {
        assert!(g.received_data(m).contains(&b"khf frame".to_vec()));
    }

    // Forward secrecy holds on the derivation backend: the evicted
    // member's leave is a Fresh (non-derivable) rotation.
    g.sim.partition(members[4], 7);
    g.run_for(Duration::from_secs(5));
    g.send_data(members[0], b"khf frame 2");
    g.run_for(Duration::from_secs(1));
    assert!(!g.received_data(members[4]).contains(&b"khf frame 2".to_vec()));
    assert!(g.received_data(members[1]).contains(&b"khf frame 2".to_vec()));

    // The controller machine dies; the backup restores the replicated
    // MKH1 snapshot and continues on the same backend.
    g.crash_ac(0);
    g.run_for(Duration::from_secs(3));
    assert_eq!(g.backup(0).role(), mykil::area::Role::Primary);
    assert_eq!(g.backup(0).tree().backend(), TreeBackend::Khf);

    let late = g.register_member(50);
    g.run_for(Duration::from_secs(3));
    assert!(g.is_member(late));
    g.send_data(members[0], b"khf frame 3");
    g.run_for(Duration::from_secs(2));
    for m in [members[0], members[1], members[2], members[3], late] {
        assert!(g.received_data(m).contains(&b"khf frame 3".to_vec()));
    }
}

/// The protocol's storage numbers match the analytic model's
/// predictions from `mykil-analysis` (Section V-A cross-check).
#[test]
fn storage_matches_analytic_model() {
    use mykil_analysis::{storage, Params};
    use mykil_baselines::{KeyManager, MykilModel};
    use mykil_crypto::drbg::Drbg;
    use mykil_tree::TreeConfig;

    let n = 4_000u64;
    let areas = 8u64;
    let p = Params {
        members: n,
        areas,
        ..Params::paper()
    };
    let mut rng = Drbg::from_seed(1);
    let mut model = MykilModel::new(areas as usize, TreeConfig::binary(), &mut rng);
    mykil_baselines::populate(&mut model, n, &mut rng);

    let analytic = storage::mykil_member(&p).symmetric;
    let measured = model.member_storage_bytes();
    let ratio = measured as f64 / analytic as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "member storage measured={measured} analytic={analytic}"
    );

    let analytic_c = storage::mykil_controller(&p).symmetric;
    let measured_c = model.controller_storage_bytes();
    let ratio_c = measured_c as f64 / analytic_c as f64;
    assert!(
        (0.3..2.0).contains(&ratio_c),
        "controller storage measured={measured_c} analytic={analytic_c}"
    );
}

/// Full-protocol bandwidth accounting agrees in *shape* with the
/// baseline models: a leave in a 2-area deployment multicasts
/// logarithmically-sized key updates, not per-member unicasts.
#[test]
fn protocol_key_update_traffic_is_logarithmic() {
    let mut g = GroupBuilder::new(101).areas(1).build();
    let members: Vec<_> = (0..6).map(|i| g.register_member(i)).collect();
    g.settle();
    g.sim.stats_mut().reset();

    // Evict one member; the rekey must be one multicast whose size is
    // far below 6 * key-size * members.
    g.sim.partition(members[3], 5);
    g.run_for(Duration::from_secs(5));
    let ku = g.sim.stats().kind("key-update");
    assert!(ku.messages_sent >= 1);
    // Envelope-framed entries for a 6-member tree: well under 2 KB.
    assert!(
        ku.bytes_sent < 2048,
        "leave rekey too large: {} bytes",
        ku.bytes_sent
    );
}

/// Deterministic replay: the same seed produces byte-identical traffic
/// statistics across runs of the full protocol.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut g = GroupBuilder::new(500).areas(2).build();
        let a = g.register_member(1);
        let _b = g.register_member(2);
        g.settle();
        g.send_data(a, b"deterministic?");
        g.run_for(Duration::from_secs(2));
        let s = g.stats();
        (
            s.total_bytes_sent(),
            s.total_messages_sent(),
            s.kind("key-update").bytes_sent,
            g.sim.events_processed(),
        )
    };
    assert_eq!(run(), run());
}

/// The crypto substrate, tree and protocol agree on key material:
/// a member's path keys decrypt exactly the envelopes the AC's tree
/// would produce for it.
#[test]
fn member_keys_match_controller_tree() {
    let mut g = GroupBuilder::new(102).areas(1).build();
    let m = g.register_member(1);
    g.settle();
    let client = g.member(m).client_id().unwrap();
    let tree = g.ac(0).tree();
    let mut path = Vec::new();
    tree.path_keys_into(mykil_tree::MemberId(client.0), &mut path)
        .unwrap();
    // Root (area key) agreement end to end.
    assert_eq!(
        g.member(m).current_area_key(),
        Some(path.last().unwrap().1.clone())
    );
    // Member stores at least the whole path.
    assert!(g.member(m).key_count() >= path.len());
}

/// The analytic latency model (Section V-D closed form) agrees with the
/// full simulator on the protocols' critical-path costs.
#[test]
fn latency_model_matches_simulation() {
    use mykil_analysis::latency::{JOIN_OPS, REJOIN_FAST_OPS, REJOIN_OPS};
    use mykil_bench::vd_latency;

    let sim = vd_latency();
    let check = |name: &str, predicted: f64, simulated: f64| {
        let ratio = predicted / simulated;
        assert!(
            (0.6..1.7).contains(&ratio),
            "{name}: predicted {predicted:.3}s vs simulated {simulated:.3}s"
        );
    };
    let p = mykil_analysis::latency::pentium3::RSA_PRIVATE_S;
    let q = mykil_analysis::latency::pentium3::RSA_PUBLIC_S;
    let h = mykil_analysis::latency::pentium3::HOP_S;
    check("join", JOIN_OPS.predict_seconds(p, q, h), sim.join_s);
    check("rejoin", REJOIN_OPS.predict_seconds(p, q, h), sim.rejoin_s);
    check(
        "rejoin_fast",
        REJOIN_FAST_OPS.predict_seconds(p, q, h),
        sim.rejoin_fast_s,
    );
}
