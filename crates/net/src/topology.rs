//! Connectivity state: partitions, crashed nodes, and lossy links.
//!
//! Section IV of the paper considers exactly these failures: "network
//! communication partitions or intermediate node/router crashes". The
//! topology answers one question for the simulator: can a message from
//! `a` reach `b` right now?

use crate::id::NodeId;
use crate::trace::DropReason;
use mykil_crypto::drbg::Drbg;
use std::collections::{BTreeMap, BTreeSet};

/// Mutable connectivity state of the simulated network.
#[derive(Debug, Default)]
pub(crate) struct Topology {
    /// Partition label per node; nodes talk only within one label.
    /// Nodes absent from the map are in the default partition 0.
    partition_of: BTreeMap<NodeId, u32>,
    /// Crashed nodes neither send nor receive.
    crashed: BTreeSet<NodeId>,
    /// Directed links that silently drop everything.
    cut_links: BTreeSet<(NodeId, NodeId)>,
    /// Probability (in 1/1000) that any given message is dropped.
    loss_per_mille: u32,
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves `node` into partition `label` (0 = the default partition).
    pub fn set_partition(&mut self, node: NodeId, label: u32) {
        if label == 0 {
            self.partition_of.remove(&node);
        } else {
            self.partition_of.insert(node, label);
        }
    }

    /// Heals all partitions.
    pub fn heal_partitions(&mut self) {
        self.partition_of.clear();
    }

    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    pub fn restart(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Cuts the directed link `from -> to`.
    pub fn cut_link(&mut self, from: NodeId, to: NodeId) {
        self.cut_links.insert((from, to));
    }

    /// Restores the directed link `from -> to`.
    pub fn restore_link(&mut self, from: NodeId, to: NodeId) {
        self.cut_links.remove(&(from, to));
    }

    /// Sets a uniform message-loss probability in permille (0–1000).
    pub fn set_loss_per_mille(&mut self, per_mille: u32) {
        self.loss_per_mille = per_mille.min(1000);
    }

    fn partition(&self, node: NodeId) -> u32 {
        self.partition_of.get(&node).copied().unwrap_or(0)
    }

    /// Decides whether a message sent now from `from` to `to` is
    /// delivered. Consumes randomness only when lossy links are
    /// configured, so loss-free runs stay byte-identical when the loss
    /// knob is unused.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn delivers(&self, from: NodeId, to: NodeId, rng: &mut Drbg) -> bool {
        self.delivery_verdict(from, to, rng).is_ok()
    }

    /// Like [`Self::delivers`], reporting *why* a message is dropped.
    pub fn delivery_verdict(
        &self,
        from: NodeId,
        to: NodeId,
        rng: &mut Drbg,
    ) -> Result<(), DropReason> {
        if self.is_crashed(from) || self.is_crashed(to) {
            return Err(DropReason::Crashed);
        }
        if self.partition(from) != self.partition(to) {
            return Err(DropReason::Partitioned);
        }
        if self.cut_links.contains(&(from, to)) {
            return Err(DropReason::LinkCut);
        }
        if self.loss_per_mille > 0 && rng.gen_range(1000) < self.loss_per_mille as u64 {
            return Err(DropReason::RandomLoss);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn default_everything_connected() {
        let t = Topology::new();
        let mut rng = Drbg::from_seed(1);
        assert!(t.delivers(n(0), n(1), &mut rng));
        assert!(t.delivers(n(1), n(0), &mut rng));
    }

    #[test]
    fn partitions_split_and_heal() {
        let mut t = Topology::new();
        let mut rng = Drbg::from_seed(2);
        t.set_partition(n(1), 1);
        assert!(!t.delivers(n(0), n(1), &mut rng));
        assert!(!t.delivers(n(1), n(0), &mut rng));
        // Two nodes in the same non-default partition can talk.
        t.set_partition(n(2), 1);
        assert!(t.delivers(n(1), n(2), &mut rng));
        t.heal_partitions();
        assert!(t.delivers(n(0), n(1), &mut rng));
    }

    #[test]
    fn moving_back_to_default_partition() {
        let mut t = Topology::new();
        let mut rng = Drbg::from_seed(3);
        t.set_partition(n(1), 5);
        assert!(!t.delivers(n(0), n(1), &mut rng));
        t.set_partition(n(1), 0);
        assert!(t.delivers(n(0), n(1), &mut rng));
    }

    #[test]
    fn crash_blocks_both_directions() {
        let mut t = Topology::new();
        let mut rng = Drbg::from_seed(4);
        t.crash(n(0));
        assert!(t.is_crashed(n(0)));
        assert!(!t.delivers(n(0), n(1), &mut rng));
        assert!(!t.delivers(n(1), n(0), &mut rng));
        t.restart(n(0));
        assert!(t.delivers(n(0), n(1), &mut rng));
    }

    #[test]
    fn cut_link_is_directional() {
        let mut t = Topology::new();
        let mut rng = Drbg::from_seed(5);
        t.cut_link(n(0), n(1));
        assert!(!t.delivers(n(0), n(1), &mut rng));
        assert!(t.delivers(n(1), n(0), &mut rng));
        t.restore_link(n(0), n(1));
        assert!(t.delivers(n(0), n(1), &mut rng));
    }

    #[test]
    fn loss_probability_drops_roughly_that_fraction() {
        let mut t = Topology::new();
        let mut rng = Drbg::from_seed(6);
        t.set_loss_per_mille(500);
        let delivered = (0..2000)
            .filter(|_| t.delivers(n(0), n(1), &mut rng))
            .count();
        assert!((800..1200).contains(&delivered), "delivered={delivered}");
        t.set_loss_per_mille(0);
        assert!(t.delivers(n(0), n(1), &mut rng));
    }

    #[test]
    fn loss_clamped_to_1000() {
        let mut t = Topology::new();
        let mut rng = Drbg::from_seed(7);
        t.set_loss_per_mille(5000);
        assert!(!t.delivers(n(0), n(1), &mut rng));
    }
}
