//! The area-controller directory.
//!
//! Section IV-B: "have the registration server provide a list of all
//! area controllers' addresses and public keys when a member registers"
//! — that list is what lets a disconnected member start the rejoin
//! protocol with a new AC. The registration server sends an
//! [`AcDirectory`] in join step 5; members keep it for the lifetime of
//! their membership.

use crate::error::ProtocolError;
use crate::identity::AreaId;
use crate::wire::{Reader, Writer};

/// One directory row: an area, its controller's simulator address, and
/// the controller's public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcInfo {
    /// The area this controller manages.
    pub area: AreaId,
    /// The controller's network address (simulator node index).
    pub node: u32,
    /// The controller's encoded RSA public key.
    pub pubkey: Vec<u8>,
}

/// The full list of area controllers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AcDirectory {
    /// Rows in area order.
    pub entries: Vec<AcInfo>,
}

impl AcDirectory {
    /// Serializes the directory.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            w.u32(e.area.0).u32(e.node).bytes(&e.pubkey);
        }
        w.into_bytes()
    }

    /// Parses a directory.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<AcDirectory, ProtocolError> {
        let mut r = Reader::new(bytes);
        let dir = Self::read(&mut r)?;
        r.finish()?;
        Ok(dir)
    }

    /// Reads a directory from the middle of a larger message.
    pub fn read(r: &mut Reader<'_>) -> Result<AcDirectory, ProtocolError> {
        let count = r.u32()? as usize;
        if count > 1 << 16 {
            return Err(ProtocolError::Malformed("directory size"));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(AcInfo {
                area: AreaId(r.u32()?),
                node: r.u32()?,
                pubkey: r.bytes()?.to_vec(),
            });
        }
        Ok(AcDirectory { entries })
    }

    /// Writes the directory into a larger message.
    pub fn write(&self, w: &mut Writer) {
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            w.u32(e.area.0).u32(e.node).bytes(&e.pubkey);
        }
    }

    /// Looks up a controller by area.
    pub fn by_area(&self, area: AreaId) -> Option<&AcInfo> {
        self.entries.iter().find(|e| e.area == area)
    }

    /// Looks up a controller by its node address.
    pub fn by_node(&self, node: u32) -> Option<&AcInfo> {
        self.entries.iter().find(|e| e.node == node)
    }

    /// Replaces (or inserts) the controller entry for an area — used
    /// when a backup takes over.
    pub fn upsert(&mut self, info: AcInfo) {
        match self.entries.iter_mut().find(|e| e.area == info.area) {
            Some(slot) => *slot = info,
            None => self.entries.push(info),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AcDirectory {
        AcDirectory {
            entries: vec![
                AcInfo { area: AreaId(0), node: 1, pubkey: vec![1; 40] },
                AcInfo { area: AreaId(1), node: 5, pubkey: vec![2; 40] },
                AcInfo { area: AreaId(2), node: 9, pubkey: vec![3; 40] },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let d = sample();
        assert_eq!(AcDirectory::from_bytes(&d.to_bytes()).unwrap(), d);
        assert!(AcDirectory::from_bytes(&d.to_bytes()[..5]).is_err());
    }

    #[test]
    fn lookups() {
        let d = sample();
        assert_eq!(d.by_area(AreaId(1)).unwrap().node, 5);
        assert_eq!(d.by_node(9).unwrap().area, AreaId(2));
        assert!(d.by_area(AreaId(7)).is_none());
        assert!(d.by_node(100).is_none());
    }

    #[test]
    fn upsert_replaces_on_takeover() {
        let mut d = sample();
        d.upsert(AcInfo { area: AreaId(1), node: 50, pubkey: vec![9; 40] });
        assert_eq!(d.by_area(AreaId(1)).unwrap().node, 50);
        assert_eq!(d.entries.len(), 3);
        d.upsert(AcInfo { area: AreaId(9), node: 60, pubkey: vec![] });
        assert_eq!(d.entries.len(), 4);
    }

    #[test]
    fn embeddable_in_larger_message() {
        let d = sample();
        let mut w = Writer::new();
        w.u64(77);
        d.write(&mut w);
        w.u8(9);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u64().unwrap(), 77);
        assert_eq!(AcDirectory::read(&mut r).unwrap(), d);
        assert_eq!(r.u8().unwrap(), 9);
        r.finish().unwrap();
    }
}
