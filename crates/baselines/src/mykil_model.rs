//! The algorithmic Mykil model: one auxiliary-key tree per area.
//!
//! This is the rekeying core of Mykil without the protocol plumbing
//! (handshakes, tickets, liveness), used for large-scale byte
//! accounting: the bandwidth figures depend only on which keys change
//! and how they are encrypted, which this model reproduces exactly.
//! Members are assigned to areas round-robin, mirroring the
//! registration server's load-balancing policy.

use crate::traffic::RekeyTraffic;
use crate::KeyManager;
use mykil_tree::{KeyTree, MemberId, RekeyPlan, TreeConfig, KEY_LEN};
use rand::RngCore;
use std::collections::BTreeMap;

/// Mykil's area-partitioned key manager.
#[derive(Debug, Clone)]
pub struct MykilModel {
    areas: Vec<KeyTree>,
    area_of: BTreeMap<MemberId, usize>,
    next_area: usize,
}

fn traffic_of(plan: &RekeyPlan) -> RekeyTraffic {
    RekeyTraffic {
        multicast_bytes: plan.multicast_bytes() as u64,
        multicast_messages: u64::from(!plan.changes.is_empty()),
        unicast_bytes: plan.unicast_bytes() as u64,
        unicast_messages: plan.unicasts.len() as u64,
    }
}

impl MykilModel {
    /// Creates a model with `areas` areas.
    ///
    /// # Panics
    ///
    /// Panics when `areas` is zero.
    pub fn new<R: RngCore + ?Sized>(areas: usize, cfg: TreeConfig, rng: &mut R) -> MykilModel {
        assert!(areas > 0, "at least one area required");
        MykilModel {
            areas: (0..areas).map(|_| KeyTree::new(cfg, rng)).collect(),
            area_of: BTreeMap::new(),
            next_area: 0,
        }
    }

    /// Number of areas.
    pub fn area_count(&self) -> usize {
        self.areas.len()
    }

    /// The area a member lives in.
    pub fn area_of(&self, member: MemberId) -> Option<usize> {
        self.area_of.get(&member).copied()
    }

    /// A specific area's tree (inspection).
    pub fn area_tree(&self, area: usize) -> &KeyTree {
        &self.areas[area]
    }

    /// Aggregated leave of members that may span areas: each affected
    /// area performs one batched rekey (Section III-E per-area
    /// aggregation).
    pub fn batch_leave_multi_area(
        &mut self,
        members: &[MemberId],
        rng: &mut dyn RngCore,
    ) -> RekeyTraffic {
        let mut by_area: BTreeMap<usize, Vec<MemberId>> = BTreeMap::new();
        for &m in members {
            if let Some(a) = self.area_of.remove(&m) {
                by_area.entry(a).or_default().push(m);
            }
        }
        let mut total = RekeyTraffic::default();
        for (area, leavers) in by_area {
            if let Ok(out) = self.areas[area].batch_leave(&leavers, rng) {
                total += traffic_of(&out.plan);
            }
        }
        total
    }
}

impl KeyManager for MykilModel {
    fn join(&mut self, member: MemberId, rng: &mut dyn RngCore) -> RekeyTraffic {
        if self.area_of.contains_key(&member) {
            return RekeyTraffic::default();
        }
        let area = self.next_area % self.areas.len();
        self.next_area += 1;
        match self.areas[area].join(member, rng) {
            Ok(plan) => {
                self.area_of.insert(member, area);
                traffic_of(&plan)
            }
            Err(_) => RekeyTraffic::default(),
        }
    }

    fn leave(&mut self, member: MemberId, rng: &mut dyn RngCore) -> RekeyTraffic {
        let Some(area) = self.area_of.remove(&member) else {
            return RekeyTraffic::default();
        };
        match self.areas[area].leave(member, rng) {
            Ok(plan) => traffic_of(&plan),
            Err(_) => RekeyTraffic::default(),
        }
    }

    fn batch_leave(&mut self, members: &[MemberId], rng: &mut dyn RngCore) -> RekeyTraffic {
        self.batch_leave_multi_area(members, rng)
    }

    fn member_count(&self) -> usize {
        self.area_of.len()
    }

    fn member_storage_bytes(&self) -> u64 {
        // Path length in the (largest) area tree.
        let h = self.areas.iter().map(|t| t.height()).max().unwrap_or(0);
        (h as u64 + 1) * KEY_LEN as u64
    }

    fn controller_storage_bytes(&self) -> u64 {
        self.areas
            .iter()
            .map(|t| t.node_count() as u64 * KEY_LEN as u64)
            .max()
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "mykil"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mykil_crypto::drbg::Drbg;

    #[test]
    fn members_spread_round_robin() {
        let mut rng = Drbg::from_seed(1);
        let mut m = MykilModel::new(4, TreeConfig::quad(), &mut rng);
        crate::populate(&mut m, 40, &mut rng);
        for area in 0..4 {
            assert_eq!(m.area_tree(area).member_count(), 10);
        }
        assert_eq!(m.area_of(MemberId(0)), Some(0));
        assert_eq!(m.area_of(MemberId(1)), Some(1));
    }

    #[test]
    fn leave_touches_only_one_area() {
        let mut rng = Drbg::from_seed(2);
        let mut m = MykilModel::new(4, TreeConfig::binary(), &mut rng);
        crate::populate(&mut m, 400, &mut rng);
        let keys_before: Vec<_> = (0..4).map(|a| m.area_tree(a).area_key().clone()).collect();
        let victim = MemberId(5);
        let victim_area = m.area_of(victim).unwrap();
        m.leave(victim, &mut rng);
        for (a, before) in keys_before.iter().enumerate() {
            if a == victim_area {
                assert_ne!(m.area_tree(a).area_key(), before);
            } else {
                assert_eq!(m.area_tree(a).area_key(), before);
            }
        }
    }

    #[test]
    fn leave_cost_depends_on_area_not_group() {
        let mut rng = Drbg::from_seed(3);
        // Same total group size, different area counts.
        let mut few = MykilModel::new(2, TreeConfig::binary(), &mut rng);
        let mut many = MykilModel::new(16, TreeConfig::binary(), &mut rng);
        crate::populate(&mut few, 1600, &mut rng);
        crate::populate(&mut many, 1600, &mut rng);
        let t_few = few.leave(MemberId(100), &mut rng).total_key_bytes();
        let t_many = many.leave(MemberId(100), &mut rng).total_key_bytes();
        assert!(t_many < t_few, "more areas must mean cheaper leaves");
    }

    #[test]
    fn multi_area_batch_leave() {
        let mut rng = Drbg::from_seed(4);
        let mut m = MykilModel::new(4, TreeConfig::quad(), &mut rng);
        crate::populate(&mut m, 100, &mut rng);
        // Members 0..8 spread across all areas round-robin.
        let leavers: Vec<MemberId> = (0..8).map(MemberId).collect();
        let t = m.batch_leave(&leavers, &mut rng);
        assert_eq!(m.member_count(), 92);
        assert!(t.multicast_messages <= 4, "one rekey per area at most");
    }

    #[test]
    fn storage_between_iolus_and_lkh() {
        let mut rng = Drbg::from_seed(5);
        let mut mykil = MykilModel::new(20, TreeConfig::binary(), &mut rng);
        let mut lkh = crate::FlatLkh::new(TreeConfig::binary(), &mut rng);
        crate::populate(&mut mykil, 5000, &mut rng);
        crate::populate(&mut lkh, 5000, &mut rng);
        assert!(mykil.member_storage_bytes() < lkh.member_storage_bytes());
        assert!(mykil.controller_storage_bytes() < lkh.controller_storage_bytes());
        assert!(mykil.member_storage_bytes() > 32);
    }

    #[test]
    #[should_panic(expected = "at least one area")]
    fn zero_areas_panics() {
        let mut rng = Drbg::from_seed(6);
        let _ = MykilModel::new(0, TreeConfig::quad(), &mut rng);
    }
}
