//! The six fuzz targets and their structure-aware seed corpora.
//!
//! Every target is a total function of its input bytes: the contract
//! under test is "no panic, no hang, no allocation proportional to a
//! claimed (rather than actual) length" for every decoder that touches
//! network- or disk-sourced bytes. Targets may additionally assert
//! internal consistency (e.g. the fault-plan serialize→parse round
//! trip) — those asserts are *supposed* to fire when the invariant
//! breaks, which is exactly what the harness reports.

use mykil::directory::AcDirectory;
use mykil::durable::{
    replay_ac, replay_rs, snapshot_summary, AcCheckpoint, AcWalRecord, RsCheckpoint, RsWalRecord,
};
use mykil::msg::Msg;
use mykil::scale::{decode_checkpoint, encode_checkpoint, AreaState, ScaleConfig, ScaleEvent};
use mykil::welcome::Welcome;
use mykil::wire::{Reader, Writer};
use mykil_crypto::drbg::Drbg;
use mykil_crypto::envelope;
use mykil_crypto::keys::SymmetricKey;
use mykil_net::FaultPlan;

/// One fuzz target: a name (doubles as the corpus directory name under
/// `tests/corpus/`), the bytes-in entry point, and a generator for its
/// structure-aware seed corpus. Seed names are stable so `gen-corpus`
/// is idempotent and regression fixtures keep their documented paths.
pub struct Target {
    pub name: &'static str,
    pub run: fn(&[u8]),
    pub seeds: fn() -> Vec<(&'static str, Vec<u8>)>,
}

/// All registered targets, in the order CI runs them.
pub fn all() -> Vec<Target> {
    vec![
        Target {
            name: "wire-reader",
            run: run_wire_reader,
            seeds: seeds_wire_reader,
        },
        Target {
            name: "envelope",
            run: run_envelope,
            seeds: seeds_envelope,
        },
        Target {
            name: "durable-replay",
            run: run_durable_replay,
            seeds: seeds_durable_replay,
        },
        Target {
            name: "area-replay",
            run: run_area_replay,
            seeds: seeds_area_replay,
        },
        Target {
            name: "fault-plan",
            run: run_fault_plan,
            seeds: seeds_fault_plan,
        },
        Target {
            name: "tree-snapshot",
            run: run_tree_snapshot,
            seeds: seeds_tree_snapshot,
        },
    ]
}

/// Looks a target up by name.
pub fn find(name: &str) -> Option<Target> {
    all().into_iter().find(|t| t.name == name)
}

// ---------------------------------------------------------------------
// wire-reader: op-interpreted `wire::Reader` + compound decoders
// ---------------------------------------------------------------------

/// Input layout: `[n_ops][op bytes...][payload]`. The op bytes drive a
/// `Reader` over the payload through every accessor (including
/// deliberately oversized `raw` requests, which must error rather than
/// panic); the *whole* input is then fed to the two compound decoders
/// that stack on `Reader`, `Msg::from_bytes` and `Welcome::from_bytes`.
fn run_wire_reader(data: &[u8]) {
    if let Some((&n_ops, rest)) = data.split_first() {
        let n = (n_ops as usize).min(24).min(rest.len());
        let Some((ops, payload)) = rest.split_at_checked(n) else {
            return;
        };
        let mut r = Reader::new(payload);
        for &op in ops {
            match op % 8 {
                0 => {
                    let _ = r.u8();
                }
                1 => {
                    let _ = r.u32();
                }
                2 => {
                    let _ = r.u64();
                }
                3 => {
                    let _ = r.bytes();
                }
                4 => {
                    let _ = r.array::<16>();
                }
                5 => {
                    // Often more than remains: the error path.
                    let _ = r.raw(op as usize * 37);
                }
                6 => {
                    let n = r.remaining() / 2;
                    let _ = r.raw(n);
                }
                _ => {
                    let _ = r.u8().and_then(|_| r.u32());
                }
            }
        }
        let _ = r.finish();
    }
    let _ = Msg::from_bytes(data);
    let _ = Welcome::from_bytes(data);
}

fn seeds_wire_reader() -> Vec<(&'static str, Vec<u8>)> {
    // A payload exercising every field kind, prefixed by an op string
    // that decodes it exactly.
    let mut w = Writer::new();
    w.u8(7)
        .u32(0xdead_beef)
        .u64(0x0123_4567_89ab_cdef)
        .bytes(b"hello wire")
        .raw(&[0x5a; 16])
        .bytes(b"");
    let payload = w.into_bytes();
    let mut aligned = vec![6u8, 0, 1, 2, 3, 4, 3];
    aligned.extend_from_slice(&payload);

    // Length-prefix boundary probes for the compound decoders.
    let mut huge_len = vec![0u8];
    huge_len.extend_from_slice(&u32::MAX.to_be_bytes());
    huge_len.extend_from_slice(&[1, 2, 3]);

    vec![
        ("seed-aligned.bin", aligned),
        ("seed-empty.bin", Vec::new()),
        ("seed-huge-len.bin", huge_len),
        ("seed-ops-only.bin", vec![24, 0, 1, 2, 3, 4, 5, 6, 7]),
    ]
}

// ---------------------------------------------------------------------
// envelope: authenticated decryption of arbitrary bytes
// ---------------------------------------------------------------------

const KEY_LEN: usize = 16; // mykil_crypto::SYMMETRIC_KEY_LEN

/// Input layout: `[key: 16 bytes][envelope...]` (zero key if short).
/// Both `open` and the fixed-plaintext-length `open_fixed` must reject
/// arbitrary envelopes with `CryptoError`, never panic.
fn run_envelope(data: &[u8]) {
    let mut key_bytes = [0u8; KEY_LEN];
    let env = match data.split_at_checked(KEY_LEN) {
        Some((key, env)) => {
            key_bytes = key.try_into().unwrap_or(key_bytes);
            env
        }
        None => data,
    };
    let key = SymmetricKey::from_bytes(key_bytes);
    let _ = envelope::open(&key, env);
    let _ = envelope::open_fixed::<16>(&key, env);
}

fn seeds_envelope() -> Vec<(&'static str, Vec<u8>)> {
    let key_bytes = [0x42u8; KEY_LEN];
    let key = SymmetricKey::from_bytes(key_bytes);
    let mut rng = Drbg::from_seed(11);

    let mut valid = key_bytes.to_vec();
    valid.extend_from_slice(&envelope::seal(&key, b"attack at dawn", &mut rng));

    let mut fixed = key_bytes.to_vec();
    fixed.extend_from_slice(&envelope::seal(&key, &[0xa5; 16], &mut rng));

    let mut wrong_key = vec![0u8; KEY_LEN];
    wrong_key.extend_from_slice(&envelope::seal(&key, b"attack at dawn", &mut rng));

    vec![
        ("seed-valid.bin", valid),
        ("seed-valid-fixed16.bin", fixed),
        ("seed-wrong-key.bin", wrong_key),
        ("seed-truncated.bin", key_bytes.get(..8).unwrap_or(&[]).to_vec()),
    ]
}

// ---------------------------------------------------------------------
// durable-replay: AC/RS WAL + checkpoint recovery folds
// ---------------------------------------------------------------------

/// Input layout: `[flags][frame...]` where a frame is
/// `[len: u16 LE][len bytes]` and a short final frame is discarded.
/// Frame 0 is the checkpoint when `flags & 1`; the rest are WAL
/// records. The frames drive both full replay folds and every
/// individual record/checkpoint decoder.
fn run_durable_replay(data: &[u8]) {
    let Some((&flags, mut rest)) = data.split_first() else {
        return;
    };
    let mut frames: Vec<Vec<u8>> = Vec::new();
    while frames.len() < 64 {
        let Some(&[lo, hi]) = rest.get(..2) else {
            break;
        };
        let len = usize::from(u16::from_le_bytes([lo, hi]));
        let Some(frame) = rest.get(2..2 + len) else {
            break;
        };
        frames.push(frame.to_vec());
        rest = rest.get(2 + len..).unwrap_or(&[]);
    }
    let (ckpt, wal) = if flags & 1 != 0 && !frames.is_empty() {
        let mut it = frames.into_iter();
        (it.next(), it.collect())
    } else {
        (None, frames)
    };
    for f in &wal {
        let _ = AcWalRecord::from_bytes(f);
        let _ = RsWalRecord::from_bytes(f);
    }
    if let Some(c) = &ckpt {
        let _ = AcCheckpoint::from_bytes(c);
        let _ = RsCheckpoint::from_bytes(c);
        let _ = snapshot_summary(c);
    }
    let _ = replay_ac(ckpt.as_deref(), &wal);
    let _ = replay_rs(ckpt.as_deref(), &wal);
}

fn frame_up(flags: u8, frames: &[Vec<u8>]) -> Vec<u8> {
    let mut out = vec![flags];
    for f in frames {
        let len = u16::try_from(f.len()).unwrap_or(u16::MAX);
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(f.get(..usize::from(len)).unwrap_or(f));
    }
    out
}

fn seeds_durable_replay() -> Vec<(&'static str, Vec<u8>)> {
    let ac_ckpt = AcCheckpoint {
        primary: true,
        primary_node: 0,
        takeover_epoch: 3,
        peer_takeover_epoch: 2,
        sync_seq: 7,
        applied_sync_seq: 6,
        stale_peer: Some(4),
        backup: Some((5, vec![1, 2, 3, 4])),
        snapshot: Some(vec![9; 24]),
    };
    let ac_wal = [
        AcWalRecord::Join {
            client: 10,
            node: 2,
            pubkey: vec![7; 8],
            device: Some([1, 2, 3, 4, 5, 6]),
            valid_until_us: 1_000_000,
        },
        AcWalRecord::Leave { client: 10 },
        AcWalRecord::Evict { client: 11 },
        AcWalRecord::Promoted {
            takeover_epoch: 4,
            old_primary: 1,
        },
        AcWalRecord::Demoted { new_primary: 1 },
    ];
    let mut ac_frames = vec![ac_ckpt.to_bytes()];
    ac_frames.extend(ac_wal.iter().map(|r| r.to_bytes()));

    let rs_ckpt = RsCheckpoint {
        next_client: 12,
        next_area: 3,
        directory: AcDirectory {
            entries: Vec::new(),
        },
    };
    let rs_wal = [
        RsWalRecord::ClientAssigned { client: 12 },
        RsWalRecord::DirectoryUpsert {
            area: 1,
            node: 6,
            pubkey: vec![3; 8],
        },
    ];
    let mut rs_frames = vec![rs_ckpt.to_bytes()];
    rs_frames.extend(rs_wal.iter().map(|r| r.to_bytes()));

    let wal_only: Vec<Vec<u8>> = ac_wal.iter().map(|r| r.to_bytes()).collect();

    vec![
        ("seed-ac.bin", frame_up(1, &ac_frames)),
        ("seed-rs.bin", frame_up(1, &rs_frames)),
        ("seed-wal-only.bin", frame_up(0, &wal_only)),
        ("seed-empty.bin", vec![0]),
    ]
}

// ---------------------------------------------------------------------
// area-replay: scale checkpoint decode + journal refold
// ---------------------------------------------------------------------

/// Mirrors the validated recovery path: decode the checkpoint, and
/// only refold journals whose seeded base passes the same
/// `seeded <= cfg.members` bound `on_restarted` enforces — an
/// unvalidated `seeded` would make `AreaState::replay` loop for up to
/// 2^64 iterations, which is the bug the committed
/// `regression-huge-seeded.bin` fixture pins.
fn run_area_replay(data: &[u8]) {
    let _ = ScaleEvent::decode(data);
    if let Some((seeded, journal)) = decode_checkpoint(data) {
        let mut cfg = ScaleConfig::paper_million();
        cfg.members = 4096;
        cfg.areas = 4;
        if seeded <= cfg.members {
            let state = AreaState::replay(&cfg, seeded, &journal);
            let _ = state.live();
        }
    }
}

fn seeds_area_replay() -> Vec<(&'static str, Vec<u8>)> {
    let journal = [
        ScaleEvent::Join(1),
        ScaleEvent::Join(2),
        ScaleEvent::Demote(1),
        ScaleEvent::Promote(9),
        ScaleEvent::HotLeave(9),
        ScaleEvent::ColdBatch(2),
        ScaleEvent::MoveOut(5),
        ScaleEvent::MoveIn(6),
    ];
    let valid = encode_checkpoint(3, &journal);

    // Regression fixture: a checkpoint whose claimed event count is
    // inflated far past the actual body. The original decoder passed
    // the claimed count straight to `Vec::with_capacity` (capacity
    // overflow panic / OOM abort); `decode_checkpoint` now rejects any
    // count that disagrees with the body length.
    let mut inflated = Vec::new();
    inflated.extend_from_slice(&3u64.to_le_bytes());
    inflated.extend_from_slice(&u64::MAX.to_le_bytes());

    // Regression fixture: a well-formed checkpoint claiming a seeded
    // base population of 2^64-1. Decodes fine — the hang guard lives in
    // the recovery validation (`seeded <= cfg.members`), which this
    // target mirrors and `on_restarted` enforces before refolding.
    let huge_seeded = encode_checkpoint(u64::MAX, &[]);

    vec![
        ("seed-valid.bin", valid),
        ("seed-empty-journal.bin", encode_checkpoint(7, &[])),
        ("regression-inflated-count.bin", inflated),
        ("regression-huge-seeded.bin", huge_seeded),
    ]
}

// ---------------------------------------------------------------------
// fault-plan: chaos schedule text round trip
// ---------------------------------------------------------------------

/// Parses arbitrary (lossily decoded) text as a fault plan; any plan
/// that parses must serialize to a form that re-parses to the same
/// serialization (the dump-and-replay contract of `ChaosDriver`).
fn run_fault_plan(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    if let Ok(plan) = FaultPlan::parse(&text) {
        let dumped = plan.serialize();
        match FaultPlan::parse(&dumped) {
            Ok(again) => assert_eq!(
                again.serialize(),
                dumped,
                "fault plan serialize→parse→serialize diverged"
            ),
            Err(e) => panic!("serialized fault plan failed to re-parse: {e}\n{dumped}"),
        }
    }
}

fn seeds_fault_plan() -> Vec<(&'static str, Vec<u8>)> {
    let every_verb = "\
# every chaos verb, one per line
0 crash 1
1000 restart 1
2000 partition 2 3
3000 heal
4000 cut 0 1
5000 restore 0 1
6000 loss 50
7000 dup 10
8000 reorder 25 1500
9000 skew 1 200
10000 lost-tail 2
11000 torn 3
12000 ckpt-corrupt 1
13000 wal-short-read 2
14000 wal-append-fail 0
15000 ckpt-slot-corrupt 1 0
16000 storage-heal 2
";
    vec![
        ("seed-every-verb.txt", every_verb.as_bytes().to_vec()),
        (
            "seed-comments.txt",
            b"# comment only\n\n   \n17 crash 0\n".to_vec(),
        ),
        ("seed-bad-verb.txt", b"0 explode 1\n".to_vec()),
        (
            "seed-node-range.txt",
            b"0 crash 4294967296\n".to_vec(),
        ),
        // Regression: per-mille rates and partition labels are u32 in
        // the specs; a 2^32 rate used to truncate silently to 0 instead
        // of failing with a line-numbered range error.
        (
            "regression-rate-range.txt",
            b"0 loss 4294967296\n".to_vec(),
        ),
    ]
}

// ---------------------------------------------------------------------
// tree-snapshot: auxiliary-tree replica image decode (both backends)
// ---------------------------------------------------------------------

/// Feeds arbitrary bytes to [`AreaTree::restore`] — the decoder a
/// backup controller runs on every replicated snapshot, dispatching on
/// the `MKT1`/`MKH1` magic. Any input that restores must (a) pass the
/// tree's full structural invariant check and (b) re-encode to exactly
/// the input bytes: restore hardening makes every accepted image
/// canonical, so both oracles are safe on fuzz-shaped data.
fn run_tree_snapshot(data: &[u8]) {
    use mykil_tree::AreaTree;
    if let Ok(tree) = AreaTree::restore(data) {
        tree.check_invariants();
        assert_eq!(
            tree.snapshot(),
            data,
            "restored tree re-encoded differently (snapshot not canonical)"
        );
    }
}

fn seeds_tree_snapshot() -> Vec<(&'static str, Vec<u8>)> {
    use mykil_tree::{AreaTree, MemberId, TreeBackend, TreeConfig};
    let mut rng = Drbg::from_seed(23);

    // Explicit (MKT1) image with joins and a leave.
    let mut explicit = AreaTree::new(TreeConfig::quad(), &mut rng);
    for m in 0..12 {
        let _ = explicit.join(MemberId(m), &mut rng);
    }
    let _ = explicit.leave(MemberId(4), &mut rng);

    // KHF (MKH1) image whose override table is non-empty: leaves force
    // Fresh rotations, exercising the tail decode with override
    // entries (count, strictly-increasing node indices, key bytes).
    let mut khf = AreaTree::new(TreeConfig::quad().with_backend(TreeBackend::Khf), &mut rng);
    for m in 0..12 {
        let _ = khf.join(MemberId(m), &mut rng);
    }
    let _ = khf.leave(MemberId(2), &mut rng);
    let _ = khf.leave(MemberId(9), &mut rng);

    // Empty trees: smallest valid image of each format.
    let empty_explicit = AreaTree::new(TreeConfig::binary(), &mut rng);
    let empty_khf = AreaTree::new(TreeConfig::binary().with_backend(TreeBackend::Khf), &mut rng);

    // A truncated KHF tail: valid nodes, override count pointing past
    // the end — the exact shape the hardened restore must reject.
    let mut truncated = khf.snapshot();
    truncated.truncate(truncated.len().saturating_sub(9));

    // Regression fixture: a valid header claiming 2^64-1 nodes over a
    // tiny body. The original restore passed the claimed count straight
    // to `Vec::with_capacity` (capacity-overflow abort); restore now
    // bounds the count by what the input bytes can actually hold.
    let mut inflated = b"MKT1".to_vec();
    inflated.push(4);
    inflated.extend_from_slice(&u64::MAX.to_be_bytes());
    inflated.extend_from_slice(&[0u8; 24]);

    vec![
        ("seed-explicit.bin", explicit.snapshot()),
        ("seed-khf-overrides.bin", khf.snapshot()),
        ("seed-empty-explicit.bin", empty_explicit.snapshot()),
        ("seed-empty-khf.bin", empty_khf.snapshot()),
        ("seed-khf-truncated-tail.bin", truncated),
        ("regression-inflated-count.bin", inflated),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every seed must already run clean — the corpus is a regression
    /// suite, not a crash gallery.
    #[test]
    fn builtin_seeds_run_clean() {
        for t in all() {
            for (name, bytes) in (t.seeds)() {
                (t.run)(&bytes);
                let _ = name;
            }
        }
    }

    #[test]
    fn target_names_are_unique_and_findable() {
        let ts = all();
        for t in &ts {
            assert!(find(t.name).is_some());
        }
        let mut names: Vec<_> = ts.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ts.len());
    }

    /// The committed corpus under `tests/corpus/` replays clean against
    /// today's decoders. This is the tier-1 guard that keeps every
    /// fixed crash fixed: a regression re-panics right here, long
    /// before any fuzzing budget is spent.
    #[test]
    fn committed_corpus_replays_clean() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/corpus");
        if !root.is_dir() {
            return; // corpus not generated yet (fresh checkout mid-build)
        }
        for t in all() {
            let dir = root.join(t.name);
            if !dir.is_dir() {
                continue;
            }
            let mut entries: Vec<_> = std::fs::read_dir(&dir)
                .expect("read corpus dir")
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .collect();
            entries.sort();
            assert!(
                !entries.is_empty(),
                "empty committed corpus for {}",
                t.name
            );
            for path in entries {
                let bytes = std::fs::read(&path).expect("read corpus file");
                (t.run)(&bytes);
            }
        }
    }
}
