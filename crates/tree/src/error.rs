//! Error type for key-tree operations.

use crate::MemberId;
use std::fmt;

/// Errors produced by [`KeyTree`](crate::KeyTree) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// The member is already associated with a leaf.
    AlreadyMember(MemberId),
    /// The member is not in this tree.
    NotAMember(MemberId),
    /// A batch contained the same member twice, or a member in both the
    /// join and leave sets.
    DuplicateInBatch(MemberId),
    /// An internal structural invariant did not hold (a planner or
    /// restore bug surfaced as a typed error instead of a panic).
    Inconsistent(&'static str),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::AlreadyMember(m) => write!(f, "member {m} already in the tree"),
            TreeError::NotAMember(m) => write!(f, "member {m} is not in the tree"),
            TreeError::DuplicateInBatch(m) => {
                write!(f, "member {m} appears more than once in the batch")
            }
            TreeError::Inconsistent(what) => {
                write!(f, "tree invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_member() {
        let e = TreeError::NotAMember(MemberId(7));
        assert!(e.to_string().contains("m7"));
        let e = TreeError::AlreadyMember(MemberId(1));
        assert!(e.to_string().contains("m1"));
        let e = TreeError::DuplicateInBatch(MemberId(2));
        assert!(e.to_string().contains("m2"));
        let e = TreeError::Inconsistent("planner bug");
        assert!(e.to_string().contains("planner bug"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync>(_e: E) {}
        takes_err(TreeError::NotAMember(MemberId(0)));
    }
}
