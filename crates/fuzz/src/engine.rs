//! Seeded mutation engine and panic-catching target runner.
//!
//! crates.io (and with it cargo-fuzz/libFuzzer) is unavailable in the
//! build environment, so this is a self-contained coverage-blind
//! mutational fuzzer: a [`Drbg`]-seeded mutator stacked over a seed
//! corpus, with every execution wrapped in `catch_unwind` so a
//! panicking decoder is reported (and its input preserved) instead of
//! killing the run. Determinism is the design center — the same
//! `(engine seed, corpus, iteration budget)` triple replays the exact
//! same input sequence, so a CI crash reproduces locally from the
//! printed seed alone.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

use mykil_crypto::drbg::Drbg;

/// Hard cap on mutated input length. Keeps per-input cost bounded so a
/// wall-clock budget buys iterations, not a handful of giant inputs.
pub const MAX_INPUT: usize = 64 << 10;

/// Values that disproportionately trigger boundary bugs in
/// length-prefixed decoders: zero, one, sign/width boundaries, and the
/// wire layer's `MAX_BYTES_FIELD` cap straddled from both sides.
const INTERESTING_U32: [u32; 8] = [
    0,
    1,
    0x7f,
    0xff,
    0x7fff_ffff,
    0xffff_ffff,
    16 << 20,       // wire::MAX_BYTES_FIELD
    (16 << 20) + 1, // just over the cap
];

const INTERESTING_U64: [u64; 6] = [
    0,
    1,
    u32::MAX as u64,
    u32::MAX as u64 + 1,
    u64::MAX / 9, // ScaleEvent::WIRE_LEN boundary for event counts
    u64::MAX,
];

/// Deterministic stacked-mutation engine.
#[derive(Debug)]
pub struct Mutator {
    rng: Drbg,
}

impl Mutator {
    /// Engine with a fixed seed; the whole input sequence is a pure
    /// function of this value plus the corpus.
    pub fn new(seed: u64) -> Mutator {
        Mutator {
            rng: Drbg::from_seed(seed),
        }
    }

    fn byte(&mut self) -> u8 {
        // mykil-lint: allow(L009) -- masked to 8 bits before narrowing
        (self.rng.gen_range(256) & 0xff) as u8
    }

    fn index(&mut self, len: usize) -> usize {
        if len == 0 {
            0
        } else {
            (self.rng.gen_range(len as u64) as usize).min(len - 1)
        }
    }

    /// Picks a corpus entry to start the next input from.
    pub fn pick<'a>(&mut self, corpus: &'a [Vec<u8>]) -> &'a [u8] {
        let i = self.index(corpus.len());
        corpus.get(i).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Applies 1–4 stacked mutations to `buf`, splicing from `corpus`.
    pub fn mutate(&mut self, buf: &mut Vec<u8>, corpus: &[Vec<u8>]) {
        let rounds = 1 + self.rng.gen_range(4);
        for _ in 0..rounds {
            self.mutate_once(buf, corpus);
        }
        buf.truncate(MAX_INPUT);
    }

    fn mutate_once(&mut self, buf: &mut Vec<u8>, corpus: &[Vec<u8>]) {
        match self.rng.gen_range(9) {
            // Flip one bit.
            0 if !buf.is_empty() => {
                let i = self.index(buf.len());
                let bit = self.rng.gen_range(8);
                if let Some(b) = buf.get_mut(i) {
                    *b ^= 1u8 << bit;
                }
            }
            // Overwrite one byte.
            1 if !buf.is_empty() => {
                let i = self.index(buf.len());
                let b = self.byte();
                if let Some(slot) = buf.get_mut(i) {
                    *slot = b;
                }
            }
            // Insert a random byte.
            2 => {
                let i = self.index(buf.len() + 1);
                let b = self.byte();
                buf.insert(i, b);
            }
            // Delete a short range.
            3 if !buf.is_empty() => {
                let i = self.index(buf.len());
                let n = 1 + self.index(16).min(buf.len() - i - 1);
                buf.drain(i..i + n);
            }
            // Duplicate a range in place.
            4 if !buf.is_empty() => {
                let i = self.index(buf.len());
                let n = (1 + self.index(32)).min(buf.len() - i);
                let chunk: Vec<u8> = buf.get(i..i + n).unwrap_or(&[]).to_vec();
                let at = self.index(buf.len() + 1);
                buf.splice(at..at, chunk);
            }
            // Stamp an interesting u32/u64 (both endiannesses reachable
            // via mutation stacking) over a random position.
            5 if !buf.is_empty() => {
                let write64 = self.rng.gen_range(2) == 0;
                let bytes: Vec<u8> = if write64 {
                    // mykil-lint: allow(L010) -- index() bounds to < len of a non-empty const table
                    let v = INTERESTING_U64[self.index(INTERESTING_U64.len())];
                    v.to_le_bytes().to_vec()
                } else {
                    // mykil-lint: allow(L010) -- index() bounds to < len of a non-empty const table
                    let v = INTERESTING_U32[self.index(INTERESTING_U32.len())];
                    v.to_le_bytes().to_vec()
                };
                let i = self.index(buf.len());
                for (k, &b) in bytes.iter().enumerate() {
                    match buf.get_mut(i + k) {
                        Some(slot) => *slot = b,
                        None => buf.push(b),
                    }
                }
            }
            // Truncate.
            6 if !buf.is_empty() => {
                let keep = self.index(buf.len());
                buf.truncate(keep);
            }
            // Splice a window from another corpus entry.
            7 if !corpus.is_empty() => {
                let i = self.index(corpus.len());
                let donor = corpus.get(i).cloned().unwrap_or_default();
                if donor.is_empty() {
                    return;
                }
                let from = self.index(donor.len());
                let n = (1 + self.index(64)).min(donor.len() - from);
                let at = self.index(buf.len() + 1);
                buf.splice(at..at, donor.get(from..from + n).unwrap_or(&[]).iter().copied());
            }
            // Append a short random tail.
            _ => {
                let n = 1 + self.index(8);
                for _ in 0..n {
                    let b = self.byte();
                    buf.push(b);
                }
            }
        }
    }
}

static LAST_PANIC: Mutex<Option<String>> = Mutex::new(None);

/// Installs a process-wide panic hook that records the panic message
/// (with location) instead of printing a backtrace per crashing input.
/// Call once before fuzzing.
pub fn install_panic_hook() {
    panic::set_hook(Box::new(|info| {
        let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = info.payload().downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        let at = info
            .location()
            .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()))
            .unwrap_or_else(|| "<unknown>".to_string());
        if let Ok(mut slot) = LAST_PANIC.lock() {
            *slot = Some(format!("{msg} (at {at})"));
        }
    }));
}

/// Runs one target execution under `catch_unwind`; `Err` carries the
/// recorded panic message.
pub fn run_caught(run: fn(&[u8]), input: &[u8]) -> Result<(), String> {
    if let Ok(mut slot) = LAST_PANIC.lock() {
        *slot = None;
    }
    match panic::catch_unwind(AssertUnwindSafe(|| run(input))) {
        Ok(()) => Ok(()),
        Err(_) => {
            let msg = LAST_PANIC
                .lock()
                .ok()
                .and_then(|mut s| s.take())
                .unwrap_or_else(|| "<panic message unavailable>".to_string());
            Err(msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutator_is_deterministic() {
        let corpus = vec![vec![1, 2, 3, 4], vec![9; 40]];
        let run = |seed: u64| {
            let mut m = Mutator::new(seed);
            let mut outs = Vec::new();
            for _ in 0..200 {
                let mut buf = m.pick(&corpus).to_vec();
                m.mutate(&mut buf, &corpus);
                outs.push(buf);
            }
            outs
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn mutator_respects_max_input() {
        let corpus = vec![vec![0xabu8; MAX_INPUT]];
        let mut m = Mutator::new(3);
        for _ in 0..100 {
            let mut buf = m.pick(&corpus).to_vec();
            m.mutate(&mut buf, &corpus);
            assert!(buf.len() <= MAX_INPUT);
        }
    }

    #[test]
    fn run_caught_reports_panics() {
        install_panic_hook();
        fn fine(_: &[u8]) {}
        fn boom(_: &[u8]) {
            panic!("boom message");
        }
        assert!(run_caught(fine, b"x").is_ok());
        let err = run_caught(boom, b"x").unwrap_err();
        assert!(err.contains("boom message"), "got: {err}");
    }
}
