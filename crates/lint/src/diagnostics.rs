//! Diagnostics: what a rule reports, and how it is rendered for humans
//! and machines.

use std::fmt;
use std::path::Path;

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id, e.g. `L001`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl Diagnostic {
    /// Renders the finding as one JSON object (machine-readable mode
    /// emits one object per line — JSON Lines).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            escape_json(self.rule),
            escape_json(&self.file),
            self.line,
            escape_json(&self.message)
        )
    }
}

/// Minimal JSON string escaping (the diagnostics contain no exotic
/// control characters, but quoting must still be airtight).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Normalizes a path for diagnostics: workspace-relative with forward
/// slashes.
pub fn display_path(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn human_format_is_clickable() {
        let d = Diagnostic {
            rule: "L001",
            file: "crates/core/src/x.rs".into(),
            line: 17,
            message: "no unwrap".into(),
        };
        assert_eq!(d.to_string(), "crates/core/src/x.rs:17: L001: no unwrap");
    }

    #[test]
    fn json_escapes_quotes() {
        let d = Diagnostic {
            rule: "L002",
            file: "a.rs".into(),
            line: 1,
            message: "derive(\"Debug\") forbidden".into(),
        };
        let j = d.to_json();
        assert!(j.contains("\\\"Debug\\\""), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn paths_are_workspace_relative() {
        let root = PathBuf::from("/ws");
        let p = PathBuf::from("/ws/crates/core/src/a.rs");
        assert_eq!(display_path(&p, &root), "crates/core/src/a.rs");
    }
}
