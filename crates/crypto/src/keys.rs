//! Symmetric key material types.
//!
//! Mykil manages three kinds of 128-bit symmetric keys (Section III of
//! the paper): the per-area *area key*, the *auxiliary keys* of each
//! area's LKH tree, and the `K_shared` secret that all area controllers
//! share to protect tickets. All are [`SymmetricKey`] values here.

use crate::drbg::Drbg;
use crate::SYMMETRIC_KEY_LEN;
use rand::RngCore;

/// A 128-bit symmetric key.
///
/// Equality is constant-time ([`crate::ct::ct_eq`]); `Hash` mixes a
/// SHA-256 fingerprint rather than raw key bytes; the `Debug` impl
/// prints a short fingerprint. The key bytes are zeroized on `Drop`,
/// which is also why the type is `Clone` but deliberately not `Copy`:
/// implicit copies would leave unwiped duplicates on the stack.
#[derive(Clone)]
pub struct SymmetricKey([u8; SYMMETRIC_KEY_LEN]);

impl PartialEq for SymmetricKey {
    fn eq(&self, other: &Self) -> bool {
        crate::ct::ct_eq(&self.0, &other.0)
    }
}

impl Eq for SymmetricKey {}

impl std::hash::Hash for SymmetricKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Feed the hasher a digest, not the key itself: hashers are not
        // secrecy-preserving, and equal keys still hash equally.
        crate::sha256::Sha256::digest(&self.0).hash(state);
    }
}

impl Drop for SymmetricKey {
    fn drop(&mut self) {
        crate::ct::zeroize(&mut self.0);
    }
}

impl SymmetricKey {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; SYMMETRIC_KEY_LEN]) -> Self {
        SymmetricKey(bytes)
    }

    /// Generates a fresh random key.
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut b = [0u8; SYMMETRIC_KEY_LEN];
        rng.fill_bytes(&mut b);
        SymmetricKey(b)
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8; SYMMETRIC_KEY_LEN] {
        &self.0
    }

    /// Derives a sub-key for `purpose` (e.g. separating the cipher key
    /// from the MAC key inside the envelope).
    pub fn derive(&self, purpose: &[u8]) -> SymmetricKey {
        let tag = crate::hmac::hmac_sha256(&self.0, purpose);
        let mut b = [0u8; SYMMETRIC_KEY_LEN];
        b.copy_from_slice(&tag[..SYMMETRIC_KEY_LEN]);
        SymmetricKey(b)
    }

    /// Deterministically derives a key from a label (for tests and
    /// analytic tools that need stable keys).
    pub fn from_label(label: &str) -> SymmetricKey {
        let mut rng = Drbg::from_seed_bytes(label.as_bytes());
        SymmetricKey::random(&mut rng)
    }
}

impl std::fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Print a 4-byte fingerprint, never the key itself.
        let fp = crate::sha256::Sha256::digest(&self.0);
        write!(
            f,
            "SymmetricKey(#{:02x}{:02x}{:02x}{:02x})",
            fp[0], fp[1], fp[2], fp[3]
        )
    }
}

impl From<[u8; SYMMETRIC_KEY_LEN]> for SymmetricKey {
    fn from(bytes: [u8; SYMMETRIC_KEY_LEN]) -> Self {
        SymmetricKey(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_keys_distinct() {
        let mut rng = Drbg::from_seed(1);
        let a = SymmetricKey::random(&mut rng);
        let b = SymmetricKey::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn derive_is_deterministic_and_purpose_separated() {
        let k = SymmetricKey::from_label("area-3");
        assert_eq!(k.derive(b"enc"), k.derive(b"enc"));
        assert_ne!(k.derive(b"enc"), k.derive(b"mac"));
        assert_ne!(k.derive(b"enc"), k);
    }

    #[test]
    fn label_derivation_stable() {
        assert_eq!(
            SymmetricKey::from_label("k1"),
            SymmetricKey::from_label("k1")
        );
        assert_ne!(
            SymmetricKey::from_label("k1"),
            SymmetricKey::from_label("k2")
        );
    }

    #[test]
    fn debug_hides_bytes() {
        let k = SymmetricKey::from_bytes([0xab; 16]);
        let s = format!("{k:?}");
        assert!(s.starts_with("SymmetricKey(#"));
        assert!(!s.contains("abababab"), "must not print raw bytes: {s}");
    }

    #[test]
    fn conversion_from_array() {
        let arr = [7u8; 16];
        let k: SymmetricKey = arr.into();
        assert_eq!(k.as_bytes(), &arr);
    }

    #[test]
    fn drop_zeroizes_key_bytes() {
        let mut k = core::mem::ManuallyDrop::new(SymmetricKey::from_bytes([0xAB; 16]));
        // SAFETY: the value is never used as a SymmetricKey again; the
        // backing array stays valid, letting the test observe the wipe.
        unsafe { core::mem::ManuallyDrop::drop(&mut k) };
        assert_eq!(k.0, [0u8; 16]);
    }

    #[test]
    fn equality_is_by_value_and_hash_is_consistent() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = SymmetricKey::from_bytes([3; 16]);
        let b = SymmetricKey::from_bytes([3; 16]);
        assert_eq!(a, b);
        let hash_of = |k: &SymmetricKey| {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(a, SymmetricKey::from_bytes([4; 16]));
    }
}
