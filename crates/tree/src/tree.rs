//! The key tree structure and single-event join/leave rekeying.

use crate::error::TreeError;
use crate::plan::{EncryptUnder, KeyChange, RekeyPlan, UnicastKeys};
use crate::store::{ExplicitKeys, KeyStore, KhfKeys, RotateStyle};
use crate::MemberId;
use mykil_crypto::keys::SymmetricKey;
use rand::RngCore;
use std::collections::{BTreeMap, BTreeSet};

/// Index of a node in the tree arena (stable across all operations; the
/// tree never removes nodes, mirroring Mykil's keep-empty-leaves rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub(crate) usize);

impl NodeIdx {
    /// The arena index (for serializing node references on the wire).
    pub fn raw(self) -> usize {
        self.0
    }

    /// This index as the `u32` node reference used on the wire. Arena
    /// indices are bounded far below `u32::MAX` (a 2^32-node tree does
    /// not fit in memory), so the conversion saturates instead of
    /// panicking in the unreachable case — the codec layer owns the
    /// checked narrowing so wire code never needs a bare `as` cast.
    pub fn wire(self) -> u32 {
        u32::try_from(self.0).unwrap_or(u32::MAX)
    }

    /// Rebuilds an index from [`Self::raw`] output.
    pub fn from_raw(raw: usize) -> NodeIdx {
        NodeIdx(raw)
    }
}

impl std::fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Which [`KeyStore`] backend an area's tree uses (selected through
/// `TreeConfig` and, one level up, `GroupBuilder::tree_backend`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TreeBackend {
    /// Every node key stored explicitly (the paper's design).
    #[default]
    Explicit,
    /// Keys derived from a keyed-hash forest; only the forest secret
    /// and leave-rotated overrides are resident.
    Khf,
}

/// Tree shape configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    arity: usize,
    prune_on_leave: bool,
    backend: TreeBackend,
}

impl TreeConfig {
    /// A tree where each interior node has up to `arity` children.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= arity <= 16`.
    pub fn with_arity(arity: usize) -> TreeConfig {
        assert!((2..=16).contains(&arity), "arity must be in 2..=16");
        TreeConfig {
            arity,
            prune_on_leave: false,
            backend: TreeBackend::Explicit,
        }
    }

    /// Binary tree (the shape behind the paper's Figure 5/6 examples and
    /// its 2·17·16-byte LKH message arithmetic).
    pub fn binary() -> TreeConfig {
        TreeConfig::with_arity(2)
    }

    /// 4-ary tree — the paper's stated choice ("each node has up to four
    /// children ... provides the best overall performance").
    pub fn quad() -> TreeConfig {
        TreeConfig::with_arity(4)
    }

    /// Enables classic-LKH leaf pruning on leave — the behavior Mykil
    /// deliberately *avoids* (Section III-D keeps empty leaves so the
    /// next join is cheap). Exists for the ablation benchmark.
    ///
    /// Pruned trees do not support [`KeyTree::snapshot`]/`restore`
    /// (replication is a Mykil feature; the ablation models plain LKH).
    pub fn prune_on_leave(mut self, on: bool) -> TreeConfig {
        self.prune_on_leave = on;
        self
    }

    /// Whether leaves are pruned on leave.
    pub fn prunes(&self) -> bool {
        self.prune_on_leave
    }

    /// Selects the key-storage backend used when the tree is built
    /// through [`crate::AreaTree::new`] (a concrete `Tree<S>` ignores
    /// this and is whatever its type parameter says).
    pub fn with_backend(mut self, backend: TreeBackend) -> TreeConfig {
        self.backend = backend;
        self
    }

    /// The configured key-storage backend.
    pub fn backend(&self) -> TreeBackend {
        self.backend
    }

    /// The configured maximum children per node.
    pub fn arity(&self) -> usize {
        self.arity
    }
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig::quad()
    }
}

#[derive(Debug, Clone)]
struct NodeEntry {
    parent: Option<NodeIdx>,
    children: Vec<NodeIdx>,
    version: u64,
    occupant: Option<MemberId>,
    depth: u32,
}

impl NodeEntry {
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// An area's auxiliary-key tree (see the [crate docs](crate)), generic
/// over where key material lives.
///
/// Node 0 is the root and its key is the **area key**. Interior nodes
/// hold auxiliary keys; occupied leaves hold member individual keys.
/// The structure (arena, placement, rekey planning) is shared by every
/// backend; key storage and derivation is delegated to `S`.
#[derive(Debug, Clone)]
pub struct Tree<S: KeyStore> {
    cfg: TreeConfig,
    nodes: Vec<NodeEntry>,
    store: S,
    members: BTreeMap<MemberId, NodeIdx>,
    /// Vacant leaves ordered by (depth, index): shallowest-leftmost first.
    vacant: BTreeSet<(u32, NodeIdx)>,
    /// Interior nodes (or the root) with spare child capacity.
    open_internal: BTreeSet<(u32, NodeIdx)>,
    /// Occupied leaves, ordered for shallowest-leftmost splitting.
    occupied: BTreeSet<(u32, NodeIdx)>,
    /// Per-node visit stamps for aggregated path collection: a node is
    /// on the current batch's rekey frontier iff its stamp equals
    /// [`Self::visit_epoch`]. Reused across calls so the leave hot path
    /// performs no set allocations (see `rekey_paths_leave_style`).
    visit_stamp: Vec<u32>,
    /// Current stamp generation (bumped per aggregated rekey).
    visit_epoch: u32,
}

/// The paper's tree: every key stored explicitly.
pub type KeyTree = Tree<ExplicitKeys>;

/// Keyed-hash-forest tree: keys derived on demand, O(updated set)
/// resident key bytes.
pub type KhfTree = Tree<KhfKeys>;

impl<S: KeyStore> Tree<S> {
    /// Creates a tree containing only the root (area-key) node.
    pub fn new<R: RngCore + ?Sized>(cfg: TreeConfig, rng: &mut R) -> Tree<S> {
        let root = NodeEntry {
            parent: None,
            children: Vec::new(),
            version: 0,
            occupant: None,
            depth: 0,
        };
        let mut open_internal = BTreeSet::new();
        open_internal.insert((0, NodeIdx(0)));
        Tree {
            cfg,
            nodes: vec![root],
            store: S::new_root(rng),
            members: BTreeMap::new(),
            vacant: BTreeSet::new(),
            open_internal,
            occupied: BTreeSet::new(),
            visit_stamp: Vec::new(),
            visit_epoch: 0,
        }
    }

    // ---- queries ----

    /// The tree configuration.
    pub fn config(&self) -> TreeConfig {
        self.cfg
    }

    /// Number of members currently in the tree.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Total nodes ever allocated (the controller's key-storage cost,
    /// Section V-A of the paper).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree (root = 0).
    pub fn height(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// The root index (whose key is the area key).
    pub fn root(&self) -> NodeIdx {
        NodeIdx(0)
    }

    /// Current key of a node, owned (a derivation backend has no stored
    /// key to borrow; explicit trees additionally offer the borrowed
    /// [`KeyTree::key_of`]).
    ///
    /// # Panics
    ///
    /// Panics on an index from a different tree.
    pub fn node_key(&self, node: NodeIdx) -> SymmetricKey {
        self.store.key(node.0, self.nodes[node.0].version)
    }

    /// Version counter of a node's key (bumped on every change).
    pub fn version_of(&self, node: NodeIdx) -> u64 {
        self.nodes[node.0].version
    }

    /// Bytes of key material resident in controller memory. Explicit
    /// storage pays O(node count); the KHF backend pays the forest
    /// secret plus one key per leave-rotated node.
    pub fn resident_key_bytes(&self) -> usize {
        self.store.resident_key_bytes()
    }

    /// Whether the member is present.
    pub fn contains(&self, member: MemberId) -> bool {
        self.members.contains_key(&member)
    }

    /// Iterates over current members in deterministic order.
    pub fn members(&self) -> impl Iterator<Item = MemberId> + '_ {
        self.members.keys().copied()
    }

    /// The leaf associated with a member.
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAMember`] when absent.
    pub fn leaf_of(&self, member: MemberId) -> Result<NodeIdx, TreeError> {
        self.members
            .get(&member)
            .copied()
            .ok_or(TreeError::NotAMember(member))
    }

    /// Collects the `(node, key)` pairs on the member's path into `out`
    /// (cleared first), leaf first, root last.
    ///
    /// This is exactly the key set a Mykil member stores — about 11 keys
    /// for a 5000-member area in the paper's Section V-A arithmetic.
    /// Callers on hot paths reuse `out` across calls; explicit trees can
    /// iterate [`KeyTree::path_key_refs`] instead and copy nothing.
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAMember`] when absent.
    pub fn path_keys_into(
        &self,
        member: MemberId,
        out: &mut Vec<(NodeIdx, SymmetricKey)>,
    ) -> Result<(), TreeError> {
        let leaf = self.leaf_of(member)?;
        out.clear();
        out.reserve(self.nodes[leaf.0].depth as usize + 1);
        for n in self.ancestors(leaf) {
            out.push((n, self.node_key(n)));
        }
        Ok(())
    }

    /// Nodes from `node` (inclusive) up to the root (inclusive),
    /// without allocating. The precomputed parent links and depths make
    /// this (and the sibling lookups during leave-style rekeys) a pure
    /// pointer chase.
    pub fn ancestors(&self, node: NodeIdx) -> Ancestors<'_, S> {
        Ancestors {
            tree: self,
            cur: Some(node),
        }
    }

    /// Nodes from `node` (inclusive) up to the root (inclusive).
    ///
    /// Allocates; prefer [`Self::ancestors`] on hot paths.
    pub fn path_to_root(&self, node: NodeIdx) -> Vec<NodeIdx> {
        let mut path = Vec::with_capacity(self.nodes[node.0].depth as usize + 1);
        path.extend(self.ancestors(node));
        path
    }

    /// Children of a node (empty for leaves).
    pub fn children_of(&self, node: NodeIdx) -> &[NodeIdx] {
        &self.nodes[node.0].children
    }

    /// Occupant of a leaf, if any.
    pub fn occupant_of(&self, node: NodeIdx) -> Option<MemberId> {
        self.nodes[node.0].occupant
    }

    // ---- mutation helpers ----

    /// Rotates the key at `node`, returning the **previous** key (moved
    /// out of the store, not copied — the caller either records it in a
    /// plan or lets it drop and zeroize). `style` tells a derivation
    /// backend whether the new key may come from the forest
    /// (join-style) or must be fresh randomness (leave-style).
    fn rotate_key<R: RngCore + ?Sized>(
        &mut self,
        node: NodeIdx,
        style: RotateStyle,
        rng: &mut R,
    ) -> SymmetricKey {
        let old_version = self.nodes[node.0].version;
        self.nodes[node.0].version += 1;
        self.store.rotate(node.0, old_version, style, rng)
    }

    fn alloc_leaf<R: RngCore + ?Sized>(&mut self, parent: NodeIdx, rng: &mut R) -> NodeIdx {
        let idx = NodeIdx(self.nodes.len());
        let depth = self.nodes[parent.0].depth + 1;
        self.nodes.push(NodeEntry {
            parent: Some(parent),
            children: Vec::new(),
            version: 0,
            occupant: None,
            depth,
        });
        self.store.on_alloc(idx.0, Some(parent.0), rng);
        self.nodes[parent.0].children.push(idx);
        let pdepth = self.nodes[parent.0].depth;
        if self.nodes[parent.0].children.len() >= self.cfg.arity {
            self.open_internal.remove(&(pdepth, parent));
        }
        idx
    }

    /// Finds or creates the leaf where a new member will live, per the
    /// paper's placement rule. Returns `(leaf, displaced)` where
    /// `displaced` is the member moved down by a leaf split.
    pub(crate) fn place_leaf<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> (NodeIdx, Option<(MemberId, NodeIdx)>) {
        // Preference 1: an existing vacant leaf (Mykil keeps them for
        // exactly this purpose).
        if let Some(&(d, leaf)) = self.vacant.iter().next() {
            self.vacant.remove(&(d, leaf));
            return (leaf, None);
        }
        // Preference 2: an interior node with spare capacity.
        if let Some(&(_, parent)) = self.open_internal.iter().next() {
            let leaf = self.alloc_leaf(parent, rng);
            return (leaf, None);
        }
        // Preference 3: split the shallowest, left-most occupied leaf
        // (Figure 4 of the paper).
        let &(d, victim) = self
            .occupied
            .iter()
            .next()
            // mykil-lint: allow(L001) -- structural invariant: full tree has occupied leaves
            .expect("tree with no capacity must have an occupied leaf");
        self.occupied.remove(&(d, victim));
        // mykil-lint: allow(L001) -- victim drawn from the occupied set
        let displaced = self.nodes[victim.0].occupant.take().expect("occupied leaf");
        // The victim becomes an interior node with `arity` fresh leaves.
        let vdepth = self.nodes[victim.0].depth;
        self.open_internal.insert((vdepth, victim));
        let c0 = self.alloc_leaf(victim, rng);
        let c1 = self.alloc_leaf(victim, rng);
        for _ in 2..self.cfg.arity {
            let c = self.alloc_leaf(victim, rng);
            let cdepth = self.nodes[c.0].depth;
            self.vacant.insert((cdepth, c));
        }
        // Displaced member moves to the first child.
        self.nodes[c0.0].occupant = Some(displaced);
        let c0depth = self.nodes[c0.0].depth;
        self.occupied.insert((c0depth, c0));
        self.members.insert(displaced, c0);
        (c1, Some((displaced, c0)))
    }

    /// Puts `member` on a (vacant) leaf with a fresh individual key.
    pub(crate) fn occupy_leaf<R: RngCore + ?Sized>(
        &mut self,
        leaf: NodeIdx,
        member: MemberId,
        rng: &mut R,
    ) {
        debug_assert!(self.nodes[leaf.0].occupant.is_none());
        self.nodes[leaf.0].occupant = Some(member);
        let depth = self.nodes[leaf.0].depth;
        self.occupied.insert((depth, leaf));
        self.members.insert(member, leaf);
        // Join-style: the vacating occupant (if any) only ever saw the
        // previous key *value*, so a derived successor is safe.
        self.rotate_key(leaf, RotateStyle::Derivable, rng);
    }

    // ---- single-event operations ----

    /// Adds `member`, producing the rekey plan of Section III-C /
    /// Figure 4: fresh keys along the new path distributed under their
    /// previous versions, a full key path unicast to the newcomer, and
    /// (after a split) the displaced member's new leaf key unicast to it.
    ///
    /// # Errors
    ///
    /// [`TreeError::AlreadyMember`] when the member is present.
    pub fn join<R: RngCore + ?Sized>(
        &mut self,
        member: MemberId,
        rng: &mut R,
    ) -> Result<RekeyPlan, TreeError> {
        if self.contains(member) {
            return Err(TreeError::AlreadyMember(member));
        }
        let (leaf, displaced) = self.place_leaf(rng);
        self.occupy_leaf(leaf, member, rng);

        // Refresh every key from the leaf's parent to the root; each is
        // multicast encrypted under its previous version. The walk uses
        // the parent links directly — no path vector is materialized.
        let depth = self.nodes[leaf.0].depth as usize;
        let mut changes = Vec::with_capacity(depth);
        let mut cur = self.nodes[leaf.0].parent;
        while let Some(node) = cur {
            let old = self.rotate_key(node, RotateStyle::Derivable, rng);
            changes.push(KeyChange {
                node,
                new_key: self.node_key(node),
                encryptions: vec![(EncryptUnder::PreviousSelf, old)],
            });
            cur = self.nodes[node.0].parent;
        }

        let mut newcomer_keys = Vec::with_capacity(depth + 1);
        for n in self.ancestors(leaf) {
            newcomer_keys.push((n, self.node_key(n)));
        }
        let mut unicasts = Vec::with_capacity(2);
        unicasts.push(UnicastKeys {
            member,
            keys: newcomer_keys,
        });
        if let Some((displaced_member, new_leaf)) = displaced {
            // The displaced member can decrypt the path updates with its
            // old keys; it only needs its fresh leaf key.
            unicasts.push(UnicastKeys {
                member: displaced_member,
                keys: vec![(new_leaf, self.node_key(new_leaf))],
            });
        }
        Ok(RekeyPlan { changes, unicasts })
    }

    /// Removes `member`, producing the rekey plan of Figure 5: every key
    /// from the vacated leaf's parent to the root is refreshed and
    /// multicast encrypted under each (surviving) child's key. The leaf
    /// is kept vacant rather than pruned.
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAMember`] when absent.
    pub fn leave<R: RngCore + ?Sized>(
        &mut self,
        member: MemberId,
        rng: &mut R,
    ) -> Result<RekeyPlan, TreeError> {
        let leaf = self.leaf_of(member)?;
        let Some(start) = self.remove_member(member, leaf) else {
            return Ok(RekeyPlan::default());
        };
        Ok(self.rekey_paths_leave_style(&[start], rng))
    }

    /// Removes a member's occupancy, returning the node where the leave
    /// rekey must start (the deepest surviving ancestor), or `None` when
    /// the member sat directly under a now-empty root.
    pub(crate) fn remove_member(&mut self, member: MemberId, leaf: NodeIdx) -> Option<NodeIdx> {
        self.members.remove(&member);
        self.nodes[leaf.0].occupant = None;
        let depth = self.nodes[leaf.0].depth;
        self.occupied.remove(&(depth, leaf));
        if self.cfg.prune_on_leave {
            self.prune_leaf(leaf)
        } else {
            // Mykil's rule: keep the vacated leaf for a cheap future
            // join (Section III-D).
            self.vacant.insert((depth, leaf));
            self.nodes[leaf.0].parent
        }
    }

    /// Detaches a vacated leaf from its parent (the classic-LKH ablation
    /// mode; Mykil itself never prunes). The arena slot stays allocated
    /// but unreachable. Returns the deepest surviving ancestor.
    fn prune_leaf(&mut self, leaf: NodeIdx) -> Option<NodeIdx> {
        let parent = self.nodes[leaf.0].parent?;
        // Drop the node from every index before detaching it.
        let ldepth = self.nodes[leaf.0].depth;
        self.vacant.remove(&(ldepth, leaf));
        self.occupied.remove(&(ldepth, leaf));
        self.open_internal.remove(&(ldepth, leaf));
        self.nodes[parent.0].children.retain(|&c| c != leaf);
        self.nodes[leaf.0].parent = None;
        let pdepth = self.nodes[parent.0].depth;
        if self.nodes[parent.0].children.is_empty() {
            // The parent became childless; prune upward unless it is the
            // root (whose key is the area key).
            if parent.0 != 0 {
                self.prune_leaf(parent)
            } else {
                self.open_internal.insert((0, NodeIdx(0)));
                Some(parent)
            }
        } else {
            if self.nodes[parent.0].children.len() < self.cfg.arity {
                self.open_internal.insert((pdepth, parent));
            }
            Some(parent)
        }
    }

    /// Refreshes all keys on the paths from each of `starts` to the root
    /// and builds leave-style (child-key-encrypted) distribution entries.
    /// Shared path segments are refreshed exactly once — this is the
    /// aggregation of Figure 6.
    pub(crate) fn rekey_paths_leave_style<R: RngCore + ?Sized>(
        &mut self,
        starts: &[NodeIdx],
        rng: &mut R,
    ) -> RekeyPlan {
        // Union of paths, deepest first (so child keys are already fresh
        // when the parent's change is encrypted under them). Dedup uses
        // the reusable per-node visit stamps: paths share every node
        // above the first common ancestor, so a stamped node ends the
        // climb — no set allocation, no re-walking shared segments.
        self.visit_epoch = self.visit_epoch.wrapping_add(1);
        if self.visit_epoch == 0 {
            // Stamp generation wrapped: old stamps could alias epoch 0.
            self.visit_stamp.fill(0);
            self.visit_epoch = 1;
        }
        self.visit_stamp.resize(self.nodes.len(), 0);
        let max_depth = starts
            .iter()
            .map(|s| self.nodes[s.0].depth as usize + 1)
            .max()
            .unwrap_or(0);
        let mut changed: Vec<(u32, NodeIdx)> = Vec::with_capacity(max_depth + starts.len());
        for &s in starts {
            let mut cur = Some(s);
            while let Some(node) = cur {
                if self.visit_stamp[node.0] == self.visit_epoch {
                    break;
                }
                self.visit_stamp[node.0] = self.visit_epoch;
                changed.push((self.nodes[node.0].depth, node));
                cur = self.nodes[node.0].parent;
            }
        }
        // Deepest first, index as the (deterministic) tiebreaker —
        // the same order the former (depth, idx) set walk produced.
        changed.sort_unstable_by(|a, b| b.cmp(a));
        let mut changes = Vec::with_capacity(changed.len());
        for &(_, node) in &changed {
            // Leave-style: the departed member must not be able to
            // derive the successor, so the backend draws fresh.
            let _superseded = self.rotate_key(node, RotateStyle::Fresh, rng);
            let children = &self.nodes[node.0].children;
            let mut encryptions = Vec::with_capacity(children.len());
            for &child in children {
                let c = &self.nodes[child.0];
                // A vacant leaf's key is known only to departed members;
                // never encrypt under it.
                if c.is_leaf() && c.occupant.is_none() {
                    continue;
                }
                // The child's key is the fresh one when the child itself
                // changed (deeper nodes were processed first).
                encryptions.push((
                    EncryptUnder::Child(child),
                    self.store.key(child.0, c.version),
                ));
            }
            changes.push(KeyChange {
                node,
                new_key: self.node_key(node),
                encryptions,
            });
        }
        RekeyPlan {
            changes,
            unicasts: Vec::new(),
        }
    }

    /// Rotates only the root (area) key, returning a plan with one
    /// change distributed under the previous area key — the periodic
    /// freshness rekey of the paper's Section III-E.
    pub fn rotate_area_key<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> RekeyPlan {
        let old = self.rotate_key(NodeIdx(0), RotateStyle::Derivable, rng);
        RekeyPlan {
            changes: vec![KeyChange {
                node: NodeIdx(0),
                new_key: self.node_key(NodeIdx(0)),
                encryptions: vec![(EncryptUnder::PreviousSelf, old)],
            }],
            unicasts: Vec::new(),
        }
    }

    /// Parent of a node (`None` for the root).
    pub fn parent_of(&self, node: NodeIdx) -> Option<NodeIdx> {
        self.nodes[node.0].parent
    }

    // ---- snapshot-restore plumbing (see `snapshot.rs`) ----

    /// Creates an empty tree shell for restore.
    pub(crate) fn restore_shell(cfg: TreeConfig, capacity: usize) -> Tree<S> {
        Tree {
            cfg,
            nodes: Vec::with_capacity(capacity),
            store: S::restore_shell(capacity),
            members: BTreeMap::new(),
            vacant: BTreeSet::new(),
            open_internal: BTreeSet::new(),
            occupied: BTreeSet::new(),
            visit_stamp: Vec::new(),
            visit_epoch: 0,
        }
    }

    pub(crate) fn store(&self) -> &S {
        &self.store
    }

    pub(crate) fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Appends node `index` during restore; nodes must arrive in index
    /// order with parents before children.
    pub(crate) fn restore_node(
        &mut self,
        index: usize,
        parent: Option<NodeIdx>,
        version: u64,
        occupant: Option<MemberId>,
    ) -> Result<(), TreeError> {
        debug_assert_eq!(index, self.nodes.len());
        let depth = match parent {
            Some(p) => self.nodes[p.0].depth + 1,
            None => 0,
        };
        self.nodes.push(NodeEntry {
            parent,
            children: Vec::new(),
            version,
            occupant,
            depth,
        });
        if let Some(p) = parent {
            self.nodes[p.0].children.push(NodeIdx(index));
            if self.nodes[p.0].children.len() > self.cfg.arity {
                return Err(TreeError::Inconsistent(
                    "node has more children than the arity allows",
                ));
            }
        }
        if let Some(m) = occupant {
            if self.members.insert(m, NodeIdx(index)).is_some() {
                return Err(TreeError::AlreadyMember(m));
            }
        }
        Ok(())
    }

    /// Rebuilds the derived index sets after a restore.
    pub(crate) fn rebuild_indices(&mut self) {
        self.vacant.clear();
        self.open_internal.clear();
        self.occupied.clear();
        for (i, n) in self.nodes.iter().enumerate() {
            let idx = NodeIdx(i);
            if n.is_leaf() {
                if n.occupant.is_some() {
                    self.occupied.insert((n.depth, idx));
                } else if i != 0 {
                    self.vacant.insert((n.depth, idx));
                } else {
                    // Empty root acts as an open interior node.
                    self.open_internal.insert((n.depth, idx));
                }
            } else if n.children.len() < self.cfg.arity {
                self.open_internal.insert((n.depth, idx));
            }
        }
    }

    /// Whether any interior node carries an occupant (a malformed state
    /// a snapshot must never produce; checked during restore).
    pub(crate) fn has_interior_occupant(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| n.occupant.is_some() && !n.is_leaf())
    }

    /// Verifies internal consistency; used by tests and property checks.
    ///
    /// # Panics
    ///
    /// Panics with a description when an invariant is violated.
    pub fn check_invariants(&self) {
        for (i, n) in self.nodes.iter().enumerate() {
            let idx = NodeIdx(i);
            if let Some(p) = n.parent {
                assert!(
                    self.nodes[p.0].children.contains(&idx),
                    "{idx}: parent link not mirrored"
                );
                assert_eq!(n.depth, self.nodes[p.0].depth + 1, "{idx}: bad depth");
            } else if i != 0 {
                // Detached (pruned) nodes exist only in prune mode and
                // must be absent from every index.
                assert!(self.cfg.prune_on_leave, "{idx}: orphan without pruning");
                assert!(n.occupant.is_none(), "{idx}: pruned node occupied");
                assert!(
                    !self.vacant.contains(&(n.depth, idx))
                        && !self.occupied.contains(&(n.depth, idx))
                        && !self.open_internal.contains(&(n.depth, idx)),
                    "{idx}: pruned node still indexed"
                );
                continue;
            }
            assert!(
                n.children.len() <= self.cfg.arity,
                "{idx}: too many children"
            );
            if let Some(m) = n.occupant {
                assert!(n.is_leaf(), "{idx}: occupant on interior node");
                assert_eq!(self.members.get(&m), Some(&idx), "{m} map mismatch");
                assert!(self.occupied.contains(&(n.depth, idx)), "{idx}: not in occupied set");
            }
            if n.is_leaf() && n.occupant.is_none() && i != 0 {
                assert!(self.vacant.contains(&(n.depth, idx)), "{idx}: not in vacant set");
            }
            if !n.is_leaf() && n.children.len() < self.cfg.arity {
                assert!(
                    self.open_internal.contains(&(n.depth, idx)),
                    "{idx}: missing from open_internal"
                );
            }
        }
        for (&m, &leaf) in &self.members {
            assert_eq!(self.nodes[leaf.0].occupant, Some(m), "{m}: leaf mismatch");
        }
    }
}

impl Tree<ExplicitKeys> {
    /// The current area key (the root key), borrowed from the tree.
    ///
    /// Explicit key storage lives in the store's arena; accessors hand
    /// out borrowed views so reading a key never copies (or later
    /// zeroizes) key material. Callers that must retain a key across a
    /// tree mutation clone explicitly. Derivation backends have nothing
    /// to borrow — generic code uses the owned
    /// [`Tree::node_key`]/[`crate::AuxTree::area_key`] instead.
    pub fn area_key(&self) -> &SymmetricKey {
        self.store.key_ref(0)
    }

    /// Current key of a node, borrowed from the tree.
    ///
    /// # Panics
    ///
    /// Panics on an index from a different tree.
    pub fn key_of(&self, node: NodeIdx) -> &SymmetricKey {
        self.store.key_ref(node.0)
    }

    /// Borrowed `(node, key)` pairs on the member's path, leaf first,
    /// root last — the allocation-free view behind
    /// [`Tree::path_keys_into`]. Serializers iterate this directly
    /// instead of materializing a cloned path vector.
    pub fn path_key_refs(
        &self,
        member: MemberId,
    ) -> Result<impl Iterator<Item = (NodeIdx, &SymmetricKey)> + '_, TreeError> {
        let leaf = self.leaf_of(member)?;
        Ok(self.ancestors(leaf).map(|n| (n, self.store.key_ref(n.0))))
    }
}

/// Iterator over a node's path to the root via the stored parent links.
/// See [`Tree::ancestors`].
pub struct Ancestors<'a, S: KeyStore> {
    tree: &'a Tree<S>,
    cur: Option<NodeIdx>,
}

impl<S: KeyStore> Iterator for Ancestors<'_, S> {
    type Item = NodeIdx;

    fn next(&mut self) -> Option<NodeIdx> {
        let node = self.cur?;
        self.cur = self.tree.nodes[node.0].parent;
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mykil_crypto::drbg::Drbg;

    fn rng() -> Drbg {
        Drbg::from_seed(42)
    }

    #[test]
    fn empty_tree() {
        let mut r = rng();
        let tree = KeyTree::new(TreeConfig::quad(), &mut r);
        assert_eq!(tree.member_count(), 0);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.key_of(tree.root()), tree.area_key());
        tree.check_invariants();
    }

    #[test]
    fn first_joins_attach_to_root() {
        let mut r = rng();
        let mut tree = KeyTree::new(TreeConfig::quad(), &mut r);
        for m in 0..4 {
            let plan = tree.join(MemberId(m), &mut r).unwrap();
            // Path rekey: root only (leaf parents are the root).
            assert_eq!(plan.keys_changed(), 1);
            assert_eq!(plan.unicasts.len(), 1);
            tree.check_invariants();
        }
        assert_eq!(tree.member_count(), 4);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.node_count(), 5);
    }

    #[test]
    fn fifth_join_splits_shallowest_leftmost_leaf() {
        let mut r = rng();
        let mut tree = KeyTree::new(TreeConfig::quad(), &mut r);
        for m in 0..4 {
            tree.join(MemberId(m), &mut r).unwrap();
        }
        let plan = tree.join(MemberId(4), &mut r).unwrap();
        tree.check_invariants();
        assert_eq!(tree.member_count(), 5);
        // Split created 4 children under one former leaf.
        assert_eq!(tree.node_count(), 9);
        assert_eq!(tree.height(), 2);
        // Displaced member got a unicast with exactly its new leaf key.
        assert_eq!(plan.unicasts.len(), 2);
        let displaced = &plan.unicasts[1];
        assert_eq!(displaced.keys.len(), 1);
        // Newcomer's path has 3 keys now (leaf, split node, root).
        assert_eq!(plan.unicasts[0].keys.len(), 3);
    }

    #[test]
    fn join_rejects_duplicates() {
        let mut r = rng();
        let mut tree = KeyTree::new(TreeConfig::quad(), &mut r);
        tree.join(MemberId(1), &mut r).unwrap();
        assert!(matches!(
            tree.join(MemberId(1), &mut r),
            Err(TreeError::AlreadyMember(MemberId(1)))
        ));
    }

    #[test]
    fn join_changes_all_path_keys() {
        let mut r = rng();
        let mut tree = KeyTree::new(TreeConfig::binary(), &mut r);
        for m in 0..8 {
            tree.join(MemberId(m), &mut r).unwrap();
        }
        let area_key_before = tree.area_key().clone();
        let plan = tree.join(MemberId(100), &mut r).unwrap();
        assert_ne!(tree.area_key(), &area_key_before, "area key must rotate");
        // Every change is distributed under the previous self key.
        for c in &plan.changes {
            assert_eq!(c.encryptions.len(), 1);
            assert!(matches!(c.encryptions[0].0, EncryptUnder::PreviousSelf));
            assert_ne!(c.encryptions[0].1, c.new_key);
        }
    }

    #[test]
    fn leave_rekeys_path_under_child_keys() {
        let mut r = rng();
        let mut tree = KeyTree::new(TreeConfig::binary(), &mut r);
        for m in 0..8 {
            tree.join(MemberId(m), &mut r).unwrap();
        }
        let victim = MemberId(3);
        let victim_leaf = tree.leaf_of(victim).unwrap();
        let plan = tree.leave(victim, &mut r).unwrap();
        tree.check_invariants();
        assert!(!tree.contains(victim));
        // No encryption may use the departed member's leaf key.
        for c in &plan.changes {
            for (under, _) in &c.encryptions {
                if let EncryptUnder::Child(child) = under {
                    assert_ne!(*child, victim_leaf, "encrypted under departed leaf");
                }
            }
        }
        // Root change must be present (area key rotates on leave).
        assert!(plan.changes.iter().any(|c| c.node == tree.root()));
    }

    #[test]
    fn leave_keeps_leaf_for_cheap_rejoin() {
        let mut r = rng();
        let mut tree = KeyTree::new(TreeConfig::quad(), &mut r);
        for m in 0..9 {
            tree.join(MemberId(m), &mut r).unwrap();
        }
        let nodes_before = tree.node_count();
        tree.leave(MemberId(5), &mut r).unwrap();
        assert_eq!(tree.node_count(), nodes_before, "leaf must not be pruned");
        // Next join reuses the vacant leaf: no new nodes.
        tree.join(MemberId(50), &mut r).unwrap();
        assert_eq!(tree.node_count(), nodes_before);
        tree.check_invariants();
    }

    #[test]
    fn leave_last_member_is_empty_plan() {
        let mut r = rng();
        let mut tree = KeyTree::new(TreeConfig::quad(), &mut r);
        tree.join(MemberId(1), &mut r).unwrap();
        let plan = tree.leave(MemberId(1), &mut r).unwrap();
        // Path = root only; with no members left the root change has no
        // readable encryption.
        assert!(plan.changes.iter().all(|c| c.encryptions.is_empty()));
        assert_eq!(tree.member_count(), 0);
    }

    #[test]
    fn leave_unknown_member_errors() {
        let mut r = rng();
        let mut tree = KeyTree::new(TreeConfig::quad(), &mut r);
        assert!(matches!(
            tree.leave(MemberId(9), &mut r),
            Err(TreeError::NotAMember(MemberId(9)))
        ));
    }

    #[test]
    fn path_keys_leaf_to_root() {
        let mut r = rng();
        let mut tree = KeyTree::new(TreeConfig::binary(), &mut r);
        for m in 0..6 {
            tree.join(MemberId(m), &mut r).unwrap();
        }
        let mut path = Vec::new();
        tree.path_keys_into(MemberId(5), &mut path).unwrap();
        assert!(path.len() >= 2);
        assert_eq!(path.last().unwrap().0, tree.root());
        assert_eq!(&path.last().unwrap().1, tree.area_key());
        // First entry is the member's own leaf.
        assert_eq!(tree.occupant_of(path[0].0), Some(MemberId(5)));
        // The borrowed view walks the same pairs without copying.
        let refs: Vec<(NodeIdx, SymmetricKey)> = tree
            .path_key_refs(MemberId(5))
            .unwrap()
            .map(|(n, k)| (n, k.clone()))
            .collect();
        assert_eq!(refs, path);
    }

    #[test]
    fn heights_stay_logarithmic() {
        let mut r = rng();
        let mut tree = KeyTree::new(TreeConfig::quad(), &mut r);
        for m in 0..500 {
            tree.join(MemberId(m), &mut r).unwrap();
        }
        tree.check_invariants();
        // ceil(log4(500)) = 5; splits can add one extra level.
        assert!(tree.height() <= 7, "height={}", tree.height());
        assert_eq!(tree.member_count(), 500);
    }

    #[test]
    fn binary_tree_leave_message_shape() {
        // The paper's arithmetic: a full binary tree of depth h yields
        // about 2 encrypted keys per level on a leave.
        let mut r = rng();
        let mut tree = KeyTree::new(TreeConfig::binary(), &mut r);
        for m in 0..16 {
            tree.join(MemberId(m), &mut r).unwrap();
        }
        let plan = tree.leave(MemberId(7), &mut r).unwrap();
        let h = plan.keys_changed();
        let enc = plan.encryption_count();
        // Each change except the deepest has 2 child encryptions; the
        // deepest has 1 (its vacant sibling is skipped).
        assert_eq!(enc, 2 * h - 1, "h={h} enc={enc}");
    }

    #[test]
    fn churn_preserves_invariants() {
        let mut r = rng();
        let mut tree = KeyTree::new(TreeConfig::quad(), &mut r);
        for round in 0u64..30 {
            for m in 0..10 {
                tree.join(MemberId(round * 100 + m), &mut r).unwrap();
            }
            for m in 0..5 {
                tree.leave(MemberId(round * 100 + m), &mut r).unwrap();
            }
            tree.check_invariants();
        }
        assert_eq!(tree.member_count(), 150);
    }

    #[test]
    fn khf_tree_runs_the_same_protocol() {
        let mut r = rng();
        let mut tree: KhfTree = KhfTree::new(TreeConfig::quad(), &mut r);
        for m in 0..20 {
            let plan = tree.join(MemberId(m), &mut r).unwrap();
            assert!(!plan.unicasts.is_empty());
        }
        let plan = tree.leave(MemberId(7), &mut r).unwrap();
        assert!(plan.changes.iter().any(|c| c.node == tree.root()));
        tree.check_invariants();
        assert_eq!(tree.member_count(), 19);
        // Join-heavy history leaves almost nothing resident: the leave
        // overrode one path, the joins derived everything else.
        assert!(
            tree.resident_key_bytes() < tree.node_count() * crate::KEY_LEN,
            "resident {} not sublinear in {} nodes",
            tree.resident_key_bytes(),
            tree.node_count()
        );
    }

    #[test]
    fn khf_leave_key_is_not_forest_derived() {
        let mut r = rng();
        let mut tree: KhfTree = KhfTree::new(TreeConfig::quad(), &mut r);
        for m in 0..5 {
            tree.join(MemberId(m), &mut r).unwrap();
        }
        let overrides_before = tree.store().override_count();
        let plan = tree.leave(MemberId(2), &mut r).unwrap();
        assert!(
            tree.store().override_count() > overrides_before,
            "leave must add overrides"
        );
        // The plan's new keys match what the tree now reports.
        for c in &plan.changes {
            assert_eq!(c.new_key, tree.node_key(c.node));
        }
    }

    #[test]
    fn config_validation() {
        assert_eq!(TreeConfig::binary().arity(), 2);
        assert_eq!(TreeConfig::quad().arity(), 4);
        assert_eq!(TreeConfig::with_arity(8).arity(), 8);
        assert_eq!(TreeConfig::default(), TreeConfig::quad());
        assert_eq!(TreeConfig::default().backend(), TreeBackend::Explicit);
        assert_eq!(
            TreeConfig::quad().with_backend(TreeBackend::Khf).backend(),
            TreeBackend::Khf
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_one_rejected() {
        let _ = TreeConfig::with_arity(1);
    }

    #[test]
    fn node_idx_round_trip() {
        let n = NodeIdx::from_raw(12);
        assert_eq!(n.raw(), 12);
        assert_eq!(n.to_string(), "k12");
    }
}

#[cfg(test)]
mod prune_tests {
    use super::*;
    use mykil_crypto::drbg::Drbg;

    fn build(prune: bool, n: u64, r: &mut Drbg) -> KeyTree {
        let cfg = TreeConfig::quad().prune_on_leave(prune);
        let mut t = KeyTree::new(cfg, r);
        for m in 0..n {
            t.join(MemberId(m), r).unwrap();
        }
        t
    }

    #[test]
    fn pruned_leaves_are_detached() {
        let mut r = Drbg::from_seed(1);
        let mut t = build(true, 20, &mut r);
        let leaf = t.leaf_of(MemberId(7)).unwrap();
        t.leave(MemberId(7), &mut r).unwrap();
        t.check_invariants();
        assert!(t.parent_of(leaf).is_none(), "leaf still attached");
        // The pruned leaf can never be reused (split-born vacant leaves
        // elsewhere may be — pruning only affects vacated slots).
        t.join(MemberId(100), &mut r).unwrap();
        t.check_invariants();
        assert_ne!(
            t.leaf_of(MemberId(100)).unwrap(),
            leaf,
            "pruned slot was resurrected"
        );
    }

    #[test]
    fn keep_mode_reuses_where_prune_mode_cannot() {
        let mut r1 = Drbg::from_seed(2);
        let mut r2 = Drbg::from_seed(2);
        let mut keep = build(false, 64, &mut r1);
        let mut prune = build(true, 64, &mut r2);

        // Same churn on both: leave then join, repeatedly.
        let mut keep_unicast = 0usize;
        let mut prune_unicast = 0usize;
        for i in 0..16u64 {
            keep.leave(MemberId(i), &mut r1).unwrap();
            prune.leave(MemberId(i), &mut r2).unwrap();
            keep_unicast += keep.join(MemberId(1000 + i), &mut r1).unwrap().unicast_bytes();
            prune_unicast += prune
                .join(MemberId(1000 + i), &mut r2)
                .unwrap()
                .unicast_bytes();
            keep.check_invariants();
            prune.check_invariants();
        }
        assert_eq!(keep.member_count(), prune.member_count());
        // Mykil's keep-vacant rule yields cheaper (or equal) joins —
        // the Section III-D design bet.
        assert!(
            keep_unicast <= prune_unicast,
            "keep={keep_unicast} prune={prune_unicast}"
        );
    }

    #[test]
    fn prune_cascades_up_empty_subtrees() {
        let mut r = Drbg::from_seed(3);
        let cfg = TreeConfig::binary().prune_on_leave(true);
        let mut t = KeyTree::new(cfg, &mut r);
        for m in 0..4 {
            t.join(MemberId(m), &mut r).unwrap();
        }
        // Remove every member: the tree collapses back to the root.
        for m in 0..4 {
            t.leave(MemberId(m), &mut r).unwrap();
            t.check_invariants();
        }
        assert_eq!(t.member_count(), 0);
        assert!(t.children_of(t.root()).is_empty(), "root not collapsed");
        // And it is still usable.
        t.join(MemberId(50), &mut r).unwrap();
        t.check_invariants();
        assert_eq!(t.member_count(), 1);
    }

    #[test]
    fn forward_secrecy_holds_in_prune_mode() {
        let mut r = Drbg::from_seed(4);
        let mut t = build(true, 16, &mut r);
        let key_before = t.area_key().clone();
        let plan = t.leave(MemberId(5), &mut r).unwrap();
        assert_ne!(t.area_key(), &key_before);
        // No encryption under the departed leaf's key.
        for c in &plan.changes {
            for (under, _) in &c.encryptions {
                if let crate::plan::EncryptUnder::Child(child) = under {
                    assert!(t.parent_of(*child).is_some(), "encrypted under pruned node");
                }
            }
        }
    }
}
