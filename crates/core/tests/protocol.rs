//! End-to-end protocol tests: the 7-step join (Figure 3), key
//! distribution, batching (Section III-E), and data propagation
//! (Figure 2) over the simulated network with real cryptography.

use mykil::config::BatchPolicy;
use mykil::group::GroupBuilder;
use mykil::member::{Member, MemberPhase};
use mykil_net::Duration;

#[test]
fn join_protocol_completes_in_seven_messages() {
    let mut g = GroupBuilder::new(1).areas(1).build();
    let m = g.register_member(1);
    g.settle();

    assert!(g.is_member(m));
    assert_eq!(g.member_phase(m), MemberPhase::Active);
    let timings = g.member(m).timings;
    assert!(timings.join_completed.unwrap() > timings.join_started.unwrap());
    // Steps 1-7 of Figure 3, one message each.
    assert_eq!(g.stats().kind("join").messages_sent, 7);
    assert_eq!(g.ac(0).member_count(), 1);
    assert_eq!(g.ac(0).stats.joins_admitted, 1);
}

#[test]
fn member_holds_current_area_key_and_path() {
    let mut g = GroupBuilder::new(2).areas(1).build();
    let a = g.register_member(1);
    let b = g.register_member(2);
    g.settle();

    let ak = g.ac(0).area_key();
    assert_eq!(g.member(a).current_area_key(), Some(ak.clone()));
    assert_eq!(g.member(b).current_area_key(), Some(ak));
    // Path storage: at least leaf + root.
    assert!(g.member(a).key_count() >= 2);
}

#[test]
fn later_joins_rotate_area_key_for_existing_members() {
    let mut g = GroupBuilder::new(3).areas(1).build();
    let a = g.register_member(1);
    g.settle();
    let key_before = g.member(a).current_area_key().unwrap();

    let b = g.register_member(2);
    g.settle();
    // Backward secrecy: the area key rotated on b's join, and a tracked
    // the rotation via the key-update multicast.
    let key_after = g.ac(0).area_key();
    assert_ne!(key_before, key_after);
    assert_eq!(g.member(a).current_area_key(), Some(key_after.clone()));
    assert_eq!(g.member(b).current_area_key(), Some(key_after));
}

#[test]
fn data_flows_within_an_area() {
    let mut g = GroupBuilder::new(4).areas(1).build();
    let a = g.register_member(1);
    let b = g.register_member(2);
    g.settle();

    assert!(g.send_data(a, b"pay-per-view frame 1"));
    g.run_for(Duration::from_secs(1));
    assert_eq!(g.received_data(b), vec![b"pay-per-view frame 1".to_vec()]);
    assert_eq!(g.member(b).decrypt_failures, 0);
}

#[test]
fn data_propagates_across_the_area_hierarchy() {
    // Three areas: 0 is the root, 1 and 2 hang under it (Figure 2).
    let mut g = GroupBuilder::new(5).areas(3).build();
    let members: Vec<_> = (1..=3).map(|i| g.register_member(i)).collect();
    g.settle();
    // Round-robin puts exactly one member per area (order depends on
    // handshake completion order).
    let mut areas: Vec<u32> = members
        .iter()
        .map(|&m| g.member(m).area().unwrap().0)
        .collect();
    areas.sort_unstable();
    assert_eq!(areas, vec![0, 1, 2]);

    // Data from a leaf area must reach every other area via the root,
    // with ACs translating K_r between area keys hop by hop.
    let sender = *members
        .iter()
        .find(|&&m| g.member(m).area().unwrap().0 == 1)
        .unwrap();
    assert!(g.send_data(sender, b"cross-area frame"));
    g.run_for(Duration::from_secs(2));
    for &m in &members {
        assert_eq!(
            g.received_data(m),
            vec![b"cross-area frame".to_vec()],
            "member in area {} missed the frame",
            g.member(m).area().unwrap()
        );
    }
}

#[test]
fn every_member_decrypts_under_churn_with_batching() {
    let mut g = GroupBuilder::new(6)
        .areas(2)
        .batch_policy(BatchPolicy::OnDataOrTimer)
        .build();
    let senders: Vec<_> = (0..4).map(|i| g.register_member(i)).collect();
    g.settle();
    for (i, &m) in senders.iter().enumerate() {
        assert!(g.is_member(m), "member {i} failed to join");
        let payload = format!("frame-{i}");
        assert!(g.send_data(m, payload.as_bytes()));
        g.run_for(Duration::from_millis(800));
    }
    g.run_for(Duration::from_secs(1));
    for &m in &senders {
        // Everyone received all four frames (including their own echo).
        assert_eq!(g.received_data(m).len(), 4, "member missed frames");
        assert_eq!(g.member(m).decrypt_failures, 0);
    }
}

#[test]
fn batching_defers_rekey_until_data_or_timer() {
    let mut g = GroupBuilder::new(7)
        .areas(1)
        .batch_policy(BatchPolicy::OnDataOrTimer)
        .build();
    let a = g.register_member(1);
    // Let the join complete but stop before the 2 s freshness timer.
    g.run_for(Duration::from_millis(600));
    assert!(g.is_member(a));
    assert!(
        g.ac(0).update_pending(),
        "join rekey should be batched until data arrives"
    );
    let rekeys_before = g.ac(0).stats.rekeys;

    // Data arrival forces the flush before forwarding (Section III-E).
    g.send_data(a, b"trigger");
    g.run_for(Duration::from_millis(500));
    assert!(!g.ac(0).update_pending());
    assert!(g.ac(0).stats.rekeys > rekeys_before);
}

#[test]
fn immediate_policy_rekeys_every_event() {
    let mut g = GroupBuilder::new(8)
        .areas(1)
        .batch_policy(BatchPolicy::Immediate)
        .build();
    for i in 0..3 {
        g.register_member(i);
        g.run_for(Duration::from_secs(1));
    }
    // One key-update multicast per join event, no deferral.
    assert!(!g.ac(0).update_pending());
    assert_eq!(g.ac(0).stats.rekeys as usize, 3);
}

#[test]
fn aggregated_joins_produce_fewer_key_updates() {
    // Admit 4 members quickly under batching: the multicast count must
    // be lower than one per join (the paper's 40-60% savings claim).
    let mut batched = GroupBuilder::new(9)
        .areas(1)
        .batch_policy(BatchPolicy::OnDataOrTimer)
        .build();
    for i in 0..4 {
        batched.register_member(i);
    }
    batched.run_for(Duration::from_secs(6));
    let batched_updates = batched.stats().kind("key-update").messages_sent;

    let mut immediate = GroupBuilder::new(9)
        .areas(1)
        .batch_policy(BatchPolicy::Immediate)
        .build();
    for i in 0..4 {
        immediate.register_member(i);
    }
    immediate.run_for(Duration::from_secs(6));
    let immediate_updates = immediate.stats().kind("key-update").messages_sent;

    assert!(
        batched_updates < immediate_updates,
        "batched={batched_updates} immediate={immediate_updates}"
    );
}

#[test]
fn sender_assignment_is_balanced_round_robin() {
    let mut g = GroupBuilder::new(10).areas(2).build();
    let _members: Vec<_> = (0..4).map(|i| g.register_member(i)).collect();
    g.settle();
    // Assignment alternates areas; exact order depends on handshake
    // completion order, but the load must balance 2/2.
    assert_eq!(g.ac(0).member_count(), 2);
    assert_eq!(g.ac(1).member_count(), 2);
}

#[test]
fn tickets_are_issued_and_opaque() {
    let mut g = GroupBuilder::new(11).areas(1).build();
    let m = g.register_member(1);
    g.settle();
    let ticket = g.member(m).ticket().expect("ticket issued at join");
    // Sealed: a client cannot parse its own ticket.
    assert!(ticket.len() > 32);
    assert!(mykil::ticket::SealedTicket(ticket.to_vec())
        .open(&mykil_crypto::keys::SymmetricKey::from_label("guess"))
        .is_err());
}

#[test]
fn directory_is_distributed_to_members() {
    let mut g = GroupBuilder::new(12).areas(3).build();
    let m = g.register_member(1);
    g.settle();
    let dir = g.member(m).directory();
    assert_eq!(dir.entries.len(), 3);
    for (i, entry) in dir.entries.iter().enumerate() {
        assert_eq!(entry.area.0 as usize, i);
    }
}

#[test]
fn manual_member_does_nothing_until_driven() {
    let mut g = GroupBuilder::new(13).areas(1).build();
    let m = g.register_member_manual(1);
    g.settle();
    assert!(!g.is_member(m));
    assert_eq!(g.stats().kind("join").messages_sent, 0);

    g.sim.invoke(m, |mm: &mut Member, ctx| mm.start_join(ctx));
    g.settle();
    assert!(g.is_member(m));
}
