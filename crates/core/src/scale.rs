//! Hybrid hot/cold membership simulation for million-member groups
//! (ISSUE 7), extended with inter-area mobility and fault tolerance
//! (ISSUE 8).
//!
//! The paper claims Mykil scales to 100,000+ members; the full protocol
//! stack in this crate simulates every member as a [`mykil_net::Node`]
//! and tops out around tens of nodes per area. This module closes the
//! gap with a *hybrid* mode:
//!
//! - **Hot members** — the ones currently joining, leaving, moving or
//!   being promoted/demoted — are real simulated nodes exchanging real
//!   messages through the event queue ([`PoolMember`], [`Mover`]). A
//!   bounded pool of `P` such nodes drives the whole logical
//!   population: pool member `p` performs the membership events of
//!   logical members `p, p + P, p + 2P, …` in turn, so a
//!   1,000,000-member flash crowd needs only `P` live node slots.
//! - **Cold members** — everyone else — are aggregated per area inside
//!   that area's [`ScaleAreaController`] as a
//!   [`mykil_baselines::ColdAreaModel`]: a member count, a key epoch,
//!   and closed-form rekey-byte accounting from `mykil-analysis`
//!   (validated against the measured `KeyTree` at small scale). Cold
//!   members generate **no events**, which is what makes the scale
//!   reachable.
//!
//! # Membership events and the journal
//!
//! Every state change a controller performs is a [`ScaleEvent`]:
//! joins, demotions, promotions, hot leaves, cold batch-leaves, and —
//! new with mobility — `MoveOut`/`MoveIn` pairs for the paper's
//! ticket-rejoin across areas. The controller's entire mutable state
//! is a deterministic fold over `(seeded, journal)` (see
//! [`AreaState::apply`]), which buys three properties at once:
//!
//! 1. **Exact replayability** — the byte ledger is a pure function of
//!    the journal, so [`crate::invariants::check_scale`] can recompute
//!    it independently and demand byte-for-byte agreement.
//! 2. **Crash recovery** — in durable mode every journaled event is
//!    write-ahead committed ([`mykil_net::NodeStorage`]) and
//!    checkpointed every [`ScaleConfig::checkpoint_every`] events;
//!    [`Node::on_restarted`] reloads checkpoint + WAL suffix and
//!    refolds. Replay never re-bumps the simulator's stats counters —
//!    those were charged when the event first executed and survive the
//!    crash — so recovery cannot double-charge the ledger.
//! 3. **Takeover-grade redundancy** — each journaled event is also
//!    replicated (before the client ack, in the same atomic callback)
//!    to a [`ScaleDirectory`] node. Lying-fsync faults can eat the WAL
//!    tail; the directory, which faults never target, is then the
//!    recovery source: the restarted controller resyncs the missing
//!    journal suffix (`RESYNC_REQ`/`RESYNC_TAIL`) before it marks
//!    itself converged and serves requests again.
//!
//! # Recovery measurement
//!
//! [`ScaleGroup::run_mobility_storm`] drives a configurable number of
//! inter-area moves while a [`FaultPlan`] injects crashes, partitions
//! and storage faults into the area controllers. At each controller
//! crash the harness snapshots the virtual clock and the global rekey
//! ledger; the controller records the matching snapshot when its
//! resync completes (instrumentation that deliberately survives the
//! volatile wipe — it models an external observer). The pairing yields
//! per-fault *recovery time* (virtual µs from crash to
//! re-convergence) and *degraded-window bytes* (ledger growth across
//! the outage), the raw material for `BENCH_mobility.json`'s
//! acceptance envelope.
//!
//! What the aggregate checks and what it does not: membership
//! conservation (now including moves), epoch monotonicity (the
//! forward-secrecy analog: every departure — including a move-out —
//! rotates the key) and byte-exact ledger agreement with an
//! independent closed-form replay are enforced by
//! [`crate::invariants::check_scale`]. Per-member key material,
//! handshake authentication and retransmission behaviour are *not*
//! modelled for cold members — that is what the full protocol tests
//! cover at small scale.

use mykil_baselines::{ColdAreaModel, RekeyTraffic};
use mykil_crypto::drbg::Drbg;
use mykil_net::{
    ChaosDriver, Context, Duration, FaultPlan, FaultSpec, Node, NodeId, Simulator, Time,
};
use std::collections::{BTreeMap, BTreeSet};

/// Message opcodes (first byte of every scale-harness message).
const OP_JOIN_REQ: u8 = 1;
const OP_JOIN_ACK: u8 = 2;
const OP_DEMOTE_REQ: u8 = 3;
const OP_DEMOTE_ACK: u8 = 4;
const OP_PROMOTE_REQ: u8 = 5;
const OP_PROMOTE_ACK: u8 = 6;
const OP_PROMOTE_NAK: u8 = 7;
const OP_LEAVE_REQ: u8 = 8;
const OP_LEAVE_ACK: u8 = 9;
/// Mobility handshake: leave the source area's cold aggregate…
const OP_MOVE_OUT_REQ: u8 = 10;
const OP_MOVE_OUT_ACK: u8 = 11;
const OP_MOVE_OUT_NAK: u8 = 12;
/// …and ticket-rejoin the destination area.
const OP_MOVE_IN_REQ: u8 = 13;
const OP_MOVE_IN_ACK: u8 = 14;
/// Controller → directory journal replication (durable mode).
const OP_REPLICATE: u8 = 15;
const OP_REPL_ACK: u8 = 16;
/// Post-restart journal resynchronization from the directory.
const OP_RESYNC_REQ: u8 = 17;
const OP_RESYNC_TAIL: u8 = 18;

/// Timer tag for a controller's cold batch-leave sweep.
const TAG_COLD_BATCH: u64 = 1;
/// Timer tag for re-sending unacknowledged journal replication.
const TAG_REPL_RETRY: u64 = 2;
/// Timer tag for re-requesting a resync tail after a restart.
const TAG_RESYNC_RETRY: u64 = 3;
/// Timer tag for a mover's stalled-handshake retry sweep.
const TAG_MOVE_RETRY: u64 = 4;

/// Journal events per `REPLICATE` message.
const REPL_BATCH: u64 = 512;
/// Journal events per `RESYNC_TAIL` chunk.
const RESYNC_BATCH: u64 = 2048;

fn encode(op: u8, logical: u64) -> Vec<u8> {
    let mut b = Vec::with_capacity(9);
    b.push(op);
    b.extend_from_slice(&logical.to_le_bytes());
    b
}

fn decode(bytes: &[u8]) -> Option<(u8, u64)> {
    let (&op, rest) = bytes.split_first()?;
    let logical = u64::from_le_bytes(rest.get(..8)?.try_into().ok()?);
    Some((op, logical))
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(b: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
}

/// One entry of an area's membership journal: the complete state of a
/// [`ScaleAreaController`] is a deterministic fold of these over the
/// seeded base population (see [`AreaState::apply`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleEvent {
    /// Logical member joined hot (join rekey charged at the post-join
    /// area size).
    Join(u64),
    /// Hot member absorbed into the cold aggregate (free).
    Demote(u64),
    /// Cold member released back to the hot set (free).
    Promote(u64),
    /// Hot member left (single-leave rekey at the pre-departure size).
    HotLeave(u64),
    /// `k` cold members drained in one aggregated batch rekey.
    ColdBatch(u64),
    /// Cold member moved out to another area (leave-shaped rekey at
    /// the pre-departure size; the mover must lose this area's keys).
    MoveOut(u64),
    /// Member moved in from another area on a ticket rejoin
    /// (join-shaped rekey at the post-arrival size).
    MoveIn(u64),
}

impl ScaleEvent {
    /// Serialized size: 1 kind byte + u64 argument.
    pub const WIRE_LEN: usize = 9;

    fn kind_arg(self) -> (u8, u64) {
        match self {
            ScaleEvent::Join(m) => (1, m),
            ScaleEvent::Demote(m) => (2, m),
            ScaleEvent::Promote(m) => (3, m),
            ScaleEvent::HotLeave(m) => (4, m),
            ScaleEvent::ColdBatch(k) => (5, k),
            ScaleEvent::MoveOut(m) => (6, m),
            ScaleEvent::MoveIn(m) => (7, m),
        }
    }

    fn encode_into(self, out: &mut Vec<u8>) {
        let (kind, arg) = self.kind_arg();
        out.push(kind);
        out.extend_from_slice(&arg.to_le_bytes());
    }

    /// Decodes one event from the first [`Self::WIRE_LEN`] bytes.
    pub fn decode(bytes: &[u8]) -> Option<ScaleEvent> {
        let (&kind, rest) = bytes.split_first()?;
        let arg = u64::from_le_bytes(rest.get(..8)?.try_into().ok()?);
        match kind {
            1 => Some(ScaleEvent::Join(arg)),
            2 => Some(ScaleEvent::Demote(arg)),
            3 => Some(ScaleEvent::Promote(arg)),
            4 => Some(ScaleEvent::HotLeave(arg)),
            5 => Some(ScaleEvent::ColdBatch(arg)),
            6 => Some(ScaleEvent::MoveOut(arg)),
            7 => Some(ScaleEvent::MoveIn(arg)),
            _ => None,
        }
    }
}

/// Checkpoint payload: seeded base population + full journal prefix.
pub fn encode_checkpoint(seeded: u64, journal: &[ScaleEvent]) -> Vec<u8> {
    let mut b = Vec::with_capacity(16 + ScaleEvent::WIRE_LEN * journal.len());
    put_u64(&mut b, seeded);
    put_u64(&mut b, journal.len() as u64);
    for ev in journal {
        ev.encode_into(&mut b);
    }
    b
}

/// Decodes a checkpoint payload read back from stable storage.
///
/// The payload may be arbitrarily corrupt (bit-rot, torn slot), so
/// nothing in it is trusted: the event count must match the bytes
/// actually present — sizing an allocation from a corrupt count would
/// be an abort, not a recovery — and every event must decode. The
/// `seeded` base is validated against the deployment size by the
/// caller, which knows it (see `ScaleAreaController::on_restarted`).
pub fn decode_checkpoint(bytes: &[u8]) -> Option<(u64, Vec<ScaleEvent>)> {
    let seeded = get_u64(bytes, 0)?;
    let claimed = get_u64(bytes, 8)?;
    let body = bytes.get(16..)?;
    if body.len() % ScaleEvent::WIRE_LEN != 0
        || claimed != (body.len() / ScaleEvent::WIRE_LEN) as u64
    {
        return None;
    }
    let mut journal = Vec::with_capacity(body.len() / ScaleEvent::WIRE_LEN);
    let mut at = 0;
    while at < body.len() {
        let ev = ScaleEvent::decode(body.get(at..)?)?;
        journal.push(ev);
        at += ScaleEvent::WIRE_LEN;
    }
    Some((seeded, journal))
}

/// The deterministic per-area membership fold: cold aggregate, hot
/// set, admission/departure/move counters and move dedup sets. Both
/// the live controller *and* every independent replay (crash
/// recovery, the invariant checker) use [`AreaState::apply`], so the
/// byte ledger cannot drift between them by construction.
#[derive(Debug, Clone)]
pub struct AreaState {
    /// The cold aggregate (count + epoch + closed-form byte ledger).
    pub cold: ColdAreaModel,
    /// Logical ids currently hot in this area.
    pub hot: BTreeSet<u64>,
    /// Total members ever admitted (seed + hot joins).
    pub joins: u64,
    /// Departures via the hot promote-then-leave handshake.
    pub hot_leaves: u64,
    /// Departures drained from the cold aggregate by batch timers.
    pub cold_leaves: u64,
    /// Members that moved out to another area.
    pub moves_out: u64,
    /// Members that moved in from another area.
    pub moves_in: u64,
    /// Dedup: logical ids already moved out (idempotent re-acks).
    pub moved_out: BTreeSet<u64>,
    /// Dedup: logical ids already moved in.
    pub moved_in: BTreeSet<u64>,
}

impl AreaState {
    /// An empty area under `cfg`'s closed-form parameters.
    pub fn new(cfg: &ScaleConfig) -> AreaState {
        AreaState {
            cold: ColdAreaModel::new(cfg.key_len, cfg.rsa_len, cfg.arity),
            hot: BTreeSet::new(),
            joins: 0,
            hot_leaves: 0,
            cold_leaves: 0,
            moves_out: 0,
            moves_in: 0,
            moved_out: BTreeSet::new(),
            moved_in: BTreeSet::new(),
        }
    }

    /// Folds `seeded` closed-form joins and then the journal. This is
    /// the crash-recovery path and the invariant checker's replay.
    ///
    /// `seeded` must come from a validated source (it is folded one
    /// closed-form join at a time, exactly like the live seeding path,
    /// so the ledger reproduces byte-for-byte): recovery rejects any
    /// checkpoint claiming more seeded members than the deployment
    /// holds *before* calling this.
    pub fn replay(cfg: &ScaleConfig, seeded: u64, journal: &[ScaleEvent]) -> AreaState {
        let mut s = AreaState::new(cfg);
        for _ in 0..seeded {
            s.cold.join();
        }
        s.joins = seeded;
        for &ev in journal {
            s.apply(ev);
        }
        s
    }

    /// Current area size: cold aggregate plus hot members.
    pub fn live(&self) -> u64 {
        self.cold.cold_members() + self.hot.len() as u64
    }

    /// Applies one event, returning the rekey traffic it charged, or
    /// `None` when the event is a no-op in this state (duplicate join,
    /// move of an already-moved member, promotion from an empty
    /// aggregate, …). Charging at the *total* size `cold + hot` makes
    /// the byte sequence depend only on the event sequence, not on how
    /// hot handshakes interleaved — the root of exact replayability.
    pub fn apply(&mut self, ev: ScaleEvent) -> Option<RekeyTraffic> {
        match ev {
            ScaleEvent::Join(m) => {
                if !self.hot.insert(m) {
                    return None;
                }
                self.joins += 1;
                let size = self.live();
                Some(self.cold.charge_join_at(size))
            }
            ScaleEvent::Demote(m) => {
                if !self.hot.remove(&m) {
                    return None;
                }
                self.cold.absorb(1);
                Some(RekeyTraffic::default())
            }
            ScaleEvent::Promote(m) => {
                if self.cold.release(1) != 1 {
                    return None;
                }
                self.hot.insert(m);
                Some(RekeyTraffic::default())
            }
            ScaleEvent::HotLeave(m) => {
                if !self.hot.remove(&m) {
                    return None;
                }
                self.hot_leaves += 1;
                // Size before the departure: cold + remaining hot
                // + the leaver itself.
                let size = self.live() + 1;
                Some(self.cold.charge_single_leave_at(size))
            }
            ScaleEvent::ColdBatch(k) => {
                let k = k.min(self.cold.cold_members());
                if k == 0 {
                    return None;
                }
                let t = self.cold.batch_leave(k);
                self.cold_leaves += k;
                Some(t)
            }
            ScaleEvent::MoveOut(m) => {
                if self.cold.cold_members() == 0 || !self.moved_out.insert(m) {
                    return None;
                }
                self.moves_out += 1;
                // Charge at the pre-departure size, then shrink.
                let size = self.live();
                let t = self.cold.charge_move_out_at(size);
                self.cold.release(1);
                Some(t)
            }
            ScaleEvent::MoveIn(m) => {
                if !self.moved_in.insert(m) {
                    return None;
                }
                self.moves_in += 1;
                // Grow first: a move-in charges like a join, at the
                // post-arrival size.
                self.cold.absorb(1);
                let size = self.live();
                Some(self.cold.charge_move_in_at(size))
            }
        }
    }
}

/// Configuration of one hybrid scale scenario.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Deterministic simulation seed.
    pub seed: u64,
    /// Total logical group size (e.g. 1,000,000).
    pub members: u64,
    /// Number of areas; logical member `m` belongs to area
    /// `m % areas` (the registration server's round-robin policy).
    pub areas: usize,
    /// Live hot-member node slots driving the logical population.
    pub hot_pool: usize,
    /// How many of its logical members each pool node leaves via the
    /// hot promote-then-leave handshake during mass-leave (the rest
    /// drain through the controllers' cold batches).
    pub hot_leaves_per_pool: u64,
    /// Cold members removed per batch-leave timer fire.
    pub cold_batch: u64,
    /// Symmetric key length in bytes (closed-form accounting).
    pub key_len: u64,
    /// RSA modulus length in bytes (closed-form storage accounting).
    pub rsa_len: u64,
    /// Key-tree arity.
    pub arity: u64,
    /// Durable mode: write-ahead commit + checkpoint every journal
    /// event and replicate it to the [`ScaleDirectory`], enabling
    /// crash recovery. Off for the pure-throughput scenarios so their
    /// event streams and byte ledgers stay identical to ISSUE 7.
    pub durable: bool,
    /// Checkpoint cadence in journal events (durable mode).
    pub checkpoint_every: u64,
    /// Base retry period in ms for movers, replication and resync.
    pub retry_ms: u64,
    /// Seed the whole population cold (closed-form, no events) instead
    /// of driving a flash crowd; the mobility storm starts from here.
    pub seed_cold: bool,
}

impl ScaleConfig {
    /// The acceptance scenario: 1,000,000 members across 1,000 areas.
    pub fn paper_million() -> ScaleConfig {
        ScaleConfig {
            seed: 7,
            members: 1_000_000,
            areas: 1_000,
            hot_pool: 64,
            hot_leaves_per_pool: 2,
            cold_batch: 500,
            key_len: 16,
            rsa_len: 256,
            arity: 2,
            durable: false,
            checkpoint_every: 64,
            retry_ms: 60,
            seed_cold: false,
        }
    }

    /// CI-sized smoke: 100,000 members across 100 areas.
    pub fn smoke_100k() -> ScaleConfig {
        ScaleConfig {
            members: 100_000,
            areas: 100,
            ..ScaleConfig::paper_million()
        }
    }

    /// The mobility acceptance scenario: 1,000,000 members seeded cold
    /// across 1,000 areas, durable controllers, storm driven by
    /// [`ScaleGroup::run_mobility_storm`].
    pub fn mobility_million() -> ScaleConfig {
        ScaleConfig {
            durable: true,
            seed_cold: true,
            ..ScaleConfig::paper_million()
        }
    }
}

/// One area's controller: owns the membership fold ([`AreaState`]),
/// the journal and — in durable mode — its stable storage and the
/// replication session to the [`ScaleDirectory`].
pub struct ScaleAreaController {
    area: usize,
    cfg: ScaleConfig,
    directory: Option<NodeId>,
    state: AreaState,
    /// Closed-form-seeded base population (not journaled per member).
    seeded: u64,
    /// Whether `seeded` is trusted (false after a restart whose
    /// checkpoint was unreadable, until the directory resync fills it).
    seed_known: bool,
    /// Events since seeding. Durable mode journals everything; in
    /// volatile mode only moves are kept (the invariant checker needs
    /// their interleaving, and the throughput scenarios have none).
    journal: Vec<ScaleEvent>,
    /// Directory replication watermarks: `..repl_acked` acknowledged,
    /// `..repl_sent` in flight.
    repl_acked: u64,
    repl_sent: u64,
    repl_timer_armed: bool,
    /// False while recovering from a crash: requests are dropped (the
    /// movers retry) until the journal is resynced, so a stale area
    /// can never under-charge a rekey.
    converged: bool,
    /// `(when, global rekey bytes)` at each re-convergence. This is
    /// measurement instrumentation — an external observer's notebook,
    /// not protocol state — so it deliberately survives the volatile
    /// wipe on crash.
    recoveries: Vec<(Time, u64)>,
}

impl ScaleAreaController {
    fn new(area: usize, cfg: &ScaleConfig, directory: Option<NodeId>) -> ScaleAreaController {
        ScaleAreaController {
            area,
            cfg: *cfg,
            directory,
            state: AreaState::new(cfg),
            seeded: 0,
            seed_known: true,
            journal: Vec::new(),
            repl_acked: 0,
            repl_sent: 0,
            repl_timer_armed: false,
            converged: true,
            recoveries: Vec::new(),
        }
    }

    /// Current area size: cold aggregate plus hot members.
    pub fn live_members(&self) -> u64 {
        self.state.live()
    }

    /// The cold aggregate (inspection).
    pub fn cold(&self) -> &ColdAreaModel {
        &self.state.cold
    }

    /// Hot members currently in the area.
    pub fn hot_members(&self) -> u64 {
        self.state.hot.len() as u64
    }

    /// Total admissions so far (seeded + hot joins + nothing else;
    /// move-ins are counted separately).
    pub fn joins(&self) -> u64 {
        self.state.joins
    }

    /// Departures via the hot handshake / via cold batches.
    pub fn hot_leaves(&self) -> u64 {
        self.state.hot_leaves
    }

    /// Departures drained from the cold aggregate by batch timers.
    pub fn cold_leaves(&self) -> u64 {
        self.state.cold_leaves
    }

    /// Members that moved out to / in from other areas.
    pub fn moves_out(&self) -> u64 {
        self.state.moves_out
    }

    /// See [`Self::moves_out`].
    pub fn moves_in(&self) -> u64 {
        self.state.moves_in
    }

    /// The full membership fold (inspection/replay comparison).
    pub fn state(&self) -> &AreaState {
        &self.state
    }

    /// Closed-form-seeded base population.
    pub fn seeded(&self) -> u64 {
        self.seeded
    }

    /// The post-seed event journal (all events in durable mode, moves
    /// only otherwise).
    pub fn journal(&self) -> &[ScaleEvent] {
        &self.journal
    }

    /// Whether the controller is serving requests (false mid-recovery).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// `(when, global rekey bytes)` snapshots taken at each completed
    /// recovery, in time order.
    pub fn recovery_samples(&self) -> &[(Time, u64)] {
        &self.recoveries
    }

    fn charge(ctx: &mut Context<'_>, t: RekeyTraffic) {
        ctx.stats().bump("scale-rekey-multicast-bytes", t.multicast_bytes);
        ctx.stats().bump("scale-rekey-unicast-bytes", t.unicast_bytes);
        ctx.stats().bump(
            "scale-rekey-messages",
            t.multicast_messages + t.unicast_messages,
        );
    }

    /// Seeds `n` cold members closed-form: charges their join rekeys
    /// into both the model and the stats ledger (sizes `1..=n`), with
    /// no simulation events. The mobility storm starts from a fully
    /// seeded population, which is what makes a million-member storm
    /// CI-feasible.
    fn seed(&mut self, ctx: &mut Context<'_>, n: u64) {
        let mut t = RekeyTraffic::default();
        for _ in 0..n {
            t += self.state.cold.join();
        }
        self.state.joins += n;
        self.seeded += n;
        ctx.stats().bump("scale-joins", n);
        Self::charge(ctx, t);
        if self.cfg.durable {
            ctx.storage()
                .checkpoint(encode_checkpoint(self.seeded, &self.journal));
        }
    }

    fn retry_delay(&self) -> Duration {
        // Stagger so 1,000 area timers don't share a wheel bucket.
        Duration::from_millis(self.cfg.retry_ms.max(1) + (self.area % 7) as u64)
    }

    /// Records an applied event: journal push, WAL commit, periodic
    /// checkpoint, directory replication — all in the same atomic
    /// callback as the state change, *before* any ack is sent. A
    /// journaled event is therefore always either locally durable or
    /// already on the wire to the never-crashed directory: no
    /// acknowledged event can be lost even under lying-fsync faults.
    fn journal_event(&mut self, ctx: &mut Context<'_>, ev: ScaleEvent) {
        let keep = self.cfg.durable
            || matches!(ev, ScaleEvent::MoveOut(_) | ScaleEvent::MoveIn(_));
        if !keep {
            return;
        }
        self.journal.push(ev);
        if !self.cfg.durable {
            return;
        }
        let mut rec = Vec::with_capacity(ScaleEvent::WIRE_LEN);
        ev.encode_into(&mut rec);
        ctx.storage().wal_commit(rec);
        let every = self.cfg.checkpoint_every.max(1);
        if (self.journal.len() as u64).is_multiple_of(every) {
            ctx.storage()
                .checkpoint(encode_checkpoint(self.seeded, &self.journal));
        }
        self.replicate_tail(ctx);
    }

    /// Ships journal events `repl_sent..` to the directory in
    /// [`REPL_BATCH`] chunks and arms the retry timer.
    fn replicate_tail(&mut self, ctx: &mut Context<'_>) {
        let Some(dir) = self.directory else {
            self.repl_acked = self.journal.len() as u64;
            self.repl_sent = self.repl_acked;
            return;
        };
        let len = self.journal.len() as u64;
        while self.repl_sent < len {
            let start = self.repl_sent;
            let end = len.min(start.saturating_add(REPL_BATCH));
            let mut b =
                Vec::with_capacity(25 + ScaleEvent::WIRE_LEN * (end - start) as usize);
            b.push(OP_REPLICATE);
            put_u64(&mut b, self.area as u64);
            put_u64(&mut b, start);
            put_u64(&mut b, end - start);
            for ev in &self.journal[start as usize..end as usize] {
                ev.encode_into(&mut b);
            }
            ctx.send(dir, "scale-replicate", b);
            self.repl_sent = end;
        }
        if !self.repl_timer_armed {
            self.repl_timer_armed = true;
            ctx.set_timer(self.retry_delay(), TAG_REPL_RETRY);
        }
    }

    fn send_resync_req(&mut self, ctx: &mut Context<'_>) {
        let Some(dir) = self.directory else {
            self.finish_recovery(ctx);
            return;
        };
        let mut b = Vec::with_capacity(17);
        b.push(OP_RESYNC_REQ);
        put_u64(&mut b, self.area as u64);
        put_u64(&mut b, self.journal.len() as u64);
        ctx.send(dir, "scale-resync-req", b);
        ctx.set_timer(self.retry_delay(), TAG_RESYNC_RETRY);
    }

    /// Marks the controller converged again and snapshots the
    /// recovery instant: virtual time + global rekey-byte ledger, the
    /// two numbers the storm pairs with its crash-time snapshots to
    /// measure recovery time and degraded-window bytes.
    fn finish_recovery(&mut self, ctx: &mut Context<'_>) {
        if self.converged {
            return;
        }
        self.converged = true;
        let bytes = ctx.stats().counter("scale-rekey-multicast-bytes")
            + ctx.stats().counter("scale-rekey-unicast-bytes");
        self.recoveries.push((ctx.now(), bytes));
        if self.cfg.durable {
            // Consolidate: the resynced journal becomes the new
            // checkpoint, so a follow-up crash recovers locally.
            ctx.storage()
                .checkpoint(encode_checkpoint(self.seeded, &self.journal));
        }
    }

    /// Applies `ev`, charges its traffic to the stats ledger, bumps
    /// `counter` and journals it. Returns whether it was applied.
    fn execute(
        &mut self,
        ctx: &mut Context<'_>,
        ev: ScaleEvent,
        counter: &'static str,
        by: u64,
    ) -> bool {
        let Some(t) = self.state.apply(ev) else {
            return false;
        };
        ctx.stats().bump(counter, by);
        Self::charge(ctx, t);
        self.journal_event(ctx, ev);
        true
    }
}

impl Node for ScaleAreaController {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
        let Some((op, logical)) = decode(bytes) else {
            return;
        };
        match op {
            OP_JOIN_REQ => {
                if !self.converged {
                    return;
                }
                self.execute(ctx, ScaleEvent::Join(logical), "scale-joins", 1);
                ctx.send(from, "scale-join-ack", encode(OP_JOIN_ACK, logical));
            }
            OP_DEMOTE_REQ => {
                if !self.converged {
                    return;
                }
                self.execute(ctx, ScaleEvent::Demote(logical), "scale-demotions", 1);
                ctx.send(from, "scale-demote-ack", encode(OP_DEMOTE_ACK, logical));
            }
            OP_PROMOTE_REQ => {
                if !self.converged {
                    return;
                }
                if self.execute(ctx, ScaleEvent::Promote(logical), "scale-promotions", 1) {
                    ctx.send(from, "scale-promote-ack", encode(OP_PROMOTE_ACK, logical));
                } else {
                    ctx.send(from, "scale-promote-nak", encode(OP_PROMOTE_NAK, logical));
                }
            }
            OP_LEAVE_REQ => {
                if !self.converged {
                    return;
                }
                self.execute(ctx, ScaleEvent::HotLeave(logical), "scale-hot-leaves", 1);
                ctx.send(from, "scale-leave-ack", encode(OP_LEAVE_ACK, logical));
            }
            OP_MOVE_OUT_REQ => {
                // Idempotent: a retried request for an already-departed
                // mover is re-acked without re-charging.
                if self.state.moved_out.contains(&logical) {
                    ctx.send(from, "scale-move-out-ack", encode(OP_MOVE_OUT_ACK, logical));
                    return;
                }
                if !self.converged {
                    return;
                }
                if self.execute(ctx, ScaleEvent::MoveOut(logical), "scale-moves-out", 1) {
                    ctx.send(from, "scale-move-out-ack", encode(OP_MOVE_OUT_ACK, logical));
                } else {
                    ctx.send(from, "scale-move-out-nak", encode(OP_MOVE_OUT_NAK, logical));
                }
            }
            OP_MOVE_IN_REQ => {
                if self.state.moved_in.contains(&logical) {
                    ctx.send(from, "scale-move-in-ack", encode(OP_MOVE_IN_ACK, logical));
                    return;
                }
                if !self.converged {
                    return;
                }
                if self.execute(ctx, ScaleEvent::MoveIn(logical), "scale-moves-in", 1) {
                    ctx.send(from, "scale-move-in-ack", encode(OP_MOVE_IN_ACK, logical));
                }
            }
            OP_REPL_ACK => {
                // `logical` carries the area; the directory length is
                // appended after the standard 9-byte header.
                let Some(len) = get_u64(bytes, 9) else {
                    return;
                };
                let capped = len.min(self.journal.len() as u64);
                if capped > self.repl_acked {
                    self.repl_acked = capped;
                }
                if self.repl_sent < self.repl_acked {
                    self.repl_sent = self.repl_acked;
                }
            }
            OP_RESYNC_TAIL => {
                if self.converged {
                    return; // duplicate tail from a retried request
                }
                let Some(seeded_dir) = get_u64(bytes, 9) else {
                    return;
                };
                let Some(dir_len) = get_u64(bytes, 17) else {
                    return;
                };
                let Some(start) = get_u64(bytes, 25) else {
                    return;
                };
                let Some(count) = get_u64(bytes, 33) else {
                    return;
                };
                if !self.seed_known && seeded_dir <= self.cfg.members {
                    // Local checkpoint was unreadable (e.g. bit-rot on
                    // both slots): the directory is the authority for
                    // the seeded base too (bounded by the deployment
                    // size — a hostile or garbled tail must not wedge
                    // the refold below).
                    self.seeded = seeded_dir;
                    self.seed_known = true;
                }
                let mut at = 41usize;
                for i in 0..count {
                    let Some(ev) = bytes.get(at..).and_then(ScaleEvent::decode) else {
                        break;
                    };
                    at += ScaleEvent::WIRE_LEN;
                    // Append only the part of the chunk we don't have;
                    // ignore gaps (a retry will re-request from our
                    // actual length).
                    if start + i == self.journal.len() as u64 {
                        self.journal.push(ev);
                        let mut rec = Vec::with_capacity(ScaleEvent::WIRE_LEN);
                        ev.encode_into(&mut rec);
                        ctx.storage().wal_commit(rec);
                    }
                }
                if (self.journal.len() as u64) < dir_len {
                    self.send_resync_req(ctx); // pull the next chunk
                    return;
                }
                // Refold the full journal. Replay recomputes the
                // model-internal ledger but never re-bumps the stats
                // counters: those were charged when the events first
                // executed and survived the crash with the simulator.
                self.state = AreaState::replay(&self.cfg, self.seeded, &self.journal);
                self.repl_acked = dir_len.min(self.journal.len() as u64);
                self.repl_sent = self.repl_acked;
                self.finish_recovery(ctx);
                // If we were ahead of the directory (its ack got lost
                // pre-crash), re-replicate our durable suffix.
                self.replicate_tail(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        // mykil-lint: allow(L003) -- u64 timer-kind dispatch, not MAC/digest material
        if tag == TAG_COLD_BATCH {
            let k = self.cfg.cold_batch.min(self.state.cold.cold_members());
            if k > 0 {
                self.execute(ctx, ScaleEvent::ColdBatch(k), "scale-cold-leaves", k);
            }
            if self.state.cold.cold_members() > 0 {
                // Drain the rest next tick; the stagger keeps 1,000
                // area timers out of one wheel bucket.
                ctx.set_timer(
                    Duration::from_millis(10 + (self.area % 7) as u64),
                    TAG_COLD_BATCH,
                );
            }
        // mykil-lint: allow(L003) -- u64 timer-kind dispatch, not MAC/digest material
        } else if tag == TAG_REPL_RETRY {
            self.repl_timer_armed = false;
            if self.repl_acked < self.journal.len() as u64 {
                // Unacked tail: rewind the sent watermark and resend.
                self.repl_sent = self.repl_acked;
                self.replicate_tail(ctx);
            }
        // mykil-lint: allow(L003) -- u64 timer-kind dispatch, not MAC/digest material
        } else if tag == TAG_RESYNC_RETRY && !self.converged {
            self.send_resync_req(ctx);
        }
    }

    fn on_crashed_volatile_reset(&mut self) {
        self.state = AreaState::new(&self.cfg);
        self.seeded = 0;
        self.seed_known = false;
        self.journal = Vec::new();
        self.repl_acked = 0;
        self.repl_sent = 0;
        self.repl_timer_armed = false;
        self.converged = false;
        // `recoveries` survives on purpose: external-observer
        // measurement, not volatile protocol state.
    }

    fn on_restarted(&mut self, ctx: &mut Context<'_>) {
        if !self.cfg.durable {
            return; // nothing to rebuild from: stays unconverged
        }
        let rec = ctx.storage().load();
        self.journal = Vec::new();
        let ckpt = rec
            .checkpoint
            .and_then(|(_seq, bytes)| decode_checkpoint(&bytes))
            // A checkpoint that decodes but claims more seeded members
            // than the whole deployment is corruption that slipped the
            // checksum; adopting it would wedge recovery in a
            // near-endless refold. Treat it like an unreadable slot
            // and fall back to the directory.
            .filter(|&(seeded, _)| seeded <= self.cfg.members);
        if let Some((seeded, events)) = ckpt {
            self.seeded = seeded;
            self.seed_known = true;
            self.journal = events;
            // The WAL suffix load() returns is relative to the same
            // checkpoint, so appending it keeps the journal contiguous.
            for w in &rec.wal {
                if let Some(ev) = ScaleEvent::decode(w) {
                    self.journal.push(ev);
                }
            }
        }
        // Without a decodable checkpoint the WAL's absolute offset is
        // unknowable (the log prefix may have been truncated under a
        // now-corrupt slot), so it cannot anchor a journal prefix:
        // recover everything from the directory instead.
        // Provisional refold from local durable state; the directory
        // resync below fills whatever the WAL lost (lying fsync, torn
        // tail, corrupted checkpoint) before we serve requests again.
        self.state = AreaState::replay(&self.cfg, self.seeded, &self.journal);
        self.repl_acked = 0;
        self.repl_sent = 0;
        self.repl_timer_armed = false;
        self.send_resync_req(ctx);
    }
}

/// The registration-backup analog at scale: holds a replica of every
/// area's journal (and seeded base), acks replication, and serves
/// resync tails to recovering controllers. Fault plans never target
/// it — it plays the role of the surviving replica set.
pub struct ScaleDirectory {
    seeded: Vec<u64>,
    journals: Vec<Vec<ScaleEvent>>,
}

impl ScaleDirectory {
    fn new(areas: usize) -> ScaleDirectory {
        ScaleDirectory {
            seeded: vec![0; areas],
            journals: vec![Vec::new(); areas],
        }
    }

    /// The replicated journal of `area`.
    pub fn journal(&self, area: usize) -> &[ScaleEvent] {
        self.journals.get(area).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The replicated seeded base of `area`.
    pub fn seeded(&self, area: usize) -> u64 {
        self.seeded.get(area).copied().unwrap_or(0)
    }

    pub(crate) fn set_seeded(&mut self, area: usize, n: u64) {
        if let Some(s) = self.seeded.get_mut(area) {
            *s = n;
        }
    }
}

impl Node for ScaleDirectory {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
        let Some((&op, _)) = bytes.split_first() else {
            return;
        };
        match op {
            OP_REPLICATE => {
                let Some(area) = get_u64(bytes, 1) else {
                    return;
                };
                let Some(start) = get_u64(bytes, 9) else {
                    return;
                };
                let Some(count) = get_u64(bytes, 17) else {
                    return;
                };
                let Some(journal) = self.journals.get_mut(area as usize) else {
                    return;
                };
                let mut at = 25usize;
                for i in 0..count {
                    let Some(ev) = bytes.get(at..).and_then(ScaleEvent::decode) else {
                        break;
                    };
                    at += ScaleEvent::WIRE_LEN;
                    // Contiguous append; duplicates (retries) and gaps
                    // (reordered chunks) are ignored — the cumulative
                    // ack below re-drives the sender from our length.
                    if start + i == journal.len() as u64 {
                        journal.push(ev);
                    }
                }
                let mut b = Vec::with_capacity(17);
                b.push(OP_REPL_ACK);
                put_u64(&mut b, area);
                put_u64(&mut b, journal.len() as u64);
                ctx.send(from, "scale-repl-ack", b);
            }
            OP_RESYNC_REQ => {
                let Some(area) = get_u64(bytes, 1) else {
                    return;
                };
                let Some(have) = get_u64(bytes, 9) else {
                    return;
                };
                let Some(journal) = self.journals.get(area as usize) else {
                    return;
                };
                let len = journal.len() as u64;
                let start = have.min(len);
                let count = (len - start).min(RESYNC_BATCH);
                let mut b =
                    Vec::with_capacity(41 + ScaleEvent::WIRE_LEN * count as usize);
                b.push(OP_RESYNC_TAIL);
                put_u64(&mut b, area);
                put_u64(&mut b, self.seeded(area as usize));
                put_u64(&mut b, len);
                put_u64(&mut b, start);
                put_u64(&mut b, count);
                for ev in &journal[start as usize..(start + count) as usize] {
                    ev.encode_into(&mut b);
                }
                ctx.send(from, "scale-resync-tail", b);
            }
            _ => {}
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Driving logical joins (flash crowd).
    Joining,
    /// All assigned logicals demoted; waiting for the next phase.
    Idle,
    /// Driving hot promote-then-leave handshakes.
    Leaving,
}

/// One hot-pool node: performs the membership events of logical members
/// `pool_index, pool_index + P, pool_index + 2P, …` sequentially, so
/// the in-flight hot population never exceeds the pool size.
pub struct PoolMember {
    pool_index: u64,
    pool_size: u64,
    total: u64,
    controllers: Vec<NodeId>,
    current: u64,
    phase: Phase,
    joined: u64,
    hot_leaves_left: u64,
}

impl PoolMember {
    fn controller_of(&self, logical: u64) -> Option<NodeId> {
        let area = (logical % self.controllers.len().max(1) as u64) as usize;
        self.controllers.get(area).copied()
    }

    fn start_join(&mut self, ctx: &mut Context<'_>) {
        if self.current >= self.total {
            self.phase = Phase::Idle;
            return;
        }
        if let Some(ac) = self.controller_of(self.current) {
            ctx.send(ac, "scale-join-req", encode(OP_JOIN_REQ, self.current));
        }
    }

    fn start_promote(&mut self, ctx: &mut Context<'_>) {
        if self.hot_leaves_left == 0 || self.current >= self.total {
            self.phase = Phase::Idle;
            return;
        }
        if let Some(ac) = self.controller_of(self.current) {
            ctx.send(ac, "scale-promote-req", encode(OP_PROMOTE_REQ, self.current));
        }
    }

    /// Logical members this pool node has driven through a full
    /// join-then-demote cycle.
    pub fn joined(&self) -> u64 {
        self.joined
    }

    /// Kicks the mass-leave phase: promote-then-leave the first
    /// `hot_leaves_per_pool` of this node's logical members.
    pub fn begin_leaving(&mut self, ctx: &mut Context<'_>) {
        self.phase = Phase::Leaving;
        self.current = self.pool_index;
        self.start_promote(ctx);
    }
}

impl Node for PoolMember {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.phase == Phase::Joining {
            self.start_join(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: NodeId, bytes: &[u8]) {
        let Some((op, logical)) = decode(bytes) else {
            return;
        };
        if logical != self.current {
            return; // stale reply from a previous logical member
        }
        match (op, self.phase) {
            (OP_JOIN_ACK, Phase::Joining) => {
                // Hot for exactly the handshake; hand the membership to
                // the cold aggregate immediately.
                ctx.send(from, "scale-demote-req", encode(OP_DEMOTE_REQ, logical));
            }
            (OP_DEMOTE_ACK, Phase::Joining) => {
                self.joined += 1;
                self.current += self.pool_size;
                self.start_join(ctx);
            }
            (OP_PROMOTE_ACK, Phase::Leaving) => {
                ctx.send(from, "scale-leave-req", encode(OP_LEAVE_REQ, logical));
            }
            (OP_PROMOTE_NAK, Phase::Leaving) => {
                // Area already drained cold-side; stop driving leaves.
                self.phase = Phase::Idle;
            }
            (OP_LEAVE_ACK, Phase::Leaving) => {
                self.hot_leaves_left -= 1;
                self.current += self.pool_size;
                self.start_promote(ctx);
            }
            _ => {}
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MoveStage {
    /// Waiting for the source area to rekey the mover out.
    Out,
    /// Waiting for the destination area to admit the ticket rejoin.
    In,
}

/// A mobility driver node: performs the inter-area moves of logical
/// members `index, index + P, index + 2P, …` sequentially, each as a
/// `MOVE_OUT` handshake with the source controller followed by a
/// `MOVE_IN` with the destination. A periodic retry timer resends the
/// current request whenever no progress happened since the last sweep
/// (crashed or partitioned controllers drop requests; the handshake is
/// idempotent on the controller side, so retries are safe).
pub struct Mover {
    index: u64,
    pool: u64,
    assigned: u64,
    areas: u64,
    controllers: Vec<NodeId>,
    done: u64,
    stage: MoveStage,
    retry: Duration,
    active: bool,
    /// `(done, stage)` at the previous retry sweep: only resend when
    /// unchanged, so a healthy handshake is never duplicated.
    last_sweep: (u64, MoveStage),
}

impl Mover {
    fn logical(&self) -> u64 {
        self.index + self.done * self.pool
    }

    fn src_area(&self, logical: u64) -> usize {
        (logical % self.areas.max(1)) as usize
    }

    /// Deterministic destination: rotate `1 + logical % (areas-1)`
    /// areas ahead, so every destination differs from the source and
    /// the move matrix spreads over all area pairs.
    fn dst_area(&self, logical: u64) -> usize {
        let src = logical % self.areas.max(1);
        let span = self.areas.saturating_sub(1).max(1);
        ((src + 1 + logical % span) % self.areas.max(1)) as usize
    }

    /// Moves this driver has completed.
    pub fn moves_done(&self) -> u64 {
        self.done
    }

    /// Moves this driver is responsible for.
    pub fn moves_assigned(&self) -> u64 {
        self.assigned
    }

    /// Whether every assigned move completed.
    pub fn finished(&self) -> bool {
        self.done >= self.assigned
    }

    fn send_current(&mut self, ctx: &mut Context<'_>) {
        let logical = self.logical();
        let (area, op, kind) = match self.stage {
            MoveStage::Out => (
                self.src_area(logical),
                OP_MOVE_OUT_REQ,
                "scale-move-out-req",
            ),
            MoveStage::In => (self.dst_area(logical), OP_MOVE_IN_REQ, "scale-move-in-req"),
        };
        if let Some(&ac) = self.controllers.get(area) {
            ctx.send(ac, kind, encode(op, logical));
        }
    }

    fn advance(&mut self, ctx: &mut Context<'_>) {
        if self.finished() {
            self.active = false;
            return;
        }
        self.send_current(ctx);
    }

    /// Starts driving the assigned moves.
    pub fn begin(&mut self, ctx: &mut Context<'_>) {
        if self.finished() {
            return;
        }
        self.active = true;
        self.send_current(ctx);
        ctx.set_timer(self.retry, TAG_MOVE_RETRY);
    }
}

impl Node for Mover {
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, bytes: &[u8]) {
        let Some((op, logical)) = decode(bytes) else {
            return;
        };
        if !self.active || logical != self.logical() {
            return; // stale ack from a retried, already-completed step
        }
        match (op, self.stage) {
            (OP_MOVE_OUT_ACK, MoveStage::Out) => {
                self.stage = MoveStage::In;
                self.send_current(ctx);
            }
            (OP_MOVE_OUT_NAK, MoveStage::Out) => {
                // Source area has no cold member to release (drained by
                // a concurrent phase): skip this logical move.
                self.done += 1;
                self.advance(ctx);
            }
            (OP_MOVE_IN_ACK, MoveStage::In) => {
                self.done += 1;
                self.stage = MoveStage::Out;
                self.advance(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        // mykil-lint: allow(L003) -- u64 timer-kind dispatch, not MAC/digest material
        if tag == TAG_MOVE_RETRY && self.active && !self.finished() {
            let marker = (self.done, self.stage);
            if marker == self.last_sweep {
                self.send_current(ctx); // stalled since last sweep
            }
            self.last_sweep = marker;
            ctx.set_timer(self.retry, TAG_MOVE_RETRY);
        }
    }
}

/// Diagnostic error for a stalled scale phase: what ran, what is
/// stuck, and which areas hold residue — enough to debug a soak
/// failure without re-running it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleStall {
    /// Which phase driver stalled.
    pub phase: &'static str,
    /// Simulation events executed by this phase before the stall.
    pub events_executed: u64,
    /// Members (or moves) that did not reach their target state.
    pub members_stuck: u64,
    /// Areas holding residue, in area order.
    pub residue: Vec<AreaResidue>,
}

/// One stuck area's snapshot inside a [`ScaleStall`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaResidue {
    /// Area index.
    pub area: usize,
    /// Hot members still in flight.
    pub hot: u64,
    /// Cold aggregate size.
    pub cold: u64,
    /// Admissions counted so far.
    pub joins: u64,
    /// Whether the controller is serving requests.
    pub converged: bool,
    /// Whether the controller process is down.
    pub crashed: bool,
}

impl std::fmt::Display for ScaleStall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} stalled after {} events: {} stuck",
            self.phase, self.events_executed, self.members_stuck
        )?;
        if self.residue.is_empty() {
            return Ok(());
        }
        write!(f, "; residue:")?;
        for r in self.residue.iter().take(8) {
            write!(
                f,
                " area {} (hot {}, cold {}, joins {}, converged={}, crashed={})",
                r.area, r.hot, r.cold, r.joins, r.converged, r.crashed
            )?;
        }
        if self.residue.len() > 8 {
            write!(f, " … and {} more areas", self.residue.len() - 8)?;
        }
        Ok(())
    }
}

impl std::error::Error for ScaleStall {}

/// Per-fault recovery measurement from a mobility storm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecovery {
    /// Area whose controller crashed.
    pub area: usize,
    /// Virtual µs at crash injection.
    pub crash_at_micros: u64,
    /// Virtual µs from the crash to the controller's re-convergence
    /// (restart + journal resync complete).
    pub recovery_micros: u64,
    /// Global rekey-ledger growth across the degraded window.
    pub degraded_bytes: u64,
}

/// Outcome of [`ScaleGroup::run_mobility_storm`].
#[derive(Debug, Clone, Default)]
pub struct MobilityReport {
    /// Inter-area moves completed (acked by both controllers).
    pub moves: u64,
    /// Fault-plan lines injected.
    pub faults_applied: u64,
    /// Controller crash faults among them.
    pub crashes: u64,
    /// Partition-onset faults among them.
    pub partitions: u64,
    /// Storage faults (lost-tail / torn / checkpoint-corrupt).
    pub storage_faults: u64,
    /// One entry per controller crash, sorted by crash time.
    pub recoveries: Vec<FaultRecovery>,
}

impl MobilityReport {
    fn sorted_recovery_micros(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.recoveries.iter().map(|r| r.recovery_micros).collect();
        v.sort_unstable();
        v
    }

    /// Recovery-time percentile in virtual µs (`p` in `0.0..=1.0`,
    /// nearest-rank); 0 when no crash was injected.
    pub fn recovery_percentile_micros(&self, p: f64) -> u64 {
        let v = self.sorted_recovery_micros();
        if v.is_empty() {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * v.len() as f64).ceil() as usize).max(1);
        v[rank.min(v.len()) - 1]
    }

    /// Mean recovery time in virtual µs; 0 when no crash was injected.
    pub fn mean_recovery_micros(&self) -> u64 {
        if self.recoveries.is_empty() {
            return 0;
        }
        let sum: u64 = self.recoveries.iter().map(|r| r.recovery_micros).sum();
        sum / self.recoveries.len() as u64
    }

    /// Total ledger bytes charged inside degraded windows.
    pub fn degraded_bytes_total(&self) -> u64 {
        self.recoveries.iter().map(|r| r.degraded_bytes).sum()
    }
}

/// The hybrid-scale deployment: a simulator holding one controller per
/// area (plus, in durable mode, the journal directory), the hot pool
/// and the mobility drivers, with phase drivers and combined-view
/// accessors for the invariant checker.
pub struct ScaleGroup {
    /// The underlying simulator (public like [`crate::group::GroupHandle::sim`]).
    pub sim: Simulator,
    cfg: ScaleConfig,
    directory: Option<NodeId>,
    controllers: Vec<NodeId>,
    pool: Vec<NodeId>,
    movers: Vec<NodeId>,
    joined_target: u64,
    left_target: u64,
}

impl ScaleGroup {
    /// Builds the deployment; nothing runs until a phase driver is
    /// called. In durable mode the directory is created first, then
    /// the controllers, then the pool (volatile mode keeps the exact
    /// ISSUE 7 node-id layout, so its event streams are unchanged).
    pub fn new(cfg: ScaleConfig) -> ScaleGroup {
        Self::build(cfg, None)
    }

    /// Like [`ScaleGroup::new`] with a stable-storage factory: every
    /// node (directory, controllers, pool) gets its backend from
    /// `make` instead of the default in-memory
    /// [`SimStore`](mykil_net::SimStore). This is how the mobility +
    /// durability matrix runs against real files
    /// ([`FileStore`](mykil_net::FileStore), usually wrapped in
    /// [`FaultyStore`](mykil_net::FaultyStore) so the storm's storage
    /// verbs still inject).
    pub fn new_with_storage(
        cfg: ScaleConfig,
        make: impl FnMut(NodeId) -> Box<dyn mykil_net::StableStore> + Send + 'static,
    ) -> ScaleGroup {
        Self::build(cfg, Some(Box::new(make)))
    }

    fn build(
        cfg: ScaleConfig,
        storage: Option<mykil_net::StorageFactory>,
    ) -> ScaleGroup {
        let mut sim = Simulator::new(cfg.seed);
        if let Some(make) = storage {
            sim.set_storage_factory(make);
        }
        let directory = if cfg.durable {
            Some(sim.add_node(ScaleDirectory::new(cfg.areas)))
        } else {
            None
        };
        let controllers: Vec<NodeId> = (0..cfg.areas)
            .map(|a| sim.add_node(ScaleAreaController::new(a, &cfg, directory)))
            .collect();
        let pool_size = cfg.hot_pool.max(1) as u64;
        let pool: Vec<NodeId> = (0..pool_size)
            .map(|p| {
                sim.add_node(PoolMember {
                    pool_index: p,
                    pool_size,
                    total: cfg.members,
                    controllers: controllers.clone(),
                    current: p,
                    phase: if cfg.seed_cold {
                        Phase::Idle
                    } else {
                        Phase::Joining
                    },
                    joined: 0,
                    hot_leaves_left: cfg.hot_leaves_per_pool,
                })
            })
            .collect();
        ScaleGroup {
            sim,
            cfg,
            directory,
            controllers,
            pool,
            movers: Vec::new(),
            joined_target: 0,
            left_target: 0,
        }
    }

    /// The configuration this deployment was built from.
    pub fn config(&self) -> &ScaleConfig {
        &self.cfg
    }

    /// Per-area controllers (inspection).
    pub fn controllers(&self) -> impl Iterator<Item = &ScaleAreaController> {
        self.controllers
            .iter()
            .map(|&id| self.sim.node::<ScaleAreaController>(id))
    }

    /// Node ids of the per-area controllers, in area order (fault
    /// plans target these).
    pub fn controller_ids(&self) -> &[NodeId] {
        &self.controllers
    }

    /// The journal directory (durable mode only).
    pub fn directory(&self) -> Option<&ScaleDirectory> {
        self.directory.map(|id| self.sim.node::<ScaleDirectory>(id))
    }

    /// Logical member `m`'s home area under the round-robin policy.
    pub fn area_of(&self, logical: u64) -> usize {
        (logical % self.cfg.areas.max(1) as u64) as usize
    }

    /// Members each area receives out of the first `total` logicals.
    fn area_share(&self, area: usize, total: u64) -> u64 {
        let areas = self.cfg.areas.max(1) as u64;
        total / areas + u64::from((area as u64) < total % areas)
    }

    /// Seeds the entire logical population cold, closed-form: every
    /// area charges its round-robin share of joins (at sizes `1..=n`)
    /// into both the model and the stats ledger without any simulation
    /// events, then checkpoints. The storm scenarios start here.
    pub fn seed_cold_population(&mut self) {
        for a in 0..self.controllers.len() {
            let share = self.area_share(a, self.cfg.members);
            let id = self.controllers[a];
            self.sim.invoke(id, |node: &mut ScaleAreaController, ctx| {
                node.seed(ctx, share);
            });
            if let Some(dir) = self.directory {
                self.sim.node_mut::<ScaleDirectory>(dir).set_seeded(a, share);
            }
        }
        self.joined_target = self.cfg.members;
    }

    fn stall_with(
        &self,
        phase: &'static str,
        start_events: u64,
        stuck: u64,
        pick: impl Fn(usize, &ScaleAreaController, bool) -> bool,
    ) -> ScaleStall {
        let mut residue = Vec::new();
        for (a, &id) in self.controllers.iter().enumerate() {
            let crashed = self.sim.is_crashed(id);
            let ctrl = self.sim.node::<ScaleAreaController>(id);
            if pick(a, ctrl, crashed) {
                residue.push(AreaResidue {
                    area: a,
                    hot: ctrl.hot_members(),
                    cold: ctrl.cold().cold_members(),
                    joins: ctrl.joins(),
                    converged: ctrl.converged(),
                    crashed,
                });
            }
        }
        ScaleStall {
            phase,
            events_executed: self.sim.events_processed().saturating_sub(start_events),
            members_stuck: stuck,
            residue,
        }
    }

    /// Drives the flash-crowd join to completion: every logical member
    /// joins hot and demotes cold. On stall (event budget exhausted or
    /// members stuck mid-handshake) returns the diagnostic residue.
    pub fn run_flash_crowd_join(&mut self) -> Result<(), ScaleStall> {
        let start = self.sim.events_processed();
        // Each logical member costs four deliveries plus slack.
        let budget = self.cfg.members.saturating_mul(8).max(1_000_000);
        let drained = self.sim.run_until_quiet(budget);
        self.joined_target = self.cfg.members;
        let joined: u64 = self.controllers().map(|c| c.joins()).sum();
        if drained && joined >= self.cfg.members {
            Ok(())
        } else {
            let stuck = self.cfg.members.saturating_sub(joined);
            Err(self.stall_with("flash-crowd join", start, stuck, |a, c, crashed| {
                crashed
                    || !c.converged()
                    || c.hot_members() > 0
                    || c.joins() < self.area_share(a, self.cfg.members)
            }))
        }
    }

    /// Drives the mass leave: pool members promote-then-leave their
    /// first assigned logicals hot, then every controller drains its
    /// cold aggregate through batch-leave timers. On stall returns the
    /// areas still holding members.
    pub fn run_mass_leave(&mut self) -> Result<(), ScaleStall> {
        let start = self.sim.events_processed();
        for i in 0..self.pool.len() {
            let id = self.pool[i];
            self.sim.invoke(id, |node: &mut PoolMember, ctx| {
                node.begin_leaving(ctx);
            });
        }
        let hot_budget = (self.pool.len() as u64)
            .saturating_mul(self.cfg.hot_leaves_per_pool)
            .saturating_mul(8)
            .max(1_000_000);
        let mut drained = self.sim.run_until_quiet(hot_budget);
        for i in 0..self.controllers.len() {
            let id = self.controllers[i];
            self.sim.invoke(id, |node: &mut ScaleAreaController, ctx| {
                let area = node.area as u64;
                ctx.set_timer(Duration::from_millis(1 + area % 13), TAG_COLD_BATCH);
            });
        }
        let batches = self
            .cfg
            .members
            .div_ceil(self.cfg.cold_batch.max(1))
            .saturating_add(self.cfg.areas as u64);
        drained &= self.sim.run_until_quiet(batches.saturating_mul(8).max(1_000_000));
        self.left_target = self.joined_target;
        let live = self.live_members();
        if drained && live == 0 {
            Ok(())
        } else {
            Err(self.stall_with("mass leave", start, live, |_, c, crashed| {
                crashed || !c.converged() || c.live_members() > 0
            }))
        }
    }

    fn movers_finished(&self) -> bool {
        self.movers
            .iter()
            .all(|&id| self.sim.node::<Mover>(id).finished())
    }

    fn total_moves_done(&self) -> u64 {
        self.movers
            .iter()
            .map(|&id| self.sim.node::<Mover>(id).moves_done())
            .sum()
    }

    fn controllers_converged(&self) -> bool {
        self.controllers.iter().all(|&id| {
            !self.sim.is_crashed(id) && self.sim.node::<ScaleAreaController>(id).converged()
        })
    }

    /// Runs a mobility storm: `moves` inter-area ticket rejoins driven
    /// by the hot pool's [`Mover`] nodes while `plan`'s faults hit the
    /// area controllers mid-storm. Requires a seeded (or fully joined)
    /// population and at least two areas; at most one storm per group.
    ///
    /// Returns the per-fault recovery measurements, or a [`ScaleStall`]
    /// when moves stop making progress after the plan is exhausted
    /// (e.g. a crashed controller the plan never restarted).
    pub fn run_mobility_storm(
        &mut self,
        moves: u64,
        plan: &FaultPlan,
    ) -> Result<MobilityReport, ScaleStall> {
        let start_events = self.sim.events_processed();
        if self.cfg.areas < 2 || moves > self.cfg.members || !self.movers.is_empty() {
            return Err(self.stall_with("mobility storm setup", start_events, moves, |_, _, _| {
                false
            }));
        }
        let pool = self.cfg.hot_pool.max(1) as u64;
        for i in 0..pool {
            let assigned = if i < moves {
                (moves - i).div_ceil(pool)
            } else {
                0
            };
            let mover = Mover {
                index: i,
                pool,
                assigned,
                areas: self.cfg.areas as u64,
                controllers: self.controllers.clone(),
                done: 0,
                stage: MoveStage::Out,
                retry: Duration::from_millis(self.cfg.retry_ms.max(1) + i % 11),
                active: false,
                last_sweep: (u64::MAX, MoveStage::Out),
            };
            self.movers.push(self.sim.add_node(mover));
        }
        for i in 0..self.movers.len() {
            let id = self.movers[i];
            self.sim.invoke(id, |node: &mut Mover, ctx| node.begin(ctx));
        }

        let mut driver = ChaosDriver::new(plan.clone());
        let node_area: BTreeMap<NodeId, usize> = self
            .controllers
            .iter()
            .enumerate()
            .map(|(a, &id)| (id, a))
            .collect();
        // (area, crash µs, ledger bytes) at each controller crash.
        let mut crash_samples: Vec<(usize, u64, u64)> = Vec::new();

        let slice = Duration::from_millis(200);
        // Stall heuristic: once the plan is exhausted, this many slices
        // without a single completed move means the storm is wedged.
        let grace_slices = 250u32;
        let max_slices = 40_000u32;
        let mut idle_slices = 0u32;
        let mut last_done = self.total_moves_done();
        let mut completed = false;
        for _ in 0..max_slices {
            let deadline = self.sim.now() + slice;
            driver.run_until_observed(&mut self.sim, deadline, |sim, tf| {
                if let FaultSpec::Crash(n) = tf.fault {
                    if let Some(&area) = node_area.get(&n) {
                        let bytes = sim.stats().counter("scale-rekey-multicast-bytes")
                            + sim.stats().counter("scale-rekey-unicast-bytes");
                        crash_samples.push((area, tf.at.as_micros(), bytes));
                    }
                }
            });
            if driver.finished() && self.movers_finished() && self.controllers_converged() {
                // Drain the remaining acks and retry timers.
                let budget = moves.saturating_mul(16).max(1_000_000);
                completed = self.sim.run_until_quiet(budget);
                break;
            }
            let done = self.total_moves_done();
            if driver.finished() && done == last_done {
                idle_slices += 1;
                if idle_slices > grace_slices {
                    break;
                }
            } else {
                idle_slices = 0;
            }
            last_done = done;
        }
        if !completed {
            let stuck = moves.saturating_sub(self.total_moves_done());
            return Err(
                self.stall_with("mobility storm", start_events, stuck, |_, c, crashed| {
                    crashed || !c.converged() || c.hot_members() > 0
                }),
            );
        }

        // Pair each crash sample with the controller's matching
        // recovery snapshot, in per-area time order.
        let mut per_area: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
        for &(area, at, bytes) in &crash_samples {
            per_area.entry(area).or_default().push((at, bytes));
        }
        let mut recoveries = Vec::new();
        for (a, &id) in self.controllers.iter().enumerate() {
            let Some(crashes) = per_area.get(&a) else {
                continue;
            };
            let ctrl = self.sim.node::<ScaleAreaController>(id);
            for (&(at, bytes), &(rec_at, rec_bytes)) in
                crashes.iter().zip(ctrl.recovery_samples())
            {
                recoveries.push(FaultRecovery {
                    area: a,
                    crash_at_micros: at,
                    recovery_micros: rec_at.as_micros().saturating_sub(at),
                    degraded_bytes: rec_bytes.saturating_sub(bytes),
                });
            }
        }
        recoveries.sort_by_key(|r| (r.crash_at_micros, r.area));

        let mut report = MobilityReport {
            moves: self.total_moves_done(),
            faults_applied: plan.faults().len() as u64,
            crashes: crash_samples.len() as u64,
            partitions: 0,
            storage_faults: 0,
            recoveries,
        };
        for tf in plan.faults() {
            match tf.fault {
                FaultSpec::Partition(_, label) if label > 0 => report.partitions += 1,
                FaultSpec::StorageLostTail(_)
                | FaultSpec::StorageTorn(_)
                | FaultSpec::CorruptCheckpoint(_) => report.storage_faults += 1,
                _ => {}
            }
        }
        Ok(report)
    }

    /// Builds a deterministic fault plan of `episodes` fault episodes
    /// over `horizon`, cycling crash/restart, partition/heal and
    /// storage-fault+crash+restart+heal against the area controllers.
    /// Episodes never overlap on one node (one failure domain at a
    /// time per controller — lying fsync *and* a partition on the same
    /// node could lose acked events unrecoverably, which is outside
    /// the takeover model this harness reproduces), and every episode
    /// cleans itself up, so the plan ends with all areas healthy.
    pub fn mobility_fault_plan(&self, episodes: usize, seed: u64, horizon: Duration) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let n = self.controllers.len();
        if n == 0 || episodes == 0 {
            return plan;
        }
        let mut rng = Drbg::from_seed(seed ^ 0x6d6f_6269_6c69_7479); // "mobility"
        let span_us = horizon.as_micros().max(1);
        let step = (span_us / (episodes as u64 + 1)).max(1);
        let mut busy_until = vec![0u64; n];
        for ep in 0..episodes {
            let t = step.saturating_mul(ep as u64 + 1);
            // Pick a controller that has no episode in flight.
            let mut a = rng.gen_range(n as u64) as usize;
            let mut probes = 0;
            while busy_until[a] > t && probes < n {
                a = (a + 1) % n;
                probes += 1;
            }
            if busy_until[a] > t {
                continue; // every controller busy: skip this slot
            }
            let node = self.controllers[a];
            let down = Duration::from_millis(150 + rng.gen_range(100));
            let at = Time::from_micros(t);
            match ep % 3 {
                0 => {
                    plan.push(at, FaultSpec::Crash(node));
                    plan.push(at + down, FaultSpec::Restart(node));
                }
                1 => {
                    let label = 1 + (ep % 3) as u32;
                    plan.push(at, FaultSpec::Partition(node, label));
                    plan.push(at + down, FaultSpec::Partition(node, 0));
                }
                _ => {
                    let storage = match (ep / 3) % 3 {
                        0 => FaultSpec::StorageLostTail(node),
                        1 => FaultSpec::StorageTorn(node),
                        _ => FaultSpec::CorruptCheckpoint(node),
                    };
                    plan.push(at, storage);
                    let crash_at = at + Duration::from_millis(60 + rng.gen_range(40));
                    plan.push(crash_at, FaultSpec::Crash(node));
                    plan.push(crash_at + down, FaultSpec::Restart(node));
                    plan.push(
                        crash_at + down + Duration::from_millis(5),
                        FaultSpec::StorageHeal(node),
                    );
                }
            }
            busy_until[a] = t + down.as_micros() + step;
        }
        // Belt and braces: whatever happened, end with a healed net.
        plan.push(Time::from_micros(span_us), FaultSpec::HealPartitions);
        plan
    }

    /// Logical members expected to have joined so far.
    pub fn joined_target(&self) -> u64 {
        self.joined_target
    }

    /// Logical members expected to have left so far.
    pub fn left_target(&self) -> u64 {
        self.left_target
    }

    /// Combined live membership across every area (cold + hot).
    pub fn live_members(&self) -> u64 {
        self.controllers().map(|c| c.live_members()).sum()
    }

    /// Total modeled rekey traffic across every area.
    pub fn modeled_traffic(&self) -> RekeyTraffic {
        let mut total = RekeyTraffic::default();
        for c in self.controllers() {
            total += c.cold().traffic();
        }
        total
    }

    /// Closed-form controller storage summed across areas (the paper's
    /// storage axis at the current population).
    pub fn controller_storage_bytes(&self) -> u64 {
        self.controllers()
            .map(|c| c.cold().controller_storage_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_round_trips() {
        let journal = vec![
            ScaleEvent::Join(1),
            ScaleEvent::Promote(1),
            ScaleEvent::HotLeave(1),
            ScaleEvent::ColdBatch(42),
        ];
        let bytes = encode_checkpoint(7, &journal);
        assert_eq!(decode_checkpoint(&bytes), Some((7, journal)));
    }

    /// Regression (found by the `area-replay` fuzz target): a corrupt
    /// checkpoint whose event count didn't match its body used to size
    /// a `Vec::with_capacity` straight from the attacker-controlled
    /// count — a capacity overflow panic (or OOM abort) instead of a
    /// clean fallback. The fixture lives in
    /// `tests/corpus/area-replay/regression-inflated-count.bin`.
    #[test]
    fn decode_checkpoint_rejects_inflated_event_count() {
        let mut bytes = Vec::new();
        put_u64(&mut bytes, 3); // seeded
        put_u64(&mut bytes, u64::MAX); // claimed events, no body
        assert_eq!(decode_checkpoint(&bytes), None);
        // A count merely off-by-one from the body is just as corrupt.
        let mut bytes = encode_checkpoint(3, &[ScaleEvent::Join(1)]);
        bytes[8] = 2;
        assert_eq!(decode_checkpoint(&bytes), None);
    }

    #[test]
    fn decode_checkpoint_rejects_truncated_and_trailing_bytes() {
        let good = encode_checkpoint(1, &[ScaleEvent::Join(1), ScaleEvent::MoveOut(2)]);
        for cut in 0..good.len() {
            assert_eq!(decode_checkpoint(&good[..cut]), None, "cut at {cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(decode_checkpoint(&trailing), None);
        assert!(decode_checkpoint(&good).is_some());
    }

    #[test]
    fn decode_checkpoint_rejects_bad_event_kind() {
        let mut bytes = encode_checkpoint(0, &[ScaleEvent::Join(9)]);
        bytes[16] = 0xFF; // unknown event kind
        assert_eq!(decode_checkpoint(&bytes), None);
    }
}
