//! Virtual time: absolute instants and durations in microseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant of virtual time (microseconds since simulation
/// start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of virtual time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);

    /// Builds an instant from microseconds since the epoch.
    pub fn from_micros(us: u64) -> Time {
        Time(us)
    }

    /// Builds an instant from milliseconds since the epoch.
    pub fn from_millis(ms: u64) -> Time {
        Time(ms * 1000)
    }

    /// Builds an instant from seconds since the epoch.
    pub fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch.
    pub fn as_millis(self) -> u64 {
        self.0 / 1000
    }

    /// Seconds since the epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics when `earlier` is later than `self`.
    pub fn since(self, earlier: Time) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                // mykil-lint: allow(L001) -- documented panic: monotonic clock invariant
                .expect("time went backwards"),
        )
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> Duration {
        Duration(us)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1000)
    }

    /// Builds a duration from seconds.
    pub fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    /// The duration in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0 / 1000
    }

    /// The duration in seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }
}

impl Add<Duration> for Time {
    type Output = Time;

    fn add(self, d: Duration) -> Time {
        Time(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, other: Duration) {
        self.0 += other.0;
    }
}

impl Sub for Time {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics when subtracting a later time from an earlier one.
    fn sub(self, other: Time) -> Duration {
        self.since(other)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Time::from_millis(5).as_micros(), 5000);
        assert_eq!(Time::from_secs(2).as_millis(), 2000);
        assert_eq!(Duration::from_millis(1500).as_micros(), 1_500_000);
        assert!((Time::from_millis(500).as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - Time::from_millis(10)).as_millis(), 5);
        let mut d = Duration::from_micros(3);
        d += Duration::from_micros(4);
        assert_eq!(d.as_micros(), 7);
    }

    #[test]
    fn ordering() {
        assert!(Time::ZERO < Time::from_micros(1));
        assert!(Duration::from_millis(1) < Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_duration_panics() {
        let _ = Time::ZERO - Time::from_micros(1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(Duration::from_micros(250).to_string(), "0.000250s");
    }

    #[test]
    fn saturating_mul() {
        assert_eq!(Duration::from_secs(1).saturating_mul(5), Duration::from_secs(5));
        assert_eq!(
            Duration::from_micros(u64::MAX).saturating_mul(2).as_micros(),
            u64::MAX
        );
    }
}
