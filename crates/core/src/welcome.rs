//! The "welcome" payload an area controller sends a newly admitted
//! member — the encrypted body of join step 7 and rejoin step 6.
//!
//! Per Figure 3 it carries the auxiliary keys on the member's path and
//! the ticket; this implementation also carries the addressing details
//! a member needs in the simulated network (multicast group, AC and
//! backup addresses) that a real deployment would get from IP multicast
//! configuration.

use crate::error::ProtocolError;
use crate::identity::{AreaId, ClientId};
use crate::rekey::{decode_path, encode_path};
use crate::wire::{Reader, Writer};
use mykil_crypto::keys::SymmetricKey;

/// Everything a member learns upon admission to an area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Welcome {
    /// Echo of the client's challenge nonce plus one (`Nonce_CA + 1`);
    /// zero in rejoin step 6, where the signature authenticates the AC.
    pub nonce_echo: u64,
    /// The member's group-wide identity.
    pub client: ClientId,
    /// The area joined.
    pub area: AreaId,
    /// Simulator multicast group of the area.
    pub group_raw: u32,
    /// The area controller's address.
    pub ac_node: u32,
    /// The backup controller's address (`u32::MAX` when unreplicated).
    pub backup_node: u32,
    /// The backup controller's public key (empty when unreplicated).
    pub backup_pubkey: Vec<u8>,
    /// The member's sealed ticket.
    pub ticket: Vec<u8>,
    /// Auxiliary keys on the member's path, leaf first.
    pub path: Vec<(u32, SymmetricKey)>,
    /// Current rekey epoch of the area.
    pub epoch: u64,
    /// When the membership (and ticket) expires, in microseconds of
    /// virtual time — the client knows its subscription period
    /// (Section III-B: the authorization carries "the time period the
    /// client wants to stay as a member").
    pub valid_until_us: u64,
}

impl Welcome {
    /// Serializes the welcome payload (it is then hybrid-encrypted to
    /// the member).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.nonce_echo)
            .u64(self.client.0)
            .u32(self.area.0)
            .u32(self.group_raw)
            .u32(self.ac_node)
            .u32(self.backup_node)
            .bytes(&self.backup_pubkey)
            .bytes(&self.ticket)
            .bytes(&encode_path(&self.path))
            .u64(self.epoch)
            .u64(self.valid_until_us);
        w.into_bytes()
    }

    /// Parses a welcome payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] on truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Welcome, ProtocolError> {
        let mut r = Reader::new(bytes);
        let welcome = Welcome {
            nonce_echo: r.u64()?,
            client: ClientId(r.u64()?),
            area: AreaId(r.u32()?),
            group_raw: r.u32()?,
            ac_node: r.u32()?,
            backup_node: r.u32()?,
            backup_pubkey: r.bytes()?.to_vec(),
            ticket: r.bytes()?.to_vec(),
            path: decode_path(r.bytes()?)?,
            epoch: r.u64()?,
            valid_until_us: r.u64()?,
        };
        r.finish()?;
        Ok(welcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Welcome {
        Welcome {
            nonce_echo: 99,
            client: ClientId(7),
            area: AreaId(2),
            group_raw: 3,
            ac_node: 11,
            backup_node: 12,
            backup_pubkey: vec![5; 30],
            ticket: vec![9; 80],
            path: vec![
                (14, SymmetricKey::from_label("leaf")),
                (3, SymmetricKey::from_label("aux")),
                (0, SymmetricKey::from_label("area")),
            ],
            epoch: 4,
            valid_until_us: 1_000_000,
        }
    }

    #[test]
    fn round_trip() {
        let w = sample();
        assert_eq!(Welcome::from_bytes(&w.to_bytes()).unwrap(), w);
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0, 1, 10, bytes.len() - 1] {
            assert!(Welcome::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn unreplicated_form() {
        let mut w = sample();
        w.backup_node = u32::MAX;
        w.backup_pubkey = Vec::new();
        let back = Welcome::from_bytes(&w.to_bytes()).unwrap();
        assert_eq!(back.backup_node, u32::MAX);
        assert!(back.backup_pubkey.is_empty());
    }
}
