//! mykil-lint: workspace-aware static analysis for Mykil's key-secrecy
//! and protocol-hygiene invariants.
//!
//! The linter is dependency-free: a hand-rolled token scanner
//! ([`tokenizer`]) feeds a small rule engine ([`engine`]) running two
//! rule families:
//!
//! **Token rules** (per file, over the raw token stream):
//!
//! - **L001** — no `unwrap()`/`expect()` in non-test code of the
//!   protocol crates (`core`, `net`, `tree`). A Mykil node processing a
//!   malformed or Byzantine message must degrade to a `ProtocolError`,
//!   never panic.
//! - **L002** — secret-bearing types (`SymmetricKey`, `Rc4`,
//!   `ChaCha20`, `RsaKeyPair`) must not derive `Debug`, `PartialEq`, or
//!   `Hash`, and must implement `Drop` (zeroization).
//! - **L003** — MAC/digest/secret byte comparisons must go through
//!   `mykil_crypto::ct_eq`, never `==`/`!=`.
//! - **L004** — no `std::time::{SystemTime, Instant}` in the
//!   sim-deterministic crates (`net`, `core`).
//! - **L005** — protocol `Msg` dispatch must list variants explicitly;
//!   no `_ =>` catch-all.
//!
//! **Syntax-aware rules** (per crate, over the [`ast`] layer — function
//! bodies as ordered event streams plus crate-wide declaration tables):
//!
//! - **L006** — no iteration over `HashMap`/`HashSet` in the
//!   deterministic crates: bucket order varies per process and breaks
//!   seeded chaos replay and byte-identical wire output.
//! - **L007** — WAL-before-ack call ordering in `core` handlers: an
//!   ack/reply `Msg` must not be emitted before the function's
//!   `wal_commit`-family call.
//! - **L008** — every `set_timer` arm site uses a named `TIMER_*` kind
//!   with a matching handling/cancel site in the same crate.
//! - **L009** — no bare narrowing `as` casts in wire/codec files; use
//!   `try_from` + `Malformed`.
//! - **L010** — no panicking slice access (`x[i]`, `split_at`,
//!   `copy_from_slice`) in wire/codec files.
//!
//! The `syn` crate is deliberately not used: the workspace builds
//! offline with zero external dependencies, so [`ast`] is a small
//! hand-rolled syntax layer tuned to exactly what the rules consume.
//!
//! Findings are suppressed per line with
//! `// mykil-lint: allow(L00x) -- reason`.

pub mod ast;
pub mod diagnostics;
pub mod engine;
pub mod explain;
pub mod rules;
pub mod rules_ast;
pub mod tokenizer;

pub use diagnostics::Diagnostic;
pub use engine::{lint_files, lint_source, lint_workspace};
pub use rules::RULES;
