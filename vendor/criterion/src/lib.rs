//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build container cannot reach crates.io, so the bench harness
//! routes its `criterion` dev-dependency here. Benchmarks compile and
//! run with the same source syntax (`criterion_group!`,
//! `criterion_main!`, benchmark groups, throughput annotations) but the
//! measurement loop is simple wall-clock timing: a short warm-up, then
//! timed batches, reporting the per-iteration mean. There is no
//! statistical analysis, HTML report, or baseline comparison.

pub use std::hint::black_box;
use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark registry and entry point (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("standalone").bench_function(name, f);
    }
}

/// Throughput annotation attached to a group (mirrors
/// `criterion::Throughput`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark identifier (mirrors
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the amount of work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(name, &b);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Finishes the group (upstream flushes reports here; this
    /// implementation prints as it goes, so nothing is pending).
    pub fn finish(&mut self) {}

    fn report(&self, name: &str, b: &Bencher) {
        let Some(mean) = b.mean_ns() else {
            println!("{}/{name}: no samples", self.name);
            return;
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if mean > 0.0 => {
                format!("  ({:.1} MiB/s)", bytes as f64 / mean * 1e9 / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / mean * 1e9)
            }
            _ => String::new(),
        };
        println!("{}/{name}: {:.1} ns/iter{rate}", self.name, mean);
    }
}

/// Drives the iteration closure and records timings.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<u128>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples_ns: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Times `f`, the routine under test.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm up and size the batch so one sample is at least ~1 ms
        // (bounds timer overhead without statistical machinery).
        let warm_start = Instant::now();
        black_box(f());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(1);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = iters;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }

    fn mean_ns(&self) -> Option<f64> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let total: u128 = self.samples_ns.iter().sum();
        let iters = self.samples_ns.len() as u128 * self.iters_per_sample as u128;
        Some(total as f64 / iters as f64)
    }
}

/// Declares a benchmark group function (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(2);
        let mut runs = 0u32;
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(1).throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("param", 42), &42u32, |b, &n| {
            b.iter(|| n * 2)
        });
    }
}
