//! Tree snapshots for area-controller replication.
//!
//! Section IV-C of the paper: a Mykil area controller is replicated with
//! a primary-backup scheme, and the replicated state includes "the
//! complete auxiliary tree". [`Tree::snapshot`] serializes exactly that
//! state; [`Tree::restore`] rebuilds a tree a backup can take over with.
//!
//! Two formats exist, one per [`KeyStore`] backend, distinguished by a
//! 4-byte magic:
//!
//! - `MKT1` ([`crate::KeyTree`]): structure, per-node key bytes,
//!   versions, occupancy — byte-for-byte the original format.
//! - `MKH1` ([`crate::KhfTree`]): structure, versions, occupancy, then
//!   the 32-byte forest secret and the override table. Derived keys are
//!   never serialized; the backup re-derives them, so the snapshot is
//!   O(updated set) like the resident state. Per-node `version`
//!   counters travel in both formats — a restored replica that reset
//!   them would derive stale `(node, version)` keys and desynchronize
//!   from the members.
//!
//! [`crate::AreaTree::restore`] dispatches on the magic so replicated
//! state moves between controllers regardless of backend.

use crate::store::KeyStore;
use crate::tree::{Tree, TreeConfig};
use crate::MemberId;
use std::fmt;

/// Error returned by [`Tree::restore`] on corrupt input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(&'static str);

impl SnapshotError {
    pub(crate) fn new(what: &'static str) -> SnapshotError {
        SnapshotError(what)
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt tree snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        let (&b, rest) = self.0.split_first().ok_or(SnapshotError("truncated"))?;
        self.0 = rest;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        if self.0.len() < 8 {
            return Err(SnapshotError("truncated"));
        }
        let (head, rest) = self.0.split_at(8);
        self.0 = rest;
        let arr: [u8; 8] = head.try_into().map_err(|_| SnapshotError("truncated"))?;
        Ok(u64::from_be_bytes(arr))
    }
}

impl<S: KeyStore> Tree<S> {
    /// Serializes the complete tree (structure, key state, versions,
    /// occupancy) for transfer to a backup controller.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.node_count() * 40 + 16);
        out.extend_from_slice(S::SNAPSHOT_MAGIC);
        out.push(self.config().arity() as u8);
        out.extend_from_slice(&(self.node_count() as u64).to_be_bytes());
        for i in 0..self.node_count() {
            let node = crate::tree::NodeIdx::from_raw(i);
            let parent = self.parent_of(node);
            out.extend_from_slice(
                &(parent.map(|p| p.raw() as u64 + 1).unwrap_or(0)).to_be_bytes(),
            );
            self.store().snapshot_node(i, &mut out);
            out.extend_from_slice(&self.version_of(node).to_be_bytes());
            match self.occupant_of(node) {
                Some(m) => {
                    out.push(1);
                    out.extend_from_slice(&m.0.to_be_bytes());
                }
                None => out.push(0),
            }
        }
        self.store().snapshot_tail(&mut out);
        out
    }

    /// Rebuilds a tree from [`Self::snapshot`] output of the same
    /// backend (use [`crate::AreaTree::restore`] when the backend is
    /// not statically known).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on truncated or malformed input.
    pub fn restore(bytes: &[u8]) -> Result<Tree<S>, SnapshotError> {
        if bytes.len() < 4 || &bytes[..4] != S::SNAPSHOT_MAGIC {
            return Err(SnapshotError("bad magic"));
        }
        let mut r = Reader(&bytes[4..]);
        let arity = r.u8()? as usize;
        if !(2..=16).contains(&arity) {
            return Err(SnapshotError("bad arity"));
        }
        let count = r.u64()? as usize;
        if count == 0 {
            return Err(SnapshotError("no root"));
        }
        // Bound allocation by what the input can actually hold: every
        // node costs at least 17 bytes (parent u64, version u64, and an
        // occupancy tag), so a claimed count past that is a lie and
        // must not reach `Vec::with_capacity`.
        if count > r.0.len() / 17 {
            return Err(SnapshotError("node count exceeds input"));
        }
        let mut tree =
            Tree::<S>::restore_shell(TreeConfig::with_arity(arity).with_backend(S::BACKEND), count);
        for i in 0..count {
            let parent_raw = r.u64()?;
            let parent = if parent_raw == 0 {
                None
            } else {
                let p = parent_raw as usize - 1;
                if p >= i {
                    return Err(SnapshotError("parent after child"));
                }
                Some(crate::tree::NodeIdx::from_raw(p))
            };
            if (parent.is_none()) != (i == 0) {
                return Err(SnapshotError("root/parent mismatch"));
            }
            tree.store_mut()
                .restore_node(i, parent.map(|p| p.raw()), &mut r.0)
                .map_err(SnapshotError::new)?;
            let version = r.u64()?;
            let occupant = match r.u8()? {
                0 => None,
                1 => Some(MemberId(r.u64()?)),
                _ => return Err(SnapshotError("bad occupancy tag")),
            };
            tree.restore_node(i, parent, version, occupant)
                .map_err(|_| SnapshotError("inconsistent node"))?;
        }
        tree.store_mut()
            .restore_tail(count, &mut r.0)
            .map_err(SnapshotError::new)?;
        if !r.0.is_empty() {
            return Err(SnapshotError("trailing bytes"));
        }
        if tree.has_interior_occupant() {
            return Err(SnapshotError("occupant on interior node"));
        }
        tree.rebuild_indices();
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{KeyTree, KhfTree, TreeConfig};
    use mykil_crypto::drbg::Drbg;

    fn sample_tree(n: u64) -> KeyTree {
        let mut rng = Drbg::from_seed(9);
        let mut t = KeyTree::new(TreeConfig::quad(), &mut rng);
        for m in 0..n {
            t.join(MemberId(m), &mut rng).unwrap();
        }
        for m in [1u64, 4, 9] {
            if m < n {
                t.leave(MemberId(m), &mut rng).unwrap();
            }
        }
        t
    }

    fn sample_khf(n: u64) -> KhfTree {
        let mut rng = Drbg::from_seed(9);
        let mut t = KhfTree::new(TreeConfig::quad(), &mut rng);
        for m in 0..n {
            t.join(MemberId(m), &mut rng).unwrap();
        }
        for m in [1u64, 4, 9] {
            if m < n {
                t.leave(MemberId(m), &mut rng).unwrap();
            }
        }
        t
    }

    fn paths_equal<S: KeyStore>(a: &Tree<S>, b: &Tree<S>) {
        let (mut pa, mut pb) = (Vec::new(), Vec::new());
        for m in a.members() {
            assert!(b.contains(m));
            a.path_keys_into(m, &mut pa).unwrap();
            b.path_keys_into(m, &mut pb).unwrap();
            assert_eq!(pa, pb, "{m} path differs");
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let tree = sample_tree(30);
        let restored = KeyTree::restore(&tree.snapshot()).unwrap();
        restored.check_invariants();
        assert_eq!(restored.node_count(), tree.node_count());
        assert_eq!(restored.member_count(), tree.member_count());
        assert_eq!(restored.area_key(), tree.area_key());
        paths_equal(&tree, &restored);
    }

    #[test]
    fn khf_round_trip_preserves_everything() {
        let tree = sample_khf(30);
        let restored = KhfTree::restore(&tree.snapshot()).unwrap();
        restored.check_invariants();
        assert_eq!(restored.node_count(), tree.node_count());
        assert_eq!(restored.member_count(), tree.member_count());
        assert_eq!(restored.node_key(tree.root()), tree.node_key(tree.root()));
        assert_eq!(
            restored.store().override_count(),
            tree.store().override_count()
        );
        for i in 0..tree.node_count() {
            let n = crate::tree::NodeIdx::from_raw(i);
            assert_eq!(restored.version_of(n), tree.version_of(n), "{n} version");
        }
        paths_equal(&tree, &restored);
    }

    #[test]
    fn khf_snapshot_is_compact() {
        let tree = sample_khf(200);
        let explicit = sample_tree(200);
        // No per-node key bytes: the KHF image is 16 bytes/node smaller,
        // minus the forest secret and the (small) override table.
        assert!(
            tree.snapshot().len() < explicit.snapshot().len(),
            "khf {} explicit {}",
            tree.snapshot().len(),
            explicit.snapshot().len()
        );
    }

    #[test]
    fn restored_tree_is_operable() {
        let tree = sample_tree(20);
        let mut rng = Drbg::from_seed(10);
        let mut restored = KeyTree::restore(&tree.snapshot()).unwrap();
        // The backup can continue where the primary stopped.
        restored.join(MemberId(1000), &mut rng).unwrap();
        restored.leave(MemberId(0), &mut rng).unwrap();
        restored.check_invariants();
        assert_eq!(restored.member_count(), tree.member_count());
    }

    #[test]
    fn restored_khf_tree_is_operable() {
        let tree = sample_khf(20);
        let mut rng = Drbg::from_seed(10);
        let mut restored = KhfTree::restore(&tree.snapshot()).unwrap();
        restored.join(MemberId(1000), &mut rng).unwrap();
        restored.leave(MemberId(0), &mut rng).unwrap();
        restored.check_invariants();
        assert_eq!(restored.member_count(), tree.member_count());
    }

    #[test]
    fn empty_tree_round_trips() {
        let mut rng = Drbg::from_seed(11);
        let tree = KeyTree::new(TreeConfig::binary(), &mut rng);
        let restored = KeyTree::restore(&tree.snapshot()).unwrap();
        restored.check_invariants();
        assert_eq!(restored.node_count(), 1);
        assert_eq!(restored.area_key(), tree.area_key());
    }

    #[test]
    fn corrupt_snapshots_rejected() {
        let tree = sample_tree(10);
        let snap = tree.snapshot();
        assert!(KeyTree::restore(&[]).is_err());
        assert!(KeyTree::restore(b"XXXX").is_err());
        assert!(KeyTree::restore(&snap[..snap.len() - 1]).is_err());
        let mut extra = snap.clone();
        extra.push(0);
        assert!(KeyTree::restore(&extra).is_err());
        let mut bad_magic = snap.clone();
        bad_magic[0] = b'Z';
        assert!(KeyTree::restore(&bad_magic).is_err());
    }

    #[test]
    fn corrupt_khf_snapshots_rejected() {
        let tree = sample_khf(10);
        let snap = tree.snapshot();
        assert!(KhfTree::restore(&snap[..snap.len() - 1]).is_err());
        let mut extra = snap.clone();
        extra.push(0);
        assert!(KhfTree::restore(&extra).is_err());
        // One backend's image does not restore as the other's.
        assert!(KeyTree::restore(&snap).is_err());
        assert!(KhfTree::restore(&sample_tree(10).snapshot()).is_err());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let tree = sample_tree(15);
        assert_eq!(tree.snapshot(), tree.snapshot());
        let restored = KeyTree::restore(&tree.snapshot()).unwrap();
        assert_eq!(restored.snapshot(), tree.snapshot());
        let khf = sample_khf(15);
        assert_eq!(khf.snapshot(), khf.snapshot());
        let restored = KhfTree::restore(&khf.snapshot()).unwrap();
        assert_eq!(restored.snapshot(), khf.snapshot());
    }
}
