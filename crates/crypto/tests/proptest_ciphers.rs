//! Property-based tests for the symmetric primitives and envelopes.

use mykil_crypto::drbg::Drbg;
use mykil_crypto::envelope::{open, seal, ENVELOPE_OVERHEAD};
use mykil_crypto::hmac::{hmac_sha256, verify_hmac};
use mykil_crypto::keys::SymmetricKey;
use mykil_crypto::rc4::Rc4;
use mykil_crypto::sha256::Sha256;
use proptest::prelude::*;

proptest! {
    #[test]
    fn rc4_round_trips(key in proptest::collection::vec(any::<u8>(), 1..64),
                       data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let ct = Rc4::process(&key, &data);
        prop_assert_eq!(Rc4::process(&key, &ct), data);
    }

    #[test]
    fn rc4_streaming_consistent(
        key in proptest::collection::vec(any::<u8>(), 1..32),
        data in proptest::collection::vec(any::<u8>(), 1..256),
        split in 0usize..256,
    ) {
        let split = split % data.len();
        let mut streamed = data.clone();
        let mut c = Rc4::new(&key);
        let (a, b) = streamed.split_at_mut(split);
        c.apply_keystream(a);
        c.apply_keystream(b);
        prop_assert_eq!(streamed, Rc4::process(&key, &data));
    }

    #[test]
    fn sha256_incremental_agrees(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        split in 0usize..300,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn hmac_verifies_own_tags(
        key in proptest::collection::vec(any::<u8>(), 0..100),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let tag = hmac_sha256(&key, &msg);
        prop_assert!(verify_hmac(&key, &msg, &tag));
    }

    #[test]
    fn hmac_rejects_bit_flips(
        key in proptest::collection::vec(any::<u8>(), 1..32),
        msg in proptest::collection::vec(any::<u8>(), 1..64),
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let tag = hmac_sha256(&key, &msg);
        let mut bad = msg.clone();
        let idx = flip_byte % bad.len();
        bad[idx] ^= 1 << flip_bit;
        prop_assert!(!verify_hmac(&key, &bad, &tag));
    }

    #[test]
    fn envelope_round_trips(
        key_bytes in any::<[u8; 16]>(),
        payload in proptest::collection::vec(any::<u8>(), 0..400),
        seed in any::<u64>(),
    ) {
        let key = SymmetricKey::from_bytes(key_bytes);
        let mut rng = Drbg::from_seed(seed);
        let env = seal(&key, &payload, &mut rng);
        prop_assert_eq!(env.len(), payload.len() + ENVELOPE_OVERHEAD);
        prop_assert_eq!(open(&key, &env).unwrap(), payload);
    }

    #[test]
    fn envelope_rejects_other_keys(
        k1 in any::<[u8; 16]>(),
        k2 in any::<[u8; 16]>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        seed in any::<u64>(),
    ) {
        prop_assume!(k1 != k2);
        let mut rng = Drbg::from_seed(seed);
        let env = seal(&SymmetricKey::from_bytes(k1), &payload, &mut rng);
        prop_assert!(open(&SymmetricKey::from_bytes(k2), &env).is_err());
    }

    #[test]
    fn drbg_reproducible(seed in any::<u64>()) {
        use rand::RngCore;
        let mut a = Drbg::from_seed(seed);
        let mut b = Drbg::from_seed(seed);
        let mut buf_a = [0u8; 48];
        let mut buf_b = [0u8; 48];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        prop_assert_eq!(buf_a, buf_b);
    }
}
