//! Join steps 4, 6 and 7 at the area controller, plus the shared
//! admission path used by joins and rejoins.

use super::{AreaController, MemberRecord, PendingAdmission};
use crate::durable::AcWalRecord;
use crate::error::ProtocolError;
use crate::identity::{ClientId, DeviceId};
use crate::msg::Msg;
use crate::rekey::encode_tree_path;
use crate::ticket::Ticket;
use crate::welcome::Welcome;
use crate::wire::{Reader, Writer};
use mykil_crypto::envelope::HybridCiphertext;
use mykil_crypto::keys::SymmetricKey;
use mykil_crypto::rsa::RsaPublicKey;
use mykil_net::{Context, NodeId, Time};
use mykil_tree::{MemberId, RekeyPlan};

impl AreaController {
    /// Join step 4: the RS introduces an authorized client.
    pub(crate) fn handle_join4(&mut self, ctx: &mut Context<'_>, ct: &[u8], sig: &[u8]) {
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        if !self.rs_pub.verify(ct, sig) {
            return;
        }
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = HybridCiphertext::from_bytes(ct)
            .ok()
            .and_then(|hc| hc.decrypt(&self.keypair).ok())
        else {
            return;
        };
        let parsed = (|| {
            let mut r = Reader::new(&plain);
            let nonce_ac = r.u64().ok()?;
            let client = ClientId(r.u64().ok()?);
            let ts = Time::from_micros(r.u64().ok()?);
            let pubkey = r.bytes().ok()?.to_vec();
            let duration = mykil_net::Duration::from_micros(r.u64().ok()?);
            r.finish().ok()?;
            Some((nonce_ac, client, ts, pubkey, duration))
        })();
        let Some((nonce_ac, client, ts, pubkey, duration)) = parsed else {
            return;
        };
        // Timestamp window: catches the replay attack the paper calls
        // out in its step-4 description.
        if !self.fresh_timestamp(ctx.now(), ts) {
            ctx.stats().bump("ac-replays-rejected", 1);
            return;
        }
        let Ok(pubkey) = RsaPublicKey::from_bytes(&pubkey) else {
            return;
        };
        self.pending_admissions.insert(
            nonce_ac,
            PendingAdmission {
                client,
                pubkey,
                valid_until: ctx.now() + duration,
            },
        );
    }

    /// Join step 6: the client proves it holds `Nonce_AC` and presents
    /// its challenge; step 7 (the welcome) is the reply.
    pub(crate) fn handle_join6(&mut self, ctx: &mut Context<'_>, from: NodeId, ct: &[u8]) {
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let Some(plain) = HybridCiphertext::from_bytes(ct)
            .ok()
            .and_then(|hc| hc.decrypt(&self.keypair).ok())
        else {
            return;
        };
        let parsed = (|| {
            let mut r = Reader::new(&plain);
            let nonce_ac_2 = r.u64().ok()?;
            let nonce_ca = r.u64().ok()?;
            let device = DeviceId(r.array::<6>().ok()?);
            r.finish().ok()?;
            Some((nonce_ac_2, nonce_ca, device))
        })();
        let Some((nonce_ac_2, nonce_ca, device)) = parsed else {
            return;
        };
        let Some(pending) = self
            .pending_admissions
            .remove(&nonce_ac_2.wrapping_sub(2))
        else {
            return;
        };
        let Ok(welcome) = self.admit(
            ctx,
            pending.client,
            pending.pubkey.clone(),
            Some(device),
            pending.valid_until,
            from,
            nonce_ca.wrapping_add(1),
        ) else {
            ctx.stats().bump("ac-admissions-rejected", 1);
            return;
        };
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct7) = HybridCiphertext::encrypt(&pending.pubkey, &welcome.to_bytes(), ctx.rng())
        else {
            return;
        };
        self.stats.joins_admitted += 1;
        ctx.send(from, "join", Msg::Join7 { ct: ct7.to_bytes() }.to_bytes());
        self.after_membership_change(ctx);
    }

    /// Shared admission path: updates the tree, buffers the key-update
    /// multicast, unicasts fresh keys to any displaced member, issues a
    /// ticket, and builds the welcome payload.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::UnexpectedMessage`] when the key tree
    /// refuses the join — state drift between the membership map and
    /// the tree must reject the admission, never panic the controller.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn admit(
        &mut self,
        ctx: &mut Context<'_>,
        client: ClientId,
        pubkey: RsaPublicKey,
        device: Option<DeviceId>,
        valid_until: Time,
        node: NodeId,
        nonce_echo: u64,
    ) -> Result<Welcome, ProtocolError> {
        let member = MemberId(client.0);
        self.note_area_key();
        // Re-admission cancels any departure still queued in the batch
        // window — otherwise the next flush would evict the fresh
        // membership it just granted.
        self.pending_leaves.retain(|c| *c != client);
        // Re-admission after a missed eviction: clear the stale record.
        if self.tree.contains(member) {
            let _ = self.tree.leave(member, ctx.rng());
            self.members.remove(&client);
        }
        let plan = self
            .tree
            .join(member, ctx.rng())
            .map_err(|_| ProtocolError::UnexpectedMessage("key tree refused the join"))?;
        self.buffer_join_plan(&plan);
        self.send_displaced_unicasts(ctx, &plan, member);

        let path: Vec<(u32, SymmetricKey)> = plan
            .unicasts
            .iter()
            .find(|u| u.member == member)
            .map(|u| {
                u.keys
                    .iter()
                    .map(|(n, k)| (n.raw() as u32, k.clone()))
                    .collect()
            })
            .unwrap_or_default();

        let ticket = Ticket {
            join_time: ctx.now(),
            valid_until,
            client,
            device: device.unwrap_or(DeviceId([0; 6])),
            public_key: pubkey.to_bytes(),
            last_area: self.deploy.area,
            last_ac: ctx.id().index() as u32,
        }
        .seal(&self.k_shared, ctx.rng());

        let pubkey_bytes = pubkey.to_bytes();
        self.members.insert(
            client,
            MemberRecord {
                node,
                pubkey,
                device,
                valid_until,
                last_heard: ctx.now(),
            },
        );
        self.recorded_members.insert(client, self.epoch);
        self.update_needed = true;
        // Write-ahead: the admission is durable before the welcome (or
        // rejoin grant) leaves this node, so a crash cannot orphan a
        // member that believes it was admitted.
        self.wal_commit_record(
            ctx,
            &AcWalRecord::Join {
                client: client.0,
                node: node.index() as u32,
                pubkey: pubkey_bytes,
                device: device.map(|d| d.0),
                valid_until_us: valid_until.as_micros(),
            },
        );

        Ok(Welcome {
            nonce_echo,
            client,
            area: self.deploy.area,
            group_raw: self.deploy.group.index() as u32,
            ac_node: ctx.id().index() as u32,
            backup_node: self
                .deploy
                .backup
                .map(|b| b.index() as u32)
                .unwrap_or(u32::MAX),
            backup_pubkey: self.deploy.backup_pubkey.clone(),
            ticket: ticket.0,
            path,
            epoch: self.epoch,
            valid_until_us: valid_until.as_micros(),
        })
    }

    /// Unicasts fresh leaf keys to members displaced by a leaf split
    /// (Figure 4: "unicast the list of new auxiliary keys appropriately
    /// encrypted to m_c").
    pub(crate) fn send_displaced_unicasts(
        &mut self,
        ctx: &mut Context<'_>,
        plan: &RekeyPlan,
        newcomer: MemberId,
    ) {
        for u in &plan.unicasts {
            if u.member == newcomer {
                continue;
            }
            // The displaced occupant is a client — or a child AC whose
            // leaf in this tree was split.
            let target = if let Some(rec) = self.members.get(&ClientId(u.member.0)) {
                Some((rec.node, rec.pubkey.clone()))
            } else {
                self.child_ac_members.get(&u.member.0).and_then(|&node| {
                    self.directory_pubkey(node).map(|pk| (node, pk))
                })
            };
            let Some((node, pubkey)) = target else {
                continue;
            };
            ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
            if let Ok(ct) =
                HybridCiphertext::encrypt(&pubkey, &encode_tree_path(&u.keys), ctx.rng())
            {
                ctx.send(node, "key-unicast", Msg::KeyUnicast { ct: ct.to_bytes() }.to_bytes());
            }
        }
    }

    /// Common tail of a membership change: flush immediately or leave
    /// the batch pending, then sync the replica.
    pub(crate) fn after_membership_change(&mut self, ctx: &mut Context<'_>) {
        if self.batch_now() {
            self.flush_key_updates(ctx);
        }
        self.sync_backup(ctx);
    }

    pub(crate) fn fresh_timestamp(&self, now: Time, ts: Time) -> bool {
        let window = self.cfg.timestamp_window;
        let (a, b) = if now >= ts { (now, ts) } else { (ts, now) };
        a.since(b) <= window
    }

    /// Writer helper: the signed payload for key updates.
    pub(crate) fn key_update_signed_bytes(&self, body: &[u8], epoch: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.deploy.area.0).u64(epoch).raw(body);
        w.into_bytes()
    }
}
