//! RSA key generation.

use super::{RsaKeyPair, RsaPublicKey, PUBLIC_EXPONENT};
use crate::bignum::BigUint;
use crate::prime::generate_rsa_prime;
use crate::CryptoError;
use rand::RngCore;

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of `bits` bits and
    /// public exponent 65537.
    ///
    /// The paper uses 2048-bit keys; tests in this workspace use 512–768
    /// bits to keep the suite fast (key generation is the only slow RSA
    /// operation).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidParameter`] when `bits < 256` or
    /// `bits` is odd, and [`CryptoError::KeyGeneration`] when prime
    /// search fails (practically impossible with the default budget).
    pub fn generate<R: RngCore + ?Sized>(
        bits: usize,
        rng: &mut R,
    ) -> Result<RsaKeyPair, CryptoError> {
        if bits < 256 {
            return Err(CryptoError::InvalidParameter("modulus below 256 bits"));
        }
        if !bits.is_multiple_of(2) {
            return Err(CryptoError::InvalidParameter("modulus bits must be even"));
        }
        let e = BigUint::from(PUBLIC_EXPONENT);
        let one = BigUint::one();
        loop {
            let p = generate_rsa_prime(bits / 2, &e, rng)?;
            let q = generate_rsa_prime(bits / 2, &e, rng)?;
            if p == q {
                continue;
            }
            let n = &p * &q;
            // Forcing the two top bits of each prime guarantees full
            // modulus width, but keep the check as a safety net.
            if n.bit_len() != bits {
                continue;
            }
            let p1 = &p - &one;
            let q1 = &q - &one;
            let phi = &p1 * &q1;
            let d = e.mod_inverse(&phi)?;
            let d_p = d.rem(&p1)?;
            let d_q = d.rem(&q1)?;
            let q_inv = q.mod_inverse(&p)?;
            let public = RsaPublicKey { n, e: e.clone() };
            return Ok(RsaKeyPair {
                public,
                d,
                p,
                q,
                d_p,
                d_q,
                q_inv,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::Drbg;
    use crate::prime::is_probably_prime;

    #[test]
    fn generate_produces_working_pair() {
        let mut rng = Drbg::from_seed(11);
        let pair = RsaKeyPair::generate(512, &mut rng).unwrap();
        assert_eq!(pair.public().bits(), 512);
        assert_eq!(pair.public().block_len(), 64);
        // e*d == 1 mod lcm is implied by the round trip:
        let m = BigUint::from(0x1234_5678_u64);
        let c = pair.public().raw_public_op(&m).unwrap();
        assert_eq!(pair.raw_private_op(&c).unwrap(), m);
    }

    #[test]
    fn factors_are_prime_and_distinct() {
        let mut rng = Drbg::from_seed(12);
        let pair = RsaKeyPair::generate(512, &mut rng).unwrap();
        assert!(is_probably_prime(&pair.p, 10, &mut rng));
        assert!(is_probably_prime(&pair.q, 10, &mut rng));
        assert_ne!(pair.p, pair.q);
        assert_eq!(&pair.p * &pair.q, *pair.public().modulus());
    }

    #[test]
    fn rejects_bad_sizes() {
        let mut rng = Drbg::from_seed(13);
        assert!(RsaKeyPair::generate(128, &mut rng).is_err());
        assert!(RsaKeyPair::generate(513, &mut rng).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = Drbg::from_seed(14);
        let mut r2 = Drbg::from_seed(14);
        let a = RsaKeyPair::generate(512, &mut r1).unwrap();
        let b = RsaKeyPair::generate(512, &mut r2).unwrap();
        assert_eq!(a.public(), b.public());
    }
}
