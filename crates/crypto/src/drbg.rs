//! Deterministic random bit generator built on ChaCha20.
//!
//! Every source of randomness in the reproduction — RSA key generation,
//! nonces, random data keys `K_r`, area keys, simulated workloads — flows
//! through [`Drbg`], so an entire simulation is reproducible from a
//! single `u64` seed. `Drbg` implements [`rand::RngCore`] and can be
//! handed to anything expecting a standard RNG.
//!
//! # Example
//!
//! ```
//! use mykil_crypto::drbg::Drbg;
//! use rand::RngCore;
//!
//! let mut a = Drbg::from_seed(1234);
//! let mut b = Drbg::from_seed(1234);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

use crate::chacha::ChaCha20;
use crate::sha256::Sha256;
use rand::{CryptoRng, RngCore};

/// Seedable deterministic RNG (ChaCha20 keystream over a hashed seed).
#[derive(Clone)]
pub struct Drbg {
    cipher: ChaCha20,
    pool: [u8; 64],
    used: usize,
}

impl std::fmt::Debug for Drbg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Drbg").finish_non_exhaustive()
    }
}

impl Drbg {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self::from_seed_bytes(&seed.to_be_bytes())
    }

    /// Creates a generator from arbitrary seed bytes.
    pub fn from_seed_bytes(seed: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"mykil-drbg-v1");
        h.update(seed);
        let key = h.finalize();
        let cipher = ChaCha20::new(&key, &[0u8; 12], 0);
        Drbg {
            cipher,
            pool: [0; 64],
            used: 64,
        }
    }

    /// Derives an independent child generator; children with different
    /// labels produce unrelated streams.
    ///
    /// Used to give every simulated node its own RNG while keeping the
    /// whole run reproducible from one seed.
    pub fn fork(&mut self, label: &[u8]) -> Drbg {
        let mut material = [0u8; 32];
        self.fill_bytes(&mut material);
        let mut h = Sha256::new();
        h.update(b"mykil-drbg-fork");
        h.update(&material);
        h.update(label);
        Drbg::from_seed_bytes(&h.finalize())
    }

    fn refill(&mut self) {
        self.pool = self.cipher.next_block();
        self.used = 0;
    }

    /// Returns a fresh 16-byte symmetric key.
    pub fn gen_key16(&mut self) -> [u8; 16] {
        let mut k = [0u8; 16];
        self.fill_bytes(&mut k);
        k
    }

    /// Returns a uniformly random `u64` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range requires a nonzero bound");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

impl RngCore for Drbg {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for byte in dest.iter_mut() {
            if self.used == 64 {
                self.refill();
            }
            *byte = self.pool[self.used];
            self.used += 1;
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl CryptoRng for Drbg {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Drbg::from_seed(99);
        let mut b = Drbg::from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Drbg::from_seed(1);
        let mut b = Drbg::from_seed(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let mut parent1 = Drbg::from_seed(7);
        let mut parent2 = Drbg::from_seed(7);
        let mut c1 = parent1.fork(b"node-1");
        let mut c1_again = parent2.fork(b"node-1");
        assert_eq!(c1.next_u64(), c1_again.next_u64());

        let mut parent3 = Drbg::from_seed(7);
        let mut c2 = parent3.fork(b"node-2");
        let mut parent4 = Drbg::from_seed(7);
        let mut c1_b = parent4.fork(b"node-1");
        let _ = c1_b.next_u64();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = Drbg::from_seed(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_across_block_boundary() {
        let mut rng = Drbg::from_seed(8);
        let mut big = [0u8; 200];
        rng.fill_bytes(&mut big);
        // Should not be all zeros and should differ chunk to chunk.
        assert!(big.iter().any(|&b| b != 0));
        assert_ne!(&big[..64], &big[64..128]);
    }

    #[test]
    fn gen_key16_unique() {
        let mut rng = Drbg::from_seed(10);
        let a = rng.gen_key16();
        let b = rng.gen_key16();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "nonzero bound")]
    fn gen_range_zero_panics() {
        Drbg::from_seed(0).gen_range(0);
    }
}
