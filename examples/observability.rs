//! Observability tour: event tracing and key-tree visualization.
//!
//! Shows the two debugging tools this reproduction ships with:
//!
//! - `Simulator::enable_trace` records every delivery, drop (with
//!   reason) and timer firing;
//! - `KeyTree::to_dot` renders an area's auxiliary-key tree in Graphviz
//!   syntax (pipe it to `dot -Tpng` to see the paper's Figures 4–6 for
//!   your own runs).
//!
//! ```sh
//! cargo run --example observability --release
//! ```

use mykil::group::GroupBuilder;
use mykil_net::{Duration, TraceEvent};
use std::collections::BTreeMap;

fn main() {
    let mut group = GroupBuilder::new(23).areas(1).build();
    group.sim.enable_trace(10_000);

    let alice = group.register_member(1);
    let bob = group.register_member(2);
    group.settle();
    group.send_data(alice, b"traced frame");

    // Inject a partition so the trace records drops too.
    group.sim.partition(bob, 4);
    group.send_data(alice, b"frame bob will miss");
    group.run_for(Duration::from_secs(2));
    group.sim.heal_partitions();
    group.run_for(Duration::from_secs(1));

    // Summarize the trace by message kind and outcome.
    let mut delivered: BTreeMap<&str, usize> = BTreeMap::new();
    let mut dropped: BTreeMap<String, usize> = BTreeMap::new();
    let mut timers = 0usize;
    let mut retransmits = 0usize;
    let mut faults = 0usize;
    for event in group.sim.trace_events() {
        match event {
            TraceEvent::Delivered { kind, .. } => *delivered.entry(kind).or_default() += 1,
            TraceEvent::Dropped { kind, reason, .. } => {
                *dropped.entry(format!("{kind} ({reason:?})")).or_default() += 1
            }
            TraceEvent::TimerFired { .. } => timers += 1,
            TraceEvent::Retransmitted { .. } => retransmits += 1,
            TraceEvent::FaultInjected { .. } => faults += 1,
        }
    }
    println!("trace: {} events recorded", group.sim.trace_recorded());
    println!("deliveries by kind:");
    for (kind, n) in &delivered {
        println!("  {kind:<12} {n}");
    }
    println!("drops by kind and reason:");
    for (what, n) in &dropped {
        println!("  {what:<30} {n}");
    }
    println!("timer firings: {timers}");
    println!("reliable retransmissions: {retransmits}");
    println!("injected faults: {faults}");

    // The area's live auxiliary-key tree, as Graphviz.
    println!("\narea 0 auxiliary-key tree (Graphviz):");
    println!("{}", group.ac(0).tree().to_dot());
    assert!(!group.received_data(alice).is_empty());
}
