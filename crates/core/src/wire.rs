//! Minimal byte codec for protocol messages.
//!
//! Every Mykil message is hand-serialized through [`Writer`] and parsed
//! through [`Reader`], so wire sizes are explicit and byte-exact — the
//! bandwidth figures depend on that. No serde: message layouts mirror
//! the fields listed in the paper's Figures 3 and 7.

use crate::error::ProtocolError;

/// Upper bound on a `u32`-length-prefixed byte string, shared by
/// [`Writer::bytes`] and [`Reader::bytes`]. Anything a conforming node
/// can emit, a conforming node will accept.
pub const MAX_BYTES_FIELD: usize = 16 << 20;

/// Append-only message builder.
///
/// Oversized length-prefixed fields poison the writer instead of
/// silently truncating the prefix: a poisoned writer refuses to finish
/// (see [`Writer::try_into_bytes`]), so a corrupt frame can never reach
/// the wire.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
    poisoned: bool,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Creates a writer whose buffer is pre-sized for `cap` bytes, so
    /// hot paths that know their frame size up front encode without
    /// reallocation.
    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(cap),
            poisoned: false,
        }
    }

    /// Wraps an existing buffer, clearing it first. Lets hot paths
    /// reuse one allocation across frames: the buffer keeps its
    /// capacity from previous encodes.
    pub fn into_reused(mut buf: Vec<u8>) -> Writer {
        buf.clear();
        Writer {
            buf,
            poisoned: false,
        }
    }

    /// Ensures room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) -> &mut Self {
        self.buf.reserve(additional);
        self
    }

    /// Finishes and returns the bytes.
    ///
    /// # Panics
    ///
    /// Panics if the writer was poisoned by an oversized [`Writer::bytes`]
    /// field. That can only happen when local code tries to emit a field
    /// larger than [`MAX_BYTES_FIELD`] — never from parsing network
    /// input, since [`Reader::bytes`] caps reads at the same bound.
    /// Callers assembling attacker-influenced payloads should use
    /// [`Writer::try_into_bytes`].
    pub fn into_bytes(self) -> Vec<u8> {
        match self.try_into_bytes() {
            Ok(buf) => buf,
            // mykil-lint: allow(L001) -- documented panic on local encoder misuse only
            Err(e) => panic!("Writer poisoned: {e}"),
        }
    }

    /// Finishes and returns the bytes, or the error that poisoned the
    /// writer.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] if any [`Writer::bytes`] call was
    /// handed a payload longer than [`MAX_BYTES_FIELD`].
    pub fn try_into_bytes(self) -> Result<Vec<u8>, ProtocolError> {
        if self.poisoned {
            return Err(ProtocolError::Malformed("oversized length-prefixed field"));
        }
        Ok(self.buf)
    }

    /// Whether an oversized field has poisoned this writer.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Writes a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Writes a `usize` count/length as a big-endian `u32`, poisoning
    /// the writer if the value does not fit — the same contract as
    /// [`Writer::bytes`]: a frame whose length field would lie can
    /// never reach the wire.
    pub fn u32_from(&mut self, v: usize) -> &mut Self {
        match u32::try_from(v) {
            Ok(n) => self.u32(n),
            Err(_) => {
                self.poisoned = true;
                self
            }
        }
    }

    /// Writes raw bytes with no length prefix (fixed-size fields).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Writes a `u32` length prefix followed by the bytes.
    ///
    /// A payload longer than [`MAX_BYTES_FIELD`] writes nothing and
    /// poisons the writer — the old behaviour truncated the length
    /// prefix via `as u32`, producing a frame whose prefix lied about
    /// the field length. Use [`Writer::try_bytes`] to surface the error
    /// at the call site instead.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        if self.try_bytes(bytes).is_err() {
            self.poisoned = true;
        }
        self
    }

    /// Writes a `u32` length prefix followed by the bytes, rejecting
    /// oversized payloads at the call site.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Malformed`] (writing nothing) if the payload
    /// exceeds [`MAX_BYTES_FIELD`].
    pub fn try_bytes(&mut self, bytes: &[u8]) -> Result<&mut Self, ProtocolError> {
        if bytes.len() > MAX_BYTES_FIELD {
            return Err(ProtocolError::Malformed("oversized length-prefixed field"));
        }
        let len = u32::try_from(bytes.len())
            .map_err(|_| ProtocolError::Malformed("oversized length-prefixed field"))?;
        self.u32(len);
        Ok(self.raw(bytes))
    }

    /// Appends bytes produced directly into the underlying buffer —
    /// e.g. `envelope::seal_into` — avoiding an intermediate `Vec`.
    pub fn append_with(&mut self, f: impl FnOnce(&mut Vec<u8>)) -> &mut Self {
        f(&mut self.buf);
        self
    }
}

/// Sequential message parser.
///
/// All accessors return [`ProtocolError::Malformed`] on truncation, so
/// attacker-controlled bytes can never panic the node.
///
/// Deliberately *not* `Copy`: a cursor that silently forks on every
/// by-value use made it easy to re-parse the same bytes twice. Forking
/// now requires an explicit `.clone()`.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails unless the input was fully consumed.
    pub fn finish(self) -> Result<(), ProtocolError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let (head, rest) = self
            .buf
            .split_at_checked(n)
            .ok_or(ProtocolError::Malformed("truncated"))?;
        self.buf = rest;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ProtocolError> {
        let [b] = self.array::<1>()?;
        Ok(b)
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    /// Reads exactly `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        self.take(n)
    }

    /// Reads a fixed-size array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], ProtocolError> {
        self.take(N)?
            .try_into()
            .map_err(|_| ProtocolError::Malformed("bad fixed-size field"))
    }

    /// Reads a `u32`-length-prefixed byte string (capped at
    /// [`MAX_BYTES_FIELD`] to stop hostile length fields from causing
    /// huge allocations).
    pub fn bytes(&mut self) -> Result<&'a [u8], ProtocolError> {
        let len = self.u32()? as usize;
        if len > MAX_BYTES_FIELD {
            return Err(ProtocolError::Malformed("length field too large"));
        }
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = Writer::new();
        w.u8(7).u32(0xdead_beef).u64(42).bytes(b"hello").raw(&[1, 2, 3]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.raw(3).unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(1);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf[..5]);
        assert!(r.u64().is_err());
        // Length prefix promises more bytes than remain.
        let short = [0u8, 0, 0, 9, 1];
        let mut r = Reader::new(&short);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.u8(1).u8(2);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let _ = r.u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn hostile_length_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn writer_len_tracks() {
        let mut w = Writer::new();
        assert!(w.is_empty());
        w.u32(1);
        assert_eq!(w.len(), 4);
        w.bytes(b"xy");
        assert_eq!(w.len(), 4 + 4 + 2);
    }

    #[test]
    fn array_reader() {
        let mut w = Writer::new();
        w.raw(&[9u8; 16]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let a: [u8; 16] = r.array().unwrap();
        assert_eq!(a, [9u8; 16]);
        let mut r2 = Reader::new(&buf[..10]);
        assert!(r2.array::<16>().is_err());
    }

    #[test]
    fn oversized_bytes_poisons_instead_of_truncating() {
        // Regression: `bytes()` used to write `len as u32`, so a payload
        // of MAX_BYTES_FIELD + 1 bytes got a length prefix that lied.
        let big = vec![0u8; MAX_BYTES_FIELD + 1];
        let mut w = Writer::new();
        assert!(w.try_bytes(&big).is_err());
        assert_eq!(w.len(), 0, "failed try_bytes must write nothing");
        assert!(!w.is_poisoned());

        let mut w = Writer::new();
        w.u8(1).bytes(&big).u8(2);
        assert!(w.is_poisoned());
        assert!(w.try_into_bytes().is_err());
    }

    #[test]
    fn max_sized_bytes_field_accepted() {
        let exact = vec![7u8; 32];
        let mut w = Writer::new();
        w.try_bytes(&exact).unwrap();
        let buf = w.try_into_bytes().unwrap();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap(), &exact[..]);
    }

    #[test]
    fn reader_fork_requires_explicit_clone() {
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        let mut fork = r.clone();
        assert_eq!(r.u8().unwrap(), 1);
        // The explicit clone still sees the original position.
        assert_eq!(fork.u8().unwrap(), 1);
    }

    #[test]
    fn writer_reuse_keeps_capacity() {
        let mut w = Writer::with_capacity(64);
        w.u64(9).bytes(b"abc");
        let buf = w.into_bytes();
        let cap = buf.capacity();
        let mut w = Writer::into_reused(buf);
        assert!(w.is_empty());
        w.u8(1);
        assert!(w.into_bytes().capacity() >= cap);
    }
}
