//! Error type shared by every module in the crypto substrate.

use std::fmt;

/// Errors produced by the cryptographic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A message was too long to fit in one RSA-OAEP block.
    ///
    /// Mirrors the OpenSSL limit the paper discusses in Section V-D: with a
    /// 2048-bit key only 215 bytes of plaintext fit in a single block.
    MessageTooLong {
        /// Bytes the caller tried to encrypt.
        len: usize,
        /// Maximum plaintext length for this key size.
        max: usize,
    },
    /// A ciphertext did not match the expected RSA block length.
    InvalidCiphertextLength {
        /// Bytes received.
        len: usize,
        /// Expected block length for this key.
        expected: usize,
    },
    /// OAEP-style padding failed to verify during decryption.
    PaddingError,
    /// A MAC or signature failed verification.
    VerificationFailed,
    /// Key generation could not find suitable parameters.
    KeyGeneration(&'static str),
    /// An input parameter was outside the supported range.
    InvalidParameter(&'static str),
    /// The symmetric envelope was malformed or failed authentication.
    EnvelopeError(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MessageTooLong { len, max } => {
                write!(f, "message of {len} bytes exceeds the {max}-byte block limit")
            }
            CryptoError::InvalidCiphertextLength { len, expected } => {
                write!(f, "ciphertext is {len} bytes, expected {expected}")
            }
            CryptoError::PaddingError => write!(f, "padding check failed during decryption"),
            CryptoError::VerificationFailed => write!(f, "verification failed for MAC or signature"),
            CryptoError::KeyGeneration(why) => write!(f, "key generation failed: {why}"),
            CryptoError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
            CryptoError::EnvelopeError(why) => write!(f, "envelope error: {why}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            CryptoError::MessageTooLong { len: 300, max: 215 },
            CryptoError::InvalidCiphertextLength { len: 10, expected: 256 },
            CryptoError::PaddingError,
            CryptoError::VerificationFailed,
            CryptoError::KeyGeneration("no prime found"),
            CryptoError::InvalidParameter("bits too small"),
            CryptoError::EnvelopeError("truncated"),
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
