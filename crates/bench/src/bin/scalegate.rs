//! Million-member scale gate (ISSUE 7).
//!
//! Runs the hybrid hot/cold flash-crowd scenarios — 100,000 members
//! for the CI smoke and the full 1,000,000-member / 1,000-area
//! acceptance run — under the counting allocator and the scale
//! invariant checker, and reports events/sec, wall time and peak
//! live-heap bytes (a deterministic RSS proxy) as machine-readable
//! JSON (`BENCH_scale.json` at the repo root).
//!
//! ```text
//! scalegate                  # run and print
//! scalegate --smoke          # 100k scenario only (bounded CI wall time)
//! scalegate --write          # run and (re)write BENCH_scale.json
//! scalegate --check <path>   # run and fail (exit 1) on regression
//!           --tolerance 15   #   events/sec band, percent (calibrated)
//!           --out <path>     #   also dump the fresh JSON (CI artifact)
//! ```
//!
//! Gate semantics mirror `perfgate` (DESIGN.md §10): event counts are
//! bit-deterministic and gated exactly; peak heap is gated at the
//! tolerance; events/sec is normalized by a SHA-256 calibration loop
//! and gated at the given tolerance (the ISSUE 7 regression bar).

use mykil::invariants::check_scale;
use mykil::scale::{ScaleConfig, ScaleGroup};
use mykil_bench::alloc_track::{peak_bytes, reset_peak, CountingAllocator};
use mykil_crypto::sha256::Sha256;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// One scenario's measurements.
struct Sample {
    name: &'static str,
    members: u64,
    areas: usize,
    events: u64,
    events_per_sec: f64,
    wall_secs: f64,
    peak_heap_bytes: u64,
    rekey_multicast_bytes: u64,
    rekey_unicast_bytes: u64,
}

/// Drives one flash-crowd join + mass-leave to completion with the
/// invariant checker auditing both quiescent points; any violation is
/// fatal (the gate must not publish numbers from a broken run).
fn run_scenario(name: &'static str, cfg: ScaleConfig) -> Sample {
    reset_peak();
    let t0 = Instant::now();
    let mut g = ScaleGroup::new(cfg);
    if !g.run_flash_crowd_join() {
        eprintln!("{name}: join phase ran out of event budget");
        std::process::exit(2);
    }
    let join_violations = check_scale(&g);
    if !join_violations.is_empty() {
        eprintln!("{name}: invariant violations after join: {join_violations:?}");
        std::process::exit(2);
    }
    if g.live_members() != cfg.members {
        eprintln!(
            "{name}: {} members live after join, expected {}",
            g.live_members(),
            cfg.members
        );
        std::process::exit(2);
    }
    if !g.run_mass_leave() {
        eprintln!("{name}: leave phase ran out of event budget");
        std::process::exit(2);
    }
    let leave_violations = check_scale(&g);
    if !leave_violations.is_empty() {
        eprintln!("{name}: invariant violations after leave: {leave_violations:?}");
        std::process::exit(2);
    }
    if g.live_members() != 0 {
        eprintln!("{name}: {} members left behind after mass leave", g.live_members());
        std::process::exit(2);
    }
    let wall = t0.elapsed().as_secs_f64();
    let events = g.sim.events_processed();
    Sample {
        name,
        members: cfg.members,
        areas: cfg.areas,
        events,
        events_per_sec: events as f64 / wall,
        wall_secs: wall,
        peak_heap_bytes: peak_bytes(),
        rekey_multicast_bytes: g.sim.stats().counter("scale-rekey-multicast-bytes"),
        rekey_unicast_bytes: g.sim.stats().counter("scale-rekey-unicast-bytes"),
    }
}

/// Host-speed calibration, identical to perfgate's: SHA-256 digests
/// over a 4 KiB buffer per second.
fn calibrate() -> f64 {
    let buf = [0x5Au8; 4096];
    let mut acc = 0u64;
    const ITERS: u64 = 4000;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        acc = acc.wrapping_add(u64::from(Sha256::digest(&buf)[0]));
    }
    let dt = t0.elapsed().as_secs_f64();
    assert!(acc != u64::MAX);
    ITERS as f64 / dt
}

fn render_json(samples: &[Sample], calibration: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n");
    out.push_str("  \"description\": \"hybrid hot/cold scale gate; refresh with: cargo run --release -p mykil-bench --bin scalegate -- --write\",\n");
    out.push_str(&format!(
        "  \"calibration_sha256_4k_per_sec\": {calibration:.1},\n"
    ));
    out.push_str("  \"scenarios\": {\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{ \"members\": {}, \"areas\": {}, \"events\": {}, \"events_per_sec\": {:.1}, \"wall_secs\": {:.3}, \"peak_heap_bytes\": {}, \"rekey_multicast_bytes\": {}, \"rekey_unicast_bytes\": {} }}{}\n",
            s.name,
            s.members,
            s.areas,
            s.events,
            s.events_per_sec,
            s.wall_secs,
            s.peak_heap_bytes,
            s.rekey_multicast_bytes,
            s.rekey_unicast_bytes,
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Extracts `"key": <number>` from `text` scoped to the object that
/// follows `"scope"` (a flat scan is enough for the format we emit).
fn json_num(text: &str, scope: &str, key: &str) -> Option<f64> {
    let start = match scope.is_empty() {
        true => 0,
        false => text.find(&format!("\"{scope}\""))?,
    };
    let scoped = &text[start..];
    let end = scoped.find('}').unwrap_or(scoped.len());
    let scoped = &scoped[..end];
    let kpos = scoped.find(&format!("\"{key}\""))?;
    let after = &scoped[kpos..];
    let colon = after.find(':')?;
    let rest = after[colon + 1..].trim_start();
    let numlen = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..numlen].parse().ok()
}

struct Regression {
    what: String,
    base: f64,
    fresh: f64,
    limit_pct: f64,
}

/// Compares fresh samples against a committed baseline.
fn check(baseline: &str, samples: &[Sample], calibration: f64, tol_pct: f64) -> Vec<Regression> {
    let mut bad = Vec::new();
    let base_calib = json_num(baseline, "", "calibration_sha256_4k_per_sec").unwrap_or(calibration);
    for s in samples {
        let Some(base_events) = json_num(baseline, s.name, "events") else {
            bad.push(Regression {
                what: format!("{}: missing from baseline", s.name),
                base: 0.0,
                fresh: 0.0,
                limit_pct: 0.0,
            });
            continue;
        };

        // Event count and rekey bytes are bit-deterministic for a
        // fixed seed: any drift is a behavior change, not noise.
        if s.events as f64 != base_events {
            bad.push(Regression {
                what: format!("{}: events (deterministic)", s.name),
                base: base_events,
                fresh: s.events as f64,
                limit_pct: 0.0,
            });
        }
        for (key, fresh) in [
            ("rekey_multicast_bytes", s.rekey_multicast_bytes as f64),
            ("rekey_unicast_bytes", s.rekey_unicast_bytes as f64),
        ] {
            if let Some(base) = json_num(baseline, s.name, key) {
                if fresh != base {
                    bad.push(Regression {
                        what: format!("{}: {key} (deterministic)", s.name),
                        base,
                        fresh,
                        limit_pct: 0.0,
                    });
                }
            }
        }

        // Peak heap is deterministic up to allocator growth policy;
        // band it at the tolerance.
        if let Some(base_peak) = json_num(baseline, s.name, "peak_heap_bytes") {
            if s.peak_heap_bytes as f64 > base_peak * (1.0 + tol_pct / 100.0) {
                bad.push(Regression {
                    what: format!("{}: peak_heap_bytes", s.name),
                    base: base_peak,
                    fresh: s.peak_heap_bytes as f64,
                    limit_pct: tol_pct,
                });
            }
        }

        // Throughput: normalize by the calibration ratio (the ISSUE 7
        // bar — fail on >15% events/sec regression).
        let base_eps = json_num(baseline, s.name, "events_per_sec").unwrap_or(0.0);
        if base_eps > 0.0 && base_calib > 0.0 && calibration > 0.0 {
            let expected = base_eps * (calibration / base_calib);
            if s.events_per_sec < expected * (1.0 - tol_pct / 100.0) {
                bad.push(Regression {
                    what: format!("{}: events_per_sec (calibrated)", s.name),
                    base: expected,
                    fresh: s.events_per_sec,
                    limit_pct: tol_pct,
                });
            }
        }
    }
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut write = false;
    let mut smoke_only = false;
    let mut check_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut tolerance = 15.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--write" => write = true,
            "--smoke" => smoke_only = true,
            "--check" => check_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned(),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or(tolerance)
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let calibration = calibrate();
    let mut samples = vec![run_scenario("flash_crowd_100k", ScaleConfig::smoke_100k())];
    if !smoke_only {
        samples.push(run_scenario("flash_crowd_1m", ScaleConfig::paper_million()));
    }

    println!(
        "{:<18} {:>10} {:>12} {:>14} {:>10} {:>14}",
        "scenario", "members", "events", "events/sec", "wall s", "peak heap MB"
    );
    for s in &samples {
        println!(
            "{:<18} {:>10} {:>12} {:>14.0} {:>10.3} {:>14.1}",
            s.name,
            s.members,
            s.events,
            s.events_per_sec,
            s.wall_secs,
            s.peak_heap_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    println!("calibration: {calibration:.0} sha256-4k/sec");

    let json = render_json(&samples, calibration);
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    if write {
        if let Err(e) = std::fs::write("BENCH_scale.json", &json) {
            eprintln!("cannot write BENCH_scale.json: {e}");
            std::process::exit(2);
        }
        println!("wrote BENCH_scale.json");
    }

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let bad = check(&baseline, &samples, calibration, tolerance);
        if bad.is_empty() {
            println!("scale gate: PASS (tolerance {tolerance}%)");
        } else {
            println!("scale gate: FAIL");
            for r in &bad {
                println!(
                    "  {} regressed beyond {:.0}%: baseline {:.2}, fresh {:.2}",
                    r.what, r.limit_pct, r.base, r.fresh
                );
            }
            std::process::exit(1);
        }
    }
}
