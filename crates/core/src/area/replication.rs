//! Primary-backup replication of an area controller (Section IV-C).
//!
//! The replicated state is exactly what the paper lists: "the complete
//! auxiliary tree, public keys of the area members, area controllers
//! and the registration server, and the identities of the parent area
//! controller and all child area controllers". Multicast data in flight
//! is deliberately *not* replicated — members may miss packets during a
//! takeover, which the paper accepts.

use super::{
    AreaController, MemberRecord, ParentLink, Role, TIMER_BACKUP_WATCH, TIMER_HEARTBEAT,
    TIMER_IDLE_ALIVE, TIMER_PARENT_CHECK, TIMER_REKEY, TIMER_SWEEP,
};
use crate::durable::AcWalRecord;
use crate::identity::{AreaId, ClientId, DeviceId};
use crate::msg::Msg;
use crate::rekey::KeyState;
use crate::wire::{Reader, Writer};
use mykil_crypto::envelope;
use mykil_crypto::rsa::RsaPublicKey;
use mykil_net::{Context, GroupId, NodeId, SecretBytes, Time};
use mykil_tree::AreaTree;

impl AreaController {
    /// Serializes the replicated state (tree, members, hierarchy,
    /// epoch).
    pub(crate) fn replica_snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.tree.snapshot());
        w.u32(self.members.len() as u32);
        let mut members: Vec<(&ClientId, &MemberRecord)> = self.members.iter().collect();
        members.sort_by_key(|(c, _)| **c);
        for (client, rec) in members {
            w.u64(client.0)
                .u32(rec.node.index() as u32)
                .bytes(&rec.pubkey.to_bytes())
                .u8(rec.device.is_some() as u8);
            if let Some(d) = rec.device {
                w.raw(d.as_bytes());
            }
            w.u64(rec.valid_until.as_micros());
        }
        match &self.parent {
            Some(p) => {
                w.u8(1)
                    .u32(p.node.index() as u32)
                    .u32(p.area.0)
                    .u32(p.group.index() as u32);
            }
            None => {
                w.u8(0);
            }
        }
        w.bytes(&self.parent_keys.to_bytes());
        w.u64(self.epoch);
        w.u32(self.child_acs.len() as u32);
        let mut children: Vec<u32> = self.child_acs.iter().map(|n| n.index() as u32).collect();
        children.sort_unstable();
        for c in children {
            w.u32(c);
        }
        // Child-AC enrollments (tree member id → node). Without these a
        // promoted backup rejects every child-AC `KeyRefreshRequest`,
        // cutting children off from parent-area keys forever.
        w.u32(self.child_ac_members.len() as u32);
        let mut enrolled: Vec<(u64, u32)> = self
            .child_ac_members
            .iter()
            .map(|(m, n)| (*m, n.index() as u32))
            .collect();
        enrolled.sort_unstable();
        for (member, node) in enrolled {
            w.u64(member).u32(node);
        }
        w.into_bytes()
    }

    pub(crate) fn apply_replica_snapshot(&mut self, bytes: &[u8], now: Time) -> Option<()> {
        let mut r = Reader::new(bytes);
        let tree = AreaTree::restore(r.bytes().ok()?).ok()?;
        let count = r.u32().ok()? as usize;
        let mut members = std::collections::BTreeMap::new();
        for _ in 0..count {
            let client = ClientId(r.u64().ok()?);
            let node = NodeId::from_index(r.u32().ok()? as usize);
            let pubkey = RsaPublicKey::from_bytes(r.bytes().ok()?).ok()?;
            let device = if r.u8().ok()? == 1 {
                Some(DeviceId(r.array::<6>().ok()?))
            } else {
                None
            };
            let valid_until = Time::from_micros(r.u64().ok()?);
            members.insert(
                client,
                MemberRecord {
                    node,
                    pubkey,
                    device,
                    valid_until,
                    // Give everyone a fresh liveness grace period after
                    // the takeover.
                    last_heard: now,
                },
            );
        }
        let parent = if r.u8().ok()? == 1 {
            Some(ParentLink {
                node: NodeId::from_index(r.u32().ok()? as usize),
                area: AreaId(r.u32().ok()?),
                group: GroupId::from_index(r.u32().ok()? as usize),
            })
        } else {
            None
        };
        let parent_keys = KeyState::from_bytes(r.bytes().ok()?).ok()?;
        let epoch = r.u64().ok()?;
        let child_count = r.u32().ok()? as usize;
        let mut child_acs = std::collections::BTreeSet::new();
        for _ in 0..child_count {
            child_acs.insert(NodeId::from_index(r.u32().ok()? as usize));
        }
        let enrolled_count = r.u32().ok()? as usize;
        let mut child_ac_members = std::collections::BTreeMap::new();
        for _ in 0..enrolled_count {
            let member = r.u64().ok()?;
            let node = NodeId::from_index(r.u32().ok()? as usize);
            child_ac_members.insert(member, node);
        }
        r.finish().ok()?;
        self.tree = tree;
        self.members = members;
        self.parent = parent;
        self.parent_keys = parent_keys;
        self.epoch = epoch;
        self.child_acs = child_acs;
        self.child_ac_members = child_ac_members;
        Some(())
    }

    /// Pushes current state to the backup (called after every key
    /// update, membership change, or hierarchy change).
    ///
    /// Snapshots ride the reliable channel and carry a monotonic
    /// sequence number, so a retransmitted or reordered stale snapshot
    /// can never regress the backup. A newer snapshot supersedes the
    /// outstanding one (its retransmissions are cancelled); nothing is
    /// sent while the backup is presumed dead.
    pub(crate) fn sync_backup(&mut self, ctx: &mut Context<'_>) {
        let Some(backup) = self.deploy.backup else {
            return;
        };
        if self.role != Role::Primary || self.backup_presumed_dead {
            return;
        }
        self.sync_seq += 1;
        let mut plain = Writer::new();
        plain.u64(self.sync_seq).bytes(&self.replica_snapshot());
        ctx.charge_compute(self.cost.symmetric_op);
        let ct = envelope::seal(&self.repl_key, &plain.into_bytes(), ctx.rng());
        if let Some(old) = self.pending_sync.take() {
            ctx.cancel_reliable(old);
        }
        let token = ctx.send_reliable(backup, "state-sync", Msg::StateSync { ct }.to_bytes());
        self.pending_sync = Some(token);
    }

    /// Primary heartbeat tick. Heartbeats keep flowing to a presumed-
    /// dead backup (they are cheap and detect its recovery); only the
    /// expensive `StateSync` snapshots stop.
    pub(crate) fn tick_heartbeat(&mut self, ctx: &mut Context<'_>) {
        if let Some(backup) = self.deploy.backup {
            self.hb_seq += 1;
            ctx.send(
                backup,
                "replication",
                Msg::Heartbeat {
                    seq: self.hb_seq,
                    takeover_epoch: self.takeover_epoch,
                }
                .to_bytes(),
            );
            let threshold = self
                .cfg
                .heartbeat_interval
                .saturating_mul(self.cfg.failover_threshold as u64);
            if !self.backup_presumed_dead && ctx.now().since(self.last_backup_ack) >= threshold {
                self.backup_presumed_dead = true;
                ctx.stats().bump("backup-presumed-dead", 1);
                // The dead backup cannot ack in-flight snapshots; stop
                // their retransmissions instead of letting each run out
                // its retry budget against a black hole.
                ctx.cancel_reliable_to(backup);
                self.pending_sync = None;
            }
        }
        ctx.set_timer(self.cfg.heartbeat_interval, TIMER_HEARTBEAT);
    }

    /// Backup liveness tracking (primary role): `HeartbeatAck` refreshes
    /// the ack clock, and an ack from a presumed-dead backup revives it
    /// with an immediate full snapshot.
    pub(crate) fn handle_heartbeat_ack(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        _seq: u64,
        takeover_epoch: u64,
    ) {
        if self.deploy.backup != Some(from) {
            return;
        }
        self.peer_takeover_epoch = self.peer_takeover_epoch.max(takeover_epoch);
        self.last_backup_ack = ctx.now();
        if self.backup_presumed_dead {
            self.backup_presumed_dead = false;
            ctx.stats().bump("ac-backup-recovered", 1);
            self.sync_backup(ctx);
        }
    }

    /// Message dispatch while in the backup role.
    pub(crate) fn on_backup_message(&mut self, ctx: &mut Context<'_>, from: NodeId, msg: Msg) {
        let Role::Backup { primary } = self.role else {
            return;
        };
        match msg {
            Msg::Heartbeat { seq, takeover_epoch } if from == primary => {
                self.last_heartbeat = ctx.now();
                // Remember the primary's fencing epoch so a later
                // takeover fences strictly above it.
                self.peer_takeover_epoch = self.peer_takeover_epoch.max(takeover_epoch);
                ctx.send(
                    from,
                    "replication",
                    Msg::HeartbeatAck {
                        seq,
                        takeover_epoch: self.takeover_epoch,
                    }
                    .to_bytes(),
                );
            }
            Msg::StateSync { ct } if from == primary => {
                self.last_heartbeat = ctx.now();
                if let Ok(plain) = envelope::open(&self.repl_key, &ct) {
                    // Monotonic-sequence guard: a reordered or stale
                    // snapshot must not overwrite a newer one.
                    let mut r = Reader::new(&plain);
                    let parsed = r
                        .u64()
                        .ok()
                        .and_then(|seq| r.bytes().ok().map(|s| (seq, s.to_vec())));
                    let Some((seq, snapshot)) = parsed else {
                        return;
                    };
                    if seq <= self.applied_sync_seq {
                        ctx.stats().bump("backup-stale-sync-dropped", 1);
                        return;
                    }
                    self.applied_sync_seq = seq;
                    self.replica_state = Some(SecretBytes::new(snapshot));
                    // Durability: an accepted snapshot must survive a
                    // backup crash, or a post-crash takeover promotes an
                    // empty replica.
                    self.persist_checkpoint(ctx);
                }
            }
            // Replication traffic from impostor nodes, and every area/
            // join/rekey message: a standby replica ignores them all
            // (listed explicitly so a new wire message fails to compile
            // until triaged here).
            Msg::Heartbeat { .. }
            | Msg::StateSync { .. }
            | Msg::Join1 { .. }
            | Msg::Join2 { .. }
            | Msg::Join3 { .. }
            | Msg::Join4 { .. }
            | Msg::Join5 { .. }
            | Msg::Join6 { .. }
            | Msg::Join7 { .. }
            | Msg::Rejoin1 { .. }
            | Msg::Rejoin2 { .. }
            | Msg::Rejoin3 { .. }
            | Msg::Rejoin4 { .. }
            | Msg::Rejoin5 { .. }
            | Msg::Rejoin6 { .. }
            | Msg::RejoinDenied { .. }
            | Msg::AreaJoinReq { .. }
            | Msg::AreaJoinAck { .. }
            | Msg::KeyUpdate { .. }
            | Msg::KeyUnicast { .. }
            | Msg::KeyRefreshRequest { .. }
            | Msg::LeaveRequest { .. }
            | Msg::Data { .. }
            | Msg::AcAlive { .. }
            | Msg::MemberAlive { .. }
            | Msg::HeartbeatAck { .. }
            | Msg::Takeover { .. }
            | Msg::Demote { .. } => {}
        }
    }

    /// Backup watchdog: take over after `failover_threshold` missed
    /// heartbeats.
    pub(crate) fn tick_backup_watch(&mut self, ctx: &mut Context<'_>) {
        let Role::Backup { primary } = self.role else {
            return;
        };
        let silence = ctx.now().since(self.last_heartbeat);
        let threshold = self
            .cfg
            .heartbeat_interval
            .saturating_mul(self.cfg.failover_threshold as u64);
        if silence >= threshold {
            self.take_over(ctx, primary);
        } else {
            ctx.set_timer(self.cfg.heartbeat_interval, TIMER_BACKUP_WATCH);
        }
    }

    /// Becomes the area's controller: restore replicated state, announce
    /// to the area, the registration server and the parent, and start
    /// the primary timers.
    fn take_over(&mut self, ctx: &mut Context<'_>, old_primary: NodeId) {
        if let Some(state) = self.replica_state.take() {
            if self.apply_replica_snapshot(state.as_slice(), ctx.now()).is_none() {
                ctx.stats().bump("ac-takeover-corrupt-state", 1);
            }
        }
        self.role = Role::Primary;
        // Fence strictly above anything the old primary ever announced:
        // after a partition heal, whichever of the two primaries holds
        // the lower epoch demotes itself (split-brain reconciliation).
        self.takeover_epoch = self.takeover_epoch.max(self.peer_takeover_epoch) + 1;
        self.stale_peer = Some(old_primary);
        // This node no longer has a backup of its own.
        self.deploy.backup = None;
        self.deploy.backup_pubkey = Vec::new();
        self.stats.takeovers += 1;
        ctx.stats().bump("ac-takeovers", 1);

        // The promotion must be durable before it is announced: a
        // promoted backup that crashes and forgets it was primary would
        // leave the area with no controller at all. WAL first, then the
        // compacting checkpoint — if the checkpoint write is later lost
        // to a lying disk, the older slot plus this record still
        // replays the promotion.
        self.wal_commit_record(
            ctx,
            &AcWalRecord::Promoted {
                takeover_epoch: self.takeover_epoch,
                old_primary: old_primary.index() as u32,
            },
        );
        self.persist_checkpoint(ctx);

        self.announce_takeover(ctx);

        // Re-enroll with the parent so parent-area keys are fresh.
        if self.parent.is_some() {
            self.last_heard_parent = ctx.now();
            if let Some(p) = self.parent.clone() {
                ctx.join_group(p.group);
                self.request_parent_enrollment(ctx, &p);
            }
        }

        ctx.set_timer(self.cfg.t_idle, TIMER_IDLE_ALIVE);
        ctx.set_timer(self.cfg.t_active, TIMER_SWEEP);
        ctx.set_timer(self.cfg.rekey_interval, TIMER_REKEY);
        ctx.set_timer(self.cfg.t_idle, TIMER_PARENT_CHECK);
    }

    /// Signed takeover announcement: members switch their AC pointer,
    /// the RS updates its directory, child controllers repoint parents.
    /// Also re-sent after a split-brain heal, for the partition that
    /// missed the original.
    fn announce_takeover(&mut self, ctx: &mut Context<'_>) {
        let mut w = Writer::new();
        w.u32(self.deploy.area.0);
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig = self.keypair.sign(&w.into_bytes());
        let announce = Msg::Takeover {
            area: self.deploy.area,
            sig,
            pubkey: self.keypair.public().to_bytes(),
        }
        .to_bytes();
        ctx.multicast(self.deploy.group, "takeover", announce.clone());
        // The RS copy must survive loss — a silently lost announcement
        // leaves the directory pointing at the dead primary.
        ctx.send_reliable(self.deploy.rs_node, "takeover", announce);
        self.last_area_mcast = ctx.now();
    }

    /// What a `Demote` signature covers: the area and the winning
    /// takeover epoch.
    fn demote_signed_bytes(area: crate::identity::AreaId, takeover_epoch: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(area.0).u64(takeover_epoch);
        w.into_bytes()
    }

    /// A primary received a primary heartbeat: the sender also believes
    /// it runs this area. If it is the node this one took over from and
    /// its fencing epoch is lower, send it a signed `Demote` (reliably —
    /// the heal may still be flaky).
    pub(crate) fn handle_stale_primary_heartbeat(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        _seq: u64,
        takeover_epoch: u64,
    ) {
        if takeover_epoch >= self.takeover_epoch || self.stale_peer != Some(from) {
            return;
        }
        if self.pending_demote.is_some() {
            return; // one fence in flight is enough
        }
        ctx.stats().bump("ac-demote-sent", 1);
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig = self
            .keypair
            .sign(&Self::demote_signed_bytes(self.deploy.area, self.takeover_epoch));
        let token = ctx.send_reliable(
            from,
            "takeover",
            Msg::Demote {
                area: self.deploy.area,
                takeover_epoch: self.takeover_epoch,
                sig,
            }
            .to_bytes(),
        );
        self.pending_demote = Some(token);
    }

    /// A primary received a `Demote`: its old backup took over behind a
    /// partition and holds a higher fencing epoch. Verify the claim
    /// against the deployment's backup key and step down to the backup
    /// role, to be resynchronized through the normal StateSync path.
    pub(crate) fn handle_demote(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        area: crate::identity::AreaId,
        takeover_epoch: u64,
        sig: &[u8],
    ) {
        if area != self.deploy.area
            || takeover_epoch <= self.takeover_epoch
            || self.deploy.backup != Some(from)
        {
            return;
        }
        let Ok(pk) = RsaPublicKey::from_bytes(&self.deploy.backup_pubkey) else {
            return;
        };
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        if !pk.verify(&Self::demote_signed_bytes(area, takeover_epoch), sig) {
            return;
        }
        // Epoch fence lost: step down.
        self.role = Role::Backup { primary: from };
        self.peer_takeover_epoch = takeover_epoch;
        // Replica bookkeeping from the primary stint must not block the
        // new primary's snapshots.
        self.applied_sync_seq = 0;
        self.replica_state = None;
        self.backup_presumed_dead = false;
        self.last_heartbeat = ctx.now();
        // Outstanding primary-role reliables toward the winner (stale
        // state-syncs, mainly) must not race its snapshots.
        ctx.cancel_reliable_to(from);
        self.pending_sync = None;
        if let Some((_, token)) = self.pending_parent_join.take() {
            ctx.cancel_reliable(token);
        }
        self.stats.demotions += 1;
        ctx.stats().bump("ac-demotions", 1);
        // Losing the fence must stick across a crash, or a recovered
        // node would come back up believing it still runs the area.
        self.wal_commit_record(ctx, &AcWalRecord::Demoted { new_primary: from.index() as u32 });
        self.persist_checkpoint(ctx);
        // The primary timers die on their next firing (role-gated); the
        // backup watchdog takes their place.
        ctx.set_timer(self.cfg.heartbeat_interval, TIMER_BACKUP_WATCH);
    }

    /// The stale primary acknowledged the `Demote` (the gates on both
    /// sides mirror each other, so delivery implies acceptance): adopt
    /// it as this node's backup and bring it up to date.
    pub(crate) fn handle_demote_acked(&mut self, ctx: &mut Context<'_>) {
        let Some(peer) = self.stale_peer.take() else {
            return;
        };
        let Some(pk) = self.directory_pubkey(peer) else {
            return;
        };
        self.deploy.backup = Some(peer);
        self.deploy.backup_pubkey = pk.to_bytes();
        self.last_backup_ack = ctx.now();
        self.backup_presumed_dead = false;
        ctx.stats().bump("ac-demote-acked", 1);
        // The backup link is part of the checkpointed image; make the
        // adoption durable.
        self.persist_checkpoint(ctx);
        // Members and child controllers in the stale partition missed
        // the original takeover announcement; repeat it now that both
        // sides can hear it.
        self.announce_takeover(ctx);
        ctx.set_timer(self.cfg.heartbeat_interval, TIMER_HEARTBEAT);
        self.sync_backup(ctx);
    }

    /// Sends a signed area-join request to (re)establish membership in
    /// the parent area.
    pub(crate) fn request_parent_enrollment(&mut self, ctx: &mut Context<'_>, parent: &ParentLink) {
        let Some(parent_pub) = self.directory_pubkey(parent.node) else {
            return;
        };
        let mut w = Writer::new();
        w.u32(self.deploy.area.0).u64(ctx.now().as_micros());
        ctx.charge_compute(self.cost.rsa_public(self.cfg.rsa_bits));
        let Ok(ct) = mykil_crypto::envelope::HybridCiphertext::encrypt(
            &parent_pub,
            &w.into_bytes(),
            ctx.rng(),
        ) else {
            return;
        };
        let ct = ct.to_bytes();
        ctx.charge_compute(self.cost.rsa_private(self.cfg.rsa_bits));
        let sig = self.keypair.sign(&ct);
        if let Some((_, old)) = self.pending_parent_join.take() {
            ctx.cancel_reliable(old);
        }
        let token = ctx.send_reliable(
            parent.node,
            "area-join",
            Msg::AreaJoinReq { ct, sig }.to_bytes(),
        );
        self.pending_parent_join = Some((parent.node, token));
    }
}

#[cfg(test)]
mod tests {
    use super::AreaController;
    use crate::group::GroupBuilder;

    /// Regression: `child_ac_members` must survive the snapshot round
    /// trip, or a promoted backup rejects every child-AC key refresh.
    #[test]
    fn replica_snapshot_round_trips_child_ac_enrollments() {
        let mut g = GroupBuilder::new(91).areas(2).replicated(true).build();
        g.settle();
        let (bytes, expect_children, expect_epoch) =
            g.sim.invoke(g.primaries[0], |ac: &mut AreaController, _ctx| {
                (ac.replica_snapshot(), ac.child_ac_members.clone(), ac.epoch)
            });
        assert!(
            !expect_children.is_empty(),
            "area 1 should be enrolled as a child of area 0"
        );
        let now = g.sim.now();
        let backup = g.sim.node_mut::<AreaController>(g.backups[0]);
        backup
            .apply_replica_snapshot(&bytes, now)
            .expect("snapshot parses");
        assert_eq!(backup.child_ac_members, expect_children);
        assert_eq!(backup.epoch, expect_epoch);
    }

    /// A stale (lower-sequence) snapshot — e.g. a delayed retransmission
    /// arriving after a newer sync — must not regress the backup.
    #[test]
    fn stale_state_sync_cannot_regress_backup() {
        use crate::msg::Msg;
        use crate::wire::Writer;
        use mykil_crypto::envelope;

        let mut g = GroupBuilder::new(92).areas(1).replicated(true).build();
        g.register_member(1);
        g.settle();
        let backup_node = g.backups[0];
        let applied = g.sim.node::<AreaController>(backup_node).applied_sync_seq;
        assert!(applied > 0, "backup never applied a snapshot");
        let state = g
            .sim
            .node::<AreaController>(backup_node)
            .replica_state
            .clone();

        // Replay a sealed snapshot with an old sequence number.
        let primary = g.primaries[0];
        let (repl_key, snapshot) = g.sim.invoke(primary, |ac: &mut AreaController, _ctx| {
            (ac.repl_key.clone(), ac.replica_snapshot())
        });
        let mut plain = Writer::new();
        plain.u64(1).bytes(&[0xde; 4]); // bogus body under a stale seq
        let mut rng = mykil_crypto::drbg::Drbg::from_seed(7);
        let ct = envelope::seal(&repl_key, &plain.into_bytes(), &mut rng);
        g.sim.invoke(backup_node, |ac: &mut AreaController, ctx| {
            ac.on_backup_message(ctx, primary, Msg::StateSync { ct });
        });
        let b = g.sim.node::<AreaController>(backup_node);
        assert_eq!(b.applied_sync_seq, applied, "stale seq must not apply");
        assert_eq!(b.replica_state, state, "stale snapshot overwrote state");
        assert_eq!(g.stats().counter("backup-stale-sync-dropped"), 1);
        drop(snapshot);
    }

    /// Regression: a primary whose backup died must stop burning
    /// bandwidth on `StateSync`, and must resume — with a catch-up
    /// snapshot — the moment the backup acks heartbeats again.
    #[test]
    fn primary_detects_dead_backup_and_resyncs_on_recovery() {
        use mykil_net::Duration;

        let mut g = GroupBuilder::new(95).areas(1).replicated(true).build();
        let a = g.register_member(1);
        g.settle();
        assert!(g.is_member(a));
        let primary = g.primaries[0];
        let backup_node = g.backups[0];

        // Kill the backup; heartbeat acks stop and the in-flight
        // reliable syncs run out their retry budget.
        g.sim.crash(backup_node);
        g.run_for(Duration::from_secs(4));
        assert_eq!(g.stats().counter("backup-presumed-dead"), 1);
        assert!(g.sim.node::<AreaController>(primary).backup_presumed_dead);

        // Membership churn while the backup is down must not produce
        // any sync traffic toward the dead node.
        let syncs_before = g.stats().kind("state-sync").messages_sent;
        let seq_before = g.sim.node::<AreaController>(primary).sync_seq;
        let b = g.register_member(2);
        g.run_for(Duration::from_secs(2));
        assert!(g.is_member(b));
        assert_eq!(
            g.stats().kind("state-sync").messages_sent,
            syncs_before,
            "primary kept syncing a presumed-dead backup"
        );
        assert_eq!(g.sim.node::<AreaController>(primary).sync_seq, seq_before);

        // The backup returns: the next heartbeat ack revives it and an
        // immediate catch-up sync closes the replication gap.
        g.sim.restart(backup_node);
        g.run_for(Duration::from_secs(2));
        assert_eq!(g.stats().counter("ac-backup-recovered"), 1);
        assert!(!g.sim.node::<AreaController>(primary).backup_presumed_dead);
        assert!(
            g.stats().kind("state-sync").messages_sent > syncs_before,
            "no catch-up sync after the backup returned"
        );
        // The catch-up snapshot carries the member admitted during the
        // outage.
        let snap = g
            .sim
            .node::<AreaController>(backup_node)
            .replica_state
            .clone()
            .expect("backup holds no catch-up snapshot");
        let now = g.sim.now();
        let probe = g.sim.node_mut::<AreaController>(backup_node);
        probe
            .apply_replica_snapshot(snap.as_slice(), now)
            .expect("snapshot parses");
        assert_eq!(probe.members.len(), 2);
    }
}
